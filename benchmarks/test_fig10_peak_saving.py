"""Figure 10: I-cache peak power saving.

Paper's ordering: FITS8 (63 %) > FITS16 (46 %) > ARM8 (31 %) — peak
power mixes both effects, so FITS wins on the fetch side (one bus word
per two instructions) and halving the cache wins on the array side;
FITS8 collects both.
"""

from repro.harness import FIGURES
from conftest import emit


def test_fig10_peak_saving(benchmark, data, results_dir):
    table = benchmark(FIGURES["fig10"], data)
    emit(results_dir, table)
    arm8 = table.average("ARM8")
    fits16 = table.average("FITS16")
    fits8 = table.average("FITS8")
    assert fits8 > fits16 > arm8 > 5.0, (arm8, fits16, fits8)
