"""Figure 5: code size, ARM vs THUMB vs FITS (normalized to ARM = 100).

Paper: THUMB removes ~33 % of the ARM footprint, FITS ~47 % — FITS must
beat THUMB because Thumb's general-purpose 16-bit encoding wastes field
space the synthesized encoding spends on each application's needs.
"""

from repro.harness import FIGURES
from conftest import emit


def test_fig05_code_size(benchmark, data, results_dir):
    table = benchmark(FIGURES["fig5"], data)
    emit(results_dir, table)
    thumb = table.average("THUMB")
    fits = table.average("FITS")
    assert 58.0 < thumb < 75.0, thumb     # paper: ~67
    assert 50.0 < fits < 63.0, fits       # paper: ~53
    assert fits < thumb                   # FITS beats Thumb on every average
    # and per benchmark, FITS is never worse than Thumb by more than a hair
    for bench, values in table.rows:
        assert values[2] < values[1] + 2.0, (bench, values)
