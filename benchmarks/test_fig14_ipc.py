"""Figure 14: IPC on the dual-issue in-order core (max 2).

Paper's shape: all four configurations are satisfactory and an 8 KB
FITS cache achieves roughly the same IPC as a 16 KB ARM cache.
"""

from repro.harness import FIGURES
from conftest import emit


def test_fig14_ipc(benchmark, data, results_dir):
    table = benchmark(FIGURES["fig14"], data)
    emit(results_dir, table)
    for col in table.columns:
        assert 0.3 < table.average(col) <= 2.0
    # FITS8 ≈ ARM16 with minor variations
    assert abs(table.average("FITS8") - table.average("ARM16")) < 0.15
    # no configuration exceeds the dual-issue bound on any benchmark
    assert all(v <= 2.0 for _b, values in table.rows for v in values)
