"""Figure 6: I-cache power breakdown per configuration.

Paper's qualitative anchors (Section 6.3.1): dynamic power dominates;
internal power is more than half of total cache power in all four
schemes; halving the cache raises the switching share and lowers the
internal share; FITS at equal size shows a *lower* switching share than
ARM.
"""

from repro.harness import FIGURES
from conftest import emit


def test_fig06_power_breakdown(benchmark, data, results_dir):
    table = benchmark(FIGURES["fig6"], data)
    emit(results_dir, table)
    a16_sw = table.average("A16.sw")
    a16_int = table.average("A16.int")
    a16_lk = table.average("A16.lk")
    # dynamic dominates, internal > half
    assert a16_sw + a16_int > 70.0
    assert a16_int > 45.0
    assert 5.0 < a16_lk < 30.0
    # halving the cache raises the switching share
    assert table.average("A8.sw") > a16_sw
    # FITS at equal size has a lower switching share than ARM
    assert table.average("F16.sw") < a16_sw
    assert table.average("F8.sw") < table.average("A8.sw")
