"""Shared fixtures for the figure-regeneration benchmarks.

The session fixture runs the complete study (compile, synthesize,
translate, simulate all four configurations for every benchmark) once;
results are cached on disk under ``.bench_cache/``, so subsequent
benchmark sessions only re-render figures.

Set ``REPRO_BENCH_SCALE=small`` for a quick pass.
"""

import os
import sys

import pytest

from repro.harness import collect


@pytest.fixture(scope="session")
def data():
    scale = os.environ.get("REPRO_BENCH_SCALE", "full")
    return collect(scale=scale, verbose=True)


@pytest.fixture(scope="session")
def results_dir():
    path = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(path, exist_ok=True)
    return path


def emit(results_dir, table):
    """Write the rendered figure table to benchmarks/results/ and stdout."""
    name = table.figure.lower().replace(" ", "")
    path = os.path.join(results_dir, "%s.txt" % name)
    text = table.render()
    with open(path, "w") as fh:
        fh.write(text + "\n")
    sys.stdout.write("\n" + text + "\n")
