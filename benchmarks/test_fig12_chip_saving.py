"""Figure 12: total chip power saving (StrongARM-style dilution).

Paper: 15 % FITS8, 8 % ARM8, 7 % FITS16 — the I-cache is 27 % of chip
power, so cache savings dilute accordingly, with FITS also trimming the
fetch/decode slice of the core.
"""

from repro.harness import FIGURES
from conftest import emit


def test_fig12_chip_saving(benchmark, data, results_dir):
    table = benchmark(FIGURES["fig12"], data)
    emit(results_dir, table)
    assert table.average("ARM8") > 5.0
    assert table.average("FITS8") > 5.0
    # chip savings are a diluted version of the cache savings
    assert table.average("FITS8") < 30.0
    assert table.average("ARM8") < 20.0
