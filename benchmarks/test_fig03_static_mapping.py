"""Figure 3: ARM-to-FITS static mapping rate per benchmark (~96 % avg)."""

from repro.harness import FIGURES
from conftest import emit


def test_fig03_static_mapping(benchmark, data, results_dir):
    table = benchmark(FIGURES["fig3"], data)
    emit(results_dir, table)
    # the paper reports a 96 % average; our flow lands in the same band
    assert table.average("static%") > 88.0
    # every benchmark keeps a sizable one-to-one majority
    assert all(v[0] > 70.0 for _b, v in table.rows)
