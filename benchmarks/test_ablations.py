"""Ablation benches for the synthesis design choices DESIGN.md calls out.

Each ablation switches one mechanism off (or pins it) and measures the
cost on the synthesized result — static footprint and mapping — so the
contribution of every design choice is visible, not asserted.
"""

import pytest

from repro.compiler.link import link_arm
from repro.sim.functional import ArmSimulator
from repro.core import ArmProfile, synthesize, SynthesisConfig
from repro.workloads import get_workload

ABLATION_BENCHES = ["crc32", "sha", "dijkstra"]


@pytest.fixture(scope="module")
def profiles():
    out = {}
    for name in ABLATION_BENCHES:
        wl = get_workload(name)
        image = link_arm(wl.build_module("small"), callee_saved=(4, 5))
        result = ArmSimulator(image).run()
        out[name] = (ArmProfile.from_execution(image, result), result)
    return out


def _avg_static(profiles, config):
    rates = []
    halfwords = 0
    for profile, _res in profiles.values():
        synth = synthesize(profile, config)
        rates.append(synth.image.static_mapping_rate())
        halfwords += len(synth.image.halfwords)
    return sum(rates) / len(rates), halfwords


def test_ablation_immediate_dictionary(benchmark, profiles):
    """Paper §3.3: the utilization-based immediate dictionary."""
    base_map, base_hw = _avg_static(profiles, SynthesisConfig())
    abl_map, abl_hw = benchmark(
        _avg_static, profiles, SynthesisConfig(use_dictionaries=False)
    )
    # dropping the dictionary costs mapping and code size
    assert abl_map <= base_map + 1e-9
    assert abl_hw >= base_hw
    assert abl_hw > base_hw * 1.005  # it pays measurably


def test_ablation_application_specific_instructions(benchmark, profiles):
    """BIS-only vs BIS+AIS opcode allocation."""
    base_map, base_hw = _avg_static(profiles, SynthesisConfig())
    abl_map, abl_hw = benchmark(_avg_static, profiles, SynthesisConfig(use_ais=False))
    assert abl_map <= base_map + 1e-9
    assert abl_hw >= base_hw


def test_ablation_fixed_geometry(benchmark, profiles):
    """Searching field widths vs pinning the paper's Figure-2 layout."""
    searched = {}
    for name, (profile, _res) in profiles.items():
        searched[name] = synthesize(profile)

    def pinned():
        out = 0
        for profile, _res in profiles.values():
            synth = synthesize(profile, SynthesisConfig(geometries=((6, 3),)))
            out += len(synth.image.halfwords)
        return out

    pinned_hw = benchmark(pinned)
    searched_hw = sum(len(s.image.halfwords) for s in searched.values())
    # the search can only match or beat any single pinned geometry
    assert searched_hw <= pinned_hw


def test_ablation_two_op_forms(benchmark, profiles):
    """§3.3's two-operand/three-operand address-mode choice."""
    base_map, base_hw = _avg_static(profiles, SynthesisConfig())
    # never use two-operand forms
    abl_map, abl_hw = benchmark(
        _avg_static, profiles, SynthesisConfig(two_op_threshold=1.01)
    )
    # the tuned selection is at least as compact
    assert base_hw <= abl_hw * 1.02


def test_ablation_dynamic_vs_static_profile(benchmark, profiles):
    """Profile-guided vs static-only synthesis (the paper's future work)."""
    from repro.sim.functional.fits_sim import FitsSimulator

    def static_only():
        total_dyn_hw = 0
        for profile, res in profiles.values():
            static_profile = ArmProfile.static_only(profile.image)
            synth = synthesize(static_profile)
            counts = res.exec_counts()
            for idx, n in enumerate(synth.image.unit_size):
                total_dyn_hw += int(counts[idx]) * n
        return total_dyn_hw

    static_dyn_hw = benchmark(static_only)
    guided_dyn_hw = 0
    for profile, res in profiles.values():
        synth = synthesize(profile)
        counts = res.exec_counts()
        for idx, n in enumerate(synth.image.unit_size):
            guided_dyn_hw += int(counts[idx]) * n
    # profile guidance never fetches more dynamically (and usually less)
    assert guided_dyn_hw <= static_dyn_hw * 1.01
