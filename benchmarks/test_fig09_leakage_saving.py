"""Figure 9: I-cache leakage power saving.

Paper's shape: leakage follows gate count — half-sized caches save
about half — but longer operational periods erode the saving (the paper
notes exceptions where ARM8's miss-inflated runtime gives FITS the
edge; in our flow the erosion also shows on FITS16 where translation
overhead stretches runtime).
"""

from repro.harness import FIGURES
from conftest import emit


def test_fig09_leakage_saving(benchmark, data, results_dir):
    table = benchmark(FIGURES["fig9"], data)
    emit(results_dir, table)
    assert table.average("ARM8") > 35.0
    assert table.average("FITS8") > 35.0
    # the full-size FITS16 cache leaks the same gates — no real saving
    assert table.average("FITS16") < 15.0
    # runtime erosion: at least one benchmark where ARM8 saves clearly
    # less than the nominal 50 %
    arm8 = table.column("ARM8")
    assert min(arm8.values()) < 45.0
