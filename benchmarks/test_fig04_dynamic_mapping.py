"""Figure 4: ARM-to-FITS dynamic mapping rate per benchmark (~98 % avg)."""

from repro.harness import FIGURES
from conftest import emit


def test_fig04_dynamic_mapping(benchmark, data, results_dir):
    table = benchmark(FIGURES["fig4"], data)
    emit(results_dir, table)
    assert table.average("dynamic%") > 90.0
    assert all(v[0] > 60.0 for _b, v in table.rows)
