"""Figure 8: I-cache internal power saving.

Paper's shape: internal power scales with cache size, so the two
half-sized caches (ARM8, FITS8) both save substantially; FITS16 is
size-bound and saves little.
"""

from repro.harness import FIGURES
from conftest import emit


def test_fig08_internal_saving(benchmark, data, results_dir):
    table = benchmark(FIGURES["fig8"], data)
    emit(results_dir, table)
    assert table.average("ARM8") > 25.0
    assert table.average("FITS8") > 30.0
    assert table.average("FITS16") < table.average("FITS8") - 20.0
    # FITS8 never loses to ARM8 by much (its extra accesses are halved)
    assert table.average("FITS8") > table.average("ARM8") - 5.0
