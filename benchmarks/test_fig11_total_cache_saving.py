"""Figure 11: total I-cache power saving.

Paper's ordering: FITS8 (47 %) > ARM8 (27 %) > FITS16 (18 %) — the
combination of halved accesses and a halved array beats either alone,
and simply halving the ARM cache beats FITS16 because internal+leakage
(size-bound) outweigh switching (access-bound).
"""

from repro.harness import FIGURES
from conftest import emit


def test_fig11_total_cache_saving(benchmark, data, results_dir):
    table = benchmark(FIGURES["fig11"], data)
    emit(results_dir, table)
    arm8 = table.average("ARM8")
    fits16 = table.average("FITS16")
    fits8 = table.average("FITS8")
    assert fits8 > arm8 > fits16, (arm8, fits16, fits8)
    assert fits8 > 30.0
    assert arm8 > 20.0
