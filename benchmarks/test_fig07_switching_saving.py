"""Figure 7: I-cache switching power saving.

Paper's shape: FITS16 ≈ FITS8 ≈ 50 % while ARM8 saves essentially
nothing — switching power is bound to fetch *accesses* (two 16-bit FITS
instructions share one bus word), not to cache size.  Our model drives
switching with real Hamming activity on the fetched encodings, which
lands the FITS saving below the paper's constant-activity-factor 50 %
(see EXPERIMENTS.md).
"""

from repro.harness import FIGURES
from conftest import emit


def test_fig07_switching_saving(benchmark, data, results_dir):
    table = benchmark(FIGURES["fig7"], data)
    emit(results_dir, table)
    arm8 = table.average("ARM8")
    fits16 = table.average("FITS16")
    fits8 = table.average("FITS8")
    assert abs(arm8) < 5.0, arm8                 # ARM8 saves ~nothing
    assert fits16 > 25.0 and fits8 > 25.0        # FITS saves substantially
    assert abs(fits16 - fits8) < 3.0             # size-independent
