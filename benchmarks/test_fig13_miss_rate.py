"""Figure 13: I-cache miss rate (misses per million accesses).

Paper's shape: FITS halves every footprint, so the half-sized FITS8
cache misses no more than the full-sized ARM16 cache, while ARM8 blows
up on applications whose hot code exceeds 8 KB (rijndael here, with its
unrolled per-round functions).
"""

from repro.harness import FIGURES
from conftest import emit


def test_fig13_miss_rate(benchmark, data, results_dir):
    table = benchmark(FIGURES["fig13"], data)
    emit(results_dir, table)
    arm16 = table.column("ARM16")
    arm8 = table.column("ARM8")
    fits8 = table.column("FITS8")
    # FITS8 ≈ ARM16 (the paper's "virtually twice as large" effect)
    assert table.average("FITS8") <= table.average("ARM16") * 1.10
    # ARM8 never beats ARM16, and blows up on the big-footprint app
    assert all(arm8[b] >= arm16[b] * 0.999 for b in arm16)
    assert max(arm8[b] / max(arm16[b], 1e-9) for b in arm16) > 20.0
    # FITS8 stays immune on that same app
    worst = max(arm16, key=lambda b: arm8[b] / max(arm16[b], 1e-9))
    assert fits8[worst] < arm8[worst] / 10.0
