"""Synthesize a FITS instruction set for your own kernel.

Shows the library as a downstream user would adopt it: write a kernel
against the IR builder, link the runtime library, and hand the module to
the FITS flow.  The printed decoder configuration — opcode table,
register renaming, immediate dictionaries — is the artifact a FITS
processor would have downloaded into its programmable decoders.

Run:  python examples/custom_kernel_synthesis.py
"""

from repro.ir import Cond, FunctionBuilder, Global, Module, Width
from repro.workloads.runtime import runtime_module
from repro import compile_arm, fits_flow


def build_kernel():
    """A small image-delta kernel: sum of absolute byte differences."""
    m = Module("sad_kernel")
    n = 4096
    import struct

    data_a = bytes((7 * i + 3) & 0xFF for i in range(n))
    data_b = bytes((5 * i + 11) & 0xFF for i in range(n))
    m.add_global(Global("img_a", data=data_a))
    m.add_global(Global("img_b", data=data_b))

    b = FunctionBuilder(m, "main", [])
    pa = b.ga("img_a")
    pb = b.ga("img_b")
    total = b.li(0)
    with b.for_range(0, n) as i:
        va = b.load(pa, i, Width.BYTE)
        vb = b.load(pb, i, Width.BYTE)
        d = b.sub(va, vb)
        with b.if_then(Cond.LT, d, 0):
            b.rsb(d, 0, dst=d)
        b.add(total, d, dst=total)
    b.ret(total)
    m.merge(runtime_module(), allow_duplicates=True)
    return m


def main():
    module = build_kernel()
    arm = compile_arm(module)
    flow = fits_flow(module)

    print("ARM code: %d bytes; FITS code: %d bytes (%.0f%%)"
          % (arm.code_size, flow.fits_image.code_size,
             100 * flow.fits_image.code_size / arm.code_size))
    print("mapping: %.1f%% static / %.1f%% dynamic\n"
          % (100 * flow.static_mapping, 100 * flow.dynamic_mapping))

    print("synthesized decoder configuration:")
    print(flow.isa.describe())
    print("\noperate dictionary:", [hex(v) for v in flow.isa.dicts["operate"][:16]])
    print("memory dictionary:  ", flow.isa.dicts["mem"][:16])
    print("decoder storage: %.1f Kbit" % (flow.isa.decoder_storage_bits() / 1024))
    print("\nexpansion histogram (FITS instrs per ARM instr):",
          flow.fits_image.expansion_histogram())


if __name__ == "__main__":
    main()
