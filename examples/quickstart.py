"""Quickstart: run the whole PowerFITS pipeline on one benchmark.

Compiles the crc32 workload to ARM, runs the FITS flow (profile →
synthesize → translate → execute), simulates the paper's four processor
configurations, and prints the headline numbers.

Run:  python examples/quickstart.py [benchmark] [scale]
"""

import sys

from repro import (
    CacheGeometry,
    CachePowerModel,
    ArmSimulator,
    compile_arm,
    compile_thumb,
    fits_flow,
    get_workload,
    simulate_timing,
)


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "crc32"
    scale = sys.argv[2] if len(sys.argv) > 2 else "small"
    wl = get_workload(name)
    print("benchmark: %s (%s, %s scale)" % (wl.name, wl.category, scale))

    # baseline ARM compile + run
    arm = compile_arm(wl.build_module(scale))
    arm_result = ArmSimulator(arm).run()
    assert arm_result.exit_code == wl.reference(scale), "checksum mismatch"
    print("ARM   : %6d bytes, %9d instructions executed"
          % (arm.code_size, arm_result.dynamic_instructions))

    # Thumb comparator
    thumb = compile_thumb(wl.build_module(scale))
    print("THUMB : %6d bytes (%.0f%% of ARM)"
          % (thumb.code_size, 100 * thumb.code_size / arm.code_size))

    # the FITS flow: profile → synthesize → translate → execute
    flow = fits_flow(wl.build_module(scale))
    print("FITS  : %6d bytes (%.0f%% of ARM), ISA k_op=%d k_reg=%d (%d opcodes)"
          % (flow.fits_image.code_size,
             100 * flow.fits_image.code_size / arm.code_size,
             flow.isa.k_op, flow.isa.k_reg, len(flow.isa.opcode_table)))
    print("mapping: %.1f%% static / %.1f%% dynamic one-to-one"
          % (100 * flow.static_mapping, 100 * flow.dynamic_mapping))

    # the paper's four configurations
    results = {"arm": arm_result, "fits": flow.fits_result}
    base = None
    print("\n%-8s %8s %8s %10s %10s" % ("config", "IPC", "miss/M", "cache W", "saving"))
    for label, isa, size in [("ARM16", "arm", 16384), ("ARM8", "arm", 8192),
                             ("FITS16", "fits", 16384), ("FITS8", "fits", 8192)]:
        timing = simulate_timing(results[isa], size)
        power = CachePowerModel(CacheGeometry(size)).evaluate(timing)
        if base is None:
            base = power.energy_j
        saving = 100 * (1 - power.energy_j / base)
        print("%-8s %8.2f %8.1f %10.3f %9.1f%%"
              % (label, timing.ipc, timing.icache_misses_per_million,
                 power.total_w, saving))


if __name__ == "__main__":
    main()
