"""I-cache design-space sweep: ARM vs FITS across cache sizes.

Extends the paper's two-point comparison (16 KB vs 8 KB) into a sweep —
the crossover where the half-density FITS code stops needing capacity is
exactly the "cache looks twice as large" effect of Section 6.4.1.

Run:  python examples/cache_design_space.py [benchmark]
"""

import sys

from repro import (
    ArmSimulator,
    CacheGeometry,
    CachePowerModel,
    compile_arm,
    fits_flow,
    get_workload,
    simulate_timing,
)

SIZES = [2048, 4096, 8192, 16384, 32768]


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "rijndael"
    wl = get_workload(name)
    arm = compile_arm(wl.build_module("full"))
    arm_result = ArmSimulator(arm).run()
    flow = fits_flow(wl.build_module("full"))
    print("benchmark %s: ARM code %d B, FITS code %d B"
          % (name, arm.code_size, flow.fits_image.code_size))
    print("\n%8s | %12s %10s %8s | %12s %10s %8s"
          % ("size", "ARM miss/M", "ARM W", "ARM IPC", "FITS miss/M", "FITS W", "FITS IPC"))
    print("-" * 84)
    for size in SIZES:
        row = []
        for result in (arm_result, flow.fits_result):
            timing = simulate_timing(result, size)
            power = CachePowerModel(CacheGeometry(size)).evaluate(timing)
            row.append((timing.icache_misses_per_million, power.total_w, timing.ipc))
        print("%7dK | %12.1f %10.3f %8.2f | %12.1f %10.3f %8.2f"
              % (size // 1024, *row[0], *row[1]))
    print("\nFITS at size S behaves like ARM at size 2S (the paper's")
    print("'virtually twice as large' packing effect).")


if __name__ == "__main__":
    main()
