"""Miniature of the paper's full power study (Figures 6-12) on a few
benchmarks, printed as one table per component.

Run:  python examples/power_study.py [scale]
"""

import sys

from repro.harness import collect, FIGURES

BENCHES = ["crc32", "sha", "dijkstra", "rijndael", "gsm"]


def main():
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    data = collect(scale=scale, names=BENCHES, verbose=True)
    for key in ("fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"):
        print()
        print(FIGURES[key](data).render())


if __name__ == "__main__":
    main()
