"""Set-associative LRU cache model.

Used line-granular: the timing model deduplicates sequential requests to
the same line, so :meth:`SetAssociativeCache.access_line` is called once
per distinct line touched, which both matches how a line buffer behaves
and keeps the pure-Python simulation fast.

Event counts (accesses, misses/fills, compulsory misses, evictions) are
first-class outputs: :meth:`SetAssociativeCache.stats` returns them as a
dict and :meth:`SetAssociativeCache.publish` feeds them to
:mod:`repro.obs` — the same numbers the timing report carries into the
power model, so observability counters, timing reports and power inputs
can be cross-checked.
"""

from repro.obs import core as obs


def publish_stats(prefix, stats):
    """Add one cache-stats dict to the obs counters under
    ``<prefix>.<event>`` — shared by the live model and the
    stack-distance / timing-precompute fast paths, so every path feeds
    the observability layer identically."""
    if not obs.enabled:
        return
    for key, value in stats.items():
        obs.counter("%s.%s" % (prefix, key), value)


class CacheGeometry:
    """Size/organization of one cache (the SA-1100 I-cache defaults)."""

    def __init__(self, size_bytes, block_bytes=32, associativity=32):
        if not isinstance(size_bytes, int) or size_bytes <= 0:
            raise ValueError("cache size must be a positive integer, got %r" % (size_bytes,))
        if not isinstance(block_bytes, int) or block_bytes <= 0 or (
            block_bytes & (block_bytes - 1)
        ):
            raise ValueError(
                "block size must be a positive power of two, got %r" % (block_bytes,)
            )
        if not isinstance(associativity, int) or associativity <= 0:
            raise ValueError(
                "associativity must be a positive integer, got %r" % (associativity,)
            )
        if size_bytes % (block_bytes * associativity):
            raise ValueError(
                "size %d not divisible by block*assoc %d"
                % (size_bytes, block_bytes * associativity)
            )
        self.size_bytes = size_bytes
        self.block_bytes = block_bytes
        self.associativity = associativity
        self.num_sets = size_bytes // (block_bytes * associativity)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("set count must be a power of two")
        self.block_shift = block_bytes.bit_length() - 1
        self.set_mask = self.num_sets - 1

    @property
    def num_blocks(self):
        return self.size_bytes // self.block_bytes

    def line_of(self, addr):
        """Line (block) number of a byte address."""
        return addr >> self.block_shift

    def __repr__(self):
        return "<CacheGeometry %dKB %dB-line %d-way (%d sets)>" % (
            self.size_bytes // 1024,
            self.block_bytes,
            self.associativity,
            self.num_sets,
        )


class SetAssociativeCache:
    """LRU set-associative cache over line numbers.

    Tracks accesses, misses and compulsory misses (first touch of a
    line).  ``access_line`` takes a *line number* (byte address already
    shifted by the block size).
    """

    def __init__(self, geometry):
        self.geometry = geometry
        self._sets = [dict() for _ in range(geometry.num_sets)]
        self._clock = 0
        self.accesses = 0
        self.misses = 0
        self.compulsory_misses = 0
        self.evictions = 0
        self._seen = set()

    def access_line(self, line):
        """Access one line; returns True on hit."""
        set_index = line & self.geometry.set_mask
        tag = line >> (self.geometry.num_sets.bit_length() - 1)
        ways = self._sets[set_index]
        self._clock += 1
        self.accesses += 1
        if tag in ways:
            ways[tag] = self._clock
            return True
        self.misses += 1
        if line not in self._seen:
            self._seen.add(line)
            self.compulsory_misses += 1
        if len(ways) >= self.geometry.associativity:
            victim = min(ways, key=ways.get)
            del ways[victim]
            self.evictions += 1
        ways[tag] = self._clock
        return False

    def contains_line(self, line):
        set_index = line & self.geometry.set_mask
        tag = line >> (self.geometry.num_sets.bit_length() - 1)
        return tag in self._sets[set_index]

    @property
    def miss_rate(self):
        return self.misses / self.accesses if self.accesses else 0.0

    def misses_per_million(self, accesses=None):
        """The paper's Figure 13 metric (misses per 1M cache accesses).

        ``accesses`` overrides the denominator when the caller counts
        word-granular requests while the model sees line-granular ones.
        """
        denom = accesses if accesses is not None else self.accesses
        return 1e6 * self.misses / denom if denom else 0.0

    def stats(self):
        """Event counts as a plain dict (fills == misses: every miss
        allocates its line in this write-allocate model)."""
        return {
            "accesses": self.accesses,
            "hits": self.accesses - self.misses,
            "misses": self.misses,
            "fills": self.misses,
            "compulsory_misses": self.compulsory_misses,
            "evictions": self.evictions,
        }

    def publish(self, prefix):
        """Add this cache's event counts to the obs counters under
        ``<prefix>.<event>`` (e.g. ``cache.icache.misses``)."""
        publish_stats(prefix, self.stats())

    def __repr__(self):
        return "<Cache %r acc=%d miss=%d>" % (self.geometry, self.accesses, self.misses)
