"""One-pass multi-geometry LRU analysis (Mattson stack distances).

:class:`~repro.sim.cache.model.SetAssociativeCache` answers "how many
misses?" for *one* geometry per pass over the line trace, so a design
sweep over G cache points costs G full simulations.  This module
computes the exact same event counts for **every** ``(size,
associativity)`` pair sharing a block size in a single pass, using the
classic stack-distance construction (Mattson et al. 1970, extended to
set-associative bit-selection caches by Hill & Smith 1989):

* Maintain the lines in LRU order (an unbounded "stack"; lines are
  never removed, only moved to the top).
* On a reuse of line ``x``, the lines above ``x`` on the stack are
  exactly the distinct lines touched since the previous access to
  ``x``.  For a cache with ``2^k`` sets (bit-selection indexing), the
  ones that *conflict* with ``x`` are those agreeing with ``x`` in the
  low ``k`` bits; with LRU replacement the access hits iff fewer than
  ``associativity`` of them intervened.
* First touches are compulsory misses in every geometry.

One stack walk per access yields the conflict count for every set count
at once — per stack entry ``y`` we histogram the number of trailing
bits in which ``y`` agrees with ``x``; a suffix sum over that histogram
is the conflict count for every ``k``.  Evictions fall out analytically:
occupancy of a set only ever grows, so the fills that do *not* evict are
exactly the first ``min(distinct lines mapping to the set, assoc)``
fills, and ``evictions = misses - Σ_s min(D_s, assoc)``.

Equivalence conditions (all guaranteed by
:class:`~repro.sim.cache.model.CacheGeometry` and asserted bit-identical
against the reference model by ``tests/test_stack.py``): power-of-two
set counts with bit-selection indexing, true LRU replacement, no
invalidations, and a shared block size.

The trace-side helpers are vectorized with numpy (span expansion,
consecutive-duplicate folding, final per-geometry tallies); the stack
walk itself is a tight pure-Python loop whose cost is the reuse depth —
for instruction streams that depth is small, and the pass replaces one
full LRU simulation *per geometry* with a single shared one.
"""

import numpy as np

from repro.obs import core as obs
from repro.sim.cache.model import CacheGeometry


def expand_line_spans(start_lines, end_lines):
    """Flatten inclusive line spans into one line-access sequence.

    ``start_lines[i] .. end_lines[i]`` (inclusive) are the cache lines a
    straight-line run touches in ascending order.  Pure-numpy
    replacement for the nested ``for line in range(a, b + 1)`` loop.
    """
    ls = np.asarray(start_lines, dtype=np.int64)
    le = np.asarray(end_lines, dtype=np.int64)
    lengths = le - ls + 1
    total = int(lengths.sum())
    if total == len(ls):  # every run stays within one line
        return ls.copy()
    starts = np.repeat(ls, lengths)
    # position within each span: global index minus the span's offset
    span_offsets = np.repeat(np.cumsum(lengths) - lengths, lengths)
    return starts + (np.arange(total, dtype=np.int64) - span_offsets)


class StackDistanceProfile:
    """Exact LRU event counts for every profiled ``(size, assoc)`` pair.

    Produced by :func:`profile_lines`; :meth:`stats` answers any
    geometry whose set count and associativity were covered by the
    profiling pass with the same dict
    :meth:`~repro.sim.cache.model.SetAssociativeCache.stats` returns.
    """

    def __init__(self, block_bytes, accesses, distinct_lines, counts_by_k, amax):
        self.block_bytes = block_bytes
        self.accesses = accesses
        self.distinct_lines = distinct_lines  # np.int64, one entry per line
        self._counts = counts_by_k            # k -> np.int64[amax + 1]
        self.amax = amax

    @property
    def compulsory_misses(self):
        return len(self.distinct_lines)

    def covers(self, geometry):
        k = geometry.num_sets.bit_length() - 1
        return (geometry.block_bytes == self.block_bytes
                and k in self._counts
                and geometry.associativity <= self.amax)

    def misses(self, geometry):
        """Exact LRU miss count for one covered geometry."""
        if not self.covers(geometry):
            raise ValueError(
                "geometry %r not covered by this profile (block %d, "
                "set counts %s, assoc <= %d)"
                % (geometry, self.block_bytes,
                   sorted(1 << k for k in self._counts), self.amax)
            )
        row = self._counts[geometry.num_sets.bit_length() - 1]
        conflicts = int(row[geometry.associativity:].sum())
        return self.compulsory_misses + conflicts

    def stats(self, geometry):
        """Event counts for one geometry, bit-identical to the dict a
        :class:`~repro.sim.cache.model.SetAssociativeCache` fed the same
        line sequence would return from ``stats()``."""
        misses = self.misses(geometry)
        # Non-evicting fills: set occupancy only grows, so the first
        # min(D_s, assoc) fills of each set land in free ways and every
        # later fill evicts.
        per_set = np.bincount(
            (self.distinct_lines & (geometry.num_sets - 1)).astype(np.int64),
            minlength=geometry.num_sets,
        )
        free_fills = int(np.minimum(per_set, geometry.associativity).sum())
        return {
            "accesses": self.accesses,
            "hits": self.accesses - misses,
            "misses": misses,
            "fills": misses,
            "compulsory_misses": self.compulsory_misses,
            "evictions": misses - free_fills,
        }

    def __repr__(self):
        return "<StackDistanceProfile %d accesses, %d lines, %dB blocks>" % (
            self.accesses, self.compulsory_misses, self.block_bytes)


def _trailing_agreement(xor, cap):
    """Trailing bits in which two distinct lines agree (capped)."""
    t = (xor & -xor).bit_length() - 1
    return t if t < cap else cap


def profile_lines(lines, geometries):
    """One stack-distance pass answering every geometry at once.

    Args:
        lines: line-number sequence (any int sequence / numpy array).
        geometries: :class:`CacheGeometry` instances sharing one block
            size; their set counts and associativities bound what the
            returned profile can answer.

    Returns:
        :class:`StackDistanceProfile`.
    """
    geometries = list(geometries)
    if not geometries:
        raise ValueError("profile_lines needs at least one geometry")
    block = geometries[0].block_bytes
    for g in geometries:
        if g.block_bytes != block:
            raise ValueError(
                "geometries mix block sizes (%d vs %d): stack-distance "
                "profiles are exact only at a fixed block size"
                % (block, g.block_bytes)
            )
    ks = sorted({g.num_sets.bit_length() - 1 for g in geometries})
    kmax = ks[-1]
    amax = max(g.associativity for g in geometries)

    arr = np.asarray(lines, dtype=np.int64)
    accesses = len(arr)
    if accesses and int(arr.min()) < 0:
        raise ValueError("line numbers must be non-negative")
    # Consecutive repeats of one line hit in every geometry (zero
    # intervening lines) and leave the LRU stack unchanged — fold them
    # out vectorized before the Python walk.
    if accesses > 1:
        keep = np.empty(accesses, dtype=bool)
        keep[0] = True
        np.not_equal(arr[1:], arr[:-1], out=keep[1:])
        folded = accesses - int(keep.sum())
        if folded:
            arr = arr[keep]
    else:
        folded = 0

    # counts[i][c]: accesses whose conflict count at 2^ks[i] sets is c
    # (capped at amax — every queried associativity is <= amax, so the
    # cap never changes a hit/miss verdict).
    rows = [[0] * (amax + 1) for _ in ks]
    nk = len(ks)
    # tmap[t]: how many of the queried ks an entry with trailing
    # agreement t conflicts at (ks is ascending, so they form a prefix)
    tmap = [sum(1 for k in ks if k <= t) for t in range(kmax + 1)]
    cnts = [0] * nk  # reused per-access buffer: cnts[j-1] += 1 means
    #                  "one more entry conflicting at the first j ks"

    stack = []   # LRU stack, top at the end; -1 = tombstone
    pos = {}     # line -> current index in ``stack``
    tombs = 0
    # reuse depths are tiny for loop traces (the common case) but a few
    # accesses walk thousands of entries — those switch to numpy
    _VEC_DEPTH = 48
    with obs.span("cache.stack.pass", accesses=accesses,
                  geometries=len(geometries)):
        for x in arr.tolist():
            p = pos.get(x)
            if p is None:  # first touch: compulsory in every geometry
                pos[x] = len(stack)
                stack.append(x)
                continue
            i = len(stack) - 1
            if i - p <= _VEC_DEPTH:
                while i > p:
                    y = stack[i]
                    if y >= 0:
                        xor = x ^ y
                        t = (xor & -xor).bit_length() - 1
                        j = tmap[t] if t < kmax else nk
                        if j:
                            cnts[j - 1] += 1
                    i -= 1
            else:
                seg = np.asarray(stack[p + 1:], dtype=np.int64)
                seg = seg[seg >= 0]
                if len(seg):
                    xor = seg ^ x
                    t = np.bitwise_count((xor & -xor) - 1)  # trailing zeros
                    np.minimum(t, kmax, out=t, casting="unsafe")
                    jhist = np.bincount(
                        np.take(tmap, t), minlength=nk + 1)
                    for j in range(1, nk + 1):
                        if jhist[j]:
                            cnts[j - 1] += int(jhist[j])
            # suffix-accumulate: conflicts at ks[j] = entries agreeing
            # with x in >= ks[j] trailing bits
            run = 0
            for j in range(nk - 1, -1, -1):
                run += cnts[j]
                cnts[j] = 0
                rows[j][run if run < amax else amax] += 1
            stack[p] = -1
            tombs += 1
            pos[x] = len(stack)
            stack.append(x)
            if tombs > (len(stack) >> 1) and len(stack) > 512:
                stack = [y for y in stack if y >= 0]
                pos = {y: i for i, y in enumerate(stack)}
                tombs = 0

    # folded duplicates are conflict-count-0 accesses in every geometry
    if folded:
        for row in rows:
            row[0] += folded

    distinct = np.fromiter(pos.keys(), dtype=np.int64, count=len(pos))
    counts_by_k = {k: np.asarray(row, dtype=np.int64)
                   for k, row in zip(ks, rows)}
    if obs.enabled:
        obs.counter("cache.stack.passes")
        obs.counter("cache.stack.accesses", accesses)
        obs.counter("cache.stack.folded_repeats", folded)
        obs.counter("cache.stack.distinct_lines", len(pos))
        obs.counter("cache.stack.geometries", len(geometries))
    return StackDistanceProfile(block, accesses, distinct, counts_by_k, amax)


def profile_for_sizes(lines, sizes, associativity=32, block_bytes=32):
    """Convenience wrapper: profile one assoc across many sizes."""
    geoms = [CacheGeometry(size, block_bytes, associativity) for size in sizes]
    return profile_lines(lines, geoms)


# ----------------------------------------------------------------------
# run-length replay: stack distances straight off the columnar trace


#: Transition-memo safety valve: beyond this many distinct
#: ``(recency-state, block)`` pairs the kernel stops caching and just
#: computes each transition directly (still exact, only slower).  Real
#: traces are loop-structured and stay orders of magnitude below this.
_RLE_MEMO_CAP = 1 << 16


def _reuse_walk(stack, pos, lines, tmap, nk, kmax, amax, inc):
    """The reference capture walk of :func:`profile_lines`, applied to a
    reconstructed mini-stack.  Mutates ``stack``/``pos`` exactly like
    the event-path walk (move-to-top with tombstones) and accumulates
    per-geometry conflict-bucket increments into the ``inc`` dict as
    ``{(k_index, bucket): count}``.  First touches push without
    incrementing — compulsory misses are accounted globally from the
    union of executed block footprints."""
    cnts = [0] * nk
    for x in lines:
        p = pos.get(x)
        if p is None:
            pos[x] = len(stack)
            stack.append(x)
            continue
        i = len(stack) - 1
        while i > p:
            y = stack[i]
            if y >= 0:
                xor = x ^ y
                t = (xor & -xor).bit_length() - 1
                j = tmap[t] if t < kmax else nk
                if j:
                    cnts[j - 1] += 1
            i -= 1
        run = 0
        for j in range(nk - 1, -1, -1):
            run += cnts[j]
            cnts[j] = 0
            key = (j, run if run < amax else amax)
            inc[key] = inc.get(key, 0) + 1
        stack[p] = -1
        pos[x] = len(stack)
        stack.append(x)


def profile_spans_rle(line_starts, line_ends, seg_ids, seg_counts,
                      geometries):
    """:func:`profile_lines` over the columnar trace, without expanding.

    Args:
        line_starts / line_ends: per-superblock inclusive line spans —
            row ``b`` of the superblock table touches cache lines
            ``line_starts[b] .. line_ends[b]`` in ascending order on
            every iteration.
        seg_ids / seg_counts: the run-length execution stream.
        geometries: as for :func:`profile_lines`.

    Returns a :class:`StackDistanceProfile` whose :meth:`stats` are
    bit-identical to profiling the expanded per-access line sequence
    (``expand_line_spans`` over the per-run spans) — property-tested in
    ``tests/test_trace_rle.py``.

    Exactness rests on one structural invariant: executing a block
    leaves its span lines on top of the LRU stack in span order, so the
    stack contents after any prefix of the stream are a pure function
    of the distinct-block execution order.  The kernel runs a DFA whose
    states are the interned stack tuples: the first iteration of a
    segment is a pure function of ``(stack, block)`` — memoized as a
    transition carrying the per-geometry increment vector — and
    iterations 2..n of a segment are a fixed per-block increment
    vector computed once and weighted by the iteration count.  Periodic
    regions of the stream (tight multi-block loops) are detected up
    front and folded: one full cycle drives the stack to the cycle's
    fixed point, so cycle 2's transitions stand in for all later
    cycles, bulk-weighted.  Consecutive-duplicate folding (the event
    path folds them before walking) happens exactly at two places:
    one-line blocks repeating (all of iterations 2..n), and a segment
    whose first line equals the previous segment's last line.
    """
    geometries = list(geometries)
    if not geometries:
        raise ValueError("profile_spans_rle needs at least one geometry")
    block = geometries[0].block_bytes
    for g in geometries:
        if g.block_bytes != block:
            raise ValueError(
                "geometries mix block sizes (%d vs %d): stack-distance "
                "profiles are exact only at a fixed block size"
                % (block, g.block_bytes)
            )
    ks = sorted({g.num_sets.bit_length() - 1 for g in geometries})
    kmax = ks[-1]
    amax = max(g.associativity for g in geometries)
    nk = len(ks)
    tmap = [sum(1 for k in ks if k <= t) for t in range(kmax + 1)]

    sl = np.asarray(line_starts, dtype=np.int64)
    el = np.asarray(line_ends, dtype=np.int64)
    sid = np.asarray(seg_ids, dtype=np.int64)
    cnt = np.asarray(seg_counts, dtype=np.int64)
    if len(sl) and int(sl.min()) < 0:
        raise ValueError("line numbers must be non-negative")
    widths = el - sl + 1
    accesses = int(np.dot(widths[sid], cnt)) if len(sid) else 0
    if len(sid):
        used = np.unique(sid)
        distinct = np.unique(expand_line_spans(sl[used], el[used]))
    else:
        distinct = np.zeros(0, dtype=np.int64)

    rows = np.zeros((nk, amax + 1), dtype=np.int64)
    folded = 0

    # DFA over LRU states: a state is the interned full stack content
    # (line tuple, bottom to top) — the complete replacement state, so
    # two histories reaching the same stack share all future
    # transitions.  Transitions are keyed by state_id * n_blocks +
    # block and carry the first-iteration increment vector.
    nblocks = len(sl)
    state_ids = {(): 0}
    state_stacks = [()]
    trans = {}        # state_id * n_blocks + block -> (next, inc, folded1)
    fired = {}        # state_id * n_blocks + block -> times taken
    direct_inc = {}   # applied immediately when the memo cap is hit
    state = 0

    seg_b = sid.tolist()
    n_seg = len(seg_b)

    # Iterations 2..n of a segment contribute a fixed per-block
    # increment vector regardless of where in the stream the segment
    # sits, so their totals are a pure reduction over the run-length
    # stream — no walking involved.
    steady_totals = np.zeros(nblocks, dtype=np.int64)
    if n_seg:
        np.add.at(steady_totals, sid, cnt - 1)

    def step(b):
        """First iteration of one segment of block ``b``; returns the
        transition key (None when the memo cap forced the direct
        path)."""
        nonlocal state, folded
        key = state * nblocks + b
        hit = trans.get(key)
        if hit is None:
            parent = state_stacks[state]
            b_sl = int(sl[b])
            b_el = int(el[b])
            stack = list(parent)
            pos = {l: i for i, l in enumerate(stack)}
            lines = list(range(b_sl, b_el + 1))
            folded1 = 0
            if stack and stack[-1] == b_sl:
                # consecutive duplicate across the segment join — the
                # event path folds it before walking
                folded1 = 1
                lines = lines[1:]
            inc = {}
            _reuse_walk(stack, pos, lines, tmap, nk, kmax, amax, inc)
            # successor stack: span(b) moves to the top in span order;
            # tombstones never persist across transitions
            child = (tuple(x for x in parent if not b_sl <= x <= b_el)
                     + tuple(range(b_sl, b_el + 1)))
            nstate = state_ids.get(child)
            if nstate is None:
                nstate = len(state_stacks)
                state_stacks.append(child)
                state_ids[child] = nstate
            hit = (nstate, inc, folded1)
            if len(trans) < _RLE_MEMO_CAP:
                trans[key] = hit
            else:
                folded += folded1
                for jb, c in inc.items():
                    direct_inc[jb] = direct_inc.get(jb, 0) + c
                state = nstate
                return None
        state = hit[0]
        fired[key] = fired.get(key, 0) + 1
        return key

    # Chunked walk: the DFA chain revisits the same short block
    # sequences constantly (loop bodies re-entered from the same
    # state), so aligned CH-segment windows are memoized whole by
    # ``(entry state, raw chunk bytes)``.  A chunk hit replaces CH
    # dict-per-segment steps with one lookup; its per-transition fired
    # bumps are tallied once per distinct chunk at the end.  Chunks
    # containing a direct-path (memo-cap overflow) step are never
    # cached — they re-step, which stays exact.
    _CH = 8
    _MISS = object()
    cell = np.int16 if nblocks <= 0x7FFF else np.int64
    raw = sid.astype(cell).tobytes()
    isz = np.dtype(cell).itemsize
    chunks = {}   # (state, chunk bytes) -> (end state, fired keys) | None
    occ = {}      # chunk key -> hits beyond the first walk

    with obs.span("cache.stack.rle_pass", segments=len(sid),
                  geometries=len(geometries)):
        i = 0
        main_end = n_seg - (n_seg % _CH)
        while i < main_end:
            ck = (state, raw[i * isz:(i + _CH) * isz])
            hit = chunks.get(ck, _MISS)
            if hit is not None and hit is not _MISS:
                state = hit[0]
                occ[ck] = occ.get(ck, 0) + 1
                i += _CH
                continue
            keys = [step(b) for b in seg_b[i:i + _CH]]
            if hit is _MISS:
                chunks[ck] = ((state, tuple(keys))
                              if None not in keys else None)
            i += _CH
        for b in seg_b[main_end:]:
            step(b)
    for ck, times in occ.items():
        for key in chunks[ck][1]:
            fired[key] = fired.get(key, 0) + times

    # fold in the memoized first-iteration increments, weighted
    for key, times in fired.items():
        _nstate, inc, folded1 = trans[key]
        folded += folded1 * times
        for (j, bucket), c in inc.items():
            rows[j][bucket] += c * times
    for (j, bucket), c in direct_inc.items():
        rows[j][bucket] += c

    # iterations 2..n of every segment: the stack top is exactly the
    # block's own span, so the per-iteration increments are a fixed
    # function of the block — computed once, weighted by the totals
    for b in np.flatnonzero(steady_totals).tolist():
        total = int(steady_totals[b])
        b_sl = int(sl[b])
        b_el = int(el[b])
        if b_el == b_sl:
            # one-line block: every extra iteration is a consecutive
            # duplicate, folded by the event path
            folded += total
            continue
        lines = list(range(b_sl, b_el + 1))
        stack = list(lines)
        pos = {l: i for i, l in enumerate(stack)}
        inc = {}
        _reuse_walk(stack, pos, lines, tmap, nk, kmax, amax, inc)
        for (j, bucket), c in inc.items():
            rows[j][bucket] += c * total

    # folded duplicates are conflict-count-0 accesses in every geometry
    if folded:
        rows[:, 0] += folded

    counts_by_k = {k: rows[j].copy() for j, k in enumerate(ks)}
    if obs.enabled:
        obs.counter("cache.stack.rle_passes")
        obs.counter("cache.stack.rle_segments", len(sid))
        obs.counter("cache.stack.rle_states", len(state_stacks))
        obs.counter("cache.stack.rle_transitions", len(trans))
        obs.counter("cache.stack.accesses", accesses)
        obs.counter("cache.stack.folded_repeats", folded)
        obs.counter("cache.stack.distinct_lines", len(distinct))
        obs.counter("cache.stack.geometries", len(geometries))
    return StackDistanceProfile(block, accesses, distinct, counts_by_k, amax)
