"""One-pass multi-geometry LRU analysis (Mattson stack distances).

:class:`~repro.sim.cache.model.SetAssociativeCache` answers "how many
misses?" for *one* geometry per pass over the line trace, so a design
sweep over G cache points costs G full simulations.  This module
computes the exact same event counts for **every** ``(size,
associativity)`` pair sharing a block size in a single pass, using the
classic stack-distance construction (Mattson et al. 1970, extended to
set-associative bit-selection caches by Hill & Smith 1989):

* Maintain the lines in LRU order (an unbounded "stack"; lines are
  never removed, only moved to the top).
* On a reuse of line ``x``, the lines above ``x`` on the stack are
  exactly the distinct lines touched since the previous access to
  ``x``.  For a cache with ``2^k`` sets (bit-selection indexing), the
  ones that *conflict* with ``x`` are those agreeing with ``x`` in the
  low ``k`` bits; with LRU replacement the access hits iff fewer than
  ``associativity`` of them intervened.
* First touches are compulsory misses in every geometry.

One stack walk per access yields the conflict count for every set count
at once — per stack entry ``y`` we histogram the number of trailing
bits in which ``y`` agrees with ``x``; a suffix sum over that histogram
is the conflict count for every ``k``.  Evictions fall out analytically:
occupancy of a set only ever grows, so the fills that do *not* evict are
exactly the first ``min(distinct lines mapping to the set, assoc)``
fills, and ``evictions = misses - Σ_s min(D_s, assoc)``.

Equivalence conditions (all guaranteed by
:class:`~repro.sim.cache.model.CacheGeometry` and asserted bit-identical
against the reference model by ``tests/test_stack.py``): power-of-two
set counts with bit-selection indexing, true LRU replacement, no
invalidations, and a shared block size.

The trace-side helpers are vectorized with numpy (span expansion,
consecutive-duplicate folding, final per-geometry tallies); the stack
walk itself is a tight pure-Python loop whose cost is the reuse depth —
for instruction streams that depth is small, and the pass replaces one
full LRU simulation *per geometry* with a single shared one.
"""

import numpy as np

from repro.obs import core as obs
from repro.sim.cache.model import CacheGeometry


def expand_line_spans(start_lines, end_lines):
    """Flatten inclusive line spans into one line-access sequence.

    ``start_lines[i] .. end_lines[i]`` (inclusive) are the cache lines a
    straight-line run touches in ascending order.  Pure-numpy
    replacement for the nested ``for line in range(a, b + 1)`` loop.
    """
    ls = np.asarray(start_lines, dtype=np.int64)
    le = np.asarray(end_lines, dtype=np.int64)
    lengths = le - ls + 1
    total = int(lengths.sum())
    if total == len(ls):  # every run stays within one line
        return ls.copy()
    starts = np.repeat(ls, lengths)
    # position within each span: global index minus the span's offset
    span_offsets = np.repeat(np.cumsum(lengths) - lengths, lengths)
    return starts + (np.arange(total, dtype=np.int64) - span_offsets)


class StackDistanceProfile:
    """Exact LRU event counts for every profiled ``(size, assoc)`` pair.

    Produced by :func:`profile_lines`; :meth:`stats` answers any
    geometry whose set count and associativity were covered by the
    profiling pass with the same dict
    :meth:`~repro.sim.cache.model.SetAssociativeCache.stats` returns.
    """

    def __init__(self, block_bytes, accesses, distinct_lines, counts_by_k, amax):
        self.block_bytes = block_bytes
        self.accesses = accesses
        self.distinct_lines = distinct_lines  # np.int64, one entry per line
        self._counts = counts_by_k            # k -> np.int64[amax + 1]
        self.amax = amax

    @property
    def compulsory_misses(self):
        return len(self.distinct_lines)

    def covers(self, geometry):
        k = geometry.num_sets.bit_length() - 1
        return (geometry.block_bytes == self.block_bytes
                and k in self._counts
                and geometry.associativity <= self.amax)

    def misses(self, geometry):
        """Exact LRU miss count for one covered geometry."""
        if not self.covers(geometry):
            raise ValueError(
                "geometry %r not covered by this profile (block %d, "
                "set counts %s, assoc <= %d)"
                % (geometry, self.block_bytes,
                   sorted(1 << k for k in self._counts), self.amax)
            )
        row = self._counts[geometry.num_sets.bit_length() - 1]
        conflicts = int(row[geometry.associativity:].sum())
        return self.compulsory_misses + conflicts

    def stats(self, geometry):
        """Event counts for one geometry, bit-identical to the dict a
        :class:`~repro.sim.cache.model.SetAssociativeCache` fed the same
        line sequence would return from ``stats()``."""
        misses = self.misses(geometry)
        # Non-evicting fills: set occupancy only grows, so the first
        # min(D_s, assoc) fills of each set land in free ways and every
        # later fill evicts.
        per_set = np.bincount(
            (self.distinct_lines & (geometry.num_sets - 1)).astype(np.int64),
            minlength=geometry.num_sets,
        )
        free_fills = int(np.minimum(per_set, geometry.associativity).sum())
        return {
            "accesses": self.accesses,
            "hits": self.accesses - misses,
            "misses": misses,
            "fills": misses,
            "compulsory_misses": self.compulsory_misses,
            "evictions": misses - free_fills,
        }

    def __repr__(self):
        return "<StackDistanceProfile %d accesses, %d lines, %dB blocks>" % (
            self.accesses, self.compulsory_misses, self.block_bytes)


def _trailing_agreement(xor, cap):
    """Trailing bits in which two distinct lines agree (capped)."""
    t = (xor & -xor).bit_length() - 1
    return t if t < cap else cap


def profile_lines(lines, geometries):
    """One stack-distance pass answering every geometry at once.

    Args:
        lines: line-number sequence (any int sequence / numpy array).
        geometries: :class:`CacheGeometry` instances sharing one block
            size; their set counts and associativities bound what the
            returned profile can answer.

    Returns:
        :class:`StackDistanceProfile`.
    """
    geometries = list(geometries)
    if not geometries:
        raise ValueError("profile_lines needs at least one geometry")
    block = geometries[0].block_bytes
    for g in geometries:
        if g.block_bytes != block:
            raise ValueError(
                "geometries mix block sizes (%d vs %d): stack-distance "
                "profiles are exact only at a fixed block size"
                % (block, g.block_bytes)
            )
    ks = sorted({g.num_sets.bit_length() - 1 for g in geometries})
    kmax = ks[-1]
    amax = max(g.associativity for g in geometries)

    arr = np.asarray(lines, dtype=np.int64)
    accesses = len(arr)
    if accesses and int(arr.min()) < 0:
        raise ValueError("line numbers must be non-negative")
    # Consecutive repeats of one line hit in every geometry (zero
    # intervening lines) and leave the LRU stack unchanged — fold them
    # out vectorized before the Python walk.
    if accesses > 1:
        keep = np.empty(accesses, dtype=bool)
        keep[0] = True
        np.not_equal(arr[1:], arr[:-1], out=keep[1:])
        folded = accesses - int(keep.sum())
        if folded:
            arr = arr[keep]
    else:
        folded = 0

    # counts[i][c]: accesses whose conflict count at 2^ks[i] sets is c
    # (capped at amax — every queried associativity is <= amax, so the
    # cap never changes a hit/miss verdict).
    rows = [[0] * (amax + 1) for _ in ks]
    nk = len(ks)
    # tmap[t]: how many of the queried ks an entry with trailing
    # agreement t conflicts at (ks is ascending, so they form a prefix)
    tmap = [sum(1 for k in ks if k <= t) for t in range(kmax + 1)]
    cnts = [0] * nk  # reused per-access buffer: cnts[j-1] += 1 means
    #                  "one more entry conflicting at the first j ks"

    stack = []   # LRU stack, top at the end; -1 = tombstone
    pos = {}     # line -> current index in ``stack``
    tombs = 0
    # reuse depths are tiny for loop traces (the common case) but a few
    # accesses walk thousands of entries — those switch to numpy
    _VEC_DEPTH = 48
    with obs.span("cache.stack.pass", accesses=accesses,
                  geometries=len(geometries)):
        for x in arr.tolist():
            p = pos.get(x)
            if p is None:  # first touch: compulsory in every geometry
                pos[x] = len(stack)
                stack.append(x)
                continue
            i = len(stack) - 1
            if i - p <= _VEC_DEPTH:
                while i > p:
                    y = stack[i]
                    if y >= 0:
                        xor = x ^ y
                        t = (xor & -xor).bit_length() - 1
                        j = tmap[t] if t < kmax else nk
                        if j:
                            cnts[j - 1] += 1
                    i -= 1
            else:
                seg = np.asarray(stack[p + 1:], dtype=np.int64)
                seg = seg[seg >= 0]
                if len(seg):
                    xor = seg ^ x
                    t = np.bitwise_count((xor & -xor) - 1)  # trailing zeros
                    np.minimum(t, kmax, out=t, casting="unsafe")
                    jhist = np.bincount(
                        np.take(tmap, t), minlength=nk + 1)
                    for j in range(1, nk + 1):
                        if jhist[j]:
                            cnts[j - 1] += int(jhist[j])
            # suffix-accumulate: conflicts at ks[j] = entries agreeing
            # with x in >= ks[j] trailing bits
            run = 0
            for j in range(nk - 1, -1, -1):
                run += cnts[j]
                cnts[j] = 0
                rows[j][run if run < amax else amax] += 1
            stack[p] = -1
            tombs += 1
            pos[x] = len(stack)
            stack.append(x)
            if tombs > (len(stack) >> 1) and len(stack) > 512:
                stack = [y for y in stack if y >= 0]
                pos = {y: i for i, y in enumerate(stack)}
                tombs = 0

    # folded duplicates are conflict-count-0 accesses in every geometry
    if folded:
        for row in rows:
            row[0] += folded

    distinct = np.fromiter(pos.keys(), dtype=np.int64, count=len(pos))
    counts_by_k = {k: np.asarray(row, dtype=np.int64)
                   for k, row in zip(ks, rows)}
    if obs.enabled:
        obs.counter("cache.stack.passes")
        obs.counter("cache.stack.accesses", accesses)
        obs.counter("cache.stack.folded_repeats", folded)
        obs.counter("cache.stack.distinct_lines", len(pos))
        obs.counter("cache.stack.geometries", len(geometries))
    return StackDistanceProfile(block, accesses, distinct, counts_by_k, amax)


def profile_for_sizes(lines, sizes, associativity=32, block_bytes=32):
    """Convenience wrapper: profile one assoc across many sizes."""
    geoms = [CacheGeometry(size, block_bytes, associativity) for size in sizes]
    return profile_lines(lines, geoms)
