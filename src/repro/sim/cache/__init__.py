"""Cache models (set-associative, LRU) and their statistics."""

from repro.sim.cache.model import CacheGeometry, SetAssociativeCache

__all__ = ["CacheGeometry", "SetAssociativeCache"]
