"""Cache models (set-associative, LRU) and their statistics.

:class:`SetAssociativeCache` is the reference model (one geometry per
pass); :mod:`repro.sim.cache.stack` computes the same event counts for
every ``(size, associativity)`` pair sharing a block size in one pass.
"""

from repro.sim.cache.model import CacheGeometry, SetAssociativeCache, publish_stats
from repro.sim.cache.stack import (
    StackDistanceProfile,
    expand_line_spans,
    profile_lines,
)

__all__ = [
    "CacheGeometry",
    "SetAssociativeCache",
    "StackDistanceProfile",
    "expand_line_spans",
    "profile_lines",
    "publish_stats",
]
