"""Dual-issue in-order timing model (SA-1100-like core)."""

from repro.sim.pipeline.timing import TimingConfig, TimingReport, simulate_timing

__all__ = ["TimingConfig", "TimingReport", "simulate_timing"]
