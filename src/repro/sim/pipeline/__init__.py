"""Dual-issue in-order timing model (SA-1100-like core)."""

from repro.sim.pipeline.timing import (
    TimingBatch,
    TimingConfig,
    TimingPrecomp,
    TimingReport,
    precompute_timing,
    simulate_timing,
    simulate_timing_multi,
)

__all__ = [
    "TimingBatch",
    "TimingConfig",
    "TimingPrecomp",
    "TimingReport",
    "precompute_timing",
    "simulate_timing",
    "simulate_timing_multi",
]
