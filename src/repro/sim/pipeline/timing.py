"""Trace-driven timing model of the dual-issue in-order core.

The functional simulators emit run-compressed traces (straight-line
stretches between taken control transfers).  Timing is computed as:

* **base issue cycles** per distinct run, from a dual-issue scoreboard
  walk (RAW dependencies incl. a flags pseudo-register, one memory port,
  one multiplier, load-use and multiply result latencies, multi-cycle
  load/store-multiple) — memoized, since the dynamic trace repeats a
  small set of runs;
* **control-flow penalties** from a backward-taken/forward-not-taken
  static predictor (taken-branch redirect bubble, mispredict penalty,
  indirect-return penalty);
* **cache penalties** from line-granular I-cache simulation over each
  run's address span and per-access D-cache simulation of the memory
  trace.

The same walk produces what the power model needs: fetch-word request
counts and Hamming toggles on the instruction bus (real encodings).
"""

import numpy as np

from repro.obs import core as obs
from repro.sim.cache.model import CacheGeometry, SetAssociativeCache
from repro.sim.pipeline.meta import arm_meta, fits_meta, thumb_meta, FLAGS


class TimingConfig:
    """Core and memory-system parameters (SA-1100-like defaults)."""

    def __init__(
        self,
        issue_width=2,
        icache_miss_penalty=24,
        dcache_miss_penalty=24,
        mispredict_penalty=2,
        taken_redirect_penalty=1,
        indirect_penalty=1,
        frequency_hz=200e6,
        icache_block=32,
        icache_assoc=32,
        dcache_bytes=8 * 1024,
        dcache_block=32,
        dcache_assoc=32,
    ):
        self.issue_width = issue_width
        self.icache_miss_penalty = icache_miss_penalty
        self.dcache_miss_penalty = dcache_miss_penalty
        self.mispredict_penalty = mispredict_penalty
        self.taken_redirect_penalty = taken_redirect_penalty
        self.indirect_penalty = indirect_penalty
        self.frequency_hz = frequency_hz
        self.icache_block = icache_block
        self.icache_assoc = icache_assoc
        self.dcache_bytes = dcache_bytes
        self.dcache_block = dcache_block
        self.dcache_assoc = dcache_assoc

    def icache_geometry(self, size_bytes):
        return CacheGeometry(size_bytes, self.icache_block, self.icache_assoc)

    def dcache_geometry(self):
        return CacheGeometry(self.dcache_bytes, self.dcache_block, self.dcache_assoc)


class TimingReport:
    """Everything the experiments read out of one timing simulation."""

    def __init__(self, **kw):
        self.__dict__.update(kw)

    @property
    def ipc(self):
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def seconds(self):
        return self.cycles / self.frequency_hz

    @property
    def icache_misses_per_million(self):
        if not self.icache_requests:
            return 0.0
        return 1e6 * self.icache_misses / self.icache_requests

    def __repr__(self):
        return (
            "<TimingReport %d instrs, %d cycles, IPC %.3f, I$ %d/%d miss, D$ %d/%d miss>"
            % (
                self.instructions,
                self.cycles,
                self.ipc,
                self.icache_misses,
                self.icache_requests,
                self.dcache_misses,
                self.dcache_accesses,
            )
        )


def metadata_for(image):
    """Pick the metadata adapter matching the image's ISA."""
    from repro.core.translator import FitsImage
    from repro.compiler.thumb_backend import ThumbImage

    if isinstance(image, FitsImage):
        return fits_meta(image)
    if isinstance(image, ThumbImage):
        return thumb_meta(image)
    return arm_meta(image)


def _popcount_u32(values):
    """Vectorized popcount over a uint32 array."""
    return np.unpackbits(values.astype("<u4").view(np.uint8)).reshape(len(values), 32).sum(axis=1) \
        if len(values) else np.zeros(0, dtype=np.int64)


class _FetchGeometry:
    """Word-granular view of an image's code stream for fetch accounting."""

    def __init__(self, image):
        if hasattr(image, "halfwords"):
            halves = np.asarray(image.halfwords, dtype=np.uint32)
            if len(halves) % 2:
                halves = np.append(halves, np.uint32(0))
            self.words = (halves[0::2] | (halves[1::2] << np.uint32(16))).astype(np.uint32)
            self.instr_bytes = 2
        else:
            self.words = np.asarray(image.words, dtype=np.uint32)
            self.instr_bytes = 4
        self.code_base = image.code_base
        # toggle prefix: toggles[j] = popcount(words[j] ^ words[j-1])
        if len(self.words) > 1:
            xors = self.words[1:] ^ self.words[:-1]
            toggles = _popcount_u32(xors)
        else:
            toggles = np.zeros(0, dtype=np.int64)
        self.toggle_prefix = np.concatenate([[0, 0], np.cumsum(toggles)])
        self.max_word_toggles = int(toggles.max()) if len(toggles) else 0

    def word_index(self, instr_index):
        return (instr_index * self.instr_bytes) // 4

    def byte_addr(self, instr_index):
        return self.code_base + instr_index * self.instr_bytes

    def internal_toggles(self, ws, we):
        """Toggles between consecutive words fetched within one run."""
        return self.toggle_prefix[we + 1] - self.toggle_prefix[ws + 1]


def _run_cycles(start, end, meta, issue_width):
    """Base issue cycles for one straight-line run (no cache effects)."""
    cycle = 0
    ready = {}
    i = start
    while i <= end:
        m = meta[i]
        # operand stalls
        for r in m.reads:
            t = ready.get(r, 0)
            if t > cycle:
                cycle = t
        issued = 1
        for w in m.writes:
            ready[w] = cycle + m.latency
        if (
            issue_width >= 2
            and i < end
            and not m.is_control
            and m.extra_cycles == 0
        ):
            n = meta[i + 1]
            dual = True
            if n.extra_cycles:
                dual = False
            elif m.is_mem and n.is_mem:
                dual = False  # one memory port
            elif m.is_mul and n.is_mul:
                dual = False  # one multiplier
            else:
                writes = set(m.writes)
                if writes.intersection(n.reads) or writes.intersection(n.writes):
                    dual = False
                else:
                    for r in n.reads:
                        if ready.get(r, 0) > cycle:
                            dual = False
                            break
            if dual:
                for w in n.writes:
                    ready[w] = cycle + n.latency
                issued = 2
        cycle += 1 + m.extra_cycles
        i += issued
    return cycle


def simulate_timing(result, icache_bytes, config=None, meta=None):
    """Simulate timing + fetch activity for one execution trace.

    Args:
        result: :class:`~repro.sim.functional.trace.ExecutionResult`.
        icache_bytes: instruction-cache size for this configuration.
        config: :class:`TimingConfig`.
        meta: precomputed instruction metadata (else derived).

    Returns:
        :class:`TimingReport`.
    """
    with obs.span("stage.simulate", phase="timing",
                  image=getattr(result.image, "name", "?"),
                  icache_bytes=icache_bytes):
        return _simulate_timing(result, icache_bytes, config, meta)


def _simulate_timing(result, icache_bytes, config=None, meta=None):
    config = config or TimingConfig()
    image = result.image
    if meta is None:
        meta = metadata_for(image)
    fetch = _FetchGeometry(image)

    starts = result.run_starts
    ends = result.run_ends
    n_static = len(meta)
    keys = starts * n_static + ends
    uniq, inverse, counts = np.unique(keys, return_inverse=True, return_counts=True)
    u_start = (uniq // n_static).astype(np.int64)
    u_end = (uniq % n_static).astype(np.int64)

    # --- per-unique-run quantities -------------------------------------
    base_cycles = np.empty(len(uniq), dtype=np.int64)
    end_penalty = np.empty(len(uniq), dtype=np.int64)
    for k in range(len(uniq)):
        s, e = int(u_start[k]), int(u_end[k])
        base_cycles[k] = _run_cycles(s, e, meta, config.issue_width)
        m = meta[e]
        if m.is_cond_branch:
            end_penalty[k] = (
                config.taken_redirect_penalty if m.is_backward else config.mispredict_penalty
            )
        elif m.is_control:
            # unconditional branch / call: redirect bubble; returns and
            # pc-loads: indirect penalty
            end_penalty[k] = config.indirect_penalty
        else:
            end_penalty[k] = 0

    u_ws = np.array([fetch.word_index(int(s)) for s in u_start], dtype=np.int64)
    u_we = np.array([fetch.word_index(int(e)) for e in u_end], dtype=np.int64)
    u_requests = u_we - u_ws + 1
    u_toggles = np.array(
        [fetch.internal_toggles(int(ws), int(we)) for ws, we in zip(u_ws, u_we)],
        dtype=np.int64,
    )

    total_base = int(np.dot(base_cycles, counts))
    total_taken_penalty = int(np.dot(end_penalty, counts))
    icache_requests = int(np.dot(u_requests, counts))
    fetch_toggles = int(np.dot(u_toggles, counts))

    # --- boundary toggles (between the last word of run k and the first
    # word of run k+1) ---------------------------------------------------
    ws_seq = u_ws[inverse]
    we_seq = u_we[inverse]
    if len(ws_seq) > 1:
        xors = fetch.words[we_seq[:-1]] ^ fetch.words[ws_seq[1:]]
        boundary = _popcount_u32(xors)
        fetch_toggles += int(boundary.sum())
        max_boundary = int(boundary.max())
    else:
        max_boundary = 0

    # --- not-taken penalties (backward not-taken mispredicts) -----------
    exec_counts = result.exec_counts()
    taken_counts = result.taken_counts()
    nt_penalty = 0
    for i, m in enumerate(meta):
        if m.is_cond_branch:
            not_taken = int(exec_counts[i]) - int(taken_counts[i])
            if not_taken > 0:
                if m.is_backward:
                    nt_penalty += not_taken * config.mispredict_penalty
    total_nt_penalty = nt_penalty

    # --- I-cache line simulation (order matters) -------------------------
    shift = config.icache_block.bit_length() - 1
    instr_per_line = config.icache_block // fetch.instr_bytes
    ls_seq = ((starts * fetch.instr_bytes + fetch.code_base) >> shift).astype(np.int64)
    le_seq = ((ends * fetch.instr_bytes + fetch.code_base) >> shift).astype(np.int64)
    icache = SetAssociativeCache(config.icache_geometry(icache_bytes))
    access = icache.access_line
    for a, b in zip(ls_seq.tolist(), le_seq.tolist()):
        if a == b:
            access(a)
        else:
            for line in range(a, b + 1):
                access(line)

    # --- D-cache ---------------------------------------------------------
    dcache = SetAssociativeCache(config.dcache_geometry())
    daccess = dcache.access_line
    dshift = config.dcache_block.bit_length() - 1
    for line in (result.mem_addrs >> np.uint32(dshift)).tolist():
        daccess(line)

    cycles = (
        total_base
        + total_taken_penalty
        + total_nt_penalty
        + icache.misses * config.icache_miss_penalty
        + dcache.misses * config.dcache_miss_penalty
    )
    instructions = result.dynamic_instructions

    if obs.enabled:
        icache.publish("cache.icache")
        dcache.publish("cache.dcache")
        obs.counter("timing.simulations")
        obs.counter("timing.unique_runs", len(uniq))
        obs.counter("timing.cycles", int(cycles))
        obs.observe("timing.runs_per_simulation", len(starts))

    return TimingReport(
        image=image,
        config=config,
        icache_bytes=icache_bytes,
        instructions=instructions,
        cycles=int(cycles),
        base_cycles=total_base,
        frequency_hz=config.frequency_hz,
        icache_requests=icache_requests,
        icache_line_accesses=icache.accesses,
        icache_misses=icache.misses,
        icache_compulsory=icache.compulsory_misses,
        dcache_accesses=dcache.accesses,
        dcache_misses=dcache.misses,
        fetch_toggles=fetch_toggles,
        max_fetch_toggles=max(fetch.max_word_toggles, max_boundary),
        taken_transfers=int(len(starts)),
        fetch_word_bits=32,
        max_words_per_cycle=max(1, (config.issue_width * fetch.instr_bytes) // 4),
        instr_bytes=fetch.instr_bytes,
        code_lines=(len(fetch.words) * 4 + config.icache_block - 1) // config.icache_block,
    )
