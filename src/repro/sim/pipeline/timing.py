"""Trace-driven timing model of the dual-issue in-order core.

The functional simulators emit run-compressed traces (straight-line
stretches between taken control transfers).  Timing is computed as:

* **base issue cycles** per distinct run, from a dual-issue scoreboard
  walk (RAW dependencies incl. a flags pseudo-register, one memory port,
  one multiplier, load-use and multiply result latencies, multi-cycle
  load/store-multiple) — memoized, since the dynamic trace repeats a
  small set of runs;
* **control-flow penalties** from a backward-taken/forward-not-taken
  static predictor (taken-branch redirect bubble, mispredict penalty,
  indirect-return penalty);
* **cache penalties** from line-granular I-cache simulation over each
  run's address span and per-access D-cache simulation of the memory
  trace.

The same walk produces what the power model needs: fetch-word request
counts and Hamming toggles on the instruction bus (real encodings).
"""

import os

import numpy as np

from repro.obs import core as obs
from repro.sim.cache.model import CacheGeometry, SetAssociativeCache, publish_stats
from repro.sim.cache.stack import (
    expand_line_spans,
    profile_lines,
    profile_spans_rle,
)
from repro.sim.pipeline.meta import arm_meta, fits_meta, thumb_meta, FLAGS


def replay_mode(env=None):
    """Which trace view the replay passes consume.

    ``rle`` (the default) folds per-superblock precomputation weighted
    by iteration counts — the columnar fast path.  ``event`` expands the
    flat per-boundary stream and walks it — the pre-columnar reference,
    kept as the exactness fallback and for the verify gate's
    bit-identity comparison.  Controlled by ``REPRO_TRACE_REPLAY``.
    """
    env = os.environ if env is None else env
    mode = (env.get("REPRO_TRACE_REPLAY") or "rle").strip().lower()
    if mode in ("", "default"):
        mode = "rle"
    if mode not in ("rle", "event"):
        raise ValueError(
            "REPRO_TRACE_REPLAY must be 'rle' or 'event', got %r" % mode
        )
    return mode


class TimingConfig:
    """Core and memory-system parameters (SA-1100-like defaults)."""

    def __init__(
        self,
        issue_width=2,
        icache_miss_penalty=24,
        dcache_miss_penalty=24,
        mispredict_penalty=2,
        taken_redirect_penalty=1,
        indirect_penalty=1,
        frequency_hz=200e6,
        icache_block=32,
        icache_assoc=32,
        dcache_bytes=8 * 1024,
        dcache_block=32,
        dcache_assoc=32,
    ):
        self.issue_width = issue_width
        self.icache_miss_penalty = icache_miss_penalty
        self.dcache_miss_penalty = dcache_miss_penalty
        self.mispredict_penalty = mispredict_penalty
        self.taken_redirect_penalty = taken_redirect_penalty
        self.indirect_penalty = indirect_penalty
        self.frequency_hz = frequency_hz
        self.icache_block = icache_block
        self.icache_assoc = icache_assoc
        self.dcache_bytes = dcache_bytes
        self.dcache_block = dcache_block
        self.dcache_assoc = dcache_assoc

    def icache_geometry(self, size_bytes):
        return CacheGeometry(size_bytes, self.icache_block, self.icache_assoc)

    def dcache_geometry(self):
        return CacheGeometry(self.dcache_bytes, self.dcache_block, self.dcache_assoc)


class TimingReport:
    """Everything the experiments read out of one timing simulation."""

    def __init__(self, **kw):
        self.__dict__.update(kw)

    @property
    def ipc(self):
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def seconds(self):
        return self.cycles / self.frequency_hz

    @property
    def icache_misses_per_million(self):
        if not self.icache_requests:
            return 0.0
        return 1e6 * self.icache_misses / self.icache_requests

    def __repr__(self):
        return (
            "<TimingReport %d instrs, %d cycles, IPC %.3f, I$ %d/%d miss, D$ %d/%d miss>"
            % (
                self.instructions,
                self.cycles,
                self.ipc,
                self.icache_misses,
                self.icache_requests,
                self.dcache_misses,
                self.dcache_accesses,
            )
        )


def metadata_for(image):
    """Pick the metadata adapter matching the image's ISA.

    Memoized on the image: the metadata is a pure function of the
    (immutable) instruction stream, and one image is timed many times —
    the harness's two cache sizes, every budget of a FITS flow, every
    store-hit sweep of a DSE worker.
    """
    meta = getattr(image, "_timing_meta", None)
    if meta is None:
        from repro.core.translator import FitsImage
        from repro.compiler.thumb_backend import ThumbImage

        if isinstance(image, FitsImage):
            meta = fits_meta(image)
        elif isinstance(image, ThumbImage):
            meta = thumb_meta(image)
        else:
            meta = arm_meta(image)
        try:
            image._timing_meta = meta
        except AttributeError:
            pass
    return meta


def _popcount_u32(values):
    """Vectorized popcount over a uint32 array."""
    return np.unpackbits(values.astype("<u4").view(np.uint8)).reshape(len(values), 32).sum(axis=1) \
        if len(values) else np.zeros(0, dtype=np.int64)


class _FetchGeometry:
    """Word-granular view of an image's code stream for fetch accounting."""

    def __init__(self, image):
        if hasattr(image, "halfwords"):
            halves = np.asarray(image.halfwords, dtype=np.uint32)
            if len(halves) % 2:
                halves = np.append(halves, np.uint32(0))
            self.words = (halves[0::2] | (halves[1::2] << np.uint32(16))).astype(np.uint32)
            self.instr_bytes = 2
        else:
            self.words = np.asarray(image.words, dtype=np.uint32)
            self.instr_bytes = 4
        self.code_base = image.code_base
        # toggle prefix: toggles[j] = popcount(words[j] ^ words[j-1])
        if len(self.words) > 1:
            xors = self.words[1:] ^ self.words[:-1]
            toggles = _popcount_u32(xors)
        else:
            toggles = np.zeros(0, dtype=np.int64)
        self.toggle_prefix = np.concatenate([[0, 0], np.cumsum(toggles)])
        self.max_word_toggles = int(toggles.max()) if len(toggles) else 0

    def word_index(self, instr_index):
        return (instr_index * self.instr_bytes) // 4

    def byte_addr(self, instr_index):
        return self.code_base + instr_index * self.instr_bytes

    def internal_toggles(self, ws, we):
        """Toggles between consecutive words fetched within one run."""
        return self.toggle_prefix[we + 1] - self.toggle_prefix[ws + 1]


def _run_cycles(start, end, meta, issue_width):
    """Base issue cycles for one straight-line run (no cache effects)."""
    cycle = 0
    ready = {}
    i = start
    while i <= end:
        m = meta[i]
        # operand stalls
        for r in m.reads:
            t = ready.get(r, 0)
            if t > cycle:
                cycle = t
        issued = 1
        for w in m.writes:
            ready[w] = cycle + m.latency
        if (
            issue_width >= 2
            and i < end
            and not m.is_control
            and m.extra_cycles == 0
        ):
            n = meta[i + 1]
            dual = True
            if n.extra_cycles:
                dual = False
            elif m.is_mem and n.is_mem:
                dual = False  # one memory port
            elif m.is_mul and n.is_mul:
                dual = False  # one multiplier
            else:
                writes = set(m.writes)
                if writes.intersection(n.reads) or writes.intersection(n.writes):
                    dual = False
                else:
                    for r in n.reads:
                        if ready.get(r, 0) > cycle:
                            dual = False
                            break
            if dual:
                for w in n.writes:
                    ready[w] = cycle + n.latency
                issued = 2
        cycle += 1 + m.extra_cycles
        i += issued
    return cycle


def _core_signature(config):
    """The :class:`TimingConfig` axes the geometry-invariant phase
    depends on.  I-cache size/assoc/block and the miss penalties are
    applied at report assembly, and frequency only scales seconds —
    everything listed here changes base issue cycles, control-flow
    penalties, or the D-cache simulation."""
    return (config.issue_width, config.mispredict_penalty,
            config.taken_redirect_penalty, config.indirect_penalty,
            config.dcache_bytes, config.dcache_block, config.dcache_assoc)


class TimingPrecomp:
    """Geometry-invariant phase of one timing simulation.

    Everything :func:`simulate_timing` derives that does not depend on
    the I-cache geometry: instruction metadata, the fetch-word view,
    per-unique-run base cycles and end-of-run penalties, fetch
    request/toggle totals, the not-taken penalty, and the
    (config-fixed) D-cache simulation.  Instances are memoized per
    ``(ExecutionResult, core-config signature)`` on the result object
    (see :func:`precompute_timing`), so evaluating another cache point
    for the same trace costs only the I-cache phase plus O(1) assembly.
    """

    def __init__(self, result, config, meta):
        self.result = result
        self.meta = meta
        self.mode = replay_mode()
        fetch = getattr(result.image, "_fetch_geometry", None)
        if fetch is None:
            fetch = _FetchGeometry(result.image)
            try:
                result.image._fetch_geometry = fetch
            except AttributeError:
                pass
        self.fetch = fetch

        if self.mode == "rle":
            # the superblock table already is the distinct-run set, and
            # per-row totals come straight off the segment stream — no
            # expansion, no np.unique over the dynamic trace
            u_start = result.block_starts
            u_end = result.block_ends
            counts = result.block_totals()
            inverse = None
            self.num_unique = len(u_start)
            self.num_runs = result.num_runs
        else:
            starts = result.run_starts
            ends = result.run_ends
            n_static = len(meta)
            keys = starts * n_static + ends
            uniq, inverse, counts = np.unique(keys, return_inverse=True,
                                              return_counts=True)
            u_start = (uniq // n_static).astype(np.int64)
            u_end = (uniq % n_static).astype(np.int64)
            self.num_unique = len(uniq)
            self.num_runs = int(len(starts))

        # --- per-unique-run quantities ---------------------------------
        # the scoreboard walk is a pure function of (instruction stream,
        # issue width, run bounds): share it across precomps of the same
        # image — but only when ``meta`` is the image's own memoized
        # metadata, an explicitly passed vector must not poison the memo
        cycles_memo = None
        if meta is getattr(result.image, "_timing_meta", None):
            cycles_memo = getattr(result.image, "_run_cycles_memo", None)
            if cycles_memo is None:
                try:
                    cycles_memo = result.image._run_cycles_memo = {}
                except AttributeError:
                    cycles_memo = None
        iw = config.issue_width
        base_cycles = np.empty(self.num_unique, dtype=np.int64)
        end_penalty = np.empty(self.num_unique, dtype=np.int64)
        for k in range(self.num_unique):
            s, e = int(u_start[k]), int(u_end[k])
            if cycles_memo is None:
                base_cycles[k] = _run_cycles(s, e, meta, iw)
            else:
                ck = (iw, s, e)
                c = cycles_memo.get(ck)
                if c is None:
                    c = cycles_memo[ck] = _run_cycles(s, e, meta, iw)
                base_cycles[k] = c
            m = meta[e]
            if m.is_cond_branch:
                end_penalty[k] = (
                    config.taken_redirect_penalty if m.is_backward
                    else config.mispredict_penalty
                )
            elif m.is_control:
                # unconditional branch / call: redirect bubble; returns
                # and pc-loads: indirect penalty
                end_penalty[k] = config.indirect_penalty
            else:
                end_penalty[k] = 0

        u_ws = (u_start * fetch.instr_bytes) // 4
        u_we = (u_end * fetch.instr_bytes) // 4
        u_requests = u_we - u_ws + 1
        u_toggles = fetch.toggle_prefix[u_we + 1] - fetch.toggle_prefix[u_ws + 1]

        self.total_base = int(np.dot(base_cycles, counts))
        self.total_taken_penalty = int(np.dot(end_penalty, counts))
        self.icache_requests = int(np.dot(u_requests, counts))
        fetch_toggles = int(np.dot(u_toggles, counts))

        # --- boundary toggles (between the last word of run k and the
        # first word of run k+1) ----------------------------------------
        max_boundary = 0
        if self.mode == "rle":
            # every boundary is either a self-repeat (within a segment:
            # last word of block b -> first word of block b, count-1
            # times) or a segment join — both vectorize over segments
            sid = result.seg_ids
            cnt = result.seg_counts
            if len(sid):
                self_x = _popcount_u32(fetch.words[u_we] ^ fetch.words[u_ws])
                fetch_toggles += int(np.dot(self_x[sid], cnt - 1))
                rep = cnt > 1
                if rep.any():
                    max_boundary = int(self_x[sid[rep]].max())
                if len(sid) > 1:
                    inter = _popcount_u32(
                        fetch.words[u_we[sid[:-1]]] ^ fetch.words[u_ws[sid[1:]]]
                    )
                    fetch_toggles += int(inter.sum())
                    max_boundary = max(max_boundary, int(inter.max()))
        else:
            ws_seq = u_ws[inverse]
            we_seq = u_we[inverse]
            if len(ws_seq) > 1:
                xors = fetch.words[we_seq[:-1]] ^ fetch.words[ws_seq[1:]]
                boundary = _popcount_u32(xors)
                fetch_toggles += int(boundary.sum())
                max_boundary = int(boundary.max())
        self.fetch_toggles = fetch_toggles
        self.max_fetch_toggles = max(fetch.max_word_toggles, max_boundary)

        # --- not-taken penalties (backward not-taken mispredicts) ------
        exec_counts = result.exec_counts()
        taken_counts = result.taken_counts()
        bw_cond = None
        if meta is getattr(result.image, "_timing_meta", None):
            bw_cond = getattr(result.image, "_timing_bw_cond", None)
        if bw_cond is None:
            bw_cond = np.fromiter(
                (m.is_cond_branch and m.is_backward for m in meta),
                dtype=bool, count=len(meta))
            if meta is getattr(result.image, "_timing_meta", None):
                try:
                    result.image._timing_bw_cond = bw_cond
                except AttributeError:
                    pass
        not_taken = (np.asarray(exec_counts, dtype=np.int64)[bw_cond]
                     - np.asarray(taken_counts, dtype=np.int64)[bw_cond])
        self.total_nt_penalty = (
            int(not_taken[not_taken > 0].sum()) * config.mispredict_penalty)

        # --- D-cache (identical for every I-cache point) ---------------
        # consecutive accesses to the same line are guaranteed hits that
        # leave LRU state untouched (re-marking the MRU way as MRU), so
        # fold them out of the Python walk and credit them afterwards
        dcache = SetAssociativeCache(config.dcache_geometry())
        daccess = dcache.access_line
        dshift = config.dcache_block.bit_length() - 1
        dlines = (result.mem_addrs >> np.uint32(dshift)).astype(np.int64)
        dfolded = 0
        if len(dlines) > 1:
            keep = np.empty(len(dlines), dtype=bool)
            keep[0] = True
            np.not_equal(dlines[1:], dlines[:-1], out=keep[1:])
            dfolded = int(len(dlines) - keep.sum())
            if dfolded:
                dlines = dlines[keep]
        for line in dlines.tolist():
            daccess(line)
        self.dcache_stats = dcache.stats()
        self.dcache_stats["accesses"] += dfolded
        self.dcache_stats["hits"] += dfolded

        #: block_bytes -> flat I-cache line-access sequence (np.int64)
        self._lines = {}
        #: block_bytes -> per-superblock (start_line, end_line) spans
        self._spans = {}

    def lines_for(self, block_bytes):
        """The I-cache line-access sequence at one block size (memoized,
        vectorized span expansion — order matters and is preserved)."""
        lines = self._lines.get(block_bytes)
        if lines is None:
            fetch = self.fetch
            shift = block_bytes.bit_length() - 1
            ls = ((self.result.run_starts * fetch.instr_bytes + fetch.code_base)
                  >> shift).astype(np.int64)
            le = ((self.result.run_ends * fetch.instr_bytes + fetch.code_base)
                  >> shift).astype(np.int64)
            lines = self._lines[block_bytes] = expand_line_spans(ls, le)
        return lines

    def line_spans_for(self, block_bytes):
        """Per-superblock inclusive I-cache line spans at one block size
        (memoized) — the columnar stack kernel's table input."""
        spans = self._spans.get(block_bytes)
        if spans is None:
            fetch = self.fetch
            shift = block_bytes.bit_length() - 1
            sl = ((self.result.block_starts * fetch.instr_bytes
                   + fetch.code_base) >> shift).astype(np.int64)
            el = ((self.result.block_ends * fetch.instr_bytes
                   + fetch.code_base) >> shift).astype(np.int64)
            spans = self._spans[block_bytes] = (sl, el)
        return spans


def precompute_timing(result, config=None, meta=None):
    """The memoized geometry-invariant phase for one (trace, config).

    Cached on the result object keyed by the config's core signature, so
    repeated :func:`simulate_timing` calls (different cache sizes, the
    harness's four configurations, a DSE chunk) share one scoreboard
    walk, fetch analysis, and D-cache simulation.  An explicitly passed
    ``meta`` bypasses the cache (the memo could not tell two metadata
    vectors apart).
    """
    config = config or TimingConfig()
    if meta is not None:
        return TimingPrecomp(result, config, meta)
    sig = _core_signature(config)
    cache = getattr(result, "_timing_precomps", None)
    if cache is None:
        cache = result._timing_precomps = {}
    pre = cache.get(sig)
    if pre is None:
        with obs.span("stage.simulate", phase="precompute",
                      image=getattr(result.image, "name", "?")):
            pre = cache[sig] = TimingPrecomp(result, config,
                                             metadata_for(result.image))
        obs.counter("timing.precomputations")
    else:
        obs.counter("timing.precomp_hits")
    return pre


def _assemble_report(pre, config, icache_bytes, icache_stats):
    """Fold I-cache stats into a precomputation: the geometry-dependent
    phase, shared by the reference path and the stack-distance path."""
    result = pre.result
    cycles = (
        pre.total_base
        + pre.total_taken_penalty
        + pre.total_nt_penalty
        + icache_stats["misses"] * config.icache_miss_penalty
        + pre.dcache_stats["misses"] * config.dcache_miss_penalty
    )

    if obs.enabled:
        publish_stats("cache.icache", icache_stats)
        publish_stats("cache.dcache", pre.dcache_stats)
        obs.counter("timing.simulations")
        obs.counter("timing.unique_runs", pre.num_unique)
        obs.counter("timing.cycles", int(cycles))
        obs.observe("timing.runs_per_simulation", pre.num_runs)

    return TimingReport(
        image=result.image,
        config=config,
        icache_bytes=icache_bytes,
        instructions=result.dynamic_instructions,
        cycles=int(cycles),
        base_cycles=pre.total_base,
        frequency_hz=config.frequency_hz,
        icache_requests=pre.icache_requests,
        icache_line_accesses=icache_stats["accesses"],
        icache_misses=icache_stats["misses"],
        icache_compulsory=icache_stats["compulsory_misses"],
        dcache_accesses=pre.dcache_stats["accesses"],
        dcache_misses=pre.dcache_stats["misses"],
        fetch_toggles=pre.fetch_toggles,
        max_fetch_toggles=pre.max_fetch_toggles,
        taken_transfers=pre.num_runs,
        fetch_word_bits=32,
        max_words_per_cycle=max(1, (config.issue_width * pre.fetch.instr_bytes) // 4),
        instr_bytes=pre.fetch.instr_bytes,
        code_lines=(len(pre.fetch.words) * 4 + config.icache_block - 1) // config.icache_block,
    )


def simulate_timing(result, icache_bytes, config=None, meta=None):
    """Simulate timing + fetch activity for one execution trace.

    Args:
        result: :class:`~repro.sim.functional.trace.ExecutionResult`.
        icache_bytes: instruction-cache size for this configuration.
        config: :class:`TimingConfig`.
        meta: precomputed instruction metadata (else derived).

    Returns:
        :class:`TimingReport`.
    """
    with obs.span("stage.simulate", phase="timing",
                  image=getattr(result.image, "name", "?"),
                  icache_bytes=icache_bytes):
        return _simulate_timing(result, icache_bytes, config, meta)


def _simulate_timing(result, icache_bytes, config=None, meta=None):
    config = config or TimingConfig()
    pre = precompute_timing(result, config, meta)

    # --- I-cache line simulation over the reference LRU model ----------
    icache = SetAssociativeCache(config.icache_geometry(icache_bytes))
    access = icache.access_line
    for line in pre.lines_for(config.icache_block).tolist():
        access(line)

    return _assemble_report(pre, config, icache_bytes, icache.stats())


class TimingBatch:
    """Multi-geometry timing evaluation over one shared analysis pass.

    Declared up front with every ``(icache_bytes, config)`` pair the
    caller will ask for; the first :meth:`report` call triggers the
    shared work (the geometry-invariant precomputation plus one
    stack-distance pass per distinct block size) and every report then
    assembles in O(1).  Reports are bit-identical to
    ``simulate_timing(result, size, config)`` — the stack kernel's
    equivalence to the reference LRU model is property-tested in
    ``tests/test_stack.py``.
    """

    def __init__(self, result, specs, meta=None):
        self.result = result
        self._meta = meta
        self.specs = [(int(size), config or TimingConfig())
                      for size, config in specs]
        if not self.specs:
            raise ValueError("TimingBatch needs at least one (size, config) spec")
        sigs = {_core_signature(config) for _size, config in self.specs}
        if len(sigs) > 1:
            raise ValueError(
                "TimingBatch specs mix core configs (%d distinct issue/"
                "penalty/D-cache signatures) — batch per signature instead"
                % len(sigs)
            )
        self._sig = sigs.pop()
        self._profiles = {}  # block_bytes -> StackDistanceProfile
        self._pre = None

    def _precomp(self):
        if self._pre is None:
            self._pre = precompute_timing(self.result, self.specs[0][1],
                                          self._meta)
        return self._pre

    def _profile(self, block_bytes):
        profile = self._profiles.get(block_bytes)
        if profile is None:
            geometries = [config.icache_geometry(size)
                          for size, config in self.specs
                          if config.icache_block == block_bytes]
            pre = self._precomp()
            with obs.span("stage.simulate", phase="stack",
                          image=getattr(self.result.image, "name", "?"),
                          block=block_bytes, geometries=len(geometries)):
                if pre.mode == "rle":
                    sl, el = pre.line_spans_for(block_bytes)
                    profile = profile_spans_rle(
                        sl, el, self.result.seg_ids,
                        self.result.seg_counts, geometries)
                else:
                    profile = profile_lines(pre.lines_for(block_bytes),
                                            geometries)
            self._profiles[block_bytes] = profile
        return profile

    def report(self, icache_bytes, config=None):
        """The :class:`TimingReport` for one declared cache point."""
        config = config or TimingConfig()
        if _core_signature(config) != self._sig:
            raise ValueError(
                "report() config does not match this batch's core signature"
            )
        with obs.span("stage.simulate", phase="timing",
                      image=getattr(self.result.image, "name", "?"),
                      icache_bytes=icache_bytes):
            profile = self._profile(config.icache_block)
            stats = profile.stats(config.icache_geometry(icache_bytes))
            return _assemble_report(self._precomp(), config, icache_bytes, stats)


def simulate_timing_multi(result, specs, meta=None):
    """Timing reports for many cache points of one trace in one pass.

    ``specs`` is a sequence of ``(icache_bytes, TimingConfig-or-None)``
    pairs sharing a core signature (see :func:`_core_signature`).
    Returns one :class:`TimingReport` per spec, in order, bit-identical
    to calling :func:`simulate_timing` per spec — at the cost of a
    single geometry-invariant precomputation plus one stack-distance
    pass per distinct block size, instead of a full LRU simulation per
    point.
    """
    batch = TimingBatch(result, specs, meta=meta)
    return [batch.report(size, config) for size, config in batch.specs]
