"""Per-static-instruction metadata for the timing model.

Both ISAs are reduced to the same scoreboard vocabulary: registers read
and written (ARM numbering, plus pseudo-register 16 for the condition
flags), resource classes (memory port, multiplier), result latencies and
multi-cycle occupancy.  Adapters exist for ARM images and FITS images.
"""

from repro.isa.arm.model import (
    Branch,
    Cond,
    DataProc,
    DPOp,
    MemHalf,
    MemMultiple,
    MemWord,
    Multiply,
    Operand2Reg,
    Swi,
    COMPARE_OPS,
)

FLAGS = 16  # pseudo-register for NZCV

#: Result latency classes (cycles until a consumer may issue).
LAT_ALU = 1
LAT_LOAD = 2
LAT_MUL = 2


class InstrMeta:
    """Scoreboard-relevant facts about one static instruction."""

    __slots__ = (
        "reads",
        "writes",
        "latency",
        "is_mem",
        "is_store",
        "is_mul",
        "is_control",
        "is_cond_branch",
        "is_backward",
        "extra_cycles",
    )

    def __init__(self, reads=(), writes=(), latency=LAT_ALU, is_mem=False,
                 is_store=False, is_mul=False, is_control=False,
                 is_cond_branch=False, is_backward=False, extra_cycles=0):
        self.reads = tuple(reads)
        self.writes = tuple(writes)
        self.latency = latency
        self.is_mem = is_mem
        self.is_store = is_store
        self.is_mul = is_mul
        self.is_control = is_control
        self.is_cond_branch = is_cond_branch
        self.is_backward = is_backward
        self.extra_cycles = extra_cycles


def arm_meta(image):
    """Metadata for every instruction of an ARM image."""
    out = []
    for idx, ins in enumerate(image.instrs):
        meta = _arm_one(ins, idx, image)
        out.append(meta)
    return out


def _arm_one(ins, idx, image):
    if isinstance(ins, DataProc):
        reads = list(ins.regs_read())
        writes = list(ins.regs_written())
        if ins.op in COMPARE_OPS:
            writes.append(FLAGS)
        if ins.cond is not Cond.AL:
            reads.append(FLAGS)
        if ins.rd == 15 and ins.op not in COMPARE_OPS:
            return InstrMeta(reads=reads, writes=[], is_control=True)
        return InstrMeta(reads=reads, writes=writes)
    if isinstance(ins, Multiply):
        return InstrMeta(
            reads=ins.regs_read(), writes=ins.regs_written(),
            latency=LAT_MUL, is_mul=True, extra_cycles=1,
        )
    if isinstance(ins, (MemWord, MemHalf)):
        return InstrMeta(
            reads=ins.regs_read(), writes=ins.regs_written(),
            latency=LAT_LOAD if ins.load else LAT_ALU,
            is_mem=True, is_store=not ins.load,
        )
    if isinstance(ins, MemMultiple):
        n = len(ins.reglist)
        control = ins.load and 15 in ins.reglist
        return InstrMeta(
            reads=ins.regs_read(), writes=[r for r in ins.regs_written() if r != 15],
            latency=LAT_LOAD if ins.load else LAT_ALU,
            is_mem=True, is_store=not ins.load, is_control=control,
            extra_cycles=max(0, n - 1),
        )
    if isinstance(ins, Branch):
        reads = [FLAGS] if ins.cond is not Cond.AL else []
        target = ins.target(image.addr_of_index(idx))
        backward = target <= image.addr_of_index(idx)
        return InstrMeta(
            reads=reads, writes=[14] if ins.link else [],
            is_control=True,
            is_cond_branch=ins.cond is not Cond.AL,
            is_backward=backward,
        )
    if isinstance(ins, Swi):
        return InstrMeta(is_control=True, extra_cycles=2)
    raise TypeError("no timing metadata for %r" % (ins,))


def thumb_meta(image):
    """Metadata for every halfword slot of a Thumb image.

    Thumb traces index halfword slots; ``bl`` occupies two slots and its
    low half (``instr_at[i] is None``) never starts or ends a run, so it
    gets an empty slot meta like a FITS ``ext`` prefix.
    """
    out = []
    for idx, ins in enumerate(image.instr_at):
        out.append(_thumb_one(ins, idx))
    return out


def _thumb_one(ins, idx):
    from repro.isa.thumb.model import (
        TAdjustSp,
        TAlu,
        TAluOp,
        TAddSub,
        TBranch,
        TBranchLink,
        TCondBranch,
        THiReg,
        TLoadStoreImm,
        TLoadStoreReg,
        TLoadStoreSpRel,
        TMovCmpAddSubImm,
        TPushPop,
        TShiftImm,
        TSwi,
    )

    if ins is None:  # low half of a bl pair
        return InstrMeta()
    if isinstance(ins, TShiftImm):
        return InstrMeta(reads=[ins.rm], writes=[ins.rd])
    if isinstance(ins, TAddSub):
        reads = [ins.rn] if ins.imm else [ins.rn, ins.value]
        return InstrMeta(reads=reads, writes=[ins.rd])
    if isinstance(ins, TMovCmpAddSubImm):
        if ins.op == "mov":
            return InstrMeta(writes=[ins.rd])
        if ins.op == "cmp":
            return InstrMeta(reads=[ins.rd], writes=[FLAGS])
        return InstrMeta(reads=[ins.rd], writes=[ins.rd])
    if isinstance(ins, TAlu):
        if ins.op in (TAluOp.TST, TAluOp.CMP, TAluOp.CMN):
            return InstrMeta(reads=[ins.rd, ins.rm], writes=[FLAGS])
        if ins.op in (TAluOp.NEG, TAluOp.MVN):
            return InstrMeta(reads=[ins.rm], writes=[ins.rd])
        if ins.op == TAluOp.MUL:
            return InstrMeta(reads=[ins.rd, ins.rm], writes=[ins.rd],
                             latency=LAT_MUL, is_mul=True, extra_cycles=1)
        return InstrMeta(reads=[ins.rd, ins.rm], writes=[ins.rd])
    if isinstance(ins, THiReg):
        if ins.op == "bx":
            return InstrMeta(reads=[ins.rm], is_control=True)
        if ins.op == "cmp":
            return InstrMeta(reads=[ins.rd, ins.rm], writes=[FLAGS])
        reads = [ins.rm] if ins.op == "mov" else [ins.rd, ins.rm]
        if ins.rd == 15:
            return InstrMeta(reads=reads, writes=[], is_control=True)
        return InstrMeta(reads=reads, writes=[ins.rd])
    if isinstance(ins, (TLoadStoreImm, TLoadStoreReg)):
        bases = [ins.rn, ins.rm] if isinstance(ins, TLoadStoreReg) else [ins.rn]
        reads = bases if ins.load else bases + [ins.rd]
        return InstrMeta(
            reads=reads, writes=[ins.rd] if ins.load else [],
            latency=LAT_LOAD if ins.load else LAT_ALU,
            is_mem=True, is_store=not ins.load,
        )
    if isinstance(ins, TLoadStoreSpRel):
        reads = [13] if ins.load else [13, ins.rd]
        return InstrMeta(
            reads=reads, writes=[ins.rd] if ins.load else [],
            latency=LAT_LOAD if ins.load else LAT_ALU,
            is_mem=True, is_store=not ins.load,
        )
    if isinstance(ins, TAdjustSp):
        return InstrMeta(reads=[13], writes=[13])
    if isinstance(ins, TPushPop):
        n = len(ins.reglist) + int(ins.extra)
        if ins.pop:
            control = ins.extra  # pop {.., pc}
            return InstrMeta(
                reads=[13], writes=[13] + list(ins.reglist),
                latency=LAT_LOAD, is_mem=True, is_control=control,
                extra_cycles=max(0, n - 1),
            )
        reads = [13] + list(ins.reglist) + ([14] if ins.extra else [])
        return InstrMeta(reads=reads, writes=[13], is_mem=True, is_store=True,
                         extra_cycles=max(0, n - 1))
    if isinstance(ins, TCondBranch):
        return InstrMeta(
            reads=[FLAGS], is_control=True, is_cond_branch=True,
            is_backward=ins.offset < 0,
        )
    if isinstance(ins, TBranch):
        return InstrMeta(is_control=True, is_backward=ins.offset < 0)
    if isinstance(ins, TBranchLink):
        return InstrMeta(writes=[14], is_control=True)
    if isinstance(ins, TSwi):
        return InstrMeta(is_control=True, extra_cycles=2)
    raise TypeError("no timing metadata for %r" % (ins,))


def fits_meta(image):
    """Metadata for every halfword of a FITS image.

    ``ext`` prefixes are plain single-issue-slot instructions with no
    register traffic; their consumer carries the semantics.
    """
    isa = image.isa
    out = []
    records = image.records
    for idx, rec in enumerate(records):
        out.append(_fits_one(rec, idx, image, isa))
    return out


def _fits_one(rec, idx, image, isa):
    spec = rec.spec
    kind = spec.kind
    f = rec.fields

    def reg(name, default=None):
        if name not in f:
            return default
        try:
            return isa.arm_reg(f[name] & ((1 << isa.k_reg) - 1))
        except KeyError:
            return default

    if kind == "ext":
        return InstrMeta()
    if kind in ("dp3", "mov2", "shifti", "shiftr", "mul"):
        reads = [r for r in (reg("ra"),) if r is not None]
        if spec.oprd_mode == "reg" and "oprd" in f:
            oprd = reg("oprd")
            if oprd is not None:
                reads.append(oprd)
        writes = [r for r in (reg("rc"),) if r is not None]
        if kind == "mul":
            return InstrMeta(reads=reads, writes=writes, latency=LAT_MUL,
                             is_mul=True, extra_cycles=1)
        return InstrMeta(reads=reads, writes=writes)
    if kind in ("dp2", "movi", "mvni", "shift2i", "shift2r", "mul2"):
        rc = reg("rc")
        reads = [] if kind in ("movi", "mvni") else [rc]
        if spec.oprd_mode == "reg":
            rm = reg("value")
            if rm is not None:
                reads.append(rm)
        if kind in ("mul2",):
            return InstrMeta(reads=reads, writes=[rc], latency=LAT_MUL,
                             is_mul=True, extra_cycles=1)
        return InstrMeta(reads=reads, writes=[rc])
    if kind == "cmp2":
        reads = [reg("ra")]
        if spec.params.get("mode") == "reg":
            rm = reg("value")
            if rm is not None:
                reads.append(rm)
        return InstrMeta(reads=reads, writes=[FLAGS])
    if kind in ("mem", "memr", "memrx", "memsp"):
        load = spec.params["load"]
        rd = reg("rd")
        rb = 13 if kind == "memsp" else reg("rb")
        reads = [rb] if load else [rb, rd]
        writes = [rd] if load else []
        return InstrMeta(reads=[r for r in reads if r is not None],
                         writes=[w for w in writes if w is not None],
                         latency=LAT_LOAD if load else LAT_ALU,
                         is_mem=True, is_store=not load)
    if kind == "spadj":
        return InstrMeta(reads=[13], writes=[13])
    if kind in ("ldm", "stm"):
        reglist = spec.params["reglist"]
        n = len(reglist)
        control = kind == "ldm" and 15 in reglist
        if kind == "ldm":
            return InstrMeta(reads=[13], writes=[13] + [r for r in reglist if r != 15],
                             latency=LAT_LOAD, is_mem=True, is_control=control,
                             extra_cycles=max(0, n - 1))
        return InstrMeta(reads=[13] + list(reglist), writes=[13],
                         is_mem=True, is_store=True, extra_cycles=max(0, n - 1))
    if kind == "b":
        cond = spec.params["cond"]
        backward = f.get("value", 0) < 0
        return InstrMeta(
            reads=[FLAGS] if cond is not Cond.AL else [],
            is_control=True,
            is_cond_branch=cond is not Cond.AL,
            is_backward=backward,
        )
    if kind == "bl":
        return InstrMeta(writes=[14], is_control=True)
    if kind == "ret":
        return InstrMeta(reads=[14], is_control=True)
    if kind == "swi":
        return InstrMeta(is_control=True, extra_cycles=2)
    raise TypeError("no timing metadata for FITS kind %r" % kind)
