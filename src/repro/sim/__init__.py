"""Simulators: functional ISS (ARM and FITS), cache model, timing model."""
