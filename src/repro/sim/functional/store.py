"""Persistent store for functional-simulation traces.

The functional simulators are deterministic: the trace produced by
running an image depends only on the image contents and the simulator
code.  The in-memory memo in :mod:`repro.dse.evaluate` already exploits
that *within* one worker process — this module extends it across
processes and sessions by serializing run-compressed
:class:`~repro.sim.functional.trace.ExecutionResult` traces to
compressed ``.npz`` files (plus a JSON manifest) under a shared
``trace_cache/`` directory.

Keying and versioning:

* each entry is keyed by a content hash of the executed image (code
  stream, data segment, layout constants) — *not* by benchmark name, so
  e.g. the identical ARM image simulated once per synthesis budget in
  ``fits_flow`` is fetched from the store after its first run;
* the manifest records a code-version hash over the functional-simulator
  sources; on mismatch the entry is skipped with a warning (same policy
  as the bench cache) so stale traces can never leak across simulator
  changes.

Writes are atomic (temp file + ``os.replace``), and the ``.npz`` payload
lands before its manifest — a missing manifest means the entry does not
exist.  Set ``REPRO_TRACE_CACHE`` to relocate the store, or to ``0`` /
``off`` to disable it.
"""

import hashlib
import io
import json
import os
import sys
import time

import numpy as np

from repro.obs import core as obs
from repro.sim.functional.trace import ExecutionResult, publish_result

SCHEMA = "repro.trace/v1"

#: modules whose source text participates in the code-version hash —
#: anything that could change what a functional simulation produces.
_VERSIONED_MODULES = (
    "repro.sim.functional.trace",
    "repro.sim.functional.engine",
    "repro.sim.functional.arm_sim",
    "repro.sim.functional.thumb_sim",
    "repro.sim.functional.fits_sim",
)

_code_hash = None


def code_version_hash():
    """Content hash over the functional-simulator sources (memoized)."""
    global _code_hash
    if _code_hash is None:
        h = hashlib.sha256()
        base = os.path.dirname(os.path.abspath(__file__))
        for mod in _VERSIONED_MODULES:
            path = os.path.join(base, mod.rsplit(".", 1)[1] + ".py")
            h.update(mod.encode())
            try:
                with open(path, "rb") as f:
                    h.update(f.read())
            except OSError:
                h.update(b"<missing>")
        _code_hash = h.hexdigest()[:16]
    return _code_hash


def image_fingerprint(image):
    """Content hash of one executable image (any supported ISA)."""
    h = hashlib.sha256()
    if hasattr(image, "halfwords"):
        h.update(b"halfwords")
        h.update(np.asarray(image.halfwords, dtype=np.uint32).tobytes())
    else:
        h.update(b"words")
        h.update(np.asarray(image.words, dtype=np.uint32).tobytes())
    for attr in ("code_base", "data_base", "memory_size", "stack_top"):
        h.update(b"|%d" % getattr(image, attr, 0))
    h.update(b"|" + str(getattr(image, "entry", "")).encode())
    h.update(b"|" + bytes(getattr(image, "data_bytes", b"")))
    isa = getattr(image, "isa", None)
    if isa is not None and hasattr(isa, "opcode_table"):
        # FITS halfwords only mean something through the synthesized
        # decoder configuration — fold it into the identity.
        desc = (
            isa.k_op,
            isa.k_reg,
            sorted((num, spec.key()) for num, spec in isa.opcode_table.items()),
            sorted(isa.regmap.items()),
            sorted((cat, tuple(vals)) for cat, vals in isa.dicts.items()),
        )
        h.update(b"|isa" + repr(desc).encode())
    return h.hexdigest()[:24]


class TraceStore:
    """One directory of content-addressed functional traces."""

    def __init__(self, root):
        self.root = root

    def _paths(self, key):
        return (os.path.join(self.root, key + ".npz"),
                os.path.join(self.root, key + ".json"))

    def load(self, image):
        """The stored :class:`ExecutionResult` for ``image``, or None.

        Returns None when the entry is absent or was produced by a
        different simulator code version (skip-and-warn).
        """
        key = image_fingerprint(image)
        npz_path, man_path = self._paths(key)
        if not os.path.exists(man_path):
            return None
        try:
            with open(man_path) as f:
                manifest = json.load(f)
        except (OSError, ValueError):
            return None
        if manifest.get("schema") != SCHEMA:
            return None
        if manifest.get("code_hash") != code_version_hash():
            print(
                "trace store: skipping %s (simulator code changed: %s != %s)"
                % (key, manifest.get("code_hash"), code_version_hash()),
                file=sys.stderr,
            )
            return None
        try:
            with np.load(npz_path) as data:
                result = ExecutionResult(
                    image=image,
                    exit_code=int(manifest["exit_code"]),
                    run_starts=data["run_starts"],
                    run_ends=data["run_ends"],
                    mem_addrs=data["mem_addrs"],
                    mem_is_store=data["mem_is_store"],
                    console=data["console"].tobytes(),
                    memory=bytearray(data["memory"].tobytes()),
                )
        except (OSError, KeyError, ValueError):
            return None
        return result

    def save(self, image, result, **manifest_extra):
        """Persist one trace; atomic, payload before manifest."""
        key = image_fingerprint(image)
        npz_path, man_path = self._paths(key)
        os.makedirs(self.root, exist_ok=True)
        buf = io.BytesIO()
        np.savez_compressed(
            buf,
            run_starts=np.asarray(result.run_starts, dtype=np.int64),
            run_ends=np.asarray(result.run_ends, dtype=np.int64),
            mem_addrs=np.asarray(result.mem_addrs, dtype=np.uint32),
            mem_is_store=np.asarray(result.mem_is_store, dtype=np.uint8),
            console=np.frombuffer(bytes(result.console), dtype=np.uint8),
            memory=np.frombuffer(bytes(result.memory), dtype=np.uint8),
        )
        manifest = {
            "schema": SCHEMA,
            "image_hash": key,
            "code_hash": code_version_hash(),
            "image_name": getattr(image, "name", "?"),
            "exit_code": int(result.exit_code),
            "num_runs": int(result.num_runs),
            "dynamic_instructions": int(result.dynamic_instructions),
        }
        manifest.update(manifest_extra)
        tmp = npz_path + ".tmp.%d" % os.getpid()
        with open(tmp, "wb") as f:
            f.write(buf.getvalue())
        os.replace(tmp, npz_path)
        tmp = man_path + ".tmp.%d" % os.getpid()
        with open(tmp, "w") as f:
            json.dump(manifest, f, indent=1, sort_keys=True)
        os.replace(tmp, man_path)
        return key


def _repo_root():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.abspath(os.path.join(here, "..", "..", "..", ".."))


def get_store():
    """The process-wide trace store, or None when disabled.

    ``REPRO_TRACE_CACHE`` overrides the location (``0`` / ``off`` / empty
    disables); the default is ``<repo>/trace_cache``.
    """
    env = os.environ.get("REPRO_TRACE_CACHE")
    if env is not None:
        if env.strip().lower() in ("", "0", "off", "none"):
            return None
        return TraceStore(env)
    return TraceStore(os.path.join(_repo_root(), "trace_cache"))


def cached_run(kind, image, runner, **manifest_extra):
    """Run ``runner()`` through the persistent trace store.

    On a store hit the functional simulation is skipped entirely; on a
    miss the fresh result is persisted for every later process/session.
    ``kind`` labels the manifest (e.g. ``"arm"``, ``"fits"``) and the
    ``trace_store.{hit,miss}`` obs counters.  The benchmark/scale
    manifest extras double as the block profiler's attribution context,
    so profile records from here carry the benchmark name.
    """
    from repro.obs import profile as obs_profile  # lazy: keeps -m runs clean

    ctx = obs_profile.run_context(benchmark=manifest_extra.get("benchmark"),
                                  scale=manifest_extra.get("scale"))
    store = get_store()
    if store is None:
        with ctx:
            return runner()
    t_load = time.perf_counter()
    result = store.load(image)
    if result is not None:
        if obs.enabled:
            from repro.obs import metrics as obs_metrics

            obs_metrics.observe("trace_store.load_seconds",
                                time.perf_counter() - t_load)
        obs.counter("trace_store.hit")
        obs.counter("trace_store.hit.%s" % kind)
        # trace-level counters stay present whether warm or cold, so
        # manifests from cached and fresh runs remain comparable
        publish_result("sim." + kind, result)
        return result
    with obs.span("trace_store.fill", kind=kind,
                  image=getattr(image, "name", "?")), ctx:
        result = runner()
    obs.counter("trace_store.miss")
    obs.counter("trace_store.miss.%s" % kind)
    try:
        store.save(image, result, kind=kind, **manifest_extra)
    except OSError as exc:
        print("trace store: save failed (%s)" % exc, file=sys.stderr)
    return result
