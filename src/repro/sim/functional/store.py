"""Persistent store for functional-simulation traces.

The functional simulators are deterministic: the trace produced by
running an image depends only on the image contents and the simulator
code.  The in-memory memo in :mod:`repro.dse.evaluate` already exploits
that *within* one worker process — this module extends it across
processes and sessions by serializing run-compressed
:class:`~repro.sim.functional.trace.ExecutionResult` traces to
compressed ``.npz`` files (plus a JSON manifest) under a shared
``trace_cache/`` directory.

Keying and versioning:

* each entry is keyed by a content hash of the executed image (code
  stream, data segment, layout constants) — *not* by benchmark name, so
  e.g. the identical ARM image simulated once per synthesis budget in
  ``fits_flow`` is fetched from the store after its first run;
* the manifest records a code-version hash over the functional-simulator
  sources; on mismatch the entry is skipped with a warning (same policy
  as the bench cache) so stale traces can never leak across simulator
  changes.

Writes are atomic (temp file + ``os.replace``), and the ``.npz`` payload
lands before its manifest — a missing manifest means the entry does not
exist.  Set ``REPRO_TRACE_CACHE`` to relocate the store, or to ``0`` /
``off`` to disable it.
"""

import hashlib
import io
import json
import lzma
import os
import sys
import time
from collections import OrderedDict

import numpy as np

from repro.obs import core as obs
from repro.sim.functional.trace import ExecutionResult, publish_result

SCHEMA = "repro.trace/v2"

#: v2 payload layout: the members below, in this order, concatenated
#: raw and compressed as one lzma stream (``blob`` in the npz), with a
#: parallel ``lengths`` array of byte counts.  The superblock table and
#: segment stream replace the per-boundary arrays, data accesses are one
#: packed ``addr*2|is_store`` word each, and memory is stored as the
#: XOR against ``image.initial_memory()`` — almost all zeros, which is
#: what makes hot-loop entries collapse.  int64 members are stored as
#: transposed byte planes (each of the 8 byte positions contiguous),
#: and the access stream is additionally delta-coded when that trial
#: compresses smaller (``flags[1]``).  v1 entries fail the schema check
#: and are simply re-simulated (see README).
_V2_MEMBERS = (
    ("block_starts", np.int64),
    ("block_ends", np.int64),
    ("seg_ids", np.int64),
    ("seg_counts", np.int64),
    ("mem_packed", np.int64),
    ("console", np.uint8),
    ("memory", np.uint8),
)


def _byte_planes(arr):
    """int64 array -> transposed byte-plane bytes (exactly invertible)."""
    return np.ascontiguousarray(
        arr.view(np.uint8).reshape(len(arr), 8).T).tobytes()


def _from_byte_planes(raw):
    """Inverse of :func:`_byte_planes`."""
    n = len(raw) // 8
    planes = np.frombuffer(raw, dtype=np.uint8).reshape(8, n).T
    return np.ascontiguousarray(planes).view(np.int64).ravel()

#: modules whose source text participates in the code-version hash —
#: anything that could change what a functional simulation produces.
_VERSIONED_MODULES = (
    "repro.sim.functional.trace",
    "repro.sim.functional.engine",
    "repro.sim.functional.arm_sim",
    "repro.sim.functional.thumb_sim",
    "repro.sim.functional.fits_sim",
)

_code_hash = None


def code_version_hash():
    """Content hash over the functional-simulator sources (memoized)."""
    global _code_hash
    if _code_hash is None:
        h = hashlib.sha256()
        base = os.path.dirname(os.path.abspath(__file__))
        for mod in _VERSIONED_MODULES:
            path = os.path.join(base, mod.rsplit(".", 1)[1] + ".py")
            h.update(mod.encode())
            try:
                with open(path, "rb") as f:
                    h.update(f.read())
            except OSError:
                h.update(b"<missing>")
        _code_hash = h.hexdigest()[:16]
    return _code_hash


def image_fingerprint(image):
    """Content hash of one executable image (any supported ISA)."""
    h = hashlib.sha256()
    if hasattr(image, "halfwords"):
        h.update(b"halfwords")
        h.update(np.asarray(image.halfwords, dtype=np.uint32).tobytes())
    else:
        h.update(b"words")
        h.update(np.asarray(image.words, dtype=np.uint32).tobytes())
    for attr in ("code_base", "data_base", "memory_size", "stack_top"):
        h.update(b"|%d" % getattr(image, attr, 0))
    h.update(b"|" + str(getattr(image, "entry", "")).encode())
    h.update(b"|" + bytes(getattr(image, "data_bytes", b"")))
    isa = getattr(image, "isa", None)
    if isa is not None and hasattr(isa, "opcode_table"):
        # FITS halfwords only mean something through the synthesized
        # decoder configuration — fold it into the identity.
        desc = (
            isa.k_op,
            isa.k_reg,
            sorted((num, spec.key()) for num, spec in isa.opcode_table.items()),
            sorted(isa.regmap.items()),
            sorted((cat, tuple(vals)) for cat, vals in isa.dicts.items()),
        )
        h.update(b"|isa" + repr(desc).encode())
    return h.hexdigest()[:24]


#: In-process LRU of decoded trace planes, keyed by (store root, entry
#: digest).  A warm ``load()`` returns the same ExecutionResult object
#: without touching lzma again — and because TimingPrecomp memos live on
#: the result object, repeat timing evaluations stay warm too.  Size is
#: ``REPRO_TRACE_PLANE_CACHE`` entries (0 disables).
_PLANE_CACHE = OrderedDict()


def _plane_cache_max():
    try:
        return max(0, int(os.environ.get("REPRO_TRACE_PLANE_CACHE", "8")))
    except ValueError:
        return 8


def clear_plane_cache():
    """Drop every cached decoded plane (tests, bench cold-state resets)."""
    _PLANE_CACHE.clear()


def _plane_cache_get(cache_key):
    result = _PLANE_CACHE.get(cache_key)
    if result is not None:
        _PLANE_CACHE.move_to_end(cache_key)
    return result


def _plane_cache_put(cache_key, result):
    limit = _plane_cache_max()
    if limit <= 0:
        return
    _PLANE_CACHE[cache_key] = result
    _PLANE_CACHE.move_to_end(cache_key)
    while len(_PLANE_CACHE) > limit:
        _PLANE_CACHE.popitem(last=False)
        obs.counter("trace_store.plane_cache.evict")


def _read_manifest(man_path, warn=True):
    """A valid current-code manifest dict, or None (skip-and-warn)."""
    if not os.path.exists(man_path):
        return None
    try:
        with open(man_path) as f:
            manifest = json.load(f)
    except (OSError, ValueError):
        return None
    if manifest.get("schema") != SCHEMA:
        return None
    if manifest.get("code_hash") != code_version_hash():
        if warn:
            print(
                "trace store: skipping %s (simulator code changed: %s != %s)"
                % (manifest.get("image_hash"), manifest.get("code_hash"),
                   code_version_hash()),
                file=sys.stderr,
            )
        return None
    return manifest


def _decode_blob(manifest, npz_path):
    """Decompress one entry's blob into its raw member arrays.

    ``mem_packed`` has delta coding undone; ``memory`` is returned still
    in the on-disk form (XOR against the initial image when
    ``flags[0]``) so callers without the image object — the shared-
    memory plane exporter — can ship it as-is.
    """
    with np.load(npz_path) as data:
        raw = lzma.decompress(data["blob"].tobytes())
    lengths = [int(n) for n in manifest["lengths"]]
    mem_delta_coded = bool(manifest["flags"][1])
    member = {}
    offset = 0
    for (name, dtype), nbytes in zip(_V2_MEMBERS, lengths):
        chunk = raw[offset:offset + nbytes]
        offset += nbytes
        if dtype is np.int64:
            member[name] = _from_byte_planes(chunk)
        else:
            member[name] = np.frombuffer(chunk, dtype=dtype)
    if mem_delta_coded:
        member["mem_packed"] = np.cumsum(member["mem_packed"])
    return member


def result_from_members(image, exit_code, member, memory_delta):
    """Build an ExecutionResult from decoded v2 members."""
    memory = bytearray(member["memory"].tobytes())
    if memory_delta:
        base = np.frombuffer(bytes(image.initial_memory()), dtype=np.uint8)
        memory = bytearray(
            np.bitwise_xor(member["memory"], base).tobytes())
    return ExecutionResult(
        image=image,
        exit_code=int(exit_code),
        block_starts=member["block_starts"],
        block_ends=member["block_ends"],
        seg_ids=member["seg_ids"],
        seg_counts=member["seg_counts"],
        mem_packed=member["mem_packed"],
        console=member["console"].tobytes(),
        memory=memory,
    )


class TraceStore:
    """One directory of content-addressed functional traces."""

    def __init__(self, root):
        self.root = root

    def _paths(self, key):
        return (os.path.join(self.root, key + ".npz"),
                os.path.join(self.root, key + ".json"))

    def load(self, image):
        """The stored :class:`ExecutionResult` for ``image``, or None.

        Returns None when the entry is absent or was produced by a
        different simulator code version (skip-and-warn).  Decoded
        planes come from, in order: the in-process plane cache, an
        attached shared-memory plane segment published by the sweep
        coordinator, and finally the ``.npz`` on disk.
        """
        key = image_fingerprint(image)
        npz_path, man_path = self._paths(key)
        # the manifest check stays on every load — it is what makes
        # code-version invalidation and entry deletion observable; the
        # plane cache only skips the expensive lzma decode
        manifest = _read_manifest(man_path)
        if manifest is None:
            return None
        cache_key = (os.path.abspath(self.root), key)
        cached = _plane_cache_get(cache_key)
        if cached is not None:
            obs.counter("trace_store.plane_cache.hit")
            return cached
        from repro.sim.functional import planes  # lazy: avoids import cycle

        result = planes.lookup(key, image)
        if result is None:
            try:
                member = _decode_blob(manifest, npz_path)
                result = result_from_members(
                    image, manifest["exit_code"], member,
                    bool(manifest["flags"][0]))
            except (OSError, KeyError, ValueError, lzma.LZMAError):
                return None
        obs.counter("trace_store.plane_cache.miss")
        _plane_cache_put(cache_key, result)
        return result

    def save(self, image, result, **manifest_extra):
        """Persist one trace; atomic, payload before manifest."""
        key = image_fingerprint(image)
        npz_path, man_path = self._paths(key)
        os.makedirs(self.root, exist_ok=True)
        memory = np.frombuffer(bytes(result.memory), dtype=np.uint8)
        base = np.frombuffer(bytes(image.initial_memory()), dtype=np.uint8)
        memory_delta = len(base) == len(memory)
        if memory_delta:
            memory = np.bitwise_xor(memory, base)
        mem_packed = np.ascontiguousarray(result.mem_packed, dtype=np.int64)
        parts = {
            "block_starts": np.ascontiguousarray(result.block_starts,
                                                 dtype=np.int64),
            "block_ends": np.ascontiguousarray(result.block_ends,
                                               dtype=np.int64),
            "seg_ids": np.ascontiguousarray(result.seg_ids, dtype=np.int64),
            "seg_counts": np.ascontiguousarray(result.seg_counts,
                                               dtype=np.int64),
            "mem_packed": mem_packed,
            "console": np.frombuffer(bytes(result.console), dtype=np.uint8),
            "memory": memory,
        }

        def payload(mem_delta_coded):
            chunks = []
            for name, dtype in _V2_MEMBERS:
                arr = parts[name]
                if name == "mem_packed" and mem_delta_coded:
                    arr = np.diff(arr, prepend=np.int64(0))
                chunks.append(_byte_planes(arr) if dtype is np.int64
                              else arr.tobytes())
            return b"".join(chunks)

        # the access stream compresses better delta-coded on strided
        # workloads and worse on pointer-chasing ones — trial both at
        # the fast preset, then squeeze the winner harder when the raw
        # payload is small enough that the extra pass is cheap
        raw_flat = payload(False)
        raw_delta = payload(True)
        blob_flat = lzma.compress(raw_flat, preset=1)
        blob_delta = lzma.compress(raw_delta, preset=1)
        mem_delta_coded = len(blob_delta) < len(blob_flat)
        raw, blob = ((raw_delta, blob_delta) if mem_delta_coded
                     else (raw_flat, blob_flat))
        if len(raw) <= 8 << 20:
            best = lzma.compress(raw, preset=6)
            if len(best) < len(blob):
                blob = best
        buf = io.BytesIO()
        np.savez(buf, blob=np.frombuffer(blob, dtype=np.uint8))
        manifest = {
            "schema": SCHEMA,
            "image_hash": key,
            "code_hash": code_version_hash(),
            "image_name": getattr(image, "name", "?"),
            "exit_code": int(result.exit_code),
            "num_runs": int(result.num_runs),
            "num_superblocks": int(len(result.block_starts)),
            "num_segments": int(len(result.seg_ids)),
            "dynamic_instructions": int(result.dynamic_instructions),
            "lengths": [int(parts[name].nbytes)
                        for name, _dtype in _V2_MEMBERS],
            "flags": [int(memory_delta), int(mem_delta_coded)],
        }
        manifest.update(manifest_extra)
        tmp = npz_path + ".tmp.%d" % os.getpid()
        with open(tmp, "wb") as f:
            f.write(buf.getvalue())
        os.replace(tmp, npz_path)
        tmp = man_path + ".tmp.%d" % os.getpid()
        with open(tmp, "w") as f:
            json.dump(manifest, f, indent=1, sort_keys=True)
        os.replace(tmp, man_path)
        # the just-simulated result is the freshest decoded form there
        # is — seed the plane cache so a load right after a save (the
        # resume pattern) never pays a decode
        _plane_cache_put((os.path.abspath(self.root), key), result)
        return key


def _repo_root():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.abspath(os.path.join(here, "..", "..", "..", ".."))


def get_store():
    """The process-wide trace store, or None when disabled.

    ``REPRO_TRACE_CACHE`` overrides the location (``0`` / ``off`` / empty
    disables); the default is ``<repo>/trace_cache``.
    """
    env = os.environ.get("REPRO_TRACE_CACHE")
    if env is not None:
        if env.strip().lower() in ("", "0", "off", "none"):
            return None
        return TraceStore(env)
    return TraceStore(os.path.join(_repo_root(), "trace_cache"))


def cached_run(kind, image, runner, **manifest_extra):
    """Run ``runner()`` through the persistent trace store.

    On a store hit the functional simulation is skipped entirely; on a
    miss the fresh result is persisted for every later process/session.
    ``kind`` labels the manifest (e.g. ``"arm"``, ``"fits"``) and the
    ``trace_store.{hit,miss}`` obs counters.  The benchmark/scale
    manifest extras double as the block profiler's attribution context,
    so profile records from here carry the benchmark name.
    """
    from repro.obs import profile as obs_profile  # lazy: keeps -m runs clean

    ctx = obs_profile.run_context(benchmark=manifest_extra.get("benchmark"),
                                  scale=manifest_extra.get("scale"))
    store = get_store()
    if store is None:
        with ctx:
            return runner()
    t_load = time.perf_counter()
    result = store.load(image)
    if result is not None:
        if obs.enabled:
            from repro.obs import metrics as obs_metrics

            obs_metrics.observe("trace_store.load_seconds",
                                time.perf_counter() - t_load)
        obs.counter("trace_store.hit")
        obs.counter("trace_store.hit.%s" % kind)
        # trace-level counters stay present whether warm or cold, so
        # manifests from cached and fresh runs remain comparable
        publish_result("sim." + kind, result)
        return result
    with obs.span("trace_store.fill", kind=kind,
                  image=getattr(image, "name", "?")), ctx:
        result = runner()
    obs.counter("trace_store.miss")
    obs.counter("trace_store.miss.%s" % kind)
    try:
        store.save(image, result, kind=kind, **manifest_extra)
    except OSError as exc:
        print("trace store: save failed (%s)" % exc, file=sys.stderr)
    return result
