"""Block-compiled execution engine shared by the functional simulators.

The three functional simulators (:mod:`~repro.sim.functional.arm_sim`,
:mod:`~repro.sim.functional.thumb_sim`,
:mod:`~repro.sim.functional.fits_sim`) all pre-decode their image into
per-instruction Python closures and then chain those closures from a
dispatch loop.  That loop pays, per executed instruction, one list
index, one closure call, and one fall-through comparison — which is the
dominant cost of a cold trace once the cache side of the simulate stage
is one-pass (PR 4).

This module factors the shared run-loop/trace plumbing out of the three
simulators and adds a faster execution strategy on top of the same
closures:

``closure`` engine
    The classic loop, verbatim: call ``handlers[idx]()``, compare the
    returned index against the sequential successor, record a run
    boundary on every taken control transfer.

``block`` engine
    Discover *superblocks* lazily from the executed control flow: the
    first time control reaches index ``i``, scan forward from ``i``
    and ``exec()``-compile the whole stretch into a single generated
    Python function.  The scan runs **through** conditional branches —
    a conditional branch becomes an inline guarded early return (the
    taken path records its run boundary and exits; the fall-through
    path simply keeps executing inside the same function) — and only
    stops at an unconditional transfer, an instruction with no codegen
    template, or the block-size cap.  Subsequent visits dispatch
    through a ``{entry index: block fn}`` table.  Inside a block there
    are no per-instruction calls or comparisons: each instruction's
    semantics are emitted inline from a source template, and memory-
    access trace records are *batched* — buffered in local temporaries
    and appended to the trace arrays once per block exit instead of
    once per access.  Run boundaries (and the executed-instruction
    budget tally) are maintained by the generated code itself through a
    shared two-cell state, recording exactly the boundaries the closure
    loop would.

    Instructions without a template fall back to the always-available
    per-instruction closure: the block ends there and the closure
    becomes the block's terminator (pending trace records are flushed
    first so the access order is preserved).  A lazily-entered index
    that lands mid-atom (FITS) or on a continuation halfword (Thumb)
    simply dispatches the existing closure/None and fails exactly like
    the closure engine.

Both engines produce bit-identical
:class:`~repro.sim.functional.trace.ExecutionResult` objects: same run
boundaries, same memory-access records in the same order, same console
bytes, final memory, exit code, and dynamic instruction count — this is
property-tested across ISAs, workloads, and scales in
``tests/test_engine.py``.

Engine selection: ``REPRO_SIM_ENGINE=block`` (the default) or
``closure``; simulators also accept an explicit ``engine=`` argument
which takes precedence (used by ``repro.bench`` to measure one against
the other).

Instruction-budget enforcement (both engines): the budget is checked at
every *run boundary* (taken control transfer or program exit), never
mid-run.  The overshoot is therefore bounded by the length of the
current straight-line run — identical between the engines, so a too-
small ``max_instructions`` raises :class:`SimulationError` at exactly
the same executed-instruction count under either engine.

Observability (when enabled): the block engine publishes
``sim.engine.blocks_compiled`` / ``sim.engine.units_compiled`` /
``sim.engine.fallback_instrs`` counters and a
``sim.engine.avg_block_len`` gauge per run, and both engines count
``sim.engine.runs.<engine>``.

Profiling (``REPRO_PROFILE``, see :mod:`repro.obs.profile`): when
active, the block engine's dispatch loop additionally attributes
executed units and wall time to each superblock entry, times every
``exec()`` compilation, and records throttle/fallback decisions — one
profile record per run.  The hooks live on the per-dispatch path (a
block executes many units per call), never per instruction, and leave
the executed semantics untouched: profiler-on runs are bit-identical.
"""

import os
import re
import struct
import time

from repro.isa.arm.model import ShiftType
from repro.obs import core as obs
from repro.sim.functional.trace import PACK, TraceBuilder

#: repro.obs.profile, bound on first use.  Importing it eagerly would pull
#: it into sys.modules whenever ``repro`` loads, making every
#: ``python -m repro.obs.profile`` run trip runpy's re-execution warning.
obs_profile = None


def _profile_mod():
    global obs_profile
    if obs_profile is None:
        from repro.obs import profile
        obs_profile = profile
    return obs_profile


M32 = 0xFFFFFFFF

ENGINE_ENV = "REPRO_SIM_ENGINE"
ENGINES = ("block", "closure")

#: Blocks longer than this are split; a split point behaves exactly like
#: a sequential fall-through, so the cap only bounds codegen size.
MAX_BLOCK_LEN = 192

#: A block entry is compiled on its Nth visit; colder entries are
#: interpreted through the per-instruction closures.  This keeps
#: codegen cost off code that never repeats (large images with long
#: one-shot init/table-build phases) while hot loops still compile on
#: their second visit.
COMPILE_THRESHOLD = 2

#: Global codegen budget: a new block is compiled only once the
#: executed-instruction count exceeds ``units_compiled * COMPILE_AMORT``
#: — i.e. codegen is throttled to a fixed fraction of execution
#: progress.  Loop-dominated programs hit the gate almost never (their
#: executed count races ahead), while sprawling low-reuse code (a large
#: image where every block runs a handful of times) stays mostly
#: interpreted instead of paying ~2µs/instruction of compile time it
#: can never amortize.  Deterministic: depends only on instruction
#: counts, never on wall-clock.
COMPILE_AMORT = 200

#: The first this-many compiled units are exempt from the amortization
#: gate, so small loop-dominated programs compile their entire working
#: set up front; only large images feel the throttle.
COMPILE_FREE_UNITS = 512

#: Minimum scanned units before a superblock may end by chaining into
#: another compiled block's entry (dedups overlapping compilations of
#: the same stretch without splitting short hot loops).
CHAIN_MIN_UNITS = 48


class SimulationError(Exception):
    """Raised on bad control flow, memory faults, or instruction limits."""


def selected_engine(env=None):
    """The engine named by ``REPRO_SIM_ENGINE`` (default ``block``)."""
    env = os.environ if env is None else env
    value = (env.get(ENGINE_ENV) or "").strip().lower()
    if value in ("", "default"):
        return "block"
    if value not in ENGINES:
        raise ValueError(
            "unrecognized %s=%r (expected one of %s)"
            % (ENGINE_ENV, value, "/".join(ENGINES))
        )
    return value


def dyn_shift(value, stype, amount):
    """Register-amount barrel shift, shared by every ISA's semantics.

    ``amount`` is the already-masked 0..255 shift register value; the
    behaviour matches the ARM register-specified shift rules that all
    three instruction sets inherit.
    """
    if stype is ShiftType.LSL:
        return (value << amount) & M32 if amount < 32 else 0
    if stype is ShiftType.LSR:
        return value >> amount if amount < 32 else 0
    if stype is ShiftType.ASR:
        if amount >= 32:
            return M32 if value & 0x80000000 else 0
        if value & 0x80000000:
            return (value >> amount) | (((1 << amount) - 1) << (32 - amount))
        return value >> amount
    amount &= 31
    if amount == 0:
        return value
    return ((value >> amount) | (value << (32 - amount))) & M32


#: Names visible to generated block code, beyond the factory arguments.
EXEC_GLOBALS = {
    "dyn_shift": dyn_shift,
    "LSL": ShiftType.LSL,
    "LSR": ShiftType.LSR,
    "ASR": ShiftType.ASR,
    "ROR": ShiftType.ROR,
}

#: Condition-code source expressions over the shared ``flags`` NZCV
#: list, keyed by condition *name* so the ARM ``Cond`` and Thumb
#: ``TCond`` enums share one table.  ``AL`` is absent on purpose —
#: always-taken branches emit an unconditional next expression.
COND_EXPR = {
    "EQ": "(flags[1])",
    "NE": "(not flags[1])",
    "CS": "(flags[2])",
    "CC": "(not flags[2])",
    "MI": "(flags[0])",
    "PL": "(not flags[0])",
    "VS": "(flags[3])",
    "VC": "(not flags[3])",
    "HI": "(flags[2] and not flags[1])",
    "LS": "(not flags[2] or flags[1])",
    "GE": "(flags[0] == flags[3])",
    "LT": "(flags[0] != flags[3])",
    "GT": "(not flags[1] and flags[0] == flags[3])",
    "LE": "(flags[1] or flags[0] != flags[3])",
}


def cond_expr(cond):
    """Source expression for a condition enum member, None for AL."""
    if cond.name == "AL":
        return None
    return COND_EXPR[cond.name]


class Emitted:
    """One instruction's codegen template output.

    Attributes:
        lines: statement strings (one statement per entry, no newlines).
        addrs: ``(temp_name, is_store)`` pairs, in access order, naming
            temporaries assigned by ``lines`` that hold data-memory
            addresses to be appended to the trace.
        nxt: for control-transferring instructions, the expression for
            the next instruction index (evaluated after ``lines``);
            None for always-sequential instructions.  When ``cond`` is
            set it must be a *static* index literal.
        cond: for conditional branches, the source expression deciding
            whether the transfer to ``nxt`` is taken; when it is false
            the instruction falls through sequentially and the
            superblock continues past it.
        taken_lines: statements executed only on the taken path of a
            conditional transfer (e.g. a conditional ``bl``'s link-
            register write), before the run boundary is recorded.
    """

    __slots__ = ("lines", "addrs", "nxt", "cond", "taken_lines")

    def __init__(self, lines, addrs=(), nxt=None, cond=None, taken_lines=()):
        self.lines = lines
        self.addrs = addrs
        self.nxt = nxt
        self.cond = cond
        self.taken_lines = taken_lines


def emit_mem(load, width, signed, rd, ea_expr, temp):
    """Shared load/store template (identical semantics in all ISAs).

    Returns an :class:`Emitted` performing one access of ``width`` bytes
    at ``ea_expr`` into/out of ``regs[rd]``, recording the address in
    ``temp``.
    """
    lines = ["%s = %s" % (temp, ea_expr)]
    if load:
        if width == 4:
            lines.append("regs[%d] = unpack_from(\"<I\", mem, %s)[0]" % (rd, temp))
        elif width == 2 and signed:
            lines.append("regs[%d] = unpack_from(\"<h\", mem, %s)[0] & 4294967295" % (rd, temp))
        elif width == 2:
            lines.append("regs[%d] = unpack_from(\"<H\", mem, %s)[0]" % (rd, temp))
        elif signed:
            lines.append("_v%s = mem[%s]" % (temp, temp))
            lines.append("regs[%d] = _v%s | 4294967040 if _v%s & 128 else _v%s"
                         % (rd, temp, temp, temp))
        else:
            lines.append("regs[%d] = mem[%s]" % (rd, temp))
        return Emitted(lines, addrs=((temp, 0),))
    if width == 4:
        lines.append("pack_into(\"<I\", mem, %s, regs[%d])" % (temp, rd))
    elif width == 2:
        lines.append("pack_into(\"<H\", mem, %s, regs[%d] & 65535)" % (temp, rd))
    else:
        lines.append("mem[%s] = regs[%d] & 255" % (temp, rd))
    return Emitted(lines, addrs=((temp, 1),))


class Program:
    """Everything the engine needs to execute one prepared image.

    Built fresh per run by each simulator's ``_run``: the closures in
    ``handlers`` close over the mutable state (``regs``/``mem``/
    ``flags``/``trace``/``exit_code``) that the generated block code
    shares through the factory arguments.

    ``seq_next`` is None when the sequential successor of index ``i`` is
    always ``i + 1`` (ARM, Thumb); FITS passes its per-halfword atom
    successor table.  ``emit`` maps an instruction index to an
    :class:`Emitted` template or None (→ closure fallback).
    """

    __slots__ = ("image", "isa", "handlers", "seq_next", "emit", "regs",
                 "mem", "flags", "trace", "exit_code", "index_of")

    def __init__(self, image, isa, handlers, regs, mem, flags, trace,
                 exit_code, emit=None, seq_next=None, index_of=None):
        self.image = image
        self.isa = isa
        self.handlers = handlers
        self.seq_next = seq_next
        self.emit = emit
        self.regs = regs
        self.mem = mem
        self.flags = flags
        self.trace = trace
        self.exit_code = exit_code
        self.index_of = index_of if index_of is not None else image.index_of_addr


def execute(program, max_instructions, engine=None):
    """Run ``program`` to completion; returns :class:`ExecutionResult`.

    ``engine`` overrides ``REPRO_SIM_ENGINE`` when given.
    """
    name = engine if engine is not None else selected_engine()
    if (getattr(program.trace, "packed", False)
            and len(program.handlers) >= PACK):
        raise SimulationError(
            "image too large for packed trace boundaries (%d >= %d static "
            "indices)" % (len(program.handlers), PACK))
    runner = None
    if name == "closure":
        _run_closure(program, max_instructions)
    elif name == "block":
        runner = _BlockRunner(program, prof=_profile_mod().recorder())
        runner.run(max_instructions)
    else:
        raise ValueError("unknown engine %r (expected one of %s)"
                         % (name, "/".join(ENGINES)))
    if obs.enabled:
        obs.counter("sim.engine.runs.%s" % name)
    result = program.trace.build_result(
        program.image, program.exit_code[0], program.mem)
    if runner is not None and runner.prof is not None:
        runner.prof.finish(
            isa=program.isa,
            image_name=getattr(program.image, "name", "?"),
            func_of_index=getattr(program.image, "func_of_index", None),
            totals={
                "blocks_compiled": runner.blocks_compiled,
                "units_compiled": runner.units_compiled,
                "fallback_instrs": runner.fallback_instrs,
            },
            fetch_words_of_entry=_fetch_words_by_entry(result),
        )
    return result


def _fetch_words_by_entry(result):
    """Exact per-entry I-cache fetch-word totals off the superblock
    table: rows aggregated by entry index, words-per-iteration weighted
    by iteration counts — the profiler prices fetch energy from this
    footprint directly instead of re-deriving it from unit counts."""
    instr_bytes = 2 if hasattr(result.image, "halfwords") else 4
    totals = result.block_totals().tolist()
    out = {}
    for s, e, n in zip(result.block_starts.tolist(),
                       result.block_ends.tolist(), totals):
        words = (e * instr_bytes) // 4 - (s * instr_bytes) // 4 + 1
        out[s] = out.get(s, 0) + words * n
    return out


def _budget_error(program, limit):
    return SimulationError(
        "instruction budget exceeded (%d) in %s" % (limit, program.image.name)
    )


def _fault_error(program, idx, exc):
    image = program.image
    where = ""
    func_of_index = getattr(image, "func_of_index", None)
    if func_of_index is not None and 0 <= idx < len(func_of_index):
        where = " (%s)" % func_of_index[idx]
    return SimulationError(
        "%s memory fault near instruction index %d%s: %s"
        % (program.isa, idx, where, exc)
    )


# ----------------------------------------------------------------------
# closure engine — the classic per-instruction dispatch loops


def _run_closure(program, limit):
    """The pre-block execution strategy, preserved verbatim (modulo the
    builder's boundary-record method, which both record layouts
    implement)."""
    trace = program.trace
    handlers = program.handlers
    boundary = trace.add_boundary
    seq = program.seq_next
    idx = 0
    run_start = 0
    executed = 0
    try:
        if seq is None:
            while idx >= 0:
                nxt = handlers[idx]()
                if nxt == idx + 1:
                    idx = nxt
                    continue
                boundary(run_start, idx)
                executed += idx - run_start + 1
                if executed > limit:
                    raise _budget_error(program, limit)
                idx = nxt
                run_start = nxt
        else:
            while idx >= 0:
                nxt = handlers[idx]()
                straight = seq[idx]
                if nxt == straight:
                    idx = nxt
                    continue
                # the run ends at the *last* halfword of the atom
                boundary(run_start, straight - 1)
                executed += straight - run_start
                if executed > limit:
                    raise _budget_error(program, limit)
                idx = nxt
                run_start = nxt
    except (struct.error, IndexError) as exc:
        raise _fault_error(program, idx, exc) from exc


# ----------------------------------------------------------------------
# block engine — lazy superblock discovery + exec() codegen


#: Fixed parameter list of every generated block factory.  The factory
#: is called once per compiled block and returns the zero-argument
#: block function, which closes over these fast local cells.  ``_st``
#: is the shared run-accounting state ``[run_start, executed]``; the
#: generated exits append run boundaries (packed builders: one
#: ``start*PACK + end`` record via ``_ra``; legacy layout: two records
#: via ``_sa``/``_ea``) and bump the executed tally, so the dispatch
#: loop only checks the budget.  ``_fr`` is the trace builder's
#: ``flush_repeat``: a block whose hot backedge is batched counts
#: iterations in a local (``_bn``) and flushes them as one run-length
#: record on exit.  Only the active layout's names are bound non-None.
_FACTORY_PARAMS = ("H", "regs", "mem", "flags", "_xm", "_xa", "_xs", "_ra",
                   "_sa", "_ea", "_fr", "_st", "index_of", "unpack_from",
                   "pack_into", "console", "exit_code")


def _flush_lines(pending, packed):
    """Statements appending the batched trace records — one extend of
    packed ``addr*2 | is_store`` words (or one extend per legacy
    array).  ``pending`` is every access temp assigned since block
    entry — each dynamic execution reaches exactly one exit, so the
    full prefix is appended exactly once."""
    if not pending:
        return []
    if packed:
        return ["_xm((%s,))" % ", ".join(
            "%s*2+1" % temp if store else "%s*2" % temp
            for temp, store in pending)]
    return [
        "_xa((%s,))" % ", ".join(temp for temp, _store in pending),
        "_xs((%s,))" % ", ".join(str(store) for _temp, store in pending),
    ]


def _boundary_stmts(count_end, target_expr, packed):
    """Record one run boundary ending at ``count_end`` (mirrors the
    closure loop's bookkeeping statement for statement)."""
    if packed:
        head = ["_ra(_st[0]*%d + %d)" % (PACK, count_end)]
    else:
        head = ["_sa(_st[0])", "_ea(%d)" % count_end]
    return head + [
        "_st[1] += %d - _st[0]" % (count_end + 1),
        "_st[0] = %s" % target_expr,
    ]


#: Marker expanded by :func:`_apply_reg_cache` into the write-back of
#: cached register/flag locals; placed on every path that leaves the
#: generated function (so other blocks and fallback closures always see
#: canonical ``regs``/``flags`` state).
_SYNC = "__SYNC__"

#: Marker expanded by :meth:`_BlockRunner._assemble` into the flush of
#: the batched-backedge iteration counter (``_bn``); placed before
#: every run-boundary emission and every function exit so the batched
#: records land in exact stream order.  Stripped when the block has no
#: batched backedge.
_FLUSH = "__FLUSHRB__"


def _expand_flush(body, batch_site):
    """Expand (or strip) the :data:`_FLUSH` markers in a block body."""
    if batch_site is None:
        repl = ""
        out = []
        for line in body:
            if line.strip() == _FLUSH:
                continue
            out.append(line.replace(_FLUSH + "; ", repl))
        return out
    start, count_end = batch_site
    inline = "_bn and _fr(%d, %d, _bn); _bn = 0" % (start, count_end)
    out = []
    for line in body:
        if line.strip() == _FLUSH:
            indent = line[:len(line) - len(line.lstrip())]
            out.append(indent + "_bn and _fr(%d, %d, _bn)" % (start, count_end))
            out.append(indent + "_bn = 0")
        else:
            out.append(line.replace(_FLUSH, inline))
    return out

_REG_RE = re.compile(r"regs\[(\d+)\]")
_FLAG_RE = re.compile(r"flags\[(\d+)\]")
#: A write is ``regs[i] = `` at the start of a statement — the start of
#: a (possibly indented) line, or after ``: ``/``; `` in a one-liner.
_REG_WRITE_RE = re.compile(r"(?:^\s*|[:;] )regs\[(\d+)\] = ")
_FLAG_WRITE_RE = re.compile(r"(?:^\s*|[:;] )flags\[(\d+)\] = ")


def _strip_sync(body):
    """Drop the sync markers (register caching disabled)."""
    out = []
    for line in body:
        if line.strip() == _SYNC:
            continue
        out.append(line.replace(_SYNC + "; ", ""))
    return out


def _apply_reg_cache(body):
    """Rewrite ``regs[i]``/``flags[i]`` references into block-local
    variables, loaded once at entry and written back at every exit.

    Inside a hot loop (backedge ``continue``) the cached locals persist
    across iterations, eliminating nearly all shared-list traffic.
    Every exit path carries a :data:`_SYNC` marker that expands to the
    write-back of the *written* subset, so the shared lists are
    canonical whenever control leaves the block.  Returns
    ``(prologue_lines, rewritten_body)``.
    """
    used_r, used_f, written_r, written_f = set(), set(), set(), set()
    for line in body:
        for m in _REG_RE.finditer(line):
            used_r.add(int(m.group(1)))
        for m in _FLAG_RE.finditer(line):
            used_f.add(int(m.group(1)))
        for m in _REG_WRITE_RE.finditer(line):
            written_r.add(int(m.group(1)))
        for m in _FLAG_WRITE_RE.finditer(line):
            written_f.add(int(m.group(1)))
    sync = ["regs[%d] = _g%d" % (r, r) for r in sorted(written_r)]
    sync += ["flags[%d] = _f%d" % (f, f) for f in sorted(written_f)]
    sync_inline = "; ".join(sync)
    out = []
    for line in body:
        line = _REG_RE.sub(lambda m: "_g" + m.group(1), line)
        line = _FLAG_RE.sub(lambda m: "_f" + m.group(1), line)
        if _SYNC not in line:
            out.append(line)
        elif line.strip() == _SYNC:
            indent = line[:len(line) - len(line.lstrip())]
            out.extend(indent + s for s in sync)
        elif sync_inline:
            out.append(line.replace(_SYNC, sync_inline))
        else:
            out.append(line.replace(_SYNC + "; ", ""))
    prologue = ["_g%d = regs[%d]" % (r, r) for r in sorted(used_r)]
    prologue += ["_f%d = flags[%d]" % (f, f) for f in sorted(used_f)]
    return prologue, out


class _BlockRunner:
    """Executes one :class:`Program` through lazily-compiled blocks.

    ``prof`` (a :class:`repro.obs.profile.BlockRecorder` or None) turns
    on per-superblock attribution: each dispatch and each cold
    interpreted run is timed and its executed-unit delta (read off the
    shared run-accounting state) credited to the entry index.
    """

    def __init__(self, program, prof=None):
        self.program = program
        self.prof = prof
        self.blocks = {}
        self.hot = {}  # entry index -> visit count, below threshold
        self.state = [0, 0, 0]  # [run_start, executed, budget limit]
        self.blocks_compiled = 0
        self.units_compiled = 0
        self.fallback_instrs = 0
        # run-length batching of self-backedge boundaries and the packed
        # record layout (the trace builder may opt out of either, e.g.
        # the bench's event-stream baseline)
        self._batch_ok = getattr(program.trace, "batch_boundaries", True)
        self._packed = bool(getattr(program.trace, "packed", False))
        self._batch_site = None  # (start, count_end) of the batched site

    def _seq(self, idx):
        seq = self.program.seq_next
        return idx + 1 if seq is None else seq[idx]

    def _dyn_exit(self, body, count_end):
        """Exit through a runtime-computed ``_nxt`` (boundary iff taken)."""
        body.append(_FLUSH)
        if self._packed:
            body.append(
                "if _nxt != %d: _ra(_st[0]*%d + %d); _st[1] += %d - _st[0]; "
                "_st[0] = _nxt" % (count_end + 1, PACK, count_end,
                                   count_end + 1))
        else:
            body.append(
                "if _nxt != %d: _sa(_st[0]); _ea(%d); _st[1] += %d - _st[0]; "
                "_st[0] = _nxt" % (count_end + 1, count_end, count_end + 1))
        body.append("return _nxt")

    def _backedge_stmts(self, start, pending, count_end):
        """Taken transfer back to the block's own entry: record the run
        boundary and re-enter via ``continue`` instead of returning to
        the dispatch loop — a hot loop body then iterates entirely
        inside its generated function.  The budget is checked before
        looping (the dispatch loop raises on the returned-over-budget
        path); flushing the access prefix per iteration is safe because
        every iteration re-executes the same straight-line prefix.

        The first backedge site of a block is *batched* (unless the
        trace builder opts out): iterations bump a local counter
        (``_bn``) instead of appending two trace records each, and the
        accumulated count is flushed as one run-length record wherever
        a :data:`_FLUSH` marker expands — before every other boundary
        and on every exit, so the boundary stream order is exact.  The
        executed tally still moves per iteration, so budget enforcement
        is unchanged.  Later backedge sites (rare: several conditional
        branches back to the same entry) emit directly, flushing the
        batched site first to preserve order."""
        stmts = _flush_lines(pending, self._packed)
        if self._batch_site is None and self._batch_ok:
            self._batch_site = (start, count_end)
            stmts.append("_st[1] += %d - _st[0]" % (count_end + 1))
            if self._packed:
                stmts.append("if _st[0] != %d: _ra(_st[0]*%d + %d); "
                             "_st[0] = %d" % (start, PACK, count_end, start))
            else:
                stmts.append(
                    "if _st[0] != %d: _sa(_st[0]); _ea(%d); _st[0] = %d"
                    % (start, count_end, start))
            stmts.append("else: _bn += 1")
            stmts.append("if _st[1] > _st[2]: %s; %s; return %d"
                         % (_FLUSH, _SYNC, start))
            stmts.append("continue")
            return stmts
        stmts.append(_FLUSH)
        stmts += _boundary_stmts(count_end, "%d" % start, self._packed)
        stmts.append("if _st[1] > _st[2]: %s; return %d" % (_SYNC, start))
        stmts.append("continue")
        return stmts

    def _compile_block(self, start):
        """Scan + codegen one superblock entered at ``start``."""
        emit = self.program.emit
        blocks = self.blocks
        body = []
        pending = []  # (temp_name, is_store) accumulated since block entry
        units = 0
        fallbacks = 0
        idx = start
        self._batch_site = None
        while True:
            if units >= CHAIN_MIN_UNITS and idx != start and idx in blocks:
                # reached another compiled block's entry: chain to it
                # instead of re-compiling the overlap (the run stays
                # open across the static fall-through — no boundary).
                # Only after a minimum scan length: chaining too eagerly
                # would split short hot loops at interior entries and
                # forfeit the in-block backedge.
                body.extend(_flush_lines(pending, self._packed))
                body.append(_FLUSH)
                body.append(_SYNC)
                body.append("return %d" % idx)
                break
            template = emit(idx) if emit is not None else None
            units += 1
            count_end = self._seq(idx) - 1
            if template is None:
                # no codegen template: flush the batch, sync cached
                # locals back (the closure reads the shared lists), let
                # the pre-compiled closure terminate the block.  No
                # sync *after* the call — the locals are stale then,
                # and nothing downstream reads them.
                body.extend(_flush_lines(pending, self._packed))
                body.append(_SYNC)
                body.append("_nxt = H[%d]()" % idx)
                self._dyn_exit(body, count_end)
                fallbacks += 1
                break
            body.extend(template.lines)
            pending.extend(template.addrs)
            if template.cond is not None:
                # conditional transfer: guarded early exit, then the
                # superblock continues along the fall-through path
                target = int(template.nxt)
                if target == count_end + 1:
                    # branch to the next instruction: never a boundary,
                    # but the taken side effects still happen
                    if template.taken_lines:
                        body.append("if %s: %s" % (
                            template.cond, "; ".join(template.taken_lines)))
                elif target == start:
                    body.append("if %s:" % template.cond)
                    for line in template.taken_lines:
                        body.append(" " + line)
                    for line in self._backedge_stmts(start, pending, count_end):
                        body.append(" " + line)
                else:
                    stmts = list(template.taken_lines)
                    stmts += _flush_lines(pending, self._packed)
                    stmts.append(_FLUSH)
                    stmts += _boundary_stmts(count_end, "%d" % target, self._packed)
                    stmts.append(_SYNC)
                    stmts.append("return %d" % target)
                    body.append("if %s: %s" % (template.cond, "; ".join(stmts)))
                if units >= MAX_BLOCK_LEN:
                    body.extend(_flush_lines(pending, self._packed))
                    body.append(_FLUSH)
                    body.append(_SYNC)
                    body.append("return %d" % (count_end + 1))
                    break
                idx = count_end + 1
                continue
            if template.nxt is not None:
                try:
                    target = int(template.nxt)
                except ValueError:
                    target = None
                if target is None:
                    body.extend(_flush_lines(pending, self._packed))
                    body.append("_nxt = %s" % template.nxt)
                    body.append(_SYNC)
                    self._dyn_exit(body, count_end)
                    break
                if target == start:
                    body.extend(self._backedge_stmts(start, pending, count_end))
                    break
                if target == count_end + 1:
                    # static jump to the next index — never a boundary,
                    # the superblock simply continues through it
                    if units >= MAX_BLOCK_LEN:
                        body.extend(_flush_lines(pending, self._packed))
                        body.append(_FLUSH)
                        body.append(_SYNC)
                        body.append("return %d" % target)
                        break
                    idx = target
                    continue
                body.extend(_flush_lines(pending, self._packed))
                body.append(_FLUSH)
                body.extend(_boundary_stmts(count_end, "%d" % target, self._packed))
                body.append(_SYNC)
                body.append("return %d" % target)
                break
            if units >= MAX_BLOCK_LEN:
                body.extend(_flush_lines(pending, self._packed))
                body.append(_FLUSH)
                body.append(_SYNC)
                body.append("return %d" % (count_end + 1))
                break
            idx = count_end + 1

        fn = self._assemble(start, body)
        self.blocks_compiled += 1
        self.units_compiled += units
        self.fallback_instrs += fallbacks
        return fn

    def _assemble(self, start, body):
        program = self.program
        body = _expand_flush(body, self._batch_site)
        # Register/flag caching pays for its prologue loads + exit
        # write-backs only when values are re-read many times — i.e.
        # when the block loops on itself (backedge ``continue``).
        if any(line.strip() == "continue" for line in body):
            prologue, body = _apply_reg_cache(body)
        else:
            prologue, body = [], _strip_sync(body)
        if self._batch_site is not None:
            prologue.append("_bn = 0")
        src = ("def _factory(%s):\n def _block():\n%s  while True:\n   %s\n"
               " return _block\n" % (", ".join(_FACTORY_PARAMS),
                                     "".join("  %s\n" % p for p in prologue),
                                     "\n   ".join(body)))
        namespace = {}
        code = compile(src, "<repro.sim.block:%s:%d>" % (program.isa, start), "exec")
        exec(code, EXEC_GLOBALS, namespace)
        trace = program.trace
        if self._packed:
            xm, ra = trace.mem.extend, trace.bounds.append
            xa = xs = sa = ea = None
        else:
            xm = ra = None
            xa, xs = trace.mem_addrs.extend, trace.mem_is_store.extend
            sa, ea = trace.run_starts.append, trace.run_ends.append
        return namespace["_factory"](
            program.handlers, program.regs, program.mem, program.flags,
            xm, xa, xs, ra, sa, ea,
            trace.flush_repeat, self.state,
            program.index_of, struct.unpack_from, struct.pack_into,
            trace.console, program.exit_code,
        )

    def run(self, limit):
        program = self.program
        state = self.state
        state[2] = limit
        blocks = self.blocks
        blocks_get = blocks.get
        hot = self.hot
        hot_get = hot.get
        handlers = program.handlers
        seq = program.seq_next
        boundary = program.trace.add_boundary
        prof = self.prof
        clock = time.perf_counter
        idx = 0
        try:
            while idx >= 0:
                fn = blocks_get(idx)
                if fn is None:
                    n = hot_get(idx, 0) + 1
                    if (n < COMPILE_THRESHOLD
                            or (self.units_compiled - COMPILE_FREE_UNITS)
                            * COMPILE_AMORT > state[1]):
                        # cold entry: interpret one run through the
                        # closures (identical bookkeeping to the
                        # closure engine) instead of paying codegen for
                        # code that may never repeat.
                        hot[idx] = n
                        if prof is not None:
                            entry, units0, t0 = idx, state[1], clock()
                        while True:
                            nxt = handlers[idx]()
                            straight = idx + 1 if seq is None else seq[idx]
                            if nxt == straight:
                                idx = nxt
                                continue
                            boundary(state[0], straight - 1)
                            state[1] += straight - state[0]
                            state[0] = nxt
                            idx = nxt
                            break
                        if prof is not None:
                            # throttled = hot enough to compile, but the
                            # amortization gate deferred the codegen
                            prof.interp(entry, state[1] - units0,
                                        clock() - t0,
                                        throttled=n >= COMPILE_THRESHOLD)
                        if state[1] > limit:
                            raise _budget_error(program, limit)
                        continue
                    if prof is None:
                        fn = self._compile_block(idx)
                    else:
                        scanned0, fb0, t0 = (self.units_compiled,
                                             self.fallback_instrs, clock())
                        fn = self._compile_block(idx)
                        prof.compiled(idx, clock() - t0,
                                      self.units_compiled - scanned0,
                                      self.fallback_instrs - fb0)
                    blocks[idx] = fn
                if prof is None:
                    idx = fn()
                else:
                    entry, units0, t0 = idx, state[1], clock()
                    idx = fn()
                    prof.call(entry, state[1] - units0, clock() - t0)
                # state[1] only moves at run boundaries, and a block
                # returns immediately after any boundary that crosses
                # the budget — so this raises at exactly the boundary
                # where the closure loop would.
                if state[1] > limit:
                    raise _budget_error(program, limit)
        except (struct.error, IndexError) as exc:
            raise _fault_error(program, idx, exc) from exc
        finally:
            if obs.enabled and self.blocks_compiled:
                obs.counter("sim.engine.blocks_compiled", self.blocks_compiled)
                obs.counter("sim.engine.units_compiled", self.units_compiled)
                obs.counter("sim.engine.fallback_instrs", self.fallback_instrs)
                obs.gauge("sim.engine.avg_block_len",
                          self.units_compiled / self.blocks_compiled)
