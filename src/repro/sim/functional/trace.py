"""Execution traces shared by the ARM and FITS functional simulators.

The trace is *columnar and run-length compressed*: the canonical form is
a **superblock table** (one row per distinct straight-line run — its
static start/end instruction indices) plus a **run-length execution
stream** of ``(superblock_id, iteration_count)`` segments.  Hot loops
collapse to one table row plus one segment, which is exactly what the
timing and cache replay passes want: per-block work is done once and
folded in weighted by iteration counts (see
:mod:`repro.sim.pipeline.timing` and
:func:`repro.sim.cache.stack.profile_spans_rle`).

The flat per-boundary view (``run_starts``/``run_ends``, one entry per
dynamic run) is still available as a lazily-materialized property —
``np.repeat`` over the segments — so every event-stream consumer keeps
working, and the two views are round-trip equivalent by construction
(property-tested in ``tests/test_trace_rle.py``).
"""

from array import array

import numpy as np

from repro.obs import core as obs

#: Boundary packing: one machine word per run boundary,
#: ``start * PACK + end``.  Static instruction indices are far below
#: 2**20 for every image this project builds (the engine guards this at
#: run start), so the packed form is exactly invertible and lets the
#: generated block code emit *one* array append per boundary instead of
#: two — and the run-length encoder segment on a single array compare.
PACK_SHIFT = 20
PACK = 1 << PACK_SHIFT
PACK_MASK = PACK - 1


def rle_encode(run_starts, run_ends, rep_index=(), rep_extra=()):
    """Run-length encode a per-boundary stream into the columnar form.

    Args:
        run_starts / run_ends: per-boundary static index arrays.
        rep_index / rep_extra: optional batched-repeat records from the
            block engine: the boundary at ``rep_index[i]`` stands for
            ``1 + rep_extra[i]`` consecutive identical boundaries.

    Returns:
        ``(block_starts, block_ends, seg_ids, seg_counts)`` — the
        superblock table (sorted by ``(start, end)``) and the segment
        stream; the exact per-boundary stream is recovered as
        ``np.repeat(block_starts[seg_ids], seg_counts)`` (same for
        ends).
    """
    rs = np.asarray(run_starts, dtype=np.int64)
    re = np.asarray(run_ends, dtype=np.int64)
    if len(rs) == 0:
        z = np.zeros(0, dtype=np.int64)
        return z, z.copy(), z.copy(), z.copy()
    # maximal segments of consecutive identical (start, end) boundaries
    change = np.empty(len(rs), dtype=bool)
    change[0] = True
    np.logical_or(rs[1:] != rs[:-1], re[1:] != re[:-1], out=change[1:])
    first = np.flatnonzero(change)
    seg_counts = np.diff(np.append(first, len(rs)))
    seg_starts = rs[first]
    seg_ends = re[first]
    if len(rep_index):
        # fold the engine's batched backedge repeats into their segments
        idx = np.asarray(rep_index, dtype=np.int64)
        extra = np.asarray(rep_extra, dtype=np.int64)
        seg_of = np.searchsorted(first, idx, side="right") - 1
        np.add.at(seg_counts, seg_of, extra)
    # the superblock table: distinct (start, end) pairs, sorted
    span = int(seg_ends.max()) + 1 if len(seg_ends) else 1
    keys = seg_starts * span + seg_ends
    uniq, seg_ids = np.unique(keys, return_inverse=True)
    block_starts = (uniq // span).astype(np.int64)
    block_ends = (uniq % span).astype(np.int64)
    return block_starts, block_ends, seg_ids.astype(np.int64), seg_counts


def rle_encode_packed(bounds, rep_index=(), rep_extra=()):
    """:func:`rle_encode` over the packed ``start*PACK + end`` stream.

    Identical output (the packed key *is* the ``(start, end)`` sort
    key), but segmentation and the table build need a single array
    compare instead of two.
    """
    b = np.asarray(bounds, dtype=np.int64)
    if len(b) == 0:
        z = np.zeros(0, dtype=np.int64)
        return z, z.copy(), z.copy(), z.copy()
    change = np.empty(len(b), dtype=bool)
    change[0] = True
    np.not_equal(b[1:], b[:-1], out=change[1:])
    first = np.flatnonzero(change)
    seg_counts = np.diff(np.append(first, len(b)))
    if len(rep_index):
        idx = np.asarray(rep_index, dtype=np.int64)
        extra = np.asarray(rep_extra, dtype=np.int64)
        seg_of = np.searchsorted(first, idx, side="right") - 1
        np.add.at(seg_counts, seg_of, extra)
    uniq, seg_ids = np.unique(b[first], return_inverse=True)
    return (uniq >> PACK_SHIFT, uniq & PACK_MASK,
            seg_ids.astype(np.int64), seg_counts)


class ExecutionResult:
    """Everything a completed functional simulation produced.

    Attributes:
        image: the executed :class:`~repro.compiler.link.Image` (or FITS
            equivalent).
        exit_code: value of r0 at the exit SWI.
        block_starts / block_ends: the superblock table — numpy int64
            arrays, one row per distinct straight-line run; row ``b``
            covers static instruction indices
            ``block_starts[b] .. block_ends[b]`` inclusive.
        seg_ids / seg_counts: the run-length execution stream — segment
            ``i`` executed superblock ``seg_ids[i]`` exactly
            ``seg_counts[i]`` consecutive times.
        run_starts / run_ends: flat per-boundary view (one entry per
            dynamic run), materialized lazily from the segments.
        mem_addrs: numpy uint32 array of data addresses in access order.
        mem_is_store: numpy uint8 array parallel to ``mem_addrs``.
        console: bytes written via the putc SWI.
        memory: final memory image (for checksum validation).

    Either representation may be supplied at construction; the other is
    derived on demand and the two are exactly equivalent.
    """

    def __init__(self, image, exit_code, run_starts=None, run_ends=None,
                 mem_addrs=(), mem_is_store=(), console=b"", memory=None,
                 block_starts=None, block_ends=None, seg_ids=None,
                 seg_counts=None, mem_packed=None):
        self.image = image
        self.exit_code = exit_code
        if mem_packed is not None:
            self._mem_packed = np.asarray(mem_packed, dtype=np.int64)
            self._mem_addrs = None
            self._mem_is_store = None
        else:
            self._mem_packed = None
            self._mem_addrs = np.asarray(mem_addrs, dtype=np.uint32)
            self._mem_is_store = np.asarray(mem_is_store, dtype=np.uint8)
        self.console = console
        self.memory = memory
        self._exec_counts = None
        if block_starts is not None:
            self._block_starts = np.asarray(block_starts, dtype=np.int64)
            self._block_ends = np.asarray(block_ends, dtype=np.int64)
            self._seg_ids = np.asarray(seg_ids, dtype=np.int64)
            self._seg_counts = np.asarray(seg_counts, dtype=np.int64)
            self._run_starts = None
            self._run_ends = None
        else:
            self._run_starts = np.asarray(run_starts, dtype=np.int64)
            self._run_ends = np.asarray(run_ends, dtype=np.int64)
            self._block_starts = None

    # --- memory-access stream (packed or split view) -------------------

    @property
    def mem_addrs(self):
        if self._mem_addrs is None:
            self._mem_addrs = (self._mem_packed >> 1).astype(np.uint32)
        return self._mem_addrs

    @property
    def mem_is_store(self):
        if self._mem_is_store is None:
            self._mem_is_store = (self._mem_packed & 1).astype(np.uint8)
        return self._mem_is_store

    @property
    def mem_packed(self):
        """The accesses as one int64 per record, ``addr*2 | is_store`` —
        the engine's native emission form and the store's disk form."""
        if self._mem_packed is None:
            self._mem_packed = (
                (self._mem_addrs.astype(np.int64) << 1)
                | self._mem_is_store.astype(np.int64))
        return self._mem_packed

    @property
    def num_mem_accesses(self):
        if self._mem_packed is not None:
            return len(self._mem_packed)
        return len(self._mem_addrs)

    # --- the two equivalent trace views --------------------------------

    def _ensure_rle(self):
        if self._block_starts is None:
            (self._block_starts, self._block_ends,
             self._seg_ids, self._seg_counts) = rle_encode(
                self._run_starts, self._run_ends)

    @property
    def block_starts(self):
        self._ensure_rle()
        return self._block_starts

    @property
    def block_ends(self):
        self._ensure_rle()
        return self._block_ends

    @property
    def seg_ids(self):
        self._ensure_rle()
        return self._seg_ids

    @property
    def seg_counts(self):
        self._ensure_rle()
        return self._seg_counts

    @property
    def run_starts(self):
        if self._run_starts is None:
            self._run_starts = np.repeat(
                self._block_starts[self._seg_ids], self._seg_counts)
        return self._run_starts

    @property
    def run_ends(self):
        if self._run_ends is None:
            self._run_ends = np.repeat(
                self._block_ends[self._seg_ids], self._seg_counts)
        return self._run_ends

    def block_totals(self):
        """Total iteration count per superblock (numpy int64)."""
        self._ensure_rle()
        totals = np.zeros(len(self._block_starts), dtype=np.int64)
        np.add.at(totals, self._seg_ids, self._seg_counts)
        return totals

    # --- derived counts ------------------------------------------------

    @property
    def num_runs(self):
        if self._run_starts is not None:
            return len(self._run_starts)
        return int(self._seg_counts.sum())

    @property
    def dynamic_instructions(self):
        """Total executed instruction count."""
        if self._block_starts is not None:
            lens = self._block_ends - self._block_starts + 1
            return int(np.dot(lens[self._seg_ids], self._seg_counts))
        return int(np.sum(self._run_ends - self._run_starts + 1))

    @property
    def num_static(self):
        """Static instruction count of the executed image (any ISA)."""
        if hasattr(self.image, "instrs"):
            return len(self.image.instrs)
        return len(self.image.halfwords)

    def exec_counts(self):
        """Per-static-instruction execution counts (numpy int64)."""
        if self._exec_counts is None:
            self._ensure_rle()
            totals = self.block_totals()
            n = self.num_static
            delta = np.zeros(n + 1, dtype=np.int64)
            np.add.at(delta, self._block_starts, totals)
            np.add.at(delta, self._block_ends + 1, -totals)
            self._exec_counts = np.cumsum(delta[:-1])
        return self._exec_counts

    def taken_counts(self):
        """Per-static-instruction counts of *taken* control transfers.

        A run ends at index ``i`` when the instruction at ``i``
        transferred control (or was the exit SWI); the count of runs
        ending at ``i`` is how many times it was taken.
        """
        self._ensure_rle()
        counts = np.zeros(self.num_static, dtype=np.int64)
        np.add.at(counts, self._block_ends, self.block_totals())
        return counts

    def read_word(self, addr):
        return int.from_bytes(self.memory[addr : addr + 4], "little")

    def read_bytes(self, addr, count):
        return bytes(self.memory[addr : addr + count])


class TraceBuilder:
    """Mutable accumulator used by simulators while executing.

    Backed by compact :mod:`array` buffers rather than Python lists,
    one machine word per record, in *packed* form: run boundaries are a
    single ``start*PACK + end`` stream and data accesses a single
    ``addr*2 | is_store`` stream, so the block engine's generated code
    pays one C-level append per boundary and one extend element per
    access.  A hot loop's self-backedge iterations are further batched
    into a single :meth:`flush_repeat` call (a local counter inside the
    generated block replaces the per-iteration append).
    :meth:`build_result` run-length encodes everything into the
    columnar :class:`ExecutionResult` once, vectorized.

    ``add_mem`` takes one already-packed ``addr*2 + is_store`` word —
    the per-instruction closure handlers bind it once and pay a single
    C-level append per access; here it *is* ``mem.append``.
    ``batch_boundaries``/``packed`` tell the block engine's codegen
    what this builder wants; the benchmark-only subclasses below opt
    out to reproduce the legacy per-boundary emission cost.
    """

    batch_boundaries = True
    packed = True

    def __init__(self):
        self.bounds = array("q")
        self.rep_index = array("q")
        self.rep_extra = array("q")
        self.mem = array("q")
        self.add_mem = self.mem.append
        self.console = bytearray()

    def add_boundary(self, start, end):
        """Record one run boundary (interpreted/closure path)."""
        self.bounds.append(start * PACK + end)

    def flush_repeat(self, start, end, count):
        """Record ``count`` consecutive identical ``(start, end)``
        boundaries batched by a generated block's backedge counter."""
        self.bounds.append(start * PACK + end)
        if count > 1:
            self.rep_index.append(len(self.bounds) - 1)
            self.rep_extra.append(count - 1)

    def build_result(self, image, exit_code, memory):
        """Run-length encode the accumulated trace into the columnar
        :class:`ExecutionResult` (one vectorized pass)."""
        bs, be, sid, sc = rle_encode_packed(self.bounds, self.rep_index,
                                            self.rep_extra)
        return ExecutionResult(
            image=image,
            exit_code=exit_code,
            mem_packed=self.mem,
            console=bytes(self.console),
            memory=memory,
            block_starts=bs, block_ends=be, seg_ids=sid, seg_counts=sc,
        )


class _Sink:
    """No-op stand-in for a trace array (measurement builders only)."""

    __slots__ = ()

    def append(self, _value):
        pass

    def extend(self, _values):
        pass

    def __len__(self):
        return 0


class NullTraceBuilder(TraceBuilder):
    """Discards every trace record — used by ``repro.bench`` to isolate
    the cost of trace emission from the cost of execution itself."""

    def __init__(self):
        TraceBuilder.__init__(self)
        self.bounds = _Sink()
        self.mem = _Sink()
        self.add_mem = self.mem.append

    def add_boundary(self, start, end):
        pass

    def flush_repeat(self, start, end, count):
        pass

    def build_result(self, image, exit_code, memory):
        return ExecutionResult(image=image, exit_code=exit_code,
                               console=bytes(self.console), memory=memory,
                               run_starts=(), run_ends=())


class EventTraceBuilder(TraceBuilder):
    """The pre-columnar emission strategy, preserved as the reference
    baseline: two array records per run boundary (batching disabled),
    split address/is-store arrays, and an event-primary result — the
    exact per-boundary cost and representation that ``repro.bench``'s
    trace section reports as the old pipeline, and that the property
    tests and ``scripts/verify.sh`` compare the columnar path against.
    """

    batch_boundaries = False
    packed = False

    def __init__(self):
        self.run_starts = array("q")
        self.run_ends = array("q")
        self.rep_index = array("q")
        self.rep_extra = array("q")
        self.mem_addrs = array("L")
        self.mem_is_store = array("b")
        self.console = bytearray()

    def add_boundary(self, start, end):
        self.run_starts.append(start)
        self.run_ends.append(end)

    def add_mem(self, packed_word):
        self.mem_addrs.append(packed_word >> 1)
        self.mem_is_store.append(packed_word & 1)

    def flush_repeat(self, start, end, count):
        self.run_starts.append(start)
        self.run_ends.append(end)
        if count > 1:
            self.rep_index.append(len(self.run_starts) - 1)
            self.rep_extra.append(count - 1)

    def build_result(self, image, exit_code, memory):
        if len(self.rep_index):
            bs, be, sid, sc = rle_encode(self.run_starts, self.run_ends,
                                         self.rep_index, self.rep_extra)
            return ExecutionResult(
                image=image, exit_code=exit_code,
                mem_addrs=self.mem_addrs, mem_is_store=self.mem_is_store,
                console=bytes(self.console), memory=memory,
                block_starts=bs, block_ends=be, seg_ids=sid, seg_counts=sc)
        return ExecutionResult(
            image=image,
            exit_code=exit_code,
            run_starts=np.asarray(self.run_starts, dtype=np.int64),
            run_ends=np.asarray(self.run_ends, dtype=np.int64),
            mem_addrs=self.mem_addrs,
            mem_is_store=self.mem_is_store,
            console=bytes(self.console),
            memory=memory,
        )


def _instr_kind(ins):
    """Histogram label for one static instruction (opcode over class)."""
    if ins is None:
        return "cont"  # continuation halfword (Thumb BL low half)
    op = getattr(ins, "op", None)
    name = getattr(op, "name", None)
    if name:
        return name
    return type(ins).__name__


def publish_result(prefix, result):
    """Feed one completed simulation into the observability layer.

    Called by every functional simulator after a run: records trace-level
    counters and — behind the ``REPRO_OBS_OPCODES`` sampling knob, since
    this walk is O(static instructions) — a per-opcode histogram of
    dynamic execution counts.
    """
    if not obs.enabled:
        return
    obs.counter(prefix + ".executions")
    obs.counter(prefix + ".instructions", result.dynamic_instructions)
    obs.counter(prefix + ".runs", result.num_runs)
    obs.counter(prefix + ".superblocks", len(result.block_starts))
    obs.counter(prefix + ".segments", len(result.seg_ids))
    obs.counter(prefix + ".mem_accesses", result.num_mem_accesses)
    if not obs.opcode_sampling():
        return
    image = result.image
    static = getattr(image, "instrs", None)
    if static is None:
        static = getattr(image, "instr_at", None)
    if static is None:
        static = getattr(image, "records", None)
    if static is None:
        return
    counts = result.exec_counts()
    hist = {}
    for i, ins in enumerate(static):
        kind = _instr_kind(ins)
        hist[kind] = hist.get(kind, 0) + int(counts[i])
    for kind, count in sorted(hist.items()):
        if count:
            obs.counter("%s.opcode.%s" % (prefix, kind), count)
