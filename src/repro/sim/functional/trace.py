"""Execution traces shared by the ARM and FITS functional simulators.

The trace is *run-compressed*: instead of one record per executed
instruction, it stores one record per straight-line run (the dynamic
stretch between taken control transfers).  Runs are exactly what the
timing and power models want — per-run work is O(runs), not
O(instructions) — and per-instruction execution counts fall out of a
prefix-sum over run boundaries.
"""

from array import array

import numpy as np

from repro.obs import core as obs


class ExecutionResult:
    """Everything a completed functional simulation produced.

    Attributes:
        image: the executed :class:`~repro.compiler.link.Image` (or FITS
            equivalent).
        exit_code: value of r0 at the exit SWI.
        run_starts / run_ends: numpy int64 arrays of static instruction
            indices; run ``k`` executed instructions
            ``run_starts[k] .. run_ends[k]`` inclusive, and ended either
            with a taken control transfer or program exit.
        mem_addrs: numpy uint32 array of data addresses in access order.
        mem_is_store: numpy uint8 array parallel to ``mem_addrs``.
        console: bytes written via the putc SWI.
        memory: final memory image (for checksum validation).
    """

    def __init__(self, image, exit_code, run_starts, run_ends, mem_addrs, mem_is_store, console, memory):
        self.image = image
        self.exit_code = exit_code
        self.run_starts = np.asarray(run_starts, dtype=np.int64)
        self.run_ends = np.asarray(run_ends, dtype=np.int64)
        self.mem_addrs = np.asarray(mem_addrs, dtype=np.uint32)
        self.mem_is_store = np.asarray(mem_is_store, dtype=np.uint8)
        self.console = console
        self.memory = memory
        self._exec_counts = None

    @property
    def num_runs(self):
        return len(self.run_starts)

    @property
    def dynamic_instructions(self):
        """Total executed instruction count."""
        return int(np.sum(self.run_ends - self.run_starts + 1))

    @property
    def num_static(self):
        """Static instruction count of the executed image (any ISA)."""
        if hasattr(self.image, "instrs"):
            return len(self.image.instrs)
        return len(self.image.halfwords)

    def exec_counts(self):
        """Per-static-instruction execution counts (numpy int64)."""
        if self._exec_counts is None:
            n = self.num_static
            delta = np.zeros(n + 1, dtype=np.int64)
            np.add.at(delta, self.run_starts, 1)
            np.add.at(delta, self.run_ends + 1, -1)
            self._exec_counts = np.cumsum(delta[:-1])
        return self._exec_counts

    def taken_counts(self):
        """Per-static-instruction counts of *taken* control transfers.

        A run ends at index ``i`` when the instruction at ``i``
        transferred control (or was the exit SWI); the count of runs
        ending at ``i`` is how many times it was taken.
        """
        counts = np.zeros(self.num_static, dtype=np.int64)
        np.add.at(counts, self.run_ends, 1)
        return counts

    def read_word(self, addr):
        return int.from_bytes(self.memory[addr : addr + 4], "little")

    def read_bytes(self, addr, count):
        return bytes(self.memory[addr : addr + count])


class TraceBuilder:
    """Mutable accumulator used by simulators while executing.

    Backed by compact :mod:`array` buffers rather than Python lists:
    one machine word per record instead of a pointer to a boxed int,
    which cuts peak memory on full-scale runs and converts to the
    :class:`ExecutionResult` numpy arrays (and the trace store's
    ``.npz`` payload) without per-element boxing.  The block engine
    appends via ``extend`` with batched per-block tuples; the closure
    engine appends per boundary — both against this same API.
    """

    def __init__(self):
        self.run_starts = array("q")
        self.run_ends = array("q")
        self.mem_addrs = array("L")
        self.mem_is_store = array("b")
        self.console = bytearray()


def _instr_kind(ins):
    """Histogram label for one static instruction (opcode over class)."""
    if ins is None:
        return "cont"  # continuation halfword (Thumb BL low half)
    op = getattr(ins, "op", None)
    name = getattr(op, "name", None)
    if name:
        return name
    return type(ins).__name__


def publish_result(prefix, result):
    """Feed one completed simulation into the observability layer.

    Called by every functional simulator after a run: records trace-level
    counters and — behind the ``REPRO_OBS_OPCODES`` sampling knob, since
    this walk is O(static instructions) — a per-opcode histogram of
    dynamic execution counts.
    """
    if not obs.enabled:
        return
    obs.counter(prefix + ".executions")
    obs.counter(prefix + ".instructions", result.dynamic_instructions)
    obs.counter(prefix + ".runs", result.num_runs)
    obs.counter(prefix + ".mem_accesses", len(result.mem_addrs))
    if not obs.opcode_sampling():
        return
    image = result.image
    static = getattr(image, "instrs", None)
    if static is None:
        static = getattr(image, "instr_at", None)
    if static is None:
        static = getattr(image, "records", None)
    if static is None:
        return
    counts = result.exec_counts()
    hist = {}
    for i, ins in enumerate(static):
        kind = _instr_kind(ins)
        hist[kind] = hist.get(kind, 0) + int(counts[i])
    for kind, count in sorted(hist.items()):
        if count:
            obs.counter("%s.opcode.%s" % (prefix, kind), count)
