"""Functional Thumb simulator (validates the Thumb back end).

Same closure-compiled design as the ARM simulator, over halfword
indices.  Only the flag behaviour our generated code relies on is
modelled: the compare instructions set NZCV, conditional branches read
them.  (Real Thumb ALU ops also set flags; our back end never reads
those, so modelling them would be dead weight.)
"""

import struct

from repro.isa.thumb.model import (
    TAdjustSp,
    TAlu,
    TAluOp,
    TAddSub,
    TBranch,
    TBranchLink,
    TCond,
    TCondBranch,
    TLoadStoreImm,
    TLoadStoreReg,
    TLoadStoreSpRel,
    TMovCmpAddSubImm,
    TPushPop,
    TShiftImm,
    TSwi,
)
from repro.obs import core as obs
from repro.sim.functional import engine
from repro.sim.functional.engine import COND_EXPR, Emitted, SimulationError, emit_mem
from repro.sim.functional.trace import TraceBuilder, publish_result

M32 = 0xFFFFFFFF


class ThumbSimulator:
    """Executes a linked :class:`~repro.compiler.thumb_backend.ThumbImage`."""

    def __init__(self, image, max_instructions=200_000_000, engine=None):
        self.image = image
        self.max_instructions = max_instructions
        self.engine = engine

    def run(self):
        if not obs.enabled:
            return self._run()
        with obs.span("stage.simulate", isa="thumb", image=self.image.name):
            result = self._run()
        publish_result("sim.thumb", result)
        return result

    def _run(self):
        program = build_program(self.image)
        return engine.execute(program, self.max_instructions, self.engine)


def build_program(image):
    """Fresh per-run :class:`~repro.sim.functional.engine.Program`."""
    regs = [0] * 16
    regs[13] = image.stack_top
    mem = image.initial_memory()
    flags = [False, False, False, False]
    trace = TraceBuilder()
    exit_code = [None]
    handlers = _compile(image, regs, mem, flags, trace, exit_code)
    instr_at = image.instr_at
    return engine.Program(
        image=image,
        isa="thumb",
        handlers=handlers,
        regs=regs,
        mem=mem,
        flags=flags,
        trace=trace,
        exit_code=exit_code,
        emit=lambda idx: _emit(instr_at[idx], idx, image),
    )


def _check(cond, flags):
    table = {
        TCond.EQ: lambda: flags[1],
        TCond.NE: lambda: not flags[1],
        TCond.CS: lambda: flags[2],
        TCond.CC: lambda: not flags[2],
        TCond.MI: lambda: flags[0],
        TCond.PL: lambda: not flags[0],
        TCond.VS: lambda: flags[3],
        TCond.VC: lambda: not flags[3],
        TCond.HI: lambda: flags[2] and not flags[1],
        TCond.LS: lambda: not flags[2] or flags[1],
        TCond.GE: lambda: flags[0] == flags[3],
        TCond.LT: lambda: flags[0] != flags[3],
        TCond.GT: lambda: not flags[1] and flags[0] == flags[3],
        TCond.LE: lambda: flags[1] or flags[0] != flags[3],
    }
    return table[cond]


def _set_cmp(flags, a, b):
    r = (a - b) & M32
    flags[0] = bool(r & 0x80000000)
    flags[1] = r == 0
    flags[2] = a >= b
    flags[3] = bool((a ^ b) & (a ^ r) & 0x80000000)


def _compile(image, regs, mem, flags, trace, exit_code):
    handlers = []
    mm = trace.add_mem
    unpack_from = struct.unpack_from
    pack_into = struct.pack_into

    for idx, ins in enumerate(image.instr_at):
        nxt = idx + 1
        if ins is None:
            handlers.append(None)  # lo half of bl, never executed directly
            continue
        if isinstance(ins, TShiftImm):
            rd, rm, n, op = ins.rd, ins.rm, ins.imm5, ins.op
            if op == "lsl":
                def h(rd=rd, rm=rm, n=n, nxt=nxt):
                    regs[rd] = (regs[rm] << n) & M32
                    return nxt
            elif op == "lsr":
                def h(rd=rd, rm=rm, n=n, nxt=nxt):
                    regs[rd] = regs[rm] >> n if n else 0
                    return nxt
            else:
                def h(rd=rd, rm=rm, n=n, nxt=nxt):
                    v = regs[rm]
                    if n == 0:
                        regs[rd] = M32 if v & 0x80000000 else 0
                    elif v & 0x80000000:
                        regs[rd] = (v >> n) | (((1 << n) - 1) << (32 - n))
                    else:
                        regs[rd] = v >> n
                    return nxt
        elif isinstance(ins, TAddSub):
            rd, rn, val, imm, sub = ins.rd, ins.rn, ins.value, ins.imm, ins.sub
            if imm:
                if sub:
                    def h(rd=rd, rn=rn, val=val, nxt=nxt):
                        regs[rd] = (regs[rn] - val) & M32
                        return nxt
                else:
                    def h(rd=rd, rn=rn, val=val, nxt=nxt):
                        regs[rd] = (regs[rn] + val) & M32
                        return nxt
            else:
                if sub:
                    def h(rd=rd, rn=rn, val=val, nxt=nxt):
                        regs[rd] = (regs[rn] - regs[val]) & M32
                        return nxt
                else:
                    def h(rd=rd, rn=rn, val=val, nxt=nxt):
                        regs[rd] = (regs[rn] + regs[val]) & M32
                        return nxt
        elif isinstance(ins, TMovCmpAddSubImm):
            rd, imm, op = ins.rd, ins.imm8, ins.op
            if op == "mov":
                def h(rd=rd, imm=imm, nxt=nxt):
                    regs[rd] = imm
                    return nxt
            elif op == "cmp":
                def h(rd=rd, imm=imm, nxt=nxt):
                    _set_cmp(flags, regs[rd], imm)
                    return nxt
            elif op == "add":
                def h(rd=rd, imm=imm, nxt=nxt):
                    regs[rd] = (regs[rd] + imm) & M32
                    return nxt
            else:
                def h(rd=rd, imm=imm, nxt=nxt):
                    regs[rd] = (regs[rd] - imm) & M32
                    return nxt
        elif isinstance(ins, TAlu):
            h = _compile_alu(ins, nxt, regs, flags)
        elif isinstance(ins, TLoadStoreImm):
            h = _compile_ls(ins.load, ins.rd, ins.rn, ins.offset, None, ins.width, False,
                            nxt, regs, mem, mm, unpack_from, pack_into)
        elif isinstance(ins, TLoadStoreReg):
            h = _compile_ls(ins.load, ins.rd, ins.rn, None, ins.rm, ins.width, ins.signed,
                            nxt, regs, mem, mm, unpack_from, pack_into)
        elif isinstance(ins, TLoadStoreSpRel):
            off, rd = ins.offset, ins.rd
            if ins.load:
                def h(rd=rd, off=off, nxt=nxt):
                    addr = (regs[13] + off) & M32
                    mm(addr + addr)
                    regs[rd] = unpack_from("<I", mem, addr)[0]
                    return nxt
            else:
                def h(rd=rd, off=off, nxt=nxt):
                    addr = (regs[13] + off) & M32
                    mm(addr + addr + 1)
                    pack_into("<I", mem, addr, regs[rd])
                    return nxt
        elif isinstance(ins, TAdjustSp):
            delta = ins.delta

            def h(delta=delta, nxt=nxt):
                regs[13] = (regs[13] + delta) & M32
                return nxt
        elif isinstance(ins, TPushPop):
            h = _compile_pushpop(ins, idx, nxt, image, regs, mem, mm, unpack_from, pack_into)
        elif isinstance(ins, TCondBranch):
            target = ins.target_index(idx)
            check = _check(ins.cond, flags)

            def h(target=target, check=check, nxt=nxt):
                return target if check() else nxt
        elif isinstance(ins, TBranch):
            target = ins.target_index(idx)

            def h(target=target):
                return target
        elif isinstance(ins, TBranchLink):
            target = ins.target_index(idx)
            ret_addr = image.addr_of_index(idx) + 4

            def h(target=target, ret_addr=ret_addr):
                regs[14] = ret_addr
                return target
        elif isinstance(ins, TSwi):
            if ins.imm8 == 0:
                def h():
                    exit_code[0] = regs[0]
                    return -1
            elif ins.imm8 == 1:
                def h(nxt=nxt):
                    trace.console.append(regs[0] & 0xFF)
                    return nxt
            else:
                raise SimulationError("unknown thumb SWI #%d" % ins.imm8)
        else:
            raise SimulationError("cannot execute %r" % (ins,))
        handlers.append(h)
    return handlers


def _compile_alu(ins, nxt, regs, flags):
    rd, rm, op = ins.rd, ins.rm, ins.op
    simple = {
        TAluOp.AND: lambda a, b: a & b,
        TAluOp.EOR: lambda a, b: a ^ b,
        TAluOp.ORR: lambda a, b: a | b,
        TAluOp.BIC: lambda a, b: a & ~b & M32,
        TAluOp.MUL: lambda a, b: (a * b) & M32,
        TAluOp.MVN: lambda a, b: b ^ M32,
        TAluOp.NEG: lambda a, b: (-b) & M32,
    }
    if op in simple:
        fn = simple[op]

        def h(rd=rd, rm=rm, fn=fn, nxt=nxt):
            regs[rd] = fn(regs[rd], regs[rm])
            return nxt

        return h
    if op is TAluOp.CMP:
        def h(rd=rd, rm=rm, nxt=nxt):
            _set_cmp(flags, regs[rd], regs[rm])
            return nxt
        return h
    if op is TAluOp.CMN:
        def h(rd=rd, rm=rm, nxt=nxt):
            a, b = regs[rd], regs[rm]
            total = a + b
            r = total & M32
            flags[0] = bool(r & 0x80000000)
            flags[1] = r == 0
            flags[2] = total > M32
            flags[3] = bool(~(a ^ b) & (a ^ r) & 0x80000000)
            return nxt
        return h
    if op is TAluOp.TST:
        def h(rd=rd, rm=rm, nxt=nxt):
            r = regs[rd] & regs[rm]
            flags[0] = bool(r & 0x80000000)
            flags[1] = r == 0
            return nxt
        return h
    if op in (TAluOp.LSL, TAluOp.LSR, TAluOp.ASR, TAluOp.ROR):
        kind = op

        def h(rd=rd, rm=rm, kind=kind, nxt=nxt):
            amount = regs[rm] & 0xFF
            v = regs[rd]
            if kind is TAluOp.LSL:
                regs[rd] = (v << amount) & M32 if amount < 32 else 0
            elif kind is TAluOp.LSR:
                regs[rd] = v >> amount if amount < 32 else 0
            elif kind is TAluOp.ASR:
                if amount >= 32:
                    regs[rd] = M32 if v & 0x80000000 else 0
                elif v & 0x80000000:
                    regs[rd] = (v >> amount) | (((1 << amount) - 1) << (32 - amount))
                else:
                    regs[rd] = v >> amount
            else:
                amount &= 31
                regs[rd] = ((v >> amount) | (v << (32 - amount))) & M32 if amount else v
            return nxt

        return h
    raise SimulationError("unsupported thumb ALU op %s" % op.name)


def _compile_ls(load, rd, rn, off_imm, rm, width, signed, nxt, regs, mem, mm, unpack_from, pack_into):
    if off_imm is not None:
        def ea(rn=rn, off=off_imm):
            return (regs[rn] + off) & M32
    else:
        def ea(rn=rn, rm=rm):
            return (regs[rn] + regs[rm]) & M32

    if load:
        if width == 4:
            def h():
                addr = ea()
                mm(addr + addr)
                regs[rd] = unpack_from("<I", mem, addr)[0]
                return nxt
        elif width == 2:
            if signed:
                def h():
                    addr = ea()
                    mm(addr + addr)
                    regs[rd] = unpack_from("<h", mem, addr)[0] & M32
                    return nxt
            else:
                def h():
                    addr = ea()
                    mm(addr + addr)
                    regs[rd] = unpack_from("<H", mem, addr)[0]
                    return nxt
        else:
            if signed:
                def h():
                    addr = ea()
                    mm(addr + addr)
                    v = mem[addr]
                    regs[rd] = v | 0xFFFFFF00 if v & 0x80 else v
                    return nxt
            else:
                def h():
                    addr = ea()
                    mm(addr + addr)
                    regs[rd] = mem[addr]
                    return nxt
    else:
        if width == 4:
            def h():
                addr = ea()
                mm(addr + addr + 1)
                pack_into("<I", mem, addr, regs[rd])
                return nxt
        elif width == 2:
            def h():
                addr = ea()
                mm(addr + addr + 1)
                pack_into("<H", mem, addr, regs[rd] & 0xFFFF)
                return nxt
        else:
            def h():
                addr = ea()
                mm(addr + addr + 1)
                mem[addr] = regs[rd] & 0xFF
                return nxt
    return h


def _compile_pushpop(ins, idx, nxt, image, regs, mem, mm, unpack_from, pack_into):
    reglist = list(ins.reglist)
    if ins.pop:
        index_of = image.index_of_addr

        def h(reglist=tuple(reglist), extra=ins.extra, nxt=nxt):
            sp = regs[13]
            for r in reglist:
                mm(sp + sp)
                regs[r] = unpack_from("<I", mem, sp)[0]
                sp += 4
            target = nxt
            if extra:
                mm(sp + sp)
                pc = unpack_from("<I", mem, sp)[0]
                sp += 4
                target = index_of(pc)
            regs[13] = sp
            return target
    else:
        def h(reglist=tuple(reglist), extra=ins.extra, nxt=nxt):
            count = len(reglist) + (1 if extra else 0)
            sp = regs[13] - 4 * count
            regs[13] = sp
            for r in reglist:
                mm(sp + sp + 1)
                pack_into("<I", mem, sp, regs[r])
                sp += 4
            if extra:
                mm(sp + sp + 1)
                pack_into("<I", mem, sp, regs[14])
            return nxt
    return h


# ----------------------------------------------------------------------
# block-engine source templates (mirroring the closures above 1:1)


_ALU_EXPR = {
    TAluOp.AND: "regs[%(rd)d] & regs[%(rm)d]",
    TAluOp.EOR: "regs[%(rd)d] ^ regs[%(rm)d]",
    TAluOp.ORR: "regs[%(rd)d] | regs[%(rm)d]",
    TAluOp.BIC: "regs[%(rd)d] & ~regs[%(rm)d] & 4294967295",
    TAluOp.MUL: "(regs[%(rd)d] * regs[%(rm)d]) & 4294967295",
    TAluOp.MVN: "regs[%(rm)d] ^ 4294967295",
    TAluOp.NEG: "(-regs[%(rm)d]) & 4294967295",
}

_DYN_SHIFT_NAME = {TAluOp.LSL: "LSL", TAluOp.LSR: "LSR",
                   TAluOp.ASR: "ASR", TAluOp.ROR: "ROR"}


def _cmp_lines(t, a_expr, b_expr):
    """Inline :func:`_set_cmp` on two already-safe expressions."""
    x, y, r = "_x" + t, "_y" + t, "_r" + t
    return [
        "%s = %s" % (x, a_expr),
        "%s = %s" % (y, b_expr),
        "%s = (%s - %s) & 4294967295" % (r, x, y),
        "flags[0] = %s >= 2147483648" % r,
        "flags[1] = %s == 0" % r,
        "flags[2] = %s >= %s" % (x, y),
        "flags[3] = ((%s ^ %s) & (%s ^ %s) & 2147483648) != 0" % (x, y, x, r),
    ]


def _emit_shift_imm(ins, idx):
    rd, rm, n = ins.rd, ins.rm, ins.imm5
    if ins.op == "lsl":
        return Emitted(["regs[%d] = (regs[%d] << %d) & 4294967295" % (rd, rm, n)])
    if ins.op == "lsr":
        if n:
            return Emitted(["regs[%d] = regs[%d] >> %d" % (rd, rm, n)])
        return Emitted(["regs[%d] = 0" % rd])
    # asr
    if n == 0:
        return Emitted(
            ["regs[%d] = 4294967295 if regs[%d] & 2147483648 else 0" % (rd, rm)])
    mask = ((1 << n) - 1) << (32 - n)
    v = "_v%d" % idx
    return Emitted([
        "%s = regs[%d]" % (v, rm),
        "regs[%d] = ((%s >> %d) | %d) if %s & 2147483648 else (%s >> %d)"
        % (rd, v, n, mask, v, v, n),
    ])


def _emit_alu(ins, idx):
    rd, rm, op = ins.rd, ins.rm, ins.op
    pattern = _ALU_EXPR.get(op)
    if pattern is not None:
        return Emitted(["regs[%d] = %s" % (rd, pattern % {"rd": rd, "rm": rm})])
    t = "%d" % idx
    if op is TAluOp.CMP:
        return Emitted(_cmp_lines(t, "regs[%d]" % rd, "regs[%d]" % rm))
    if op is TAluOp.CMN:
        x, y, tot, r = "_x" + t, "_y" + t, "_t" + t, "_r" + t
        return Emitted([
            "%s = regs[%d]" % (x, rd),
            "%s = regs[%d]" % (y, rm),
            "%s = %s + %s" % (tot, x, y),
            "%s = %s & 4294967295" % (r, tot),
            "flags[0] = %s >= 2147483648" % r,
            "flags[1] = %s == 0" % r,
            "flags[2] = %s > 4294967295" % tot,
            "flags[3] = (~(%s ^ %s) & (%s ^ %s) & 2147483648) != 0" % (x, y, x, r),
        ])
    if op is TAluOp.TST:
        r = "_r" + t
        return Emitted([
            "%s = regs[%d] & regs[%d]" % (r, rd, rm),
            "flags[0] = %s >= 2147483648" % r,
            "flags[1] = %s == 0" % r,
        ])
    name = _DYN_SHIFT_NAME.get(op)
    if name is None:
        return None
    return Emitted(["regs[%d] = dyn_shift(regs[%d], %s, regs[%d] & 255)"
                    % (rd, rd, name, rm)])


def _emit_pushpop(ins, idx):
    reglist = tuple(ins.reglist)
    t = "%d" % idx
    lines = []
    addrs = []
    if ins.pop:
        lines.append("_a%s_0 = regs[13]" % t)
        cursor = "_a%s_0" % t
        for j, r in enumerate(reglist):
            if j:
                cursor = "_a%s_%d" % (t, j)
                lines.append("%s = _a%s_%d + 4" % (cursor, t, j - 1))
            lines.append("regs[%d] = unpack_from(\"<I\", mem, %s)[0]" % (r, cursor))
            addrs.append((cursor, 0))
        if ins.extra:
            pc_cursor = "_a%s_%d" % (t, len(reglist))
            if reglist:
                lines.append("%s = %s + 4" % (pc_cursor, cursor))
            else:
                lines.append("%s = regs[13]" % pc_cursor)
            lines.append("_t%s = index_of(unpack_from(\"<I\", mem, %s)[0])"
                         % (t, pc_cursor))
            addrs.append((pc_cursor, 0))
            lines.append("regs[13] = %s + 4" % pc_cursor)
            return Emitted(lines, addrs=tuple(addrs), nxt="_t%s" % t)
        lines.append("regs[13] = %s + 4" % cursor)
        return Emitted(lines, addrs=tuple(addrs))
    count = len(reglist) + (1 if ins.extra else 0)
    lines.append("_a%s_0 = regs[13] - %d" % (t, 4 * count))
    lines.append("regs[13] = _a%s_0" % t)
    cursor = "_a%s_0" % t
    store_regs = list(reglist) + ([14] if ins.extra else [])
    for j, r in enumerate(store_regs):
        if j:
            cursor = "_a%s_%d" % (t, j)
            lines.append("%s = _a%s_%d + 4" % (cursor, t, j - 1))
        lines.append("pack_into(\"<I\", mem, %s, regs[%d])" % (cursor, r))
        addrs.append((cursor, 1))
    return Emitted(lines, addrs=tuple(addrs))


def _emit(ins, idx, image):
    """Block-engine template for one instruction, or None (fallback)."""
    if ins is None:
        return None  # bl continuation halfword, never executed directly
    if isinstance(ins, TShiftImm):
        return _emit_shift_imm(ins, idx)
    if isinstance(ins, TAddSub):
        rd, rn, val = ins.rd, ins.rn, ins.value
        operand = "%d" % val if ins.imm else "regs[%d]" % val
        sign = "-" if ins.sub else "+"
        return Emitted(["regs[%d] = (regs[%d] %s %s) & 4294967295"
                        % (rd, rn, sign, operand)])
    if isinstance(ins, TMovCmpAddSubImm):
        rd, imm = ins.rd, ins.imm8
        if ins.op == "mov":
            return Emitted(["regs[%d] = %d" % (rd, imm)])
        if ins.op == "cmp":
            return Emitted(_cmp_lines("%d" % idx, "regs[%d]" % rd, "%d" % imm))
        sign = "+" if ins.op == "add" else "-"
        return Emitted(["regs[%d] = (regs[%d] %s %d) & 4294967295"
                        % (rd, rd, sign, imm)])
    if isinstance(ins, TAlu):
        return _emit_alu(ins, idx)
    if isinstance(ins, TLoadStoreImm):
        ea = "(regs[%d] + %d) & 4294967295" % (ins.rn, ins.offset)
        return emit_mem(ins.load, ins.width, False, ins.rd, ea, "_a%d" % idx)
    if isinstance(ins, TLoadStoreReg):
        ea = "(regs[%d] + regs[%d]) & 4294967295" % (ins.rn, ins.rm)
        return emit_mem(ins.load, ins.width, ins.signed, ins.rd, ea, "_a%d" % idx)
    if isinstance(ins, TLoadStoreSpRel):
        ea = "(regs[13] + %d) & 4294967295" % ins.offset
        return emit_mem(ins.load, 4, False, ins.rd, ea, "_a%d" % idx)
    if isinstance(ins, TAdjustSp):
        return Emitted(["regs[13] = (regs[13] + %d) & 4294967295" % ins.delta])
    if isinstance(ins, TPushPop):
        return _emit_pushpop(ins, idx)
    if isinstance(ins, TCondBranch):
        return Emitted([], nxt="%d" % ins.target_index(idx),
                       cond=COND_EXPR[ins.cond.name])
    if isinstance(ins, TBranch):
        return Emitted([], nxt="%d" % ins.target_index(idx))
    if isinstance(ins, TBranchLink):
        target = ins.target_index(idx)
        ret_addr = image.addr_of_index(idx) + 4
        return Emitted(["regs[14] = %d" % ret_addr], nxt="%d" % target)
    if isinstance(ins, TSwi):
        if ins.imm8 == 0:
            return Emitted(["exit_code[0] = regs[0]"], nxt="-1")
        if ins.imm8 == 1:
            return Emitted(["console.append(regs[0] & 255)"])
        return None
    return None
