"""Functional Thumb simulator (validates the Thumb back end).

Same closure-compiled design as the ARM simulator, over halfword
indices.  Only the flag behaviour our generated code relies on is
modelled: the compare instructions set NZCV, conditional branches read
them.  (Real Thumb ALU ops also set flags; our back end never reads
those, so modelling them would be dead weight.)
"""

import struct

from repro.isa.thumb.model import (
    TAdjustSp,
    TAlu,
    TAluOp,
    TAddSub,
    TBranch,
    TBranchLink,
    TCond,
    TCondBranch,
    TLoadStoreImm,
    TLoadStoreReg,
    TLoadStoreSpRel,
    TMovCmpAddSubImm,
    TPushPop,
    TShiftImm,
    TSwi,
)
from repro.obs import core as obs
from repro.sim.functional.trace import ExecutionResult, TraceBuilder, publish_result
from repro.sim.functional.arm_sim import SimulationError

M32 = 0xFFFFFFFF


class ThumbSimulator:
    """Executes a linked :class:`~repro.compiler.thumb_backend.ThumbImage`."""

    def __init__(self, image, max_instructions=200_000_000):
        self.image = image
        self.max_instructions = max_instructions

    def run(self):
        if not obs.enabled:
            return self._run()
        with obs.span("stage.simulate", isa="thumb", image=self.image.name):
            result = self._run()
        publish_result("sim.thumb", result)
        return result

    def _run(self):
        image = self.image
        regs = [0] * 16
        regs[13] = image.stack_top
        mem = image.initial_memory()
        flags = [False, False, False, False]
        trace = TraceBuilder()
        exit_code = [None]
        handlers = _compile(image, regs, mem, flags, trace, exit_code)

        starts_append = trace.run_starts.append
        ends_append = trace.run_ends.append
        idx = 0
        run_start = 0
        executed = 0
        try:
            while idx >= 0:
                nxt = handlers[idx]()
                if nxt == idx + 1:
                    idx = nxt
                    continue
                starts_append(run_start)
                ends_append(idx)
                executed += idx - run_start + 1
                if executed > self.max_instructions:
                    raise SimulationError("instruction budget exceeded in %s" % image.name)
                idx = nxt
                run_start = nxt
        except (struct.error, IndexError) as exc:
            raise SimulationError("thumb memory fault near index %d: %s" % (idx, exc)) from exc

        return ExecutionResult(
            image=image,
            exit_code=exit_code[0],
            run_starts=trace.run_starts,
            run_ends=trace.run_ends,
            mem_addrs=trace.mem_addrs,
            mem_is_store=trace.mem_is_store,
            console=bytes(trace.console),
            memory=mem,
        )


def _check(cond, flags):
    table = {
        TCond.EQ: lambda: flags[1],
        TCond.NE: lambda: not flags[1],
        TCond.CS: lambda: flags[2],
        TCond.CC: lambda: not flags[2],
        TCond.MI: lambda: flags[0],
        TCond.PL: lambda: not flags[0],
        TCond.VS: lambda: flags[3],
        TCond.VC: lambda: not flags[3],
        TCond.HI: lambda: flags[2] and not flags[1],
        TCond.LS: lambda: not flags[2] or flags[1],
        TCond.GE: lambda: flags[0] == flags[3],
        TCond.LT: lambda: flags[0] != flags[3],
        TCond.GT: lambda: not flags[1] and flags[0] == flags[3],
        TCond.LE: lambda: flags[1] or flags[0] != flags[3],
    }
    return table[cond]


def _set_cmp(flags, a, b):
    r = (a - b) & M32
    flags[0] = bool(r & 0x80000000)
    flags[1] = r == 0
    flags[2] = a >= b
    flags[3] = bool((a ^ b) & (a ^ r) & 0x80000000)


def _compile(image, regs, mem, flags, trace, exit_code):
    handlers = []
    ma = trace.mem_addrs.append
    ms = trace.mem_is_store.append
    unpack_from = struct.unpack_from
    pack_into = struct.pack_into

    for idx, ins in enumerate(image.instr_at):
        nxt = idx + 1
        if ins is None:
            handlers.append(None)  # lo half of bl, never executed directly
            continue
        if isinstance(ins, TShiftImm):
            rd, rm, n, op = ins.rd, ins.rm, ins.imm5, ins.op
            if op == "lsl":
                def h(rd=rd, rm=rm, n=n, nxt=nxt):
                    regs[rd] = (regs[rm] << n) & M32
                    return nxt
            elif op == "lsr":
                def h(rd=rd, rm=rm, n=n, nxt=nxt):
                    regs[rd] = regs[rm] >> n if n else 0
                    return nxt
            else:
                def h(rd=rd, rm=rm, n=n, nxt=nxt):
                    v = regs[rm]
                    if n == 0:
                        regs[rd] = M32 if v & 0x80000000 else 0
                    elif v & 0x80000000:
                        regs[rd] = (v >> n) | (((1 << n) - 1) << (32 - n))
                    else:
                        regs[rd] = v >> n
                    return nxt
        elif isinstance(ins, TAddSub):
            rd, rn, val, imm, sub = ins.rd, ins.rn, ins.value, ins.imm, ins.sub
            if imm:
                if sub:
                    def h(rd=rd, rn=rn, val=val, nxt=nxt):
                        regs[rd] = (regs[rn] - val) & M32
                        return nxt
                else:
                    def h(rd=rd, rn=rn, val=val, nxt=nxt):
                        regs[rd] = (regs[rn] + val) & M32
                        return nxt
            else:
                if sub:
                    def h(rd=rd, rn=rn, val=val, nxt=nxt):
                        regs[rd] = (regs[rn] - regs[val]) & M32
                        return nxt
                else:
                    def h(rd=rd, rn=rn, val=val, nxt=nxt):
                        regs[rd] = (regs[rn] + regs[val]) & M32
                        return nxt
        elif isinstance(ins, TMovCmpAddSubImm):
            rd, imm, op = ins.rd, ins.imm8, ins.op
            if op == "mov":
                def h(rd=rd, imm=imm, nxt=nxt):
                    regs[rd] = imm
                    return nxt
            elif op == "cmp":
                def h(rd=rd, imm=imm, nxt=nxt):
                    _set_cmp(flags, regs[rd], imm)
                    return nxt
            elif op == "add":
                def h(rd=rd, imm=imm, nxt=nxt):
                    regs[rd] = (regs[rd] + imm) & M32
                    return nxt
            else:
                def h(rd=rd, imm=imm, nxt=nxt):
                    regs[rd] = (regs[rd] - imm) & M32
                    return nxt
        elif isinstance(ins, TAlu):
            h = _compile_alu(ins, nxt, regs, flags)
        elif isinstance(ins, TLoadStoreImm):
            h = _compile_ls(ins.load, ins.rd, ins.rn, ins.offset, None, ins.width, False,
                            nxt, regs, mem, ma, ms, unpack_from, pack_into)
        elif isinstance(ins, TLoadStoreReg):
            h = _compile_ls(ins.load, ins.rd, ins.rn, None, ins.rm, ins.width, ins.signed,
                            nxt, regs, mem, ma, ms, unpack_from, pack_into)
        elif isinstance(ins, TLoadStoreSpRel):
            off, rd = ins.offset, ins.rd
            if ins.load:
                def h(rd=rd, off=off, nxt=nxt):
                    addr = (regs[13] + off) & M32
                    ma(addr)
                    ms(0)
                    regs[rd] = unpack_from("<I", mem, addr)[0]
                    return nxt
            else:
                def h(rd=rd, off=off, nxt=nxt):
                    addr = (regs[13] + off) & M32
                    ma(addr)
                    ms(1)
                    pack_into("<I", mem, addr, regs[rd])
                    return nxt
        elif isinstance(ins, TAdjustSp):
            delta = ins.delta

            def h(delta=delta, nxt=nxt):
                regs[13] = (regs[13] + delta) & M32
                return nxt
        elif isinstance(ins, TPushPop):
            h = _compile_pushpop(ins, idx, nxt, image, regs, mem, ma, ms, unpack_from, pack_into)
        elif isinstance(ins, TCondBranch):
            target = ins.target_index(idx)
            check = _check(ins.cond, flags)

            def h(target=target, check=check, nxt=nxt):
                return target if check() else nxt
        elif isinstance(ins, TBranch):
            target = ins.target_index(idx)

            def h(target=target):
                return target
        elif isinstance(ins, TBranchLink):
            target = ins.target_index(idx)
            ret_addr = image.addr_of_index(idx) + 4

            def h(target=target, ret_addr=ret_addr):
                regs[14] = ret_addr
                return target
        elif isinstance(ins, TSwi):
            if ins.imm8 == 0:
                def h():
                    exit_code[0] = regs[0]
                    return -1
            elif ins.imm8 == 1:
                def h(nxt=nxt):
                    trace.console.append(regs[0] & 0xFF)
                    return nxt
            else:
                raise SimulationError("unknown thumb SWI #%d" % ins.imm8)
        else:
            raise SimulationError("cannot execute %r" % (ins,))
        handlers.append(h)
    return handlers


def _compile_alu(ins, nxt, regs, flags):
    rd, rm, op = ins.rd, ins.rm, ins.op
    simple = {
        TAluOp.AND: lambda a, b: a & b,
        TAluOp.EOR: lambda a, b: a ^ b,
        TAluOp.ORR: lambda a, b: a | b,
        TAluOp.BIC: lambda a, b: a & ~b & M32,
        TAluOp.MUL: lambda a, b: (a * b) & M32,
        TAluOp.MVN: lambda a, b: b ^ M32,
        TAluOp.NEG: lambda a, b: (-b) & M32,
    }
    if op in simple:
        fn = simple[op]

        def h(rd=rd, rm=rm, fn=fn, nxt=nxt):
            regs[rd] = fn(regs[rd], regs[rm])
            return nxt

        return h
    if op is TAluOp.CMP:
        def h(rd=rd, rm=rm, nxt=nxt):
            _set_cmp(flags, regs[rd], regs[rm])
            return nxt
        return h
    if op is TAluOp.CMN:
        def h(rd=rd, rm=rm, nxt=nxt):
            a, b = regs[rd], regs[rm]
            total = a + b
            r = total & M32
            flags[0] = bool(r & 0x80000000)
            flags[1] = r == 0
            flags[2] = total > M32
            flags[3] = bool(~(a ^ b) & (a ^ r) & 0x80000000)
            return nxt
        return h
    if op is TAluOp.TST:
        def h(rd=rd, rm=rm, nxt=nxt):
            r = regs[rd] & regs[rm]
            flags[0] = bool(r & 0x80000000)
            flags[1] = r == 0
            return nxt
        return h
    if op in (TAluOp.LSL, TAluOp.LSR, TAluOp.ASR, TAluOp.ROR):
        kind = op

        def h(rd=rd, rm=rm, kind=kind, nxt=nxt):
            amount = regs[rm] & 0xFF
            v = regs[rd]
            if kind is TAluOp.LSL:
                regs[rd] = (v << amount) & M32 if amount < 32 else 0
            elif kind is TAluOp.LSR:
                regs[rd] = v >> amount if amount < 32 else 0
            elif kind is TAluOp.ASR:
                if amount >= 32:
                    regs[rd] = M32 if v & 0x80000000 else 0
                elif v & 0x80000000:
                    regs[rd] = (v >> amount) | (((1 << amount) - 1) << (32 - amount))
                else:
                    regs[rd] = v >> amount
            else:
                amount &= 31
                regs[rd] = ((v >> amount) | (v << (32 - amount))) & M32 if amount else v
            return nxt

        return h
    raise SimulationError("unsupported thumb ALU op %s" % op.name)


def _compile_ls(load, rd, rn, off_imm, rm, width, signed, nxt, regs, mem, ma, ms, unpack_from, pack_into):
    if off_imm is not None:
        def ea(rn=rn, off=off_imm):
            return (regs[rn] + off) & M32
    else:
        def ea(rn=rn, rm=rm):
            return (regs[rn] + regs[rm]) & M32

    if load:
        if width == 4:
            def h():
                addr = ea()
                ma(addr)
                ms(0)
                regs[rd] = unpack_from("<I", mem, addr)[0]
                return nxt
        elif width == 2:
            if signed:
                def h():
                    addr = ea()
                    ma(addr)
                    ms(0)
                    regs[rd] = unpack_from("<h", mem, addr)[0] & M32
                    return nxt
            else:
                def h():
                    addr = ea()
                    ma(addr)
                    ms(0)
                    regs[rd] = unpack_from("<H", mem, addr)[0]
                    return nxt
        else:
            if signed:
                def h():
                    addr = ea()
                    ma(addr)
                    ms(0)
                    v = mem[addr]
                    regs[rd] = v | 0xFFFFFF00 if v & 0x80 else v
                    return nxt
            else:
                def h():
                    addr = ea()
                    ma(addr)
                    ms(0)
                    regs[rd] = mem[addr]
                    return nxt
    else:
        if width == 4:
            def h():
                addr = ea()
                ma(addr)
                ms(1)
                pack_into("<I", mem, addr, regs[rd])
                return nxt
        elif width == 2:
            def h():
                addr = ea()
                ma(addr)
                ms(1)
                pack_into("<H", mem, addr, regs[rd] & 0xFFFF)
                return nxt
        else:
            def h():
                addr = ea()
                ma(addr)
                ms(1)
                mem[addr] = regs[rd] & 0xFF
                return nxt
    return h


def _compile_pushpop(ins, idx, nxt, image, regs, mem, ma, ms, unpack_from, pack_into):
    reglist = list(ins.reglist)
    if ins.pop:
        index_of = image.index_of_addr

        def h(reglist=tuple(reglist), extra=ins.extra, nxt=nxt):
            sp = regs[13]
            for r in reglist:
                ma(sp)
                ms(0)
                regs[r] = unpack_from("<I", mem, sp)[0]
                sp += 4
            target = nxt
            if extra:
                ma(sp)
                ms(0)
                pc = unpack_from("<I", mem, sp)[0]
                sp += 4
                target = index_of(pc)
            regs[13] = sp
            return target
    else:
        def h(reglist=tuple(reglist), extra=ins.extra, nxt=nxt):
            count = len(reglist) + (1 if extra else 0)
            sp = regs[13] - 4 * count
            regs[13] = sp
            for r in reglist:
                ma(sp)
                ms(1)
                pack_into("<I", mem, sp, regs[r])
                sp += 4
            if extra:
                ma(sp)
                ms(1)
                pack_into("<I", mem, sp, regs[14])
            return nxt
    return h
