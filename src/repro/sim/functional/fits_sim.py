"""Functional FITS simulator.

Executes a translated :class:`~repro.core.translator.FitsImage` through
the synthesized decoder configuration.  At build time every halfword is
(a) re-decoded through the codec and checked against the translator's
record — the encoding must be honest — and (b) folded into *atoms*: a
run of ``ext``/``extr`` prefixes plus their consumer executes as one
unit, exactly like a prefixed instruction in hardware.

Register values use ARM numbering internally (renaming is an encoding
concern); lr holds FITS byte addresses, so saved return addresses flow
through memory and back into ``ret`` unchanged.
"""

import struct

from repro.isa.arm.model import Cond, DPOp, ShiftType
from repro.isa.fits.spec import OPRD_DICT, OPRD_RAW, OPRD_REG
from repro.isa.fits.codec import decode_fits
from repro.obs import core as obs
from repro.sim.functional import engine
from repro.sim.functional.engine import (
    Emitted,
    SimulationError,
    cond_expr,
    dyn_shift as _shift,
    emit_mem,
)
from repro.sim.functional.trace import TraceBuilder, publish_result
from repro.sim.functional.arm_sim import _cond_checker

M32 = 0xFFFFFFFF


class FitsSimulator:
    """Executes a FITS image to completion (exit SWI)."""

    def __init__(self, image, max_instructions=400_000_000, verify_decode=True,
                 engine=None):
        self.image = image
        self.max_instructions = max_instructions
        self.verify_decode = verify_decode
        self.engine = engine

    def run(self):
        if not obs.enabled:
            return self._run()
        with obs.span("stage.simulate", isa="fits", image=self.image.name):
            result = self._run()
        publish_result("sim.fits", result)
        return result

    def _run(self):
        image = self.image
        if self.verify_decode:
            for half, rec in zip(image.halfwords, image.records):
                back = decode_fits(image.isa, half)
                if back != rec:
                    raise SimulationError(
                        "decoder disagreement: %r decodes to %r" % (rec, back)
                    )
        program = build_program(image)
        return engine.execute(program, self.max_instructions, self.engine)


def build_program(image):
    """Fresh per-run :class:`~repro.sim.functional.engine.Program`."""
    regs = [0] * 16
    regs[13] = image.stack_top
    mem = image.initial_memory()
    flags = [False, False, False, False]
    trace = TraceBuilder()
    exit_code = [None]
    handlers, seq_next = _compile(image, regs, mem, flags, trace, exit_code)
    atom_at = {atom.start: atom for atom in _atoms(image)}
    return engine.Program(
        image=image,
        isa="fits",
        handlers=handlers,
        regs=regs,
        mem=mem,
        flags=flags,
        trace=trace,
        exit_code=exit_code,
        seq_next=seq_next,
        emit=lambda idx: _emit_fits(image, atom_at.get(idx), idx),
    )


def _sign_extend(value, bits):
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


class _Atom:
    __slots__ = ("start", "length", "consumer", "ext_imm", "ext_imm_count",
                 "ext_regs", "ext_reg_count")

    def __init__(self, start):
        self.start = start
        self.length = 0
        self.consumer = None
        self.ext_imm = 0
        self.ext_imm_count = 0
        self.ext_regs = 0
        self.ext_reg_count = 0


def _atoms(image):
    out = []
    i = 0
    records = image.records
    while i < len(records):
        atom = _Atom(i)
        while records[i].spec.kind == "ext":
            if records[i].spec.params["mode"] == "imm":
                atom.ext_imm = (atom.ext_imm << image.isa.wide_width) | records[i].fields["value"]
                atom.ext_imm_count += 1
            else:
                atom.ext_regs |= records[i].fields["value"]
                atom.ext_reg_count += 1
            i += 1
            if i >= len(records):
                raise SimulationError("trailing ext prefix with no consumer")
        atom.consumer = records[i]
        i += 1
        atom.length = i - atom.start
        out.append(atom)
    return out


DP_EVAL = {
    DPOp.AND: lambda a, b: a & b,
    DPOp.EOR: lambda a, b: a ^ b,
    DPOp.SUB: lambda a, b: (a - b) & M32,
    DPOp.RSB: lambda a, b: (b - a) & M32,
    DPOp.ADD: lambda a, b: (a + b) & M32,
    DPOp.ORR: lambda a, b: a | b,
    DPOp.BIC: lambda a, b: a & ~b & M32,
}

COND_OF = {
    "eq": Cond.EQ,
}


def _reg_of(isa, atom, position, field_value):
    # k_reg == 3: the extr payload carries per-position high bits;
    # k_reg == 4: registers always fit their fields (the extr payload
    # is then a full source index, handled by the Operate2 kinds)
    idx = field_value
    if isa.k_reg == 3:
        idx |= ((atom.ext_regs >> position) & 1) << isa.k_reg
    try:
        return isa.arm_reg(idx)
    except KeyError:
        raise SimulationError("register index %d unmapped" % idx)


def _operate2_source(isa, atom, rc):
    """Source register of an Operate2 compute op (extr-source form)."""
    if isa.k_reg == 4 and atom.ext_reg_count:
        return isa.arm_reg(atom.ext_regs)
    return rc


def _operand_value(isa, atom, spec, field_name, width, scale=1, signed=False):
    """Resolve an immediate-bearing field to its 32-bit value."""
    raw = atom.consumer.fields.get(field_name, 0)
    if spec.oprd_mode == OPRD_DICT:
        return isa.dict_lookup(spec.dict_category, raw)
    if atom.ext_imm_count:
        total_bits = width + atom.ext_imm_count * isa.wide_width
        combined = (atom.ext_imm << width) | (raw & ((1 << width) - 1))
        if signed:
            return _sign_extend(combined, total_bits)
        return combined & M32
    if signed:
        return raw  # already sign-decoded by the codec
    return raw * scale


def _compile(image, regs, mem, flags, trace, exit_code):
    isa = image.isa
    handlers = [None] * len(image.records)
    seq_next = [0] * len(image.records)
    mm = trace.add_mem
    unpack_from = struct.unpack_from
    pack_into = struct.pack_into

    def reg_of(atom, position, field_value):
        return _reg_of(isa, atom, position, field_value)

    def operate2_source(atom, rc):
        return _operate2_source(isa, atom, rc)

    def operand_value(atom, spec, field_name, width, scale=1, signed=False):
        return _operand_value(isa, atom, spec, field_name, width,
                              scale=scale, signed=signed)

    for atom in _atoms(image):
        spec = atom.consumer.spec
        kind = spec.kind
        fields = atom.consumer.fields
        nxt = atom.start + atom.length
        for k in range(atom.start, nxt):
            seq_next[k] = nxt
        h = _build_handler(
            image, isa, atom, spec, kind, fields, nxt, regs, mem, flags, trace,
            exit_code, reg_of, operand_value, operate2_source, mm,
            unpack_from, pack_into,
        )
        handlers[atom.start] = h
        for k in range(atom.start + 1, nxt):
            handlers[k] = _unreachable(k)
    return handlers, seq_next


def _unreachable(index):
    def h():
        raise SimulationError("jump into the middle of a prefixed atom at %d" % index)
    return h


def _build_handler(image, isa, atom, spec, kind, fields, nxt, regs, mem, flags, trace,
                   exit_code, reg_of, operand_value, operate2_source, mm,
                   unpack_from, pack_into):
    layout = dict(isa.field_layout(spec))

    if kind in ("shift2i", "shift2r", "mul2"):
        rc = reg_of(atom, 0, fields["rc"])
        src = operate2_source(atom, rc)
        if kind == "shift2i":
            amount = fields["value"]
            stype = spec.params["shift"]

            def h():
                regs[rc] = _shift(regs[src], stype, amount)
                return nxt
            return h
        if kind == "shift2r":
            rs = isa.arm_reg(fields["value"]) if isa.k_reg == 4 else reg_of(atom, 2, fields["value"])
            stype = spec.params["shift"]

            def h():
                regs[rc] = _shift(regs[src], stype, regs[rs] & 0xFF)
                return nxt
            return h
        rm = isa.arm_reg(fields["value"]) if isa.k_reg == 4 else reg_of(atom, 2, fields["value"])

        def h():
            regs[rc] = (regs[src] * regs[rm]) & M32
            return nxt
        return h

    if kind == "memrx":
        load = spec.params["load"]
        width = spec.params["width"]
        signed = spec.params["signed"]
        shift = spec.params["shift"]
        rd = reg_of(atom, 0, fields["rd"])
        rb = reg_of(atom, 1, fields["rb"])
        if not atom.ext_reg_count:
            raise SimulationError("memrx without its extr index prefix")
        rm = isa.arm_reg(atom.ext_regs)

        def ea():
            return (regs[rb] + ((regs[rm] << shift) & M32)) & M32

        return _mem_handler(load, width, signed, rd, ea, nxt, regs, mem, mm,
                            unpack_from, pack_into)

    if kind in ("dp3", "mov2", "shifti", "shiftr", "mul"):
        rc = reg_of(atom, 0, fields["rc"])
        ra = reg_of(atom, 1, fields["ra"])
        if kind == "mov2":
            def h():
                regs[rc] = regs[ra]
                return nxt
            return h
        if kind == "mul":
            oprd = reg_of(atom, 2, fields["oprd"])

            def h():
                regs[rc] = (regs[ra] * regs[oprd]) & M32
                return nxt
            return h
        if kind == "shiftr":
            oprd = reg_of(atom, 2, fields["oprd"])
            stype = spec.params["shift"]

            def h():
                amount = regs[oprd] & 0xFF
                regs[rc] = _shift(regs[ra], stype, amount)
                return nxt
            return h
        if kind == "shifti":
            amount = operand_value(atom, spec, "oprd", layout["oprd"])
            stype = spec.params["shift"]

            def h():
                regs[rc] = _shift(regs[ra], stype, amount)
                return nxt
            return h
        # dp3
        op = spec.params["op"]
        fn = DP_EVAL[op]
        if spec.params["mode"] == "reg":
            oprd = reg_of(atom, 2, fields["oprd"])

            def h():
                regs[rc] = fn(regs[ra], regs[oprd])
                return nxt
            return h
        value = operand_value(atom, spec, "oprd", layout["oprd"]) & M32

        def h():
            regs[rc] = fn(regs[ra], value)
            return nxt
        return h

    if kind in ("dp2", "movi", "mvni"):
        rc = reg_of(atom, 0, fields["rc"])
        if kind == "dp2" and spec.oprd_mode == OPRD_REG:
            src = operate2_source(atom, rc)
            rm = isa.arm_reg(fields["value"]) if isa.k_reg == 4 else reg_of(atom, 2, fields["value"])
            fn = DP_EVAL[spec.params["op"]]

            def h():
                regs[rc] = fn(regs[src], regs[rm])
                return nxt
            return h
        value = operand_value(atom, spec, "value", layout["value"]) & M32
        if kind == "movi":
            def h():
                regs[rc] = value
                return nxt
            return h
        if kind == "mvni":
            inv = value ^ M32

            def h():
                regs[rc] = inv
                return nxt
            return h
        fn = DP_EVAL[spec.params["op"]]
        src = operate2_source(atom, rc)

        def h():
            regs[rc] = fn(regs[src], value)
            return nxt
        return h

    if kind == "cmp2":
        ra = reg_of(atom, 0, fields["ra"])
        op = spec.params["op"]
        if spec.params["mode"] == "reg":
            rm = reg_of(atom, 2, fields["value"])

            def get_b():
                return regs[rm]
        else:
            value = operand_value(atom, spec, "value", layout["value"]) & M32

            def get_b():
                return value

        if op is DPOp.CMP:
            def h():
                a = regs[ra]
                b = get_b()
                r = (a - b) & M32
                flags[0] = bool(r & 0x80000000)
                flags[1] = r == 0
                flags[2] = a >= b
                flags[3] = bool((a ^ b) & (a ^ r) & 0x80000000)
                return nxt
            return h
        if op is DPOp.CMN:
            def h():
                a = regs[ra]
                b = get_b()
                total = a + b
                r = total & M32
                flags[0] = bool(r & 0x80000000)
                flags[1] = r == 0
                flags[2] = total > M32
                flags[3] = bool(~(a ^ b) & (a ^ r) & 0x80000000)
                return nxt
            return h
        if op is DPOp.TST:
            def h():
                r = regs[ra] & get_b()
                flags[0] = bool(r & 0x80000000)
                flags[1] = r == 0
                return nxt
            return h

        def h():  # TEQ
            r = regs[ra] ^ get_b()
            flags[0] = bool(r & 0x80000000)
            flags[1] = r == 0
            return nxt
        return h

    if kind in ("mem", "memr", "memsp"):
        load = spec.params["load"]
        width = spec.params.get("width", 4)
        signed = spec.params.get("signed", False)
        if kind == "memsp":
            rd = reg_of(atom, 0, fields["rd"])
            base = 13
            offset = fields["imm"] * 4

            def ea():
                return (regs[base] + offset) & M32
        elif kind == "memr":
            rd = reg_of(atom, 0, fields["rd"])
            rb = reg_of(atom, 1, fields["rb"])
            rm = reg_of(atom, 2, fields["imm"])
            shift = spec.params["shift"]

            def ea():
                return (regs[rb] + ((regs[rm] << shift) & M32)) & M32
        else:
            rd = reg_of(atom, 0, fields["rd"])
            rb = reg_of(atom, 1, fields["rb"])
            if spec.oprd_mode == OPRD_DICT:
                offset = isa.dict_lookup("mem", fields["imm"])
            elif atom.ext_imm_count:
                total_bits = layout["imm"] + atom.ext_imm_count * isa.wide_width
                combined = (atom.ext_imm << layout["imm"]) | fields["imm"]
                offset = _sign_extend(combined, total_bits)
            else:
                offset = fields["imm"] * width

            def ea():
                return (regs[rb] + offset) & M32

        return _mem_handler(load, width, signed, rd, ea, nxt, regs, mem, mm,
                            unpack_from, pack_into)

    if kind == "spadj":
        value = operand_value(atom, spec, "value", layout["value"], signed=True)

        def h():
            regs[13] = (regs[13] + value) & M32
            return nxt
        return h

    if kind in ("ldm", "stm"):
        reglist = tuple(spec.params["reglist"])
        if kind == "ldm":
            index_of = image.index_of_addr
            loads_pc = 15 in reglist
            gprs = tuple(r for r in reglist if r != 15)

            def h():
                addr = regs[13]
                for r in gprs:
                    mm(addr + addr)
                    regs[r] = unpack_from("<I", mem, addr)[0]
                    addr += 4
                target = nxt
                if loads_pc:
                    mm(addr + addr)
                    target = index_of(unpack_from("<I", mem, addr)[0])
                    addr += 4
                regs[13] = addr
                return target
            return h

        def h():
            addr = regs[13] - 4 * len(reglist)
            regs[13] = addr
            for r in reglist:
                mm(addr + addr + 1)
                pack_into("<I", mem, addr, regs[r])
                addr += 4
            return nxt
        return h

    if kind == "b":
        disp = operand_value(atom, spec, "value", layout["value"], signed=True)
        target = nxt + disp
        check = _cond_checker(spec.params["cond"], flags)
        if check is None:
            def h():
                return target
            return h

        def h():
            return target if check() else nxt
        return h

    if kind == "bl":
        disp = operand_value(atom, spec, "value", layout["value"], signed=True)
        target = nxt + disp
        ret_addr = image.addr_of_index(nxt)

        def h():
            regs[14] = ret_addr
            return target
        return h

    if kind == "ret":
        index_of = image.index_of_addr

        def h():
            return index_of(regs[14])
        return h

    if kind == "swi":
        number = fields["value"]
        if number == 0:
            def h():
                exit_code[0] = regs[0]
                return -1
            return h
        if number == 1:
            def h():
                trace.console.append(regs[0] & 0xFF)
                return nxt
            return h
        raise SimulationError("unknown FITS SWI #%d" % number)

    raise SimulationError("cannot execute FITS kind %r" % kind)


def _mem_handler(load, width, signed, rd, ea, nxt, regs, mem, mm, unpack_from, pack_into):
    if load:
        if width == 4:
            def h():
                addr = ea()
                mm(addr + addr)
                regs[rd] = unpack_from("<I", mem, addr)[0]
                return nxt
        elif width == 2 and signed:
            def h():
                addr = ea()
                mm(addr + addr)
                regs[rd] = unpack_from("<h", mem, addr)[0] & M32
                return nxt
        elif width == 2:
            def h():
                addr = ea()
                mm(addr + addr)
                regs[rd] = unpack_from("<H", mem, addr)[0]
                return nxt
        elif signed:
            def h():
                addr = ea()
                mm(addr + addr)
                v = mem[addr]
                regs[rd] = v | 0xFFFFFF00 if v & 0x80 else v
                return nxt
        else:
            def h():
                addr = ea()
                mm(addr + addr)
                regs[rd] = mem[addr]
                return nxt
    else:
        if width == 4:
            def h():
                addr = ea()
                mm(addr + addr + 1)
                pack_into("<I", mem, addr, regs[rd])
                return nxt
        elif width == 2:
            def h():
                addr = ea()
                mm(addr + addr + 1)
                pack_into("<H", mem, addr, regs[rd] & 0xFFFF)
                return nxt
        else:
            def h():
                addr = ea()
                mm(addr + addr + 1)
                mem[addr] = regs[rd] & 0xFF
                return nxt
    return h


# ----------------------------------------------------------------------
# block-engine source templates (mirroring _build_handler 1:1)


_DP_PAT = {
    DPOp.AND: "%(a)s & %(b)s",
    DPOp.EOR: "%(a)s ^ %(b)s",
    DPOp.SUB: "(%(a)s - %(b)s) & 4294967295",
    DPOp.RSB: "(%(b)s - %(a)s) & 4294967295",
    DPOp.ADD: "(%(a)s + %(b)s) & 4294967295",
    DPOp.ORR: "%(a)s | %(b)s",
    DPOp.BIC: "%(a)s & ~%(b)s & 4294967295",
}

_SHIFT_NAME = {ShiftType.LSL: "LSL", ShiftType.LSR: "LSR",
               ShiftType.ASR: "ASR", ShiftType.ROR: "ROR"}


def _emit_cmp2(op, a_expr, b_expr, idx):
    t = "%d" % idx
    x, y, r = "_x" + t, "_y" + t, "_r" + t
    lines = ["%s = %s" % (x, a_expr), "%s = %s" % (y, b_expr)]
    if op is DPOp.CMP:
        lines += [
            "%s = (%s - %s) & 4294967295" % (r, x, y),
            "flags[0] = %s >= 2147483648" % r,
            "flags[1] = %s == 0" % r,
            "flags[2] = %s >= %s" % (x, y),
            "flags[3] = ((%s ^ %s) & (%s ^ %s) & 2147483648) != 0" % (x, y, x, r),
        ]
    elif op is DPOp.CMN:
        tot = "_t" + t
        lines += [
            "%s = %s + %s" % (tot, x, y),
            "%s = %s & 4294967295" % (r, tot),
            "flags[0] = %s >= 2147483648" % r,
            "flags[1] = %s == 0" % r,
            "flags[2] = %s > 4294967295" % tot,
            "flags[3] = (~(%s ^ %s) & (%s ^ %s) & 2147483648) != 0" % (x, y, x, r),
        ]
    elif op is DPOp.TST:
        lines += [
            "%s = %s & %s" % (r, x, y),
            "flags[0] = %s >= 2147483648" % r,
            "flags[1] = %s == 0" % r,
        ]
    else:  # TEQ
        lines += [
            "%s = %s ^ %s" % (r, x, y),
            "flags[0] = %s >= 2147483648" % r,
            "flags[1] = %s == 0" % r,
        ]
    return Emitted(lines)


def _emit_ldm_stm(image, spec, kind, idx, nxt):
    reglist = tuple(spec.params["reglist"])
    t = "%d" % idx
    lines = []
    addrs = []
    if kind == "ldm":
        loads_pc = 15 in reglist
        gprs = tuple(r for r in reglist if r != 15)
        lines.append("_a%s_0 = regs[13]" % t)
        cursor = "_a%s_0" % t
        for j, r in enumerate(gprs):
            if j:
                cursor = "_a%s_%d" % (t, j)
                lines.append("%s = _a%s_%d + 4" % (cursor, t, j - 1))
            lines.append("regs[%d] = unpack_from(\"<I\", mem, %s)[0]" % (r, cursor))
            addrs.append((cursor, 0))
        if loads_pc:
            pc_cursor = "_a%s_%d" % (t, len(gprs))
            if gprs:
                lines.append("%s = %s + 4" % (pc_cursor, cursor))
            else:
                lines.append("%s = regs[13]" % pc_cursor)
            lines.append("_t%s = index_of(unpack_from(\"<I\", mem, %s)[0])"
                         % (t, pc_cursor))
            addrs.append((pc_cursor, 0))
            lines.append("regs[13] = %s + 4" % pc_cursor)
            return Emitted(lines, addrs=tuple(addrs), nxt="_t%s" % t)
        lines.append("regs[13] = %s + 4" % cursor)
        return Emitted(lines, addrs=tuple(addrs))
    # stm
    lines.append("_a%s_0 = regs[13] - %d" % (t, 4 * len(reglist)))
    lines.append("regs[13] = _a%s_0" % t)
    cursor = "_a%s_0" % t
    for j, r in enumerate(reglist):
        if j:
            cursor = "_a%s_%d" % (t, j)
            lines.append("%s = _a%s_%d + 4" % (cursor, t, j - 1))
        lines.append("pack_into(\"<I\", mem, %s, regs[%d])" % (cursor, r))
        addrs.append((cursor, 1))
    return Emitted(lines, addrs=tuple(addrs))


def _emit_fits(image, atom, idx):
    """Block-engine template for the atom starting at ``idx``, or None.

    ``atom`` is None for mid-atom halfword indices — the fallback closure
    (an ``_unreachable`` handler) then reproduces the closure engine's
    bad-control-flow error exactly.
    """
    if atom is None:
        return None
    isa = image.isa
    spec = atom.consumer.spec
    kind = spec.kind
    fields = atom.consumer.fields
    nxt = atom.start + atom.length
    layout = dict(isa.field_layout(spec))

    if kind in ("shift2i", "shift2r", "mul2"):
        rc = _reg_of(isa, atom, 0, fields["rc"])
        src = _operate2_source(isa, atom, rc)
        if kind == "shift2i":
            amount = fields["value"]
            name = _SHIFT_NAME[spec.params["shift"]]
            return Emitted(["regs[%d] = dyn_shift(regs[%d], %s, %d)"
                            % (rc, src, name, amount)])
        if kind == "shift2r":
            rs = (isa.arm_reg(fields["value"]) if isa.k_reg == 4
                  else _reg_of(isa, atom, 2, fields["value"]))
            name = _SHIFT_NAME[spec.params["shift"]]
            return Emitted(["regs[%d] = dyn_shift(regs[%d], %s, regs[%d] & 255)"
                            % (rc, src, name, rs)])
        rm = (isa.arm_reg(fields["value"]) if isa.k_reg == 4
              else _reg_of(isa, atom, 2, fields["value"]))
        return Emitted(["regs[%d] = (regs[%d] * regs[%d]) & 4294967295"
                        % (rc, src, rm)])

    if kind == "memrx":
        rd = _reg_of(isa, atom, 0, fields["rd"])
        rb = _reg_of(isa, atom, 1, fields["rb"])
        if not atom.ext_reg_count:
            raise SimulationError("memrx without its extr index prefix")
        rm = isa.arm_reg(atom.ext_regs)
        shift = spec.params["shift"]
        ea = ("(regs[%d] + ((regs[%d] << %d) & 4294967295)) & 4294967295"
              % (rb, rm, shift))
        return emit_mem(spec.params["load"], spec.params["width"],
                        spec.params["signed"], rd, ea, "_a%d" % idx)

    if kind in ("dp3", "mov2", "shifti", "shiftr", "mul"):
        rc = _reg_of(isa, atom, 0, fields["rc"])
        ra = _reg_of(isa, atom, 1, fields["ra"])
        if kind == "mov2":
            return Emitted(["regs[%d] = regs[%d]" % (rc, ra)])
        if kind == "mul":
            oprd = _reg_of(isa, atom, 2, fields["oprd"])
            return Emitted(["regs[%d] = (regs[%d] * regs[%d]) & 4294967295"
                            % (rc, ra, oprd)])
        if kind == "shiftr":
            oprd = _reg_of(isa, atom, 2, fields["oprd"])
            name = _SHIFT_NAME[spec.params["shift"]]
            return Emitted(["regs[%d] = dyn_shift(regs[%d], %s, regs[%d] & 255)"
                            % (rc, ra, name, oprd)])
        if kind == "shifti":
            amount = _operand_value(isa, atom, spec, "oprd", layout["oprd"])
            name = _SHIFT_NAME[spec.params["shift"]]
            return Emitted(["regs[%d] = dyn_shift(regs[%d], %s, %d)"
                            % (rc, ra, name, amount)])
        # dp3
        pat = _DP_PAT[spec.params["op"]]
        if spec.params["mode"] == "reg":
            oprd = _reg_of(isa, atom, 2, fields["oprd"])
            b = "regs[%d]" % oprd
        else:
            b = "%d" % (_operand_value(isa, atom, spec, "oprd", layout["oprd"]) & M32)
        return Emitted(["regs[%d] = %s" % (rc, pat % {"a": "regs[%d]" % ra, "b": b})])

    if kind in ("dp2", "movi", "mvni"):
        rc = _reg_of(isa, atom, 0, fields["rc"])
        if kind == "dp2" and spec.oprd_mode == OPRD_REG:
            src = _operate2_source(isa, atom, rc)
            rm = (isa.arm_reg(fields["value"]) if isa.k_reg == 4
                  else _reg_of(isa, atom, 2, fields["value"]))
            pat = _DP_PAT[spec.params["op"]]
            return Emitted(["regs[%d] = %s"
                            % (rc, pat % {"a": "regs[%d]" % src,
                                          "b": "regs[%d]" % rm})])
        value = _operand_value(isa, atom, spec, "value", layout["value"]) & M32
        if kind == "movi":
            return Emitted(["regs[%d] = %d" % (rc, value)])
        if kind == "mvni":
            return Emitted(["regs[%d] = %d" % (rc, value ^ M32)])
        pat = _DP_PAT[spec.params["op"]]
        src = _operate2_source(isa, atom, rc)
        return Emitted(["regs[%d] = %s"
                        % (rc, pat % {"a": "regs[%d]" % src, "b": "%d" % value})])

    if kind == "cmp2":
        ra = _reg_of(isa, atom, 0, fields["ra"])
        if spec.params["mode"] == "reg":
            rm = _reg_of(isa, atom, 2, fields["value"])
            b = "regs[%d]" % rm
        else:
            b = "%d" % (_operand_value(isa, atom, spec, "value",
                                       layout["value"]) & M32)
        return _emit_cmp2(spec.params["op"], "regs[%d]" % ra, b, idx)

    if kind in ("mem", "memr", "memsp"):
        load = spec.params["load"]
        width = spec.params.get("width", 4)
        signed = spec.params.get("signed", False)
        if kind == "memsp":
            rd = _reg_of(isa, atom, 0, fields["rd"])
            ea = "(regs[13] + %d) & 4294967295" % (fields["imm"] * 4)
        elif kind == "memr":
            rd = _reg_of(isa, atom, 0, fields["rd"])
            rb = _reg_of(isa, atom, 1, fields["rb"])
            rm = _reg_of(isa, atom, 2, fields["imm"])
            ea = ("(regs[%d] + ((regs[%d] << %d) & 4294967295)) & 4294967295"
                  % (rb, rm, spec.params["shift"]))
        else:
            rd = _reg_of(isa, atom, 0, fields["rd"])
            rb = _reg_of(isa, atom, 1, fields["rb"])
            if spec.oprd_mode == OPRD_DICT:
                offset = isa.dict_lookup("mem", fields["imm"])
            elif atom.ext_imm_count:
                total_bits = layout["imm"] + atom.ext_imm_count * isa.wide_width
                combined = (atom.ext_imm << layout["imm"]) | fields["imm"]
                offset = _sign_extend(combined, total_bits)
            else:
                offset = fields["imm"] * width
            ea = "(regs[%d] + %d) & 4294967295" % (rb, offset)
        return emit_mem(load, width, signed, rd, ea, "_a%d" % idx)

    if kind == "spadj":
        value = _operand_value(isa, atom, spec, "value", layout["value"],
                               signed=True)
        return Emitted(["regs[13] = (regs[13] + %d) & 4294967295" % value])

    if kind in ("ldm", "stm"):
        return _emit_ldm_stm(image, spec, kind, idx, nxt)

    if kind == "b":
        disp = _operand_value(isa, atom, spec, "value", layout["value"],
                              signed=True)
        target = nxt + disp
        expr = cond_expr(spec.params["cond"])
        if expr is None:
            return Emitted([], nxt="%d" % target)
        return Emitted([], nxt="%d" % target, cond=expr)

    if kind == "bl":
        disp = _operand_value(isa, atom, spec, "value", layout["value"],
                              signed=True)
        ret_addr = image.addr_of_index(nxt)
        return Emitted(["regs[14] = %d" % ret_addr], nxt="%d" % (nxt + disp))

    if kind == "ret":
        return Emitted([], nxt="index_of(regs[14])")

    if kind == "swi":
        number = fields["value"]
        if number == 0:
            return Emitted(["exit_code[0] = regs[0]"], nxt="-1")
        if number == 1:
            return Emitted(["console.append(regs[0] & 255)"])
        return None

    return None
