"""Functional ARM simulator with pre-decoded (closure-compiled) execution.

Each static instruction is compiled once into a small Python closure that
mutates the machine state and returns the next instruction index; the
main loop then just chains closures, recording a run boundary whenever
control transfers.  This is the standard trick for getting tolerable
speed out of a pure-Python ISS and it also keeps the semantics of each
instruction in one readable place.
"""

import struct

from repro.isa.arm.model import (
    Branch,
    Cond,
    DPOp,
    DataProc,
    MemHalf,
    MemMultiple,
    MemWord,
    Multiply,
    Operand2Imm,
    Operand2Reg,
    Operand2RegReg,
    ShiftType,
    Swi,
    COMPARE_OPS,
)
from repro.obs import core as obs
from repro.sim.functional.trace import ExecutionResult, TraceBuilder, publish_result

M32 = 0xFFFFFFFF

#: SWI numbers understood by the simulator.
SWI_EXIT = 0
SWI_PUTC = 1


class SimulationError(Exception):
    """Raised on bad control flow, memory faults, or instruction limits."""


class ArmSimulator:
    """Executes a linked ARM image to completion.

    Args:
        image: :class:`repro.compiler.link.Image`.
        max_instructions: dynamic instruction budget (guards against
            runaway workloads).
    """

    def __init__(self, image, max_instructions=200_000_000):
        self.image = image
        self.max_instructions = max_instructions

    def run(self):
        """Simulate from ``_start`` until the exit SWI; returns
        :class:`~repro.sim.functional.trace.ExecutionResult`."""
        if not obs.enabled:
            return self._run()
        with obs.span("stage.simulate", isa="arm", image=self.image.name):
            result = self._run()
        publish_result("sim.arm", result)
        return result

    def _run(self):
        image = self.image
        regs = [0] * 16
        regs[13] = image.stack_top
        mem = image.initial_memory()
        flags = [False, False, False, False]  # N, Z, C, V
        trace = TraceBuilder()
        exit_code = [None]

        handlers = _compile_handlers(image, regs, mem, flags, trace, exit_code)

        starts_append = trace.run_starts.append
        ends_append = trace.run_ends.append
        idx = 0  # _start is always the first instruction
        run_start = 0
        executed = 0
        limit = self.max_instructions
        try:
            while idx >= 0:
                nxt = handlers[idx]()
                if nxt == idx + 1:
                    idx = nxt
                    continue
                starts_append(run_start)
                ends_append(idx)
                executed += idx - run_start + 1
                if executed > limit:
                    raise SimulationError(
                        "instruction budget exceeded (%d) in %s"
                        % (limit, image.name)
                    )
                idx = nxt
                run_start = nxt
        except (struct.error, IndexError) as exc:
            raise SimulationError(
                "memory fault near instruction index %d (%s): %s"
                % (idx, image.func_of_index[idx] if 0 <= idx < len(image.instrs) else "?", exc)
            ) from exc

        return ExecutionResult(
            image=image,
            exit_code=exit_code[0],
            run_starts=trace.run_starts,
            run_ends=trace.run_ends,
            mem_addrs=trace.mem_addrs,
            mem_is_store=trace.mem_is_store,
            console=bytes(trace.console),
            memory=mem,
        )


# ----------------------------------------------------------------------
# closure compilation


def _cond_checker(cond, flags):
    if cond is Cond.AL:
        return None
    checks = {
        Cond.EQ: lambda: flags[1],
        Cond.NE: lambda: not flags[1],
        Cond.CS: lambda: flags[2],
        Cond.CC: lambda: not flags[2],
        Cond.MI: lambda: flags[0],
        Cond.PL: lambda: not flags[0],
        Cond.VS: lambda: flags[3],
        Cond.VC: lambda: not flags[3],
        Cond.HI: lambda: flags[2] and not flags[1],
        Cond.LS: lambda: not flags[2] or flags[1],
        Cond.GE: lambda: flags[0] == flags[3],
        Cond.LT: lambda: flags[0] != flags[3],
        Cond.GT: lambda: not flags[1] and flags[0] == flags[3],
        Cond.LE: lambda: flags[1] or flags[0] != flags[3],
    }
    return checks[cond]


def _op2_evaluator(op2, regs):
    """Closure returning the shifter-operand value."""
    if isinstance(op2, Operand2Imm):
        value = op2.value
        return lambda: value
    if isinstance(op2, Operand2Reg):
        rm = op2.rm
        amount = op2.shift_imm
        if op2.shift_type is ShiftType.LSL:
            if amount == 0:
                return lambda: regs[rm]
            return lambda: (regs[rm] << amount) & M32
        if op2.shift_type is ShiftType.LSR:
            if amount == 0:
                return lambda: 0  # LSR #0 encodes LSR #32
            return lambda: regs[rm] >> amount
        if op2.shift_type is ShiftType.ASR:
            if amount == 0:
                return lambda: M32 if regs[rm] & 0x80000000 else 0
            return lambda: (
                (regs[rm] >> amount) | (((1 << amount) - 1) << (32 - amount))
                if regs[rm] & 0x80000000
                else regs[rm] >> amount
            )
        # ROR
        if amount == 0:
            raise NotImplementedError("RRX unsupported")
        return lambda: ((regs[rm] >> amount) | (regs[rm] << (32 - amount))) & M32
    if isinstance(op2, Operand2RegReg):
        rm = op2.rm
        rs = op2.rs
        st = op2.shift_type

        def ev():
            amount = regs[rs] & 0xFF
            value = regs[rm]
            if st is ShiftType.LSL:
                return (value << amount) & M32 if amount < 32 else 0
            if st is ShiftType.LSR:
                return value >> amount if amount < 32 else 0
            if st is ShiftType.ASR:
                if amount >= 32:
                    return M32 if value & 0x80000000 else 0
                if value & 0x80000000:
                    return (value >> amount) | (((1 << amount) - 1) << (32 - amount))
                return value >> amount
            amount &= 31
            if amount == 0:
                return value
            return ((value >> amount) | (value << (32 - amount))) & M32

        return ev
    raise TypeError("bad operand2: %r" % (op2,))


def _compile_dataproc(ins, idx, image, regs, flags):
    nxt = idx + 1
    ev = _op2_evaluator(ins.operand2, regs)
    rd, rn, op = ins.rd, ins.rn, ins.op

    if op in COMPARE_OPS:
        if op is DPOp.CMP:
            def h():
                a = regs[rn]
                b = ev()
                r = (a - b) & M32
                flags[0] = bool(r & 0x80000000)
                flags[1] = r == 0
                flags[2] = a >= b
                flags[3] = bool((a ^ b) & (a ^ r) & 0x80000000)
                return nxt
        elif op is DPOp.CMN:
            def h():
                a = regs[rn]
                b = ev()
                total = a + b
                r = total & M32
                flags[0] = bool(r & 0x80000000)
                flags[1] = r == 0
                flags[2] = total > M32
                flags[3] = bool(~(a ^ b) & (a ^ r) & 0x80000000)
                return nxt
        elif op is DPOp.TST:
            def h():
                r = regs[rn] & ev()
                flags[0] = bool(r & 0x80000000)
                flags[1] = r == 0
                return nxt
        else:  # TEQ
            def h():
                r = regs[rn] ^ ev()
                flags[0] = bool(r & 0x80000000)
                flags[1] = r == 0
                return nxt
        return h

    if ins.s:
        raise NotImplementedError("S-bit data processing (other than compares)")

    if rd == 15:
        # write to PC: computed control transfer (function return)
        index_of = image.index_of_addr
        if op is not DPOp.MOV:
            raise NotImplementedError("only MOV may target pc")

        def h():
            return index_of(ev())

        return h

    compute = {
        DPOp.AND: lambda a, b: a & b,
        DPOp.EOR: lambda a, b: a ^ b,
        DPOp.SUB: lambda a, b: (a - b) & M32,
        DPOp.RSB: lambda a, b: (b - a) & M32,
        DPOp.ADD: lambda a, b: (a + b) & M32,
        DPOp.ORR: lambda a, b: a | b,
        DPOp.BIC: lambda a, b: a & ~b & M32,
    }
    if op is DPOp.MOV:
        def h():
            regs[rd] = ev()
            return nxt
        return h
    if op is DPOp.MVN:
        def h():
            regs[rd] = ev() ^ M32
            return nxt
        return h
    if op in compute:
        fn = compute[op]

        def h():
            regs[rd] = fn(regs[rn], ev())
            return nxt

        return h
    raise NotImplementedError("data-processing op %s" % op.name)


def _compile_handlers(image, regs, mem, flags, trace, exit_code):
    handlers = []
    ma = trace.mem_addrs.append
    ms = trace.mem_is_store.append
    console = trace.console
    unpack_from = struct.unpack_from
    pack_into = struct.pack_into

    for idx, ins in enumerate(image.instrs):
        nxt = idx + 1
        if isinstance(ins, DataProc):
            h = _compile_dataproc(ins, idx, image, regs, flags)
        elif isinstance(ins, MemWord):
            h = _compile_memword(ins, idx, regs, mem, ma, ms, unpack_from, pack_into)
        elif isinstance(ins, MemHalf):
            h = _compile_memhalf(ins, idx, regs, mem, ma, ms, unpack_from, pack_into)
        elif isinstance(ins, MemMultiple):
            reglist = tuple(ins.reglist)
            rn = ins.rn
            if ins.load:
                index_of = image.index_of_addr
                loads_pc = 15 in reglist
                gprs = tuple(r for r in reglist if r != 15)

                def h(rn=rn, gprs=gprs, loads_pc=loads_pc, nxt=nxt):
                    addr = regs[rn]
                    for r in gprs:
                        ma(addr)
                        ms(0)
                        regs[r] = unpack_from("<I", mem, addr)[0]
                        addr += 4
                    target = nxt
                    if loads_pc:
                        ma(addr)
                        ms(0)
                        target = index_of(unpack_from("<I", mem, addr)[0])
                        addr += 4
                    regs[rn] = addr
                    return target
            else:
                def h(rn=rn, reglist=reglist, nxt=nxt):
                    addr = regs[rn] - 4 * len(reglist)
                    regs[rn] = addr
                    for r in reglist:
                        ma(addr)
                        ms(1)
                        pack_into("<I", mem, addr, regs[r])
                        addr += 4
                    return nxt
        elif isinstance(ins, Multiply):
            rd, rm, rs, rn, acc = ins.rd, ins.rm, ins.rs, ins.rn, ins.accumulate
            if acc:
                def h(rd=rd, rm=rm, rs=rs, rn=rn, nxt=nxt):
                    regs[rd] = (regs[rm] * regs[rs] + regs[rn]) & M32
                    return nxt
            else:
                def h(rd=rd, rm=rm, rs=rs, nxt=nxt):
                    regs[rd] = (regs[rm] * regs[rs]) & M32
                    return nxt
        elif isinstance(ins, Branch):
            target = image.index_of_addr(ins.target(image.addr_of_index(idx)))
            check = _cond_checker(ins.cond, flags)
            if ins.link:
                ret_addr = image.addr_of_index(idx) + 4
                if check is None:
                    def h(target=target, ret_addr=ret_addr):
                        regs[14] = ret_addr
                        return target
                else:
                    def h(target=target, ret_addr=ret_addr, check=check, nxt=nxt):
                        if check():
                            regs[14] = ret_addr
                            return target
                        return nxt
            else:
                if check is None:
                    def h(target=target):
                        return target
                else:
                    def h(target=target, check=check, nxt=nxt):
                        return target if check() else nxt
        elif isinstance(ins, Swi):
            num = ins.imm24
            if num == SWI_EXIT:
                def h():
                    exit_code[0] = regs[0]
                    return -1
            elif num == SWI_PUTC:
                def h(nxt=nxt):
                    console.append(regs[0] & 0xFF)
                    return nxt
            else:
                raise SimulationError("unknown SWI #%d at index %d" % (num, idx))
        else:
            raise SimulationError("cannot execute %r" % (ins,))
        handlers.append(h)
    return handlers


def _compile_memword(ins, idx, regs, mem, ma, ms, unpack_from, pack_into):
    nxt = idx + 1
    rd, rn = ins.rd, ins.rn
    if isinstance(ins.offset, int):
        off = ins.offset

        def ea():
            return (regs[rn] + off) & M32

    else:
        rm = ins.offset.rm
        shift = ins.offset.shift_imm
        if shift:
            def ea():
                return (regs[rn] + ((regs[rm] << shift) & M32)) & M32
        else:
            def ea():
                return (regs[rn] + regs[rm]) & M32

    if ins.load:
        if ins.byte:
            def h():
                addr = ea()
                ma(addr)
                ms(0)
                regs[rd] = mem[addr]
                return nxt
        else:
            def h():
                addr = ea()
                ma(addr)
                ms(0)
                regs[rd] = unpack_from("<I", mem, addr)[0]
                return nxt
    else:
        if ins.byte:
            def h():
                addr = ea()
                ma(addr)
                ms(1)
                mem[addr] = regs[rd] & 0xFF
                return nxt
        else:
            def h():
                addr = ea()
                ma(addr)
                ms(1)
                pack_into("<I", mem, addr, regs[rd])
                return nxt
    return h


def _compile_memhalf(ins, idx, regs, mem, ma, ms, unpack_from, pack_into):
    nxt = idx + 1
    rd, rn, off = ins.rd, ins.rn, ins.offset
    if ins.load:
        if ins.half and ins.signed:
            def h():
                addr = (regs[rn] + off) & M32
                ma(addr)
                ms(0)
                regs[rd] = unpack_from("<h", mem, addr)[0] & M32
                return nxt
        elif ins.half:
            def h():
                addr = (regs[rn] + off) & M32
                ma(addr)
                ms(0)
                regs[rd] = unpack_from("<H", mem, addr)[0]
                return nxt
        else:  # signed byte
            def h():
                addr = (regs[rn] + off) & M32
                ma(addr)
                ms(0)
                value = mem[addr]
                regs[rd] = value | 0xFFFFFF00 if value & 0x80 else value
                return nxt
    else:
        def h():
            addr = (regs[rn] + off) & M32
            ma(addr)
            ms(1)
            pack_into("<H", mem, addr, regs[rd] & 0xFFFF)
            return nxt
    return h
