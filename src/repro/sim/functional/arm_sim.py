"""Functional ARM simulator with pre-decoded execution.

Each static instruction is compiled once into a small Python closure
that mutates the machine state and returns the next instruction index;
execution is then driven by :mod:`repro.sim.functional.engine` — either
the classic closure-chaining loop (``REPRO_SIM_ENGINE=closure``) or the
default block engine, which additionally ``exec()``-compiles straight-
line stretches into single generated functions using the per-
instruction source templates in :func:`_emit` (the closures stay as the
always-available fallback).
"""

import struct

from repro.isa.arm.model import (
    Branch,
    Cond,
    DPOp,
    DataProc,
    MemHalf,
    MemMultiple,
    MemWord,
    Multiply,
    Operand2Imm,
    Operand2Reg,
    Operand2RegReg,
    ShiftType,
    Swi,
    COMPARE_OPS,
)
from repro.obs import core as obs
from repro.sim.functional import engine
from repro.sim.functional.engine import Emitted, SimulationError, cond_expr, emit_mem
from repro.sim.functional.trace import TraceBuilder, publish_result

M32 = 0xFFFFFFFF

#: SWI numbers understood by the simulator.
SWI_EXIT = 0
SWI_PUTC = 1


class ArmSimulator:
    """Executes a linked ARM image to completion.

    Args:
        image: :class:`repro.compiler.link.Image`.
        max_instructions: dynamic instruction budget (guards against
            runaway workloads).
        engine: execution engine override (``"block"``/``"closure"``);
            None defers to ``REPRO_SIM_ENGINE``.
    """

    def __init__(self, image, max_instructions=200_000_000, engine=None):
        self.image = image
        self.max_instructions = max_instructions
        self.engine = engine

    def run(self):
        """Simulate from ``_start`` until the exit SWI; returns
        :class:`~repro.sim.functional.trace.ExecutionResult`."""
        if not obs.enabled:
            return self._run()
        with obs.span("stage.simulate", isa="arm", image=self.image.name):
            result = self._run()
        publish_result("sim.arm", result)
        return result

    def _run(self):
        program = build_program(self.image)
        return engine.execute(program, self.max_instructions, self.engine)


def build_program(image):
    """Fresh per-run :class:`~repro.sim.functional.engine.Program`."""
    regs = [0] * 16
    regs[13] = image.stack_top
    mem = image.initial_memory()
    flags = [False, False, False, False]  # N, Z, C, V
    trace = TraceBuilder()
    exit_code = [None]
    handlers = _compile_handlers(image, regs, mem, flags, trace, exit_code)
    instrs = image.instrs
    return engine.Program(
        image=image,
        isa="arm",
        handlers=handlers,
        regs=regs,
        mem=mem,
        flags=flags,
        trace=trace,
        exit_code=exit_code,
        emit=lambda idx: _emit(instrs[idx], idx, image),
    )


# ----------------------------------------------------------------------
# closure compilation


def _cond_checker(cond, flags):
    if cond is Cond.AL:
        return None
    checks = {
        Cond.EQ: lambda: flags[1],
        Cond.NE: lambda: not flags[1],
        Cond.CS: lambda: flags[2],
        Cond.CC: lambda: not flags[2],
        Cond.MI: lambda: flags[0],
        Cond.PL: lambda: not flags[0],
        Cond.VS: lambda: flags[3],
        Cond.VC: lambda: not flags[3],
        Cond.HI: lambda: flags[2] and not flags[1],
        Cond.LS: lambda: not flags[2] or flags[1],
        Cond.GE: lambda: flags[0] == flags[3],
        Cond.LT: lambda: flags[0] != flags[3],
        Cond.GT: lambda: not flags[1] and flags[0] == flags[3],
        Cond.LE: lambda: flags[1] or flags[0] != flags[3],
    }
    return checks[cond]


def _op2_evaluator(op2, regs):
    """Closure returning the shifter-operand value."""
    if isinstance(op2, Operand2Imm):
        value = op2.value
        return lambda: value
    if isinstance(op2, Operand2Reg):
        rm = op2.rm
        amount = op2.shift_imm
        if op2.shift_type is ShiftType.LSL:
            if amount == 0:
                return lambda: regs[rm]
            return lambda: (regs[rm] << amount) & M32
        if op2.shift_type is ShiftType.LSR:
            if amount == 0:
                return lambda: 0  # LSR #0 encodes LSR #32
            return lambda: regs[rm] >> amount
        if op2.shift_type is ShiftType.ASR:
            if amount == 0:
                return lambda: M32 if regs[rm] & 0x80000000 else 0
            return lambda: (
                (regs[rm] >> amount) | (((1 << amount) - 1) << (32 - amount))
                if regs[rm] & 0x80000000
                else regs[rm] >> amount
            )
        # ROR
        if amount == 0:
            raise NotImplementedError("RRX unsupported")
        return lambda: ((regs[rm] >> amount) | (regs[rm] << (32 - amount))) & M32
    if isinstance(op2, Operand2RegReg):
        rm = op2.rm
        rs = op2.rs
        st = op2.shift_type

        def ev():
            amount = regs[rs] & 0xFF
            value = regs[rm]
            if st is ShiftType.LSL:
                return (value << amount) & M32 if amount < 32 else 0
            if st is ShiftType.LSR:
                return value >> amount if amount < 32 else 0
            if st is ShiftType.ASR:
                if amount >= 32:
                    return M32 if value & 0x80000000 else 0
                if value & 0x80000000:
                    return (value >> amount) | (((1 << amount) - 1) << (32 - amount))
                return value >> amount
            amount &= 31
            if amount == 0:
                return value
            return ((value >> amount) | (value << (32 - amount))) & M32

        return ev
    raise TypeError("bad operand2: %r" % (op2,))


def _compile_dataproc(ins, idx, image, regs, flags):
    nxt = idx + 1
    ev = _op2_evaluator(ins.operand2, regs)
    rd, rn, op = ins.rd, ins.rn, ins.op

    if op in COMPARE_OPS:
        if op is DPOp.CMP:
            def h():
                a = regs[rn]
                b = ev()
                r = (a - b) & M32
                flags[0] = bool(r & 0x80000000)
                flags[1] = r == 0
                flags[2] = a >= b
                flags[3] = bool((a ^ b) & (a ^ r) & 0x80000000)
                return nxt
        elif op is DPOp.CMN:
            def h():
                a = regs[rn]
                b = ev()
                total = a + b
                r = total & M32
                flags[0] = bool(r & 0x80000000)
                flags[1] = r == 0
                flags[2] = total > M32
                flags[3] = bool(~(a ^ b) & (a ^ r) & 0x80000000)
                return nxt
        elif op is DPOp.TST:
            def h():
                r = regs[rn] & ev()
                flags[0] = bool(r & 0x80000000)
                flags[1] = r == 0
                return nxt
        else:  # TEQ
            def h():
                r = regs[rn] ^ ev()
                flags[0] = bool(r & 0x80000000)
                flags[1] = r == 0
                return nxt
        return h

    if ins.s:
        raise NotImplementedError("S-bit data processing (other than compares)")

    if rd == 15:
        # write to PC: computed control transfer (function return)
        index_of = image.index_of_addr
        if op is not DPOp.MOV:
            raise NotImplementedError("only MOV may target pc")

        def h():
            return index_of(ev())

        return h

    compute = {
        DPOp.AND: lambda a, b: a & b,
        DPOp.EOR: lambda a, b: a ^ b,
        DPOp.SUB: lambda a, b: (a - b) & M32,
        DPOp.RSB: lambda a, b: (b - a) & M32,
        DPOp.ADD: lambda a, b: (a + b) & M32,
        DPOp.ORR: lambda a, b: a | b,
        DPOp.BIC: lambda a, b: a & ~b & M32,
    }
    if op is DPOp.MOV:
        def h():
            regs[rd] = ev()
            return nxt
        return h
    if op is DPOp.MVN:
        def h():
            regs[rd] = ev() ^ M32
            return nxt
        return h
    if op in compute:
        fn = compute[op]

        def h():
            regs[rd] = fn(regs[rn], ev())
            return nxt

        return h
    raise NotImplementedError("data-processing op %s" % op.name)


def _compile_handlers(image, regs, mem, flags, trace, exit_code):
    handlers = []
    mm = trace.add_mem
    console = trace.console
    unpack_from = struct.unpack_from
    pack_into = struct.pack_into

    for idx, ins in enumerate(image.instrs):
        nxt = idx + 1
        if isinstance(ins, DataProc):
            h = _compile_dataproc(ins, idx, image, regs, flags)
        elif isinstance(ins, MemWord):
            h = _compile_memword(ins, idx, regs, mem, mm, unpack_from, pack_into)
        elif isinstance(ins, MemHalf):
            h = _compile_memhalf(ins, idx, regs, mem, mm, unpack_from, pack_into)
        elif isinstance(ins, MemMultiple):
            reglist = tuple(ins.reglist)
            rn = ins.rn
            if ins.load:
                index_of = image.index_of_addr
                loads_pc = 15 in reglist
                gprs = tuple(r for r in reglist if r != 15)

                def h(rn=rn, gprs=gprs, loads_pc=loads_pc, nxt=nxt):
                    addr = regs[rn]
                    for r in gprs:
                        mm(addr + addr)
                        regs[r] = unpack_from("<I", mem, addr)[0]
                        addr += 4
                    target = nxt
                    if loads_pc:
                        mm(addr + addr)
                        target = index_of(unpack_from("<I", mem, addr)[0])
                        addr += 4
                    regs[rn] = addr
                    return target
            else:
                def h(rn=rn, reglist=reglist, nxt=nxt):
                    addr = regs[rn] - 4 * len(reglist)
                    regs[rn] = addr
                    for r in reglist:
                        mm(addr + addr + 1)
                        pack_into("<I", mem, addr, regs[r])
                        addr += 4
                    return nxt
        elif isinstance(ins, Multiply):
            rd, rm, rs, rn, acc = ins.rd, ins.rm, ins.rs, ins.rn, ins.accumulate
            if acc:
                def h(rd=rd, rm=rm, rs=rs, rn=rn, nxt=nxt):
                    regs[rd] = (regs[rm] * regs[rs] + regs[rn]) & M32
                    return nxt
            else:
                def h(rd=rd, rm=rm, rs=rs, nxt=nxt):
                    regs[rd] = (regs[rm] * regs[rs]) & M32
                    return nxt
        elif isinstance(ins, Branch):
            target = image.index_of_addr(ins.target(image.addr_of_index(idx)))
            check = _cond_checker(ins.cond, flags)
            if ins.link:
                ret_addr = image.addr_of_index(idx) + 4
                if check is None:
                    def h(target=target, ret_addr=ret_addr):
                        regs[14] = ret_addr
                        return target
                else:
                    def h(target=target, ret_addr=ret_addr, check=check, nxt=nxt):
                        if check():
                            regs[14] = ret_addr
                            return target
                        return nxt
            else:
                if check is None:
                    def h(target=target):
                        return target
                else:
                    def h(target=target, check=check, nxt=nxt):
                        return target if check() else nxt
        elif isinstance(ins, Swi):
            num = ins.imm24
            if num == SWI_EXIT:
                def h():
                    exit_code[0] = regs[0]
                    return -1
            elif num == SWI_PUTC:
                def h(nxt=nxt):
                    console.append(regs[0] & 0xFF)
                    return nxt
            else:
                raise SimulationError("unknown SWI #%d at index %d" % (num, idx))
        else:
            raise SimulationError("cannot execute %r" % (ins,))
        handlers.append(h)
    return handlers


def _compile_memword(ins, idx, regs, mem, mm, unpack_from, pack_into):
    nxt = idx + 1
    rd, rn = ins.rd, ins.rn
    if isinstance(ins.offset, int):
        off = ins.offset

        def ea():
            return (regs[rn] + off) & M32

    else:
        rm = ins.offset.rm
        shift = ins.offset.shift_imm
        if shift:
            def ea():
                return (regs[rn] + ((regs[rm] << shift) & M32)) & M32
        else:
            def ea():
                return (regs[rn] + regs[rm]) & M32

    if ins.load:
        if ins.byte:
            def h():
                addr = ea()
                mm(addr + addr)
                regs[rd] = mem[addr]
                return nxt
        else:
            def h():
                addr = ea()
                mm(addr + addr)
                regs[rd] = unpack_from("<I", mem, addr)[0]
                return nxt
    else:
        if ins.byte:
            def h():
                addr = ea()
                mm(addr + addr + 1)
                mem[addr] = regs[rd] & 0xFF
                return nxt
        else:
            def h():
                addr = ea()
                mm(addr + addr + 1)
                pack_into("<I", mem, addr, regs[rd])
                return nxt
    return h


def _compile_memhalf(ins, idx, regs, mem, mm, unpack_from, pack_into):
    nxt = idx + 1
    rd, rn, off = ins.rd, ins.rn, ins.offset
    if ins.load:
        if ins.half and ins.signed:
            def h():
                addr = (regs[rn] + off) & M32
                mm(addr + addr)
                regs[rd] = unpack_from("<h", mem, addr)[0] & M32
                return nxt
        elif ins.half:
            def h():
                addr = (regs[rn] + off) & M32
                mm(addr + addr)
                regs[rd] = unpack_from("<H", mem, addr)[0]
                return nxt
        else:  # signed byte
            def h():
                addr = (regs[rn] + off) & M32
                mm(addr + addr)
                value = mem[addr]
                regs[rd] = value | 0xFFFFFF00 if value & 0x80 else value
                return nxt
    else:
        def h():
            addr = (regs[rn] + off) & M32
            mm(addr + addr + 1)
            pack_into("<H", mem, addr, regs[rd] & 0xFFFF)
            return nxt
    return h


# ----------------------------------------------------------------------
# block-engine source templates
#
# Each template mirrors the matching closure above statement for
# statement; the block engine property tests (tests/test_engine.py)
# hold the two representations bit-identical.  An instruction kind
# without a template returns None and executes through its closure.


_DP_EXPR = {
    DPOp.AND: "regs[%d] & %s",
    DPOp.EOR: "regs[%d] ^ %s",
    DPOp.SUB: "(regs[%d] - %s) & 4294967295",
    DPOp.RSB: None,  # operand order swapped; handled explicitly
    DPOp.ADD: "(regs[%d] + %s) & 4294967295",
    DPOp.ORR: "regs[%d] | %s",
    DPOp.BIC: "regs[%d] & ~(%s) & 4294967295",
}

_ST_NAME = {ShiftType.LSL: "LSL", ShiftType.LSR: "LSR",
            ShiftType.ASR: "ASR", ShiftType.ROR: "ROR"}


def _op2_expr(op2):
    """Source expression for a shifter operand, or None (RRX)."""
    if isinstance(op2, Operand2Imm):
        return "%d" % op2.value
    if isinstance(op2, Operand2Reg):
        rm, n = op2.rm, op2.shift_imm
        if op2.shift_type is ShiftType.LSL:
            if n == 0:
                return "regs[%d]" % rm
            return "((regs[%d] << %d) & 4294967295)" % (rm, n)
        if op2.shift_type is ShiftType.LSR:
            if n == 0:
                return "0"  # LSR #0 encodes LSR #32
            return "(regs[%d] >> %d)" % (rm, n)
        if op2.shift_type is ShiftType.ASR:
            if n == 0:
                return "(4294967295 if regs[%d] & 2147483648 else 0)" % rm
            mask = ((1 << n) - 1) << (32 - n)
            return ("(((regs[%d] >> %d) | %d) if regs[%d] & 2147483648"
                    " else (regs[%d] >> %d))" % (rm, n, mask, rm, rm, n))
        # ROR
        if n == 0:
            return None  # RRX — the closure compiler rejects it anyway
        return ("(((regs[%d] >> %d) | (regs[%d] << %d)) & 4294967295)"
                % (rm, n, rm, 32 - n))
    if isinstance(op2, Operand2RegReg):
        return ("dyn_shift(regs[%d], %s, regs[%d] & 255)"
                % (op2.rm, _ST_NAME[op2.shift_type], op2.rs))
    return None


def _flag_lines(t, x, y, r, carry, overflow):
    """NZ always; C/V from the given expressions (None to skip)."""
    lines = ["flags[0] = %s >= 2147483648" % r,
             "flags[1] = %s == 0" % r]
    if carry is not None:
        lines.append("flags[2] = %s" % carry)
    if overflow is not None:
        lines.append("flags[3] = %s" % overflow)
    return lines


def _emit_dataproc(ins, idx):
    op2 = _op2_expr(ins.operand2)
    if op2 is None:
        return None
    rd, rn, op = ins.rd, ins.rn, ins.op
    t = "%d" % idx

    if op in COMPARE_OPS:
        x, y, r, tot = "_x" + t, "_y" + t, "_r" + t, "_t" + t
        if op is DPOp.CMP:
            lines = ["%s = regs[%d]" % (x, rn),
                     "%s = %s" % (y, op2),
                     "%s = (%s - %s) & 4294967295" % (r, x, y)]
            lines += _flag_lines(t, x, y, r,
                                 "%s >= %s" % (x, y),
                                 "((%s ^ %s) & (%s ^ %s) & 2147483648) != 0"
                                 % (x, y, x, r))
        elif op is DPOp.CMN:
            lines = ["%s = regs[%d]" % (x, rn),
                     "%s = %s" % (y, op2),
                     "%s = %s + %s" % (tot, x, y),
                     "%s = %s & 4294967295" % (r, tot)]
            lines += _flag_lines(t, x, y, r,
                                 "%s > 4294967295" % tot,
                                 "(~(%s ^ %s) & (%s ^ %s) & 2147483648) != 0"
                                 % (x, y, x, r))
        elif op is DPOp.TST:
            lines = ["%s = regs[%d] & %s" % (r, rn, op2)]
            lines += _flag_lines(t, None, None, r, None, None)
        else:  # TEQ
            lines = ["%s = regs[%d] ^ %s" % (r, rn, op2)]
            lines += _flag_lines(t, None, None, r, None, None)
        return Emitted(lines)

    if ins.s:
        return None  # closure compilation already raised

    if rd == 15:
        if op is not DPOp.MOV:
            return None
        return Emitted([], nxt="index_of(%s)" % op2)

    if op is DPOp.MOV:
        return Emitted(["regs[%d] = %s" % (rd, op2)])
    if op is DPOp.MVN:
        return Emitted(["regs[%d] = %s ^ 4294967295" % (rd, op2)])
    if op is DPOp.RSB:
        return Emitted(["regs[%d] = (%s - regs[%d]) & 4294967295" % (rd, op2, rn)])
    pattern = _DP_EXPR.get(op)
    if pattern is None:
        return None
    return Emitted(["regs[%d] = %s" % (rd, pattern % (rn, op2))])


def _ea_expr(ins):
    """Effective-address expression of a MemWord/MemHalf operand."""
    rn = ins.rn
    if isinstance(ins.offset, int):
        return "(regs[%d] + %d) & 4294967295" % (rn, ins.offset)
    rm = ins.offset.rm
    shift = ins.offset.shift_imm
    if shift:
        return ("(regs[%d] + ((regs[%d] << %d) & 4294967295)) & 4294967295"
                % (rn, rm, shift))
    return "(regs[%d] + regs[%d]) & 4294967295" % (rn, rm)


def _emit_memmultiple(ins, idx):
    reglist = tuple(ins.reglist)
    rn = ins.rn
    t = "%d" % idx
    lines = []
    addrs = []
    if ins.load:
        gprs = tuple(r for r in reglist if r != 15)
        lines.append("_a%s_0 = regs[%d]" % (t, rn))
        cursor = "_a%s_0" % t
        for j, r in enumerate(gprs):
            if j:
                cursor = "_a%s_%d" % (t, j)
                lines.append("%s = _a%s_%d + 4" % (cursor, t, j - 1))
            lines.append("regs[%d] = unpack_from(\"<I\", mem, %s)[0]" % (r, cursor))
            addrs.append((cursor, 0))
        if 15 in reglist:
            pc_cursor = "_a%s_%d" % (t, len(gprs))
            if gprs:
                lines.append("%s = %s + 4" % (pc_cursor, cursor))
            else:
                lines.append("%s = regs[%d]" % (pc_cursor, rn))
            lines.append("_t%s = index_of(unpack_from(\"<I\", mem, %s)[0])"
                         % (t, pc_cursor))
            addrs.append((pc_cursor, 0))
            lines.append("regs[%d] = %s + 4" % (rn, pc_cursor))
            return Emitted(lines, addrs=tuple(addrs), nxt="_t%s" % t)
        lines.append("regs[%d] = %s + 4" % (rn, cursor))
        return Emitted(lines, addrs=tuple(addrs))
    # store-multiple: descending base, ascending stores
    lines.append("_a%s_0 = regs[%d] - %d" % (t, rn, 4 * len(reglist)))
    lines.append("regs[%d] = _a%s_0" % (rn, t))
    cursor = "_a%s_0" % t
    for j, r in enumerate(reglist):
        if j:
            cursor = "_a%s_%d" % (t, j)
            lines.append("%s = _a%s_%d + 4" % (cursor, t, j - 1))
        lines.append("pack_into(\"<I\", mem, %s, regs[%d])" % (cursor, r))
        addrs.append((cursor, 1))
    return Emitted(lines, addrs=tuple(addrs))


def _emit_branch(ins, idx, image):
    target = image.index_of_addr(ins.target(image.addr_of_index(idx)))
    check = cond_expr(ins.cond)
    if ins.link:
        ret_addr = image.addr_of_index(idx) + 4
        if check is None:
            return Emitted(["regs[14] = %d" % ret_addr], nxt="%d" % target)
        return Emitted([], nxt="%d" % target, cond=check,
                       taken_lines=("regs[14] = %d" % ret_addr,))
    if check is None:
        return Emitted([], nxt="%d" % target)
    return Emitted([], nxt="%d" % target, cond=check)


def _emit(ins, idx, image):
    """Block-engine template for one instruction, or None (fallback)."""
    if isinstance(ins, DataProc):
        return _emit_dataproc(ins, idx)
    if isinstance(ins, MemWord):
        width = 1 if ins.byte else 4
        return emit_mem(ins.load, width, False, ins.rd, _ea_expr(ins), "_a%d" % idx)
    if isinstance(ins, MemHalf):
        ea = "(regs[%d] + %d) & 4294967295" % (ins.rn, ins.offset)
        if ins.load:
            width = 2 if ins.half else 1
            return emit_mem(True, width, ins.signed or not ins.half, ins.rd,
                            ea, "_a%d" % idx)
        return emit_mem(False, 2, False, ins.rd, ea, "_a%d" % idx)
    if isinstance(ins, MemMultiple):
        return _emit_memmultiple(ins, idx)
    if isinstance(ins, Multiply):
        if ins.accumulate:
            line = ("regs[%d] = (regs[%d] * regs[%d] + regs[%d]) & 4294967295"
                    % (ins.rd, ins.rm, ins.rs, ins.rn))
        else:
            line = ("regs[%d] = (regs[%d] * regs[%d]) & 4294967295"
                    % (ins.rd, ins.rm, ins.rs))
        return Emitted([line])
    if isinstance(ins, Branch):
        return _emit_branch(ins, idx, image)
    if isinstance(ins, Swi):
        if ins.imm24 == SWI_EXIT:
            return Emitted(["exit_code[0] = regs[0]"], nxt="-1")
        if ins.imm24 == SWI_PUTC:
            return Emitted(["console.append(regs[0] & 255)"])
        return None
    return None
