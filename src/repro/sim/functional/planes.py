"""Shared-memory handoff of decoded trace planes.

The per-chunk DSE workers used to pay ``lzma.decompress`` for every
``repro.trace/v2`` entry they touched — once per chunk, for the same
bytes.  With the persistent worker pool the coordinator instead decodes
each entry **once**, copies the raw columnar members into one
``multiprocessing.shared_memory`` segment per entry, and ships a small
descriptor (segment name + member offsets) to the workers inside the
task payload.  Workers attach zero-copy: numpy views straight into the
shared pages, no decompression, no duplication of the planes across
worker processes.

Coordinator side — :class:`PlaneBus`:

* ``export_for(store, benchmark, scale)`` scans the store's manifests
  for current-code entries recorded for that benchmark/scale and
  exports each into its own segment, returning the descriptors;
* ``close()`` unlinks every segment.  Workers that already attached
  keep a reference to the mapping, so on Linux the pages stay valid for
  as long as any attached result is alive — unlink only removes the
  name.

Worker side — :func:`attach` registers descriptors (idempotent), and
:func:`lookup` lazily attaches a segment the first time the entry is
requested, reconstructing the :class:`ExecutionResult` from read-only
views.  ``memory`` is shipped in its on-disk XOR-delta form and undone
against ``image.initial_memory()`` at lookup, since only the worker
holds the image object.  Any attach failure (segment already unlinked,
descriptor stale) silently falls back to the on-disk path in
``store.load``.
"""

import json
import os

import numpy as np

from repro.obs import core as obs
from repro.sim.functional import store as store_mod

try:
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - shm is optional on exotic builds
    resource_tracker = None
    shared_memory = None

#: entries whose decoded members exceed this many bytes are not
#: exported — a single pathological trace should not pin hundreds of
#: megabytes of shared pages for the whole sweep
_MAX_EXPORT_BYTES = 256 << 20


def available():
    """Whether shared-memory plane handoff can be used at all."""
    return shared_memory is not None


class PlaneBus:
    """Coordinator-side registry of exported plane segments."""

    def __init__(self):
        self._exported = {}  # entry key -> descriptor
        self._segments = []  # live SharedMemory handles, ours to unlink

    def export_entry(self, store, manifest):
        """Export one store entry; its descriptor, or None on failure."""
        key = manifest.get("image_hash")
        if not key:
            return None
        if key in self._exported:
            return self._exported[key]
        npz_path, _man_path = store._paths(key)
        try:
            member = store_mod._decode_blob(manifest, npz_path)
        except Exception:
            return None
        blobs = []
        members = []
        offset = 0
        for name, _dtype in store_mod._V2_MEMBERS:
            raw = np.ascontiguousarray(member[name])
            data = raw.tobytes()
            members.append((name, offset, len(data), raw.dtype.str))
            blobs.append(data)
            offset += len(data)
        if offset > _MAX_EXPORT_BYTES:
            return None
        try:
            shm = shared_memory.SharedMemory(create=True,
                                             size=max(1, offset))
        except OSError:
            return None
        pos = 0
        for data in blobs:
            shm.buf[pos:pos + len(data)] = data
            pos += len(data)
        self._segments.append(shm)
        desc = {
            "key": key,
            "shm": shm.name,
            "exit_code": int(manifest["exit_code"]),
            "memory_delta": bool(manifest["flags"][0]),
            "members": members,
        }
        self._exported[key] = desc
        obs.counter("dse.planes.exported")
        obs.counter("dse.planes.exported_bytes", offset)
        return desc

    def export_for(self, store, benchmark, scale):
        """Descriptors for every current-code entry of (benchmark, scale)."""
        descs = []
        try:
            names = sorted(os.listdir(store.root))
        except OSError:
            return descs
        for name in names:
            if not name.endswith(".json") or name.endswith(".tmp"):
                continue
            manifest = store_mod._read_manifest(
                os.path.join(store.root, name), warn=False)
            if manifest is None:
                continue
            if manifest.get("benchmark") != benchmark:
                continue
            if scale is not None and manifest.get("scale") != scale:
                continue
            desc = self.export_entry(store, manifest)
            if desc is not None:
                descs.append(desc)
        return descs

    def close(self):
        """Unlink every exported segment (attached workers keep theirs)."""
        for shm in self._segments:
            try:
                shm.close()
            except OSError:
                pass
            # workers forked after the tracker started share our tracker
            # process, so their attach-time unregister (see lookup())
            # consumed our registration; re-register first — the tracker
            # cache is a set, so this is a no-op when the registration is
            # still there and restores it when it isn't, keeping unlink's
            # own unregister from tracing a KeyError in the tracker
            if resource_tracker is not None:
                try:
                    resource_tracker.register(
                        "/" + shm.name.lstrip("/"), "shared_memory")
                except Exception:
                    pass
            try:
                shm.unlink()
            except (OSError, FileNotFoundError):
                pass
        self._segments = []
        self._exported = {}


#: worker-side registry: entry key -> {"desc": ..., "shm": SharedMemory
#: or None until first lookup}.  Attached handles are kept for the life
#: of the process — closing a segment with live numpy views into it is
#: an error, and the warm plane cache holds such views indefinitely.
_REGISTRY = {}


def clear_registry():
    """Forget every registered descriptor (tests)."""
    _REGISTRY.clear()


def attach(descriptors):
    """Register coordinator-exported descriptors in this process.

    Idempotent; a newer descriptor replaces an older one for the same
    entry only if the old segment was never actually attached (its bus
    may already be gone).
    """
    for desc in descriptors or ():
        entry = _REGISTRY.get(desc["key"])
        if entry is None or (entry["shm"] is None
                             and entry["desc"]["shm"] != desc["shm"]):
            _REGISTRY[desc["key"]] = {"desc": desc, "shm": None}


def lookup(key, image):
    """ExecutionResult for a registered entry, or None.

    Attaches the shared segment on first use; on any failure the
    descriptor is dropped and the caller falls back to disk.
    """
    entry = _REGISTRY.get(key)
    if entry is None or shared_memory is None:
        return None
    desc = entry["desc"]
    try:
        if entry["shm"] is None:
            shm = shared_memory.SharedMemory(name=desc["shm"])
            # attaching registers the segment with the resource
            # tracker, which would unlink it again when this worker
            # exits — the coordinator owns the lifetime, not us
            if resource_tracker is not None:
                try:
                    resource_tracker.unregister(
                        "/" + desc["shm"].lstrip("/"), "shared_memory")
                except Exception:
                    pass
            entry["shm"] = shm
        shm = entry["shm"]
        member = {}
        for name, offset, nbytes, dtype in desc["members"]:
            view = np.frombuffer(shm.buf, dtype=np.dtype(dtype),
                                 count=nbytes // np.dtype(dtype).itemsize,
                                 offset=offset)
            view.flags.writeable = False
            member[name] = view
        result = store_mod.result_from_members(
            image, desc["exit_code"], member, desc["memory_delta"])
    except (OSError, ValueError, KeyError):
        _REGISTRY.pop(key, None)
        return None
    obs.counter("trace_store.planes.attached")
    return result


def registry_size():
    return len(_REGISTRY)


def _dump_descriptor(desc):  # pragma: no cover - debugging helper
    return json.dumps(desc, indent=1, sort_keys=True)
