"""Functional (architectural) simulators.

:class:`~repro.sim.functional.arm_sim.ArmSimulator` executes linked ARM
images to completion, capturing a run-compressed instruction trace and a
memory-access trace that the timing and power models consume.  The FITS
functional simulator lives in :mod:`repro.sim.functional.fits_sim` and
executes translated binaries through the programmable-decoder
configuration.
"""

from repro.sim.functional.trace import ExecutionResult
from repro.sim.functional.engine import ENGINE_ENV, ENGINES, selected_engine
from repro.sim.functional.arm_sim import ArmSimulator, SimulationError
from repro.sim.functional.store import (
    TraceStore,
    cached_run,
    code_version_hash,
    get_store,
    image_fingerprint,
)

__all__ = [
    "ExecutionResult",
    "ENGINE_ENV",
    "ENGINES",
    "selected_engine",
    "ArmSimulator",
    "SimulationError",
    "TraceStore",
    "cached_run",
    "code_version_hash",
    "get_store",
    "image_fingerprint",
]
