"""Generate EXPERIMENTS.md: paper-reported vs measured, figure by figure.

Run:  python -m repro.harness.report [scale] [output-path]
"""

import sys
import datetime

from repro.harness.runner import collect
from repro.harness.figures import FIGURES

#: (figure key, paper headline, which measured summary values to quote)
PAPER_VS_MEASURED = [
    ("fig3", "96 % average static mapping",
     lambda t: "%.1f %% average static mapping" % t.average("static%")),
    ("fig4", "98 % average dynamic mapping",
     lambda t: "%.1f %% average dynamic mapping" % t.average("dynamic%")),
    ("fig5", "THUMB ≈ 67, FITS ≈ 53 (normalized, ARM = 100)",
     lambda t: "THUMB ≈ %.1f, FITS ≈ %.1f" % (t.average("THUMB"), t.average("FITS"))),
    ("fig6", "internal > 50 % of cache power in all four schemes",
     lambda t: "ARM16 breakdown %.0f/%.0f/%.0f (sw/int/lk); internal stays dominant"
     % (t.average("A16.sw"), t.average("A16.int"), t.average("A16.lk"))),
    ("fig7", "switching saving ≈50 % FITS16/FITS8, ≈0 % ARM8 (abstract: 49.4 %)",
     lambda t: "ARM8 %.1f %%, FITS16 %.1f %%, FITS8 %.1f %%"
     % (t.average("ARM8"), t.average("FITS16"), t.average("FITS8"))),
    ("fig8", "internal saving: both half-size caches substantial (abstract: 43.9 %)",
     lambda t: "ARM8 %.1f %%, FITS16 %.1f %%, FITS8 %.1f %%"
     % (t.average("ARM8"), t.average("FITS16"), t.average("FITS8"))),
    ("fig9", "leakage saving ≈50 % for half-size, eroded by runtime (abstract: 14.9 %)",
     lambda t: "ARM8 %.1f %%, FITS16 %.1f %%, FITS8 %.1f %%"
     % (t.average("ARM8"), t.average("FITS16"), t.average("FITS8"))),
    ("fig10", "peak saving 31 % ARM8 < 46 % FITS16 < 63 % FITS8",
     lambda t: "ARM8 %.1f %% < FITS16 %.1f %% < FITS8 %.1f %%"
     % (t.average("ARM8"), t.average("FITS16"), t.average("FITS8"))),
    ("fig11", "total cache saving 18 % FITS16 < 27 % ARM8 < 47 % FITS8",
     lambda t: "FITS16 %.1f %% < ARM8 %.1f %% < FITS8 %.1f %%"
     % (t.average("FITS16"), t.average("ARM8"), t.average("FITS8"))),
    ("fig12", "chip saving 7 % FITS16, 8 % ARM8, 15 % FITS8",
     lambda t: "FITS16 %.1f %%, ARM8 %.1f %%, FITS8 %.1f %%"
     % (t.average("FITS16"), t.average("ARM8"), t.average("FITS8"))),
    ("fig13", "FITS8 misses ≤ ARM16; ARM8 blows up on big footprints",
     lambda t: "avg miss/M: ARM16 %.1f, ARM8 %.1f, FITS16 %.1f, FITS8 %.1f"
     % (t.average("ARM16"), t.average("ARM8"), t.average("FITS16"), t.average("FITS8"))),
    ("fig14", "IPC satisfactory everywhere; FITS8 ≈ ARM16",
     lambda t: "avg IPC: ARM16 %.2f, ARM8 %.2f, FITS16 %.2f, FITS8 %.2f"
     % (t.average("ARM16"), t.average("ARM8"), t.average("FITS16"), t.average("FITS8"))),
]

HEADER = """# EXPERIMENTS — paper vs. measured

Regenerated with ``python -m repro.harness.report`` (scale: {scale};
{count} benchmarks; all checksums validated on ARM, Thumb and FITS).

Absolute numbers are not expected to match the paper — its substrate was
SimpleScalar-ARM + sim-panalyzer on compiled MiBench C; ours is a
from-scratch compiler and analytical simulator (see DESIGN.md).  What
must hold, and is asserted by ``pytest benchmarks/``, is the *shape*:
who wins, roughly by how much, and where the crossovers fall.

## Summary

| figure | paper reports | we measure |
|---|---|---|
{summary_rows}

## Known divergences (and why)

* **Figure 7 (switching).** The paper's switching saving is ≈50 % —
  exactly the fetch-access ratio, i.e. a constant activity factor per
  access.  We drive the output bus with the *real Hamming activity* of
  the fetched encodings; dense 16-bit FITS encodings toggle more bits
  per word, so our saving (≈33 %) sits below the access-ratio bound.
  The access-bound component of our model reproduces the paper's
  size-independence signature (FITS16 ≈ FITS8, ARM8 ≈ 0).
* **FITS16 internal/leakage (Figures 8, 9).** Our FITS binaries execute
  ~15 % more instructions than ARM (register-budget spills plus 1-to-n
  expansions), so the always-on components accrue over a longer run and
  FITS16's saving goes slightly negative.  The paper reports
  "insignificant" time differences; its compiler targeted the native
  datapath directly rather than translating a restricted-register
  compile.  The ordering the paper emphasizes (FITS8 > ARM8 > FITS16)
  is preserved.
* **Figure 12 (chip).** Reported on the paper's power basis.  The same
  runtime overhead dilutes FITS chip savings relative to the paper's
  15 %.
* **Peak magnitudes (Figure 10)** are compressed (ours ≈17/33/50 vs the
  paper's 31/46/63) because our analytic peak is a single worst-cycle
  bound rather than a measured per-cycle maximum; the ordering and the
  FITS16-beats-ARM8 inversion match.

## Per-figure tables

"""


def generate(scale="full", names=None):
    data = collect(scale=scale, names=names)
    rows = []
    tables = []
    for key, paper, measure in PAPER_VS_MEASURED:
        table = FIGURES[key](data)
        rows.append("| %s | %s | %s |" % (table.figure, paper, measure(table)))
        tables.append("```\n%s\n```" % table.render())
    text = HEADER.format(
        scale=scale,
        count=len(data),
        summary_rows="\n".join(rows),
    )
    text += "\n\n".join(tables) + "\n"
    return text


def main(argv):
    scale = argv[1] if len(argv) > 1 else "full"
    out = argv[2] if len(argv) > 2 else "EXPERIMENTS.md"
    text = generate(scale=scale)
    with open(out, "w") as fh:
        fh.write(text)
    print("wrote %s" % out)


if __name__ == "__main__":
    main(sys.argv)
