"""Experiment harness: regenerate every figure of the paper's evaluation.

The heavy lifting — compile, profile, synthesize, translate, simulate
all four processor configurations — happens once per benchmark in
:mod:`repro.harness.runner` and is cached on disk as JSON summaries;
the figure functions in :mod:`repro.harness.figures` are cheap
post-processing over those summaries.

Usage::

    from repro.harness import collect, FIGURES
    data = collect(scale="full")        # cached after the first run
    print(FIGURES["fig7"](data).render())
"""

from repro.harness.runner import BenchmarkSummary, collect, run_benchmark, CONFIGS
from repro.harness.figures import FIGURES, FigureTable

__all__ = [
    "BenchmarkSummary",
    "collect",
    "run_benchmark",
    "CONFIGS",
    "FIGURES",
    "FigureTable",
]
