"""Per-benchmark experiment runner with on-disk caching.

For one benchmark, :func:`run_benchmark` produces everything the paper's
figures consume:

* ARM / Thumb / FITS code sizes and ARM→FITS mapping rates,
* timing and cache-power results for the four simulated configurations
  — ARM16, ARM8, FITS16, FITS8 (ISA × I-cache size, Section 5),
* chip-level power per configuration (calibrated to the ARM16 baseline).

Summaries are plain dicts cached as JSON under ``.bench_cache/`` so the
figure scripts and pytest benchmarks never recompute a benchmark that
has already been simulated at the same scale.
"""

import json
import os

from repro.compiler import compile_arm, compile_thumb
from repro.sim.functional import ArmSimulator
from repro.sim.functional.thumb_sim import ThumbSimulator
from repro.sim.pipeline import simulate_timing
from repro.sim.cache import CacheGeometry
from repro.power import CachePowerModel, ChipPowerModel
from repro.core.flow import fits_flow
from repro.workloads import get_workload, POWER_STUDY_BENCHMARKS, CODE_SIZE_BENCHMARKS

#: The paper's four processor configurations: (label, isa, i-cache bytes).
CONFIGS = [
    ("ARM16", "arm", 16 * 1024),
    ("ARM8", "arm", 8 * 1024),
    ("FITS16", "fits", 16 * 1024),
    ("FITS8", "fits", 8 * 1024),
]

CACHE_VERSION = 7  # bump to invalidate cached summaries


def _cache_dir():
    root = os.environ.get("REPRO_CACHE_DIR")
    if root is None:
        root = os.path.join(os.getcwd(), ".bench_cache")
    os.makedirs(root, exist_ok=True)
    return root


class BenchmarkSummary:
    """JSON-serializable results for one benchmark at one scale."""

    def __init__(self, data):
        self.data = data

    def __getitem__(self, key):
        return self.data[key]

    @property
    def name(self):
        return self.data["name"]

    def config(self, label):
        return self.data["configs"][label]

    def saving(self, label, field, kind="energy"):
        """Fractional saving of ``field`` vs. the ARM16 baseline."""
        base = self.config("ARM16")[field]
        value = self.config(label)[field]
        if base == 0:
            return 0.0
        return 1.0 - value / base


def run_benchmark(name, scale="full", verbose=False):
    """Run the full study for one benchmark; returns a summary dict."""
    wl = get_workload(name)
    arm_image = compile_arm(wl.build_module(scale))
    arm_result = ArmSimulator(arm_image).run()
    if arm_result.exit_code != wl.reference(scale):
        raise AssertionError("%s: ARM checksum mismatch" % name)

    thumb_image = compile_thumb(wl.build_module(scale))
    thumb_result = ThumbSimulator(thumb_image).run()
    if thumb_result.exit_code != wl.reference(scale):
        raise AssertionError("%s: Thumb checksum mismatch" % name)

    flow = fits_flow(wl.build_module(scale))

    results = {"arm": arm_result, "fits": flow.fits_result}
    configs = {}
    timings = {}
    powers = {}
    for label, isa, size in CONFIGS:
        timing = simulate_timing(results[isa], size)
        power = CachePowerModel(CacheGeometry(size)).evaluate(timing)
        timings[label] = timing
        powers[label] = power
    chip = ChipPowerModel(powers["ARM16"], timings["ARM16"])

    for label, isa, size in CONFIGS:
        timing = timings[label]
        power = powers[label]
        chip_report = chip.evaluate(power, timing)
        sw, internal, leak = power.breakdown()
        configs[label] = {
            "cycles": timing.cycles,
            "instructions": timing.instructions,
            "ipc": timing.ipc,
            "seconds": timing.seconds,
            "icache_requests": timing.icache_requests,
            "icache_misses": timing.icache_misses,
            "mpm": timing.icache_misses_per_million,
            "dcache_accesses": timing.dcache_accesses,
            "dcache_misses": timing.dcache_misses,
            "switching_w": power.switching_w,
            "internal_w": power.internal_w,
            "leakage_w": power.leakage_w,
            "total_w": power.total_w,
            "peak_w": power.peak_w,
            "switching_j": power.switching_j,
            "internal_j": power.internal_j,
            "leakage_j": power.leakage_j,
            "total_j": power.energy_j,
            "frac_switching": sw,
            "frac_internal": internal,
            "frac_leakage": leak,
            "chip_w": chip_report.total_w,
            "chip_j": chip_report.total_w * timing.seconds,
        }

    summary = {
        "name": name,
        "scale": scale,
        "arm_code_size": arm_image.code_size,
        "thumb_code_size": thumb_image.code_size,
        "fits_code_size": flow.fits_image.code_size,
        "static_mapping": flow.static_mapping,
        "dynamic_mapping": flow.dynamic_mapping,
        "fits_budget": list(flow.budget) if flow.budget else None,
        "fits_geometry": [flow.isa.k_op, flow.isa.k_reg],
        "fits_opcodes": len(flow.isa.opcode_table),
        "expansion_histogram": {
            str(k): v for k, v in flow.fits_image.expansion_histogram().items()
        },
        "configs": configs,
    }
    if verbose:
        print("ran %s (%s): %d arm bytes, mapping %.3f/%.3f" % (
            name, scale, arm_image.code_size, flow.static_mapping, flow.dynamic_mapping))
    return summary


def collect(scale="full", names=None, verbose=False, use_cache=True):
    """All benchmark summaries (cached); returns name → BenchmarkSummary."""
    if names is None:
        names = CODE_SIZE_BENCHMARKS
    out = {}
    for name in names:
        path = os.path.join(_cache_dir(), "%s-%s-v%d.json" % (name, scale, CACHE_VERSION))
        data = None
        if use_cache and os.path.exists(path):
            with open(path) as fh:
                data = json.load(fh)
        if data is None:
            data = run_benchmark(name, scale, verbose=verbose)
            if use_cache:
                with open(path, "w") as fh:
                    json.dump(data, fh)
        out[name] = BenchmarkSummary(data)
    return out
