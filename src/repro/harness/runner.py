"""Per-benchmark experiment runner with on-disk caching.

For one benchmark, :func:`run_benchmark` produces everything the paper's
figures consume:

* ARM / Thumb / FITS code sizes and ARM→FITS mapping rates,
* timing and cache-power results for the four simulated configurations
  — ARM16, ARM8, FITS16, FITS8 (ISA × I-cache size, Section 5),
* chip-level power per configuration (calibrated to the ARM16 baseline),
* a **run manifest**: schema/cache versions, per-stage wall-clock spans
  (compile / profile / synthesize / translate / simulate) and every
  observability counter the run produced, cross-checked for consistency
  between the cache model and the power model's inputs.

Summaries are plain dicts cached as JSON under ``.bench_cache/`` so the
figure scripts and pytest benchmarks never recompute a benchmark that
has already been simulated at the same scale.  Cached blobs embed their
``cache_version`` and manifest schema; stale blobs are skipped with a
warning and recomputed — no manual filename bookkeeping required.
"""

import json
import os
import sys
import tempfile
import time

from repro import obs
from repro.compiler import compile_arm, compile_thumb
from repro.sim.functional import ArmSimulator, cached_run, selected_engine
from repro.sim.functional.thumb_sim import ThumbSimulator
from repro.sim.pipeline import TimingBatch
from repro.sim.cache import CacheGeometry
from repro.power import CachePowerModel, ChipPowerModel
from repro.core.flow import fits_flow
from repro.workloads import get_workload, POWER_STUDY_BENCHMARKS, CODE_SIZE_BENCHMARKS

#: The paper's four processor configurations: (label, isa, i-cache bytes).
CONFIGS = [
    ("ARM16", "arm", 16 * 1024),
    ("ARM8", "arm", 8 * 1024),
    ("FITS16", "fits", 16 * 1024),
    ("FITS8", "fits", 8 * 1024),
]

#: Bump when the summary layout changes.  The version is stored *inside*
#: each cached blob (alongside the obs schema version) and checked on
#: load, so stale caches invalidate themselves instead of relying on a
#: version-suffixed filename.
CACHE_VERSION = 8


def _repo_root():
    """Repository (or package-install) root, independent of the CWD."""
    here = os.path.dirname(os.path.abspath(__file__))
    probe = here
    for _ in range(8):
        if any(
            os.path.exists(os.path.join(probe, marker))
            for marker in ("pyproject.toml", "setup.py", ".git")
        ):
            return probe
        parent = os.path.dirname(probe)
        if parent == probe:
            break
        probe = parent
    # src/repro/harness/runner.py → the directory containing src/
    return os.path.dirname(os.path.dirname(os.path.dirname(here)))


def _cache_dir():
    """Resolve the summary cache directory.

    ``REPRO_CACHE_DIR`` (with ``~`` expanded) wins; otherwise the cache
    lives under the repository root — never the caller's CWD, so cache
    hits don't depend on where pytest was launched.
    """
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        root = os.path.expanduser(root)
    else:
        root = os.path.join(_repo_root(), ".bench_cache")
    os.makedirs(root, exist_ok=True)
    return root


def _cache_path(name, scale):
    return os.path.join(_cache_dir(), "%s-%s.json" % (name, scale))


def _load_cached(path):
    """Load one cached summary; None (with a warning) when stale/corrupt."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    manifest = data.get("manifest") or {}
    cache_version = manifest.get("cache_version")
    schema = manifest.get("schema")
    if cache_version != CACHE_VERSION or schema != obs.SCHEMA_VERSION:
        print(
            "warning: stale benchmark cache %s (cache v%s schema v%s, "
            "want v%d/v%d) — recomputing" % (
                os.path.basename(path), cache_version, schema,
                CACHE_VERSION, obs.SCHEMA_VERSION,
            ),
            file=sys.stderr,
        )
        return None
    return data


class BenchmarkSummary:
    """JSON-serializable results for one benchmark at one scale."""

    def __init__(self, data):
        self.data = data

    def __getitem__(self, key):
        return self.data[key]

    @property
    def name(self):
        return self.data["name"]

    @property
    def manifest(self):
        """The run manifest (versions, per-stage timings, counters)."""
        return self.data.get("manifest", {})

    def config(self, label):
        return self.data["configs"][label]

    def saving(self, label, field, kind="energy"):
        """Fractional saving of ``field`` vs. the ARM16 baseline."""
        base = self.config("ARM16")[field]
        value = self.config(label)[field]
        if base == 0:
            return 0.0
        return 1.0 - value / base


def _record_trajectory(summaries, record_trajectory):
    """Append trajectory records for the given summaries (opt-in hook).

    ``record_trajectory`` is falsy (off), True (default store under
    ``bench_history/``), or a path to the trajectory JSONL.  Returns
    the (added, skipped) counts from the store.
    """
    from repro.obs.regress import (
        TrajectoryStore,
        current_commit,
        records_from_summary,
    )

    path = record_trajectory if isinstance(record_trajectory, str) else None
    store = TrajectoryStore(path)
    commit = current_commit()
    records = []
    for summary in summaries:
        records.extend(records_from_summary(summary, commit))
    return store.append(records)


def run_benchmark(name, scale="full", verbose=False, record_trajectory=False):
    """Run the full study for one benchmark; returns a summary dict.

    The summary always carries a run manifest: when observability is not
    globally enabled, an aggregate-only window (no event sink, so no I/O
    and no per-opcode sampling) is opened just for the duration of this
    run — the instrumentation it activates is stage/function-granular
    and costs well under a percent of a run.

    With ``record_trajectory`` (False, True, or a JSONL path) the run's
    headline metrics are also appended to the metrics trajectory store
    keyed by the current git commit (see :mod:`repro.obs.regress`).
    """
    was_enabled = obs.core.enabled
    if not was_enabled:
        obs.enable(sink=None)
    marker = obs.mark()
    t0 = time.perf_counter()
    try:
        summary = _run_benchmark(name, scale, verbose)
        window = obs.since(marker)
    finally:
        if not was_enabled:
            obs.disable()
    wall = time.perf_counter() - t0

    counters = window["counters"]
    _check_cache_power_consistency(name, counters)
    manifest = {
        "schema": obs.SCHEMA_VERSION,
        "cache_version": CACHE_VERSION,
        "benchmark": name,
        "scale": scale,
        "sim_engine": selected_engine(),
        "wall_seconds": wall,
        "stages": obs.stage_timings(window["spans"]),
        "spans": window["spans"],
        "counters": counters,
        "gauges": window["gauges"],
        "distributions": window["distributions"],
    }
    summary["manifest"] = manifest
    obs.emit({"kind": "manifest", "benchmark": name, "manifest": manifest})
    if record_trajectory:
        _record_trajectory([summary], record_trajectory)
    return summary


def _check_cache_power_consistency(name, counters):
    """The power model must consume exactly the cache model's numbers.

    Over one ``run_benchmark`` window every timing report is evaluated by
    the power model exactly once, so the I-cache event totals published
    by :class:`~repro.sim.cache.model.SetAssociativeCache` and the input
    totals published by the power model must agree.
    """
    pairs = [
        ("cache.icache.misses", "power.icache.misses"),
        ("cache.icache.accesses", "power.icache.line_accesses"),
    ]
    for cache_key, power_key in pairs:
        if counters.get(cache_key, 0) != counters.get(power_key, 0):
            raise AssertionError(
                "%s: observability mismatch %s=%s vs %s=%s — the power "
                "model consumed different cache statistics than the cache "
                "model produced" % (
                    name, cache_key, counters.get(cache_key, 0),
                    power_key, counters.get(power_key, 0),
                )
            )


def _run_benchmark(name, scale, verbose):
    wl = get_workload(name)
    arm_image = compile_arm(wl.build_module(scale))
    arm_result = cached_run("arm", arm_image, ArmSimulator(arm_image).run,
                            benchmark=name, scale=scale)
    if arm_result.exit_code != wl.reference(scale):
        raise AssertionError("%s: ARM checksum mismatch" % name)

    thumb_image = compile_thumb(wl.build_module(scale))
    thumb_result = cached_run("thumb", thumb_image,
                              ThumbSimulator(thumb_image).run,
                              benchmark=name, scale=scale)
    if thumb_result.exit_code != wl.reference(scale):
        raise AssertionError("%s: Thumb checksum mismatch" % name)

    flow = fits_flow(wl.build_module(scale))

    results = {"arm": arm_result, "fits": flow.fits_result}
    configs = {}
    timings = {}
    powers = {}
    # one batch per ISA: the stack-distance pass over the columnar trace
    # is shared by that ISA's cache sizes (reports bit-identical to
    # per-size simulate_timing calls)
    batches = {
        isa: TimingBatch(results[isa],
                         [(size, None) for _l, i, size in CONFIGS if i == isa])
        for isa in {isa for _label, isa, _size in CONFIGS}
    }
    for label, isa, size in CONFIGS:
        timing = batches[isa].report(size)
        power = CachePowerModel(CacheGeometry(size)).evaluate(timing)
        timings[label] = timing
        powers[label] = power
    chip = ChipPowerModel(powers["ARM16"], timings["ARM16"])

    for label, isa, size in CONFIGS:
        timing = timings[label]
        power = powers[label]
        chip_report = chip.evaluate(power, timing)
        sw, internal, leak = power.breakdown()
        configs[label] = {
            "cycles": timing.cycles,
            "instructions": timing.instructions,
            "ipc": timing.ipc,
            "seconds": timing.seconds,
            "icache_requests": timing.icache_requests,
            "icache_line_accesses": timing.icache_line_accesses,
            "icache_misses": timing.icache_misses,
            "mpm": timing.icache_misses_per_million,
            "dcache_accesses": timing.dcache_accesses,
            "dcache_misses": timing.dcache_misses,
            "switching_w": power.switching_w,
            "internal_w": power.internal_w,
            "leakage_w": power.leakage_w,
            "total_w": power.total_w,
            "peak_w": power.peak_w,
            "switching_j": power.switching_j,
            "internal_j": power.internal_j,
            "leakage_j": power.leakage_j,
            "total_j": power.energy_j,
            "frac_switching": sw,
            "frac_internal": internal,
            "frac_leakage": leak,
            "chip_w": chip_report.total_w,
            "chip_j": chip_report.total_w * timing.seconds,
        }

    summary = {
        "name": name,
        "scale": scale,
        "arm_code_size": arm_image.code_size,
        "thumb_code_size": thumb_image.code_size,
        "fits_code_size": flow.fits_image.code_size,
        "static_mapping": flow.static_mapping,
        "dynamic_mapping": flow.dynamic_mapping,
        "fits_budget": list(flow.budget) if flow.budget else None,
        "fits_geometry": [flow.isa.k_op, flow.isa.k_reg],
        "fits_opcodes": len(flow.isa.opcode_table),
        "expansion_histogram": {
            str(k): v for k, v in flow.fits_image.expansion_histogram().items()
        },
        "configs": configs,
    }
    if verbose:
        print("ran %s (%s): %d arm bytes, mapping %.3f/%.3f" % (
            name, scale, arm_image.code_size, flow.static_mapping, flow.dynamic_mapping))
    return summary


def _atomic_write_json(path, data):
    """Same-directory temp file + ``os.replace``: readers of the cache
    never see a torn blob, whether the writer is one of many parallel
    workers or a run interrupted by Ctrl-C."""
    parent = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=parent, prefix=".tmp-", suffix=".json")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(data, fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _collect_task(payload):
    """Worker for parallel :func:`collect`: run one benchmark, cache it.

    Results travel through the on-disk cache (atomic writes), never
    through pipes — the same resumable-store discipline the DSE
    scheduler uses, so a crashed or timed-out worker just leaves its
    benchmark uncached for the retry.
    """
    name, scale, verbose = payload["name"], payload["scale"], payload["verbose"]
    data = run_benchmark(name, scale, verbose=verbose)
    _atomic_write_json(_cache_path(name, scale), data)


def collect(scale="full", names=None, verbose=False, use_cache=True, jobs=1,
            record_trajectory=False):
    """All benchmark summaries (cached); returns name → BenchmarkSummary.

    With ``jobs > 1`` (and ``use_cache``), uncached benchmarks are
    evaluated in parallel on the DSE scheduler's process pool
    (:func:`repro.dse.scheduler.run_tasks`): one isolated worker per
    benchmark, results landing in the shared cache via atomic writes,
    with the pool's crash-isolation and retry semantics.

    With ``record_trajectory`` (False, True, or a JSONL path) every
    collected summary — cached or fresh — is appended to the metrics
    trajectory store keyed by the current git commit; duplicates of
    already-recorded (commit, benchmark, config) triples are skipped by
    the store, so repeated collects never inflate the history.
    """
    if names is None:
        names = CODE_SIZE_BENCHMARKS

    def cached(name):
        path = _cache_path(name, scale)
        if use_cache and os.path.exists(path):
            return _load_cached(path)
        return None

    out = {}
    if jobs and jobs > 1 and use_cache:
        missing = [n for n in names if cached(n) is None]
        if missing:
            from repro.dse.scheduler import run_tasks

            payloads = [{"name": n, "scale": scale, "verbose": verbose}
                        for n in missing]
            with obs.span("stage.dse.collect", scale=scale, jobs=jobs,
                          benchmarks=len(missing)):
                results = run_tasks(_collect_task, payloads, jobs=jobs,
                                    label="collect")
            errors = ["%s (%s)" % (r.payload["name"], r.error)
                      for r in results if not r.ok]
            if errors:
                raise RuntimeError(
                    "parallel collect failed for: %s" % ", ".join(errors))

    for name in names:
        data = cached(name)
        if data is not None:
            obs.counter("harness.cache_hits")
        else:
            obs.counter("harness.cache_misses")
            data = run_benchmark(name, scale, verbose=verbose)
            if use_cache:
                _atomic_write_json(_cache_path(name, scale), data)
        out[name] = BenchmarkSummary(data)
    if record_trajectory:
        _record_trajectory(out.values(), record_trajectory)
    return out


def aggregate_manifests(summaries):
    """Fold many run manifests into one per-stage/counter aggregate.

    ``summaries`` is an iterable of :class:`BenchmarkSummary` (or raw
    summary dicts).  Returns per-stage totals (count, seconds), summed
    counters, total wall-clock, and the per-benchmark stage rows —
    everything ``python -m repro.obs.report`` prints.
    """
    stages = {}
    counters = {}
    per_benchmark = {}
    wall = 0.0
    for summary in summaries:
        data = summary.data if hasattr(summary, "data") else summary
        manifest = data.get("manifest") or {}
        name = manifest.get("benchmark", data.get("name", "?"))
        per_benchmark[name] = {
            "scale": manifest.get("scale"),
            "wall_seconds": manifest.get("wall_seconds", 0.0),
            "stages": manifest.get("stages", {}),
        }
        wall += manifest.get("wall_seconds", 0.0)
        for stage, row in (manifest.get("stages") or {}).items():
            agg = stages.setdefault(stage, {"count": 0, "seconds": 0.0})
            agg["count"] += row.get("count", 0)
            agg["seconds"] += row.get("seconds", 0.0)
        for key, value in (manifest.get("counters") or {}).items():
            counters[key] = counters.get(key, 0) + value
    return {
        "benchmarks": per_benchmark,
        "stages": stages,
        "counters": counters,
        "wall_seconds": wall,
    }
