"""Figure regeneration: one function per paper figure (3 through 14).

Each returns a :class:`FigureTable` whose rows mirror the bars of the
paper's figure (one per benchmark plus the average) and whose
``paper_note`` records what the paper reported, so EXPERIMENTS.md can be
regenerated mechanically.
"""

from repro.workloads import POWER_STUDY_BENCHMARKS, CODE_SIZE_BENCHMARKS


class FigureTable:
    """A rendered experiment: per-benchmark rows plus a summary row."""

    def __init__(self, figure, title, columns, rows, averages, paper_note):
        self.figure = figure
        self.title = title
        self.columns = columns          # value column names
        self.rows = rows                # list of (benchmark, [values])
        self.averages = averages        # [values]
        self.paper_note = paper_note

    def column(self, name):
        idx = self.columns.index(name)
        return {bench: values[idx] for bench, values in self.rows}

    def average(self, name):
        return self.averages[self.columns.index(name)]

    def render(self, fmt="%8.2f"):
        width = max(len(b) for b, _ in self.rows + [("average", None)]) + 2
        head = "%s — %s" % (self.figure, self.title)
        lines = [head, "=" * len(head)]
        header = " " * width + "".join("%12s" % c for c in self.columns)
        lines.append(header)
        for bench, values in self.rows:
            lines.append(bench.ljust(width) + "".join("%12s" % (fmt % v) for v in values))
        lines.append("-" * len(header))
        lines.append("average".ljust(width) + "".join("%12s" % (fmt % v) for v in self.averages))
        lines.append("paper: %s" % self.paper_note)
        return "\n".join(lines)


def _avg(rows):
    n = len(rows)
    cols = len(rows[0][1])
    return [sum(values[i] for _b, values in rows) / n for i in range(cols)]


def _table(figure, title, columns, rows, paper_note):
    return FigureTable(figure, title, columns, rows, _avg(rows), paper_note)


def _power_rows(data):
    return [(b, data[b]) for b in POWER_STUDY_BENCHMARKS if b in data]


# ----------------------------------------------------------------------


def fig3(data):
    rows = [(b, [100.0 * s["static_mapping"]]) for b, s in _power_rows(data)]
    return _table(
        "Figure 3", "ARM-to-FITS static mapping (% one-to-one)", ["static%"],
        rows, "96 % average static mapping",
    )


def fig4(data):
    rows = [(b, [100.0 * s["dynamic_mapping"]]) for b, s in _power_rows(data)]
    return _table(
        "Figure 4", "ARM-to-FITS dynamic mapping (% one-to-one)", ["dynamic%"],
        rows, "98 % average dynamic mapping",
    )


def fig5(data):
    rows = []
    for b in CODE_SIZE_BENCHMARKS:
        if b not in data:
            continue
        s = data[b]
        arm = s["arm_code_size"]
        rows.append(
            (b, [100.0, 100.0 * s["thumb_code_size"] / arm, 100.0 * s["fits_code_size"] / arm])
        )
    return _table(
        "Figure 5", "code size, normalized to ARM = 100", ["ARM", "THUMB", "FITS"],
        rows, "THUMB ≈ 67 (33 % saving); FITS ≈ 53 (47 % saving)",
    )


def fig6(data):
    """I-cache power breakdown per configuration (averaged fractions)."""
    rows = []
    for b, s in _power_rows(data):
        values = []
        for label in ("ARM16", "ARM8", "FITS16", "FITS8"):
            c = s.config(label)
            values.extend(
                [100 * c["frac_switching"], 100 * c["frac_internal"], 100 * c["frac_leakage"]]
            )
        rows.append((b, values))
    columns = [
        "%s.%s" % (cfg, comp)
        for cfg in ("A16", "A8", "F16", "F8")
        for comp in ("sw", "int", "lk")
    ]
    return _table(
        "Figure 6", "I-cache power breakdown (%)", columns, rows,
        "dynamic power dominates; internal > 50 % in all four schemes; "
        "leakage share roughly constant with size",
    )


def _component_saving(data, field, figure, title, paper_note):
    rows = []
    for b, s in _power_rows(data):
        rows.append(
            (b, [100.0 * s.saving(label, field) for label in ("ARM8", "FITS16", "FITS8")])
        )
    return _table(figure, title, ["ARM8", "FITS16", "FITS8"], rows, paper_note)


def fig7(data):
    return _component_saving(
        data, "switching_j", "Figure 7", "I-cache switching power saving (%)",
        "≈50 % for FITS16 and FITS8, ≈0 % for ARM8 (49.4 % avg in abstract)",
    )


def fig8(data):
    return _component_saving(
        data, "internal_j", "Figure 8", "I-cache internal power saving (%)",
        "half-sized caches (ARM8, FITS8) save substantially; 43.9 % avg in abstract",
    )


def fig9(data):
    return _component_saving(
        data, "leakage_j", "Figure 9", "I-cache leakage power saving (%)",
        "half-sized caches save ≈50 %, eroded by longer runtime for ARM8 on "
        "miss-heavy apps; 14.9 % avg in abstract",
    )


def fig10(data):
    rows = []
    for b, s in _power_rows(data):
        rows.append(
            (b, [100.0 * s.saving(label, "peak_w") for label in ("ARM8", "FITS16", "FITS8")])
        )
    return _table(
        "Figure 10", "I-cache peak power saving (%)", ["ARM8", "FITS16", "FITS8"],
        rows, "31 % ARM8, 46 % FITS16, 63 % FITS8 average",
    )


def fig11(data):
    return _component_saving(
        data, "total_j", "Figure 11", "total I-cache power saving (%)",
        "47 % FITS8 > 27 % ARM8 > 18 % FITS16 average",
    )


def fig12(data):
    rows = []
    for b, s in _power_rows(data):
        rows.append(
            (b, [100.0 * s.saving(label, "chip_w") for label in ("ARM8", "FITS16", "FITS8")])
        )
    return _table(
        "Figure 12", "total chip power saving (%)", ["ARM8", "FITS16", "FITS8"],
        rows, "15 % FITS8, 8 % ARM8, 7 % FITS16 average (power basis, as the "
        "paper reports; EXPERIMENTS.md discusses the runtime caveat)",
    )


def fig13(data):
    rows = []
    for b, s in _power_rows(data):
        rows.append(
            (b, [s.config(label)["mpm"] for label in ("ARM16", "ARM8", "FITS16", "FITS8")])
        )
    return _table(
        "Figure 13", "I-cache misses per million accesses",
        ["ARM16", "ARM8", "FITS16", "FITS8"], rows,
        "half-sized FITS8 misses no more than full-sized ARM16; ARM8 blows "
        "up on large-footprint applications",
    )


def fig14(data):
    rows = []
    for b, s in _power_rows(data):
        rows.append(
            (b, [s.config(label)["ipc"] for label in ("ARM16", "ARM8", "FITS16", "FITS8")])
        )
    return _table(
        "Figure 14", "instructions per cycle (dual issue, max 2)",
        ["ARM16", "ARM8", "FITS16", "FITS8"], rows,
        "all configurations satisfactory; FITS8 ≈ ARM16 with minor variations",
    )


FIGURES = {
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
}
