"""PowerFITS reproduction.

A from-scratch implementation of *PowerFITS: Reduce Dynamic and Static
I-Cache Power Using Application Specific Instruction Set Synthesis*
(Cheng, Tyson, Mudge; ISPASS 2005): a mini compiler with ARM-like and
Thumb-like back ends, the FITS instruction-set synthesizer and ARM→FITS
translator, functional and timing simulators, a sim-panalyzer-style
cache power model, 22 MiBench-like workloads, and a harness regenerating
every figure in the paper's evaluation.

Quick start::

    from repro import get_workload, compile_arm, fits_flow

    wl = get_workload("crc32")
    arm = compile_arm(wl.build_module("small"))
    flow = fits_flow(wl.build_module("small"))
    print(flow.static_mapping, flow.fits_image.code_size / arm.code_size)

See ``examples/`` and ``benchmarks/`` for the full experiment flow.
"""

from repro import obs
from repro.compiler import compile_arm, compile_thumb, Image
from repro.sim.functional import ArmSimulator
from repro.sim.functional.thumb_sim import ThumbSimulator
from repro.sim.functional.fits_sim import FitsSimulator
from repro.sim.pipeline import TimingConfig, simulate_timing
from repro.sim.cache import CacheGeometry, SetAssociativeCache
from repro.power import CachePowerModel, ChipPowerModel, TechnologyParams
from repro.core import ArmProfile, synthesize, translate, SynthesisConfig
from repro.core.flow import fits_flow, FitsFlowResult
from repro.workloads import get_workload, workload_names, all_workloads

__version__ = "1.0.0"

__all__ = [
    "obs",
    "compile_arm",
    "compile_thumb",
    "Image",
    "ArmSimulator",
    "ThumbSimulator",
    "FitsSimulator",
    "TimingConfig",
    "simulate_timing",
    "CacheGeometry",
    "SetAssociativeCache",
    "CachePowerModel",
    "ChipPowerModel",
    "TechnologyParams",
    "ArmProfile",
    "synthesize",
    "translate",
    "SynthesisConfig",
    "fits_flow",
    "FitsFlowResult",
    "get_workload",
    "workload_names",
    "all_workloads",
    "__version__",
]
