"""Minimal ARM disassembler for diagnostics and test output."""

from repro.isa.arm.model import (
    Cond,
    DPOp,
    DataProc,
    Multiply,
    MemWord,
    MemHalf,
    MemMultiple,
    Branch,
    Swi,
    Operand2Imm,
    COMPARE_OPS,
    UNARY_OPS,
)


def _cond_suffix(cond):
    return "" if cond is Cond.AL else cond.name.lower()


def disassemble(instr, pc=None):
    """One-line assembly text for a decoded instruction.

    ``pc`` (byte address) resolves branch targets to absolute addresses.
    """
    c = _cond_suffix(instr.cond)
    if isinstance(instr, DataProc):
        op2 = repr(instr.operand2)
        name = instr.op.name.lower()
        if instr.op in COMPARE_OPS:
            return "%s%s r%d, %s" % (name, c, instr.rn, op2)
        if instr.op in UNARY_OPS:
            s = "s" if instr.s else ""
            return "%s%s%s r%d, %s" % (name, c, s, instr.rd, op2)
        s = "s" if instr.s else ""
        return "%s%s%s r%d, r%d, %s" % (name, c, s, instr.rd, instr.rn, op2)
    if isinstance(instr, Multiply):
        if instr.accumulate:
            return "mla%s r%d, r%d, r%d, r%d" % (c, instr.rd, instr.rm, instr.rs, instr.rn)
        return "mul%s r%d, r%d, r%d" % (c, instr.rd, instr.rm, instr.rs)
    if isinstance(instr, MemWord):
        name = ("ldr" if instr.load else "str") + ("b" if instr.byte else "")
        if isinstance(instr.offset, int):
            if instr.offset:
                return "%s%s r%d, [r%d, #%d]" % (name, c, instr.rd, instr.rn, instr.offset)
            return "%s%s r%d, [r%d]" % (name, c, instr.rd, instr.rn)
        return "%s%s r%d, [r%d, %r]" % (name, c, instr.rd, instr.rn, instr.offset)
    if isinstance(instr, MemHalf):
        if instr.load:
            name = "ldr" + ("s" if instr.signed else "") + ("h" if instr.half else "b")
        else:
            name = "strh"
        if instr.offset:
            return "%s%s r%d, [r%d, #%d]" % (name, c, instr.rd, instr.rn, instr.offset)
        return "%s%s r%d, [r%d]" % (name, c, instr.rd, instr.rn)
    if isinstance(instr, MemMultiple):
        regs = ", ".join(("pc" if r == 15 else "r%d" % r) for r in instr.reglist)
        name = "ldmia" if instr.load else "stmdb"
        return "%s%s r%d!, {%s}" % (name, c, instr.rn, regs)
    if isinstance(instr, Branch):
        name = "bl" if instr.link else "b"
        if pc is not None:
            return "%s%s 0x%x" % (name, c, instr.target(pc))
        return "%s%s pc%+d" % (name, c, 8 + 4 * instr.offset)
    if isinstance(instr, Swi):
        return "swi%s #%d" % (c, instr.imm24)
    raise TypeError("cannot disassemble %r" % (instr,))


def disassemble_image(words, base=0):
    """Disassemble a list of machine words starting at ``base``."""
    from repro.isa.arm.decode import decode

    lines = []
    for i, word in enumerate(words):
        pc = base + 4 * i
        lines.append("%08x:  %08x  %s" % (pc, word, disassemble(decode(word), pc)))
    return "\n".join(lines)
