"""ARM-like 32-bit ISA: instruction model, encoder, decoder, disassembler.

The subset covers everything the mini compiler emits — ARMv4 data
processing with rotated immediates and register shifts, MUL/MLA,
word/byte transfers with 12-bit displacements, halfword/signed
transfers, conditional branches with link, and SWI — using the genuine
ARM bit layouts so field statistics (opcode, register, immediate and
displacement widths) match what the FITS profiler would see on real
binaries.
"""

from repro.isa.arm.model import (
    Cond,
    DPOp,
    ShiftType,
    Operand2Imm,
    Operand2Reg,
    Operand2RegReg,
    ArmInstr,
    DataProc,
    Multiply,
    MemWord,
    MemHalf,
    MemMultiple,
    Branch,
    Swi,
)
from repro.isa.arm.imm import encode_rotated_imm, decode_rotated_imm, is_encodable_imm
from repro.isa.arm.decode import decode, DecodeError
from repro.isa.arm.disasm import disassemble

__all__ = [
    "Cond",
    "DPOp",
    "ShiftType",
    "Operand2Imm",
    "Operand2Reg",
    "Operand2RegReg",
    "ArmInstr",
    "DataProc",
    "Multiply",
    "MemWord",
    "MemHalf",
    "MemMultiple",
    "Branch",
    "Swi",
    "encode_rotated_imm",
    "decode_rotated_imm",
    "is_encodable_imm",
    "decode",
    "DecodeError",
    "disassemble",
]
