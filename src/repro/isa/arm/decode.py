"""Decoder: 32-bit machine word → instruction object.

Strict by design: the simulator only ever sees words produced by our
back ends, so anything outside the supported subset raises
:class:`DecodeError` instead of silently mis-executing.
"""

from repro.isa.arm.model import (
    Cond,
    DPOp,
    ShiftType,
    Operand2Imm,
    Operand2Reg,
    Operand2RegReg,
    DataProc,
    Multiply,
    MemWord,
    MemHalf,
    MemMultiple,
    Branch,
    Swi,
    COMPARE_OPS,
)


class DecodeError(Exception):
    """Raised for machine words outside the supported ARM subset."""


def _bits(word, hi, lo):
    return (word >> lo) & ((1 << (hi - lo + 1)) - 1)


def decode(word):
    """Decode one machine word; raises :class:`DecodeError` if unsupported."""
    if not 0 <= word <= 0xFFFFFFFF:
        raise DecodeError("word out of range: %r" % (word,))
    cond_bits = _bits(word, 31, 28)
    if cond_bits == 15:
        raise DecodeError("unconditional (NV) space unsupported: 0x%08x" % word)
    cond = Cond(cond_bits)
    group = _bits(word, 27, 25)

    if group == 0b100:
        if not word & (1 << 21):
            raise DecodeError("block transfer without write-back: 0x%08x" % word)
        load = bool(word & (1 << 20))
        p = bool(word & (1 << 24))
        u = bool(word & (1 << 23))
        if load and not (not p and u):
            raise DecodeError("only LDMIA supported: 0x%08x" % word)
        if not load and not (p and not u):
            raise DecodeError("only STMDB supported: 0x%08x" % word)
        reglist = [r for r in range(16) if word & (1 << r)]
        return MemMultiple(load, rn=_bits(word, 19, 16), reglist=reglist, cond=cond)

    if group == 0b101:
        offset = _bits(word, 23, 0)
        if word & (1 << 23):
            offset -= 1 << 24
        return Branch(offset, link=bool(word & (1 << 24)), cond=cond)

    if group == 0b111:
        if not word & (1 << 24):
            raise DecodeError("coprocessor space unsupported: 0x%08x" % word)
        return Swi(_bits(word, 23, 0), cond=cond)

    if group in (0b010, 0b011):
        return _decode_mem_word(word, cond, register_offset=(group == 0b011))

    if group == 0b001:
        return _decode_dataproc(word, cond, Operand2Imm(_bits(word, 11, 8), _bits(word, 7, 0)))

    if group == 0b000:
        if _bits(word, 7, 4) == 0b1001 and _bits(word, 27, 22) == 0:
            return Multiply(
                rd=_bits(word, 19, 16),
                rn=_bits(word, 15, 12),
                rs=_bits(word, 11, 8),
                rm=_bits(word, 3, 0),
                accumulate=bool(word & (1 << 21)),
                s=bool(word & (1 << 20)),
                cond=cond,
            )
        if (word & (1 << 7)) and (word & (1 << 4)) and _bits(word, 6, 5) != 0:
            return _decode_mem_half(word, cond)
        if word & (1 << 4):
            if word & (1 << 7):
                raise DecodeError("extension space unsupported: 0x%08x" % word)
            op2 = Operand2RegReg(
                rm=_bits(word, 3, 0),
                shift_type=ShiftType(_bits(word, 6, 5)),
                rs=_bits(word, 11, 8),
            )
            return _decode_dataproc(word, cond, op2)
        op2 = Operand2Reg(
            rm=_bits(word, 3, 0),
            shift_type=ShiftType(_bits(word, 6, 5)),
            shift_imm=_bits(word, 11, 7),
        )
        return _decode_dataproc(word, cond, op2)

    raise DecodeError("unsupported instruction group %d: 0x%08x" % (group, word))


def _decode_dataproc(word, cond, operand2):
    op = DPOp(_bits(word, 24, 21))
    s = bool(word & (1 << 20))
    if op in COMPARE_OPS and not s:
        raise DecodeError("compare without S bit: 0x%08x" % word)
    return DataProc(
        op=op,
        rd=_bits(word, 15, 12),
        rn=_bits(word, 19, 16),
        operand2=operand2,
        s=s,
        cond=cond,
    )


def _decode_mem_word(word, cond, register_offset):
    if not word & (1 << 24) or word & (1 << 21):
        raise DecodeError("only pre-indexed, no-writeback transfers: 0x%08x" % word)
    up = bool(word & (1 << 23))
    if register_offset:
        if not up:
            raise DecodeError("subtracted register offsets unsupported: 0x%08x" % word)
        if word & (1 << 4):
            raise DecodeError("register-shift register offset unsupported: 0x%08x" % word)
        offset = Operand2Reg(
            rm=_bits(word, 3, 0),
            shift_type=ShiftType(_bits(word, 6, 5)),
            shift_imm=_bits(word, 11, 7),
        )
    else:
        offset = _bits(word, 11, 0)
        if not up:
            offset = -offset
    return MemWord(
        load=bool(word & (1 << 20)),
        rd=_bits(word, 15, 12),
        rn=_bits(word, 19, 16),
        offset=offset,
        byte=bool(word & (1 << 22)),
        cond=cond,
    )


def _decode_mem_half(word, cond):
    if not word & (1 << 24) or word & (1 << 21):
        raise DecodeError("only pre-indexed, no-writeback transfers: 0x%08x" % word)
    if not word & (1 << 22):
        raise DecodeError("register-offset halfword transfers unsupported: 0x%08x" % word)
    offset = (_bits(word, 11, 8) << 4) | _bits(word, 3, 0)
    if not word & (1 << 23):
        offset = -offset
    sh = _bits(word, 6, 5)
    load = bool(word & (1 << 20))
    return MemHalf(
        load=load,
        rd=_bits(word, 15, 12),
        rn=_bits(word, 19, 16),
        offset=offset,
        half=bool(sh & 1),
        signed=bool(sh & 2),
        cond=cond,
    )
