"""Decoded ARM instruction objects and their encoders.

Each instruction class knows how to produce its genuine ARMv4 machine
word via :meth:`ArmInstr.encode`; :mod:`repro.isa.arm.decode` is the
inverse.  The functional simulator executes these objects directly
(pre-decoded execution), and the FITS profiler reads their fields.
"""

import enum

from repro.isa.arm.imm import decode_rotated_imm


class Cond(enum.IntEnum):
    """ARM condition codes (the value is the 4-bit cond field)."""

    EQ = 0
    NE = 1
    CS = 2  # carry set / unsigned >=
    CC = 3  # carry clear / unsigned <
    MI = 4
    PL = 5
    VS = 6
    VC = 7
    HI = 8  # unsigned >
    LS = 9  # unsigned <=
    GE = 10
    LT = 11
    GT = 12
    LE = 13
    AL = 14


class DPOp(enum.IntEnum):
    """Data-processing opcodes (the value is the 4-bit opcode field)."""

    AND = 0
    EOR = 1
    SUB = 2
    RSB = 3
    ADD = 4
    ADC = 5
    SBC = 6
    RSC = 7
    TST = 8
    TEQ = 9
    CMP = 10
    CMN = 11
    ORR = 12
    MOV = 13
    BIC = 14
    MVN = 15


#: Opcodes that only set flags and write no register.
COMPARE_OPS = frozenset({DPOp.TST, DPOp.TEQ, DPOp.CMP, DPOp.CMN})
#: Opcodes with a single (shifter) operand and no Rn.
UNARY_OPS = frozenset({DPOp.MOV, DPOp.MVN})


class ShiftType(enum.IntEnum):
    LSL = 0
    LSR = 1
    ASR = 2
    ROR = 3


class Operand2Imm:
    """Rotated-immediate shifter operand."""

    __slots__ = ("rot", "imm8")

    def __init__(self, rot, imm8):
        if not (0 <= rot < 16 and 0 <= imm8 <= 0xFF):
            raise ValueError("bad rotated immediate rot=%d imm8=%d" % (rot, imm8))
        self.rot = rot
        self.imm8 = imm8

    @property
    def value(self):
        return decode_rotated_imm(self.rot, self.imm8)

    def __repr__(self):
        return "#0x%x" % self.value

    def __eq__(self, other):
        return (
            isinstance(other, Operand2Imm)
            and other.rot == self.rot
            and other.imm8 == self.imm8
        )


class Operand2Reg:
    """Register shifter operand, optionally shifted by an immediate."""

    __slots__ = ("rm", "shift_type", "shift_imm")

    def __init__(self, rm, shift_type=ShiftType.LSL, shift_imm=0):
        if not 0 <= shift_imm < 32:
            raise ValueError("shift_imm out of range: %d" % shift_imm)
        self.rm = rm
        self.shift_type = ShiftType(shift_type)
        self.shift_imm = shift_imm

    def __repr__(self):
        if self.shift_imm == 0 and self.shift_type is ShiftType.LSL:
            return "r%d" % self.rm
        return "r%d, %s #%d" % (self.rm, self.shift_type.name.lower(), self.shift_imm)

    def __eq__(self, other):
        return (
            isinstance(other, Operand2Reg)
            and other.rm == self.rm
            and other.shift_type == self.shift_type
            and other.shift_imm == self.shift_imm
        )


class Operand2RegReg:
    """Register shifted by a register amount (``rm, lsl rs``).

    ARM takes the shift amount from the bottom byte of ``rs``; amounts of
    32 or more produce 0 (or the sign fill for ASR), which matches the IR
    shift semantics the compiler lowers from.
    """

    __slots__ = ("rm", "shift_type", "rs")

    def __init__(self, rm, shift_type, rs):
        self.rm = rm
        self.shift_type = ShiftType(shift_type)
        self.rs = rs

    def __repr__(self):
        return "r%d, %s r%d" % (self.rm, self.shift_type.name.lower(), self.rs)

    def __eq__(self, other):
        return (
            isinstance(other, Operand2RegReg)
            and other.rm == self.rm
            and other.shift_type == self.shift_type
            and other.rs == self.rs
        )


def _check_reg(*regs):
    for r in regs:
        if not 0 <= r <= 15:
            raise ValueError("register out of range: %d" % r)


class ArmInstr:
    """Base class; every ARM instruction carries a condition code."""

    __slots__ = ("cond",)

    def __init__(self, cond=Cond.AL):
        self.cond = Cond(cond)

    def encode(self):
        raise NotImplementedError

    def regs_read(self):
        """Architectural register numbers read (for profiling)."""
        return []

    def regs_written(self):
        return []


class DataProc(ArmInstr):
    """Data-processing: ``<op>{cond}{s} rd, rn, <operand2>``."""

    __slots__ = ("op", "s", "rn", "rd", "operand2")

    def __init__(self, op, rd, rn, operand2, s=False, cond=Cond.AL):
        super().__init__(cond)
        self.op = DPOp(op)
        self.s = bool(s)
        if self.op in COMPARE_OPS:
            self.s = True  # compares always set flags
            rd = 0
        if self.op in UNARY_OPS:
            rn = 0
        _check_reg(rd, rn)
        self.rd = rd
        self.rn = rn
        if not isinstance(operand2, (Operand2Imm, Operand2Reg, Operand2RegReg)):
            raise TypeError("operand2 must be Operand2Imm/Operand2Reg/Operand2RegReg")
        self.operand2 = operand2

    def encode(self):
        word = (self.cond << 28) | (self.op << 21) | (int(self.s) << 20)
        word |= (self.rn << 16) | (self.rd << 12)
        if isinstance(self.operand2, Operand2Imm):
            word |= 1 << 25
            word |= (self.operand2.rot << 8) | self.operand2.imm8
        elif isinstance(self.operand2, Operand2RegReg):
            word |= (self.operand2.rs << 8) | (self.operand2.shift_type << 5)
            word |= (1 << 4) | self.operand2.rm
        else:
            word |= (self.operand2.shift_imm << 7) | (self.operand2.shift_type << 5)
            word |= self.operand2.rm
        return word

    def regs_read(self):
        out = [] if self.op in UNARY_OPS else [self.rn]
        if isinstance(self.operand2, (Operand2Reg, Operand2RegReg)):
            out.append(self.operand2.rm)
        if isinstance(self.operand2, Operand2RegReg):
            out.append(self.operand2.rs)
        return out

    def regs_written(self):
        return [] if self.op in COMPARE_OPS else [self.rd]


class Multiply(ArmInstr):
    """``mul rd, rm, rs`` or ``mla rd, rm, rs, rn`` (accumulate)."""

    __slots__ = ("rd", "rm", "rs", "rn", "accumulate", "s")

    def __init__(self, rd, rm, rs, rn=0, accumulate=False, s=False, cond=Cond.AL):
        super().__init__(cond)
        _check_reg(rd, rm, rs, rn)
        if rd == rm:
            raise ValueError("ARM MUL requires rd != rm")
        self.rd = rd
        self.rm = rm
        self.rs = rs
        self.rn = rn
        self.accumulate = bool(accumulate)
        self.s = bool(s)

    def encode(self):
        word = (self.cond << 28) | (int(self.accumulate) << 21) | (int(self.s) << 20)
        word |= (self.rd << 16) | (self.rn << 12) | (self.rs << 8) | (0b1001 << 4)
        word |= self.rm
        return word

    def regs_read(self):
        out = [self.rm, self.rs]
        if self.accumulate:
            out.append(self.rn)
        return out

    def regs_written(self):
        return [self.rd]


class MemWord(ArmInstr):
    """Word/byte load-store with immediate or (shifted) register offset.

    Pre-indexed without write-back only — the addressing mode the
    compiler uses.  ``offset`` is a signed int in [-4095, 4095] or an
    :class:`Operand2Reg` (LSL-shifted register, added).
    """

    __slots__ = ("load", "byte", "rn", "rd", "offset")

    def __init__(self, load, rd, rn, offset=0, byte=False, cond=Cond.AL):
        super().__init__(cond)
        _check_reg(rd, rn)
        self.load = bool(load)
        self.byte = bool(byte)
        self.rd = rd
        self.rn = rn
        if isinstance(offset, int):
            if not -4095 <= offset <= 4095:
                raise ValueError("word transfer offset out of range: %d" % offset)
        elif not isinstance(offset, Operand2Reg):
            raise TypeError("offset must be int or Operand2Reg")
        elif offset.shift_type is not ShiftType.LSL:
            raise ValueError("register offsets use LSL shifts only")
        self.offset = offset

    def encode(self):
        word = (self.cond << 28) | (1 << 26) | (1 << 24)  # pre-indexed
        word |= (int(self.byte) << 22) | (int(self.load) << 20)
        word |= (self.rn << 16) | (self.rd << 12)
        if isinstance(self.offset, int):
            up = self.offset >= 0
            word |= int(up) << 23
            word |= abs(self.offset)
        else:
            word |= (1 << 25) | (1 << 23)  # register offset, added
            word |= (self.offset.shift_imm << 7) | (self.offset.shift_type << 5)
            word |= self.offset.rm
        return word

    def regs_read(self):
        out = [self.rn]
        if isinstance(self.offset, Operand2Reg):
            out.append(self.offset.rm)
        if not self.load:
            out.append(self.rd)
        return out

    def regs_written(self):
        return [self.rd] if self.load else []


class MemHalf(ArmInstr):
    """Halfword and signed byte/halfword transfers (imm8 offsets).

    ``signed`` loads sign-extend; stores are always unsigned halfword.
    """

    __slots__ = ("load", "half", "signed", "rn", "rd", "offset")

    def __init__(self, load, rd, rn, offset=0, half=True, signed=False, cond=Cond.AL):
        super().__init__(cond)
        _check_reg(rd, rn)
        self.load = bool(load)
        self.half = bool(half)
        self.signed = bool(signed)
        if not self.load and (self.signed or not self.half):
            raise ValueError("stores in this format are unsigned halfword only")
        if self.load and not self.signed and not self.half:
            raise ValueError("unsigned byte loads use MemWord (LDRB)")
        if not isinstance(offset, int) or not -255 <= offset <= 255:
            raise ValueError("halfword transfer offset out of range: %r" % (offset,))
        self.rd = rd
        self.rn = rn
        self.offset = offset

    def encode(self):
        word = (self.cond << 28) | (1 << 24)  # pre-indexed
        word |= (1 << 22)  # immediate offset form
        word |= (int(self.offset >= 0) << 23) | (int(self.load) << 20)
        word |= (self.rn << 16) | (self.rd << 12)
        mag = abs(self.offset)
        word |= ((mag >> 4) << 8) | (mag & 0xF)
        sh = (int(self.signed) << 1) | int(self.half)
        word |= (1 << 7) | (sh << 5) | (1 << 4)
        return word

    def regs_read(self):
        return [self.rn] + ([] if self.load else [self.rd])

    def regs_written(self):
        return [self.rd] if self.load else []


class MemMultiple(ArmInstr):
    """Block transfer: ``stmdb rn!, {...}`` / ``ldmia rn!, {...}``.

    Only the two stack idioms compilers actually emit are supported
    (full-descending push and pop, always with write-back).  A pop whose
    register list includes pc (r15) is a function return.
    """

    __slots__ = ("load", "rn", "reglist")

    def __init__(self, load, rn, reglist, cond=Cond.AL):
        super().__init__(cond)
        _check_reg(rn, *reglist)
        if not reglist:
            raise ValueError("empty register list")
        self.load = bool(load)
        self.rn = rn
        self.reglist = sorted(set(reglist))
        if not self.load and 15 in self.reglist:
            raise ValueError("cannot push pc")

    def encode(self):
        word = (self.cond << 28) | (0b100 << 25) | (1 << 21)  # W=1
        if self.load:
            word |= (1 << 23) | (1 << 20)  # LDMIA: P=0 U=1 L=1
        else:
            word |= 1 << 24  # STMDB: P=1 U=0 L=0
        word |= self.rn << 16
        for r in self.reglist:
            word |= 1 << r
        return word

    def regs_read(self):
        return [self.rn] + ([] if self.load else list(self.reglist))

    def regs_written(self):
        return [self.rn] + (list(self.reglist) if self.load else [])


class Branch(ArmInstr):
    """``b{cond}`` / ``bl{cond}`` with a 24-bit word offset.

    ``offset`` is in *words* relative to PC+8 (the architectural
    convention); the linker computes it from byte addresses.
    """

    __slots__ = ("link", "offset")

    def __init__(self, offset, link=False, cond=Cond.AL):
        super().__init__(cond)
        if not -(1 << 23) <= offset < (1 << 23):
            raise ValueError("branch offset out of range: %d" % offset)
        self.link = bool(link)
        self.offset = offset

    def encode(self):
        word = (self.cond << 28) | (0b101 << 25) | (int(self.link) << 24)
        word |= self.offset & 0xFFFFFF
        return word

    def target(self, pc):
        """Byte address of the branch target given the instruction's PC."""
        return (pc + 8 + 4 * self.offset) & 0xFFFFFFFF

    def regs_written(self):
        return [14] if self.link else []


class Swi(ArmInstr):
    """Software interrupt; the 24-bit comment selects the system call."""

    __slots__ = ("imm24",)

    def __init__(self, imm24, cond=Cond.AL):
        super().__init__(cond)
        if not 0 <= imm24 < (1 << 24):
            raise ValueError("swi number out of range: %d" % imm24)
        self.imm24 = imm24

    def encode(self):
        return (self.cond << 28) | (0xF << 24) | self.imm24
