"""ARM rotated-immediate encoding.

A data-processing immediate is an 8-bit value rotated right by an even
amount (0, 2, …, 30).  This constraint is one of the field-level facts
the FITS profiler exploits: most embedded immediates are small and
encodable, the rest force multi-instruction materialization.
"""

MASK32 = 0xFFFFFFFF


def _ror32(value, amount):
    amount &= 31
    return ((value >> amount) | (value << (32 - amount))) & MASK32


def encode_rotated_imm(value):
    """Return ``(rot, imm8)`` such that ``ror32(imm8, 2*rot) == value``.

    Returns ``None`` when the value cannot be expressed.  Prefers the
    smallest rotation (the canonical assembler choice).
    """
    value &= MASK32
    for rot in range(16):
        imm8 = _ror32(value, 32 - 2 * rot) if rot else value
        if imm8 <= 0xFF:
            return rot, imm8
    return None


def decode_rotated_imm(rot, imm8):
    """Inverse of :func:`encode_rotated_imm`."""
    return _ror32(imm8, 2 * rot)


def is_encodable_imm(value):
    """True when the value fits an ARM data-processing immediate."""
    return encode_rotated_imm(value) is not None
