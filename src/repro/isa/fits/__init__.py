"""FITS 16-bit format machinery.

A FITS instruction set is *synthesized per application*
(:mod:`repro.core`): field widths, the opcode table, the register
renaming map and the immediate dictionaries together form the
*programmable decoder configuration* that the paper downloads into
non-volatile storage after fabrication.  This package holds the
parameterized format model, the encoder and the (config-driven)
decoder.
"""

from repro.isa.fits.spec import (
    FitsIsa,
    OperationSpec,
    FitsInstr,
    FitsEncodingError,
    OPRD_REG,
    OPRD_RAW,
    OPRD_DICT,
)
from repro.isa.fits.codec import encode_fits, decode_fits, FitsDecodeError

__all__ = [
    "FitsIsa",
    "OperationSpec",
    "FitsInstr",
    "FitsEncodingError",
    "OPRD_REG",
    "OPRD_RAW",
    "OPRD_DICT",
    "encode_fits",
    "decode_fits",
    "FitsDecodeError",
]
