"""FITS disassembler: halfwords → synthesized-assembly listing.

Because the instruction set is synthesized per application, the listing
prints the *decoder's* names for opcodes and resolves register renaming
and dictionary indices back to architectural values — it documents the
decoder configuration as much as the program.
"""

from repro.isa.fits.spec import OPRD_DICT, OPRD_REG
from repro.isa.fits.codec import decode_fits


def _reg(isa, field_value):
    try:
        return "r%d" % isa.arm_reg(field_value & ((1 << isa.k_reg) - 1))
    except KeyError:
        return "r?%d" % field_value


def disassemble_fits(isa, instr):
    """One-line text for a decoded :class:`FitsInstr`."""
    spec = instr.spec
    f = instr.fields
    name = spec.name
    kind = spec.kind
    if kind in ("dp3", "shifti", "shiftr", "mul", "mov2"):
        rc = _reg(isa, f.get("rc", 0))
        ra = _reg(isa, f.get("ra", 0))
        if kind == "mov2":
            return "%s %s, %s" % (name, rc, ra)
        oprd = f.get("oprd", 0)
        if spec.oprd_mode == OPRD_REG:
            return "%s %s, %s, %s" % (name, rc, ra, _reg(isa, oprd))
        if spec.oprd_mode == OPRD_DICT:
            return "%s %s, %s, =%#x" % (name, rc, ra, isa.dict_lookup(spec.dict_category, oprd))
        return "%s %s, %s, #%d" % (name, rc, ra, oprd)
    if kind in ("dp2", "movi", "mvni", "shift2i", "shift2r", "mul2"):
        rc = _reg(isa, f.get("rc", 0))
        value = f.get("value", 0)
        if spec.oprd_mode == OPRD_REG:
            return "%s %s, %s" % (name, rc, _reg(isa, value))
        if spec.oprd_mode == OPRD_DICT:
            return "%s %s, =%#x" % (name, rc, isa.dict_lookup(spec.dict_category, value))
        return "%s %s, #%d" % (name, rc, value)
    if kind == "cmp2":
        ra = _reg(isa, f.get("ra", 0))
        value = f.get("value", 0)
        if spec.params.get("mode") == "reg":
            return "%s %s, %s" % (name, ra, _reg(isa, value))
        if spec.oprd_mode == OPRD_DICT:
            return "%s %s, =%#x" % (name, ra, isa.dict_lookup(spec.dict_category, value))
        return "%s %s, #%d" % (name, ra, value)
    if kind in ("mem", "memr"):
        rd = _reg(isa, f.get("rd", 0))
        rb = _reg(isa, f.get("rb", 0))
        imm = f.get("imm", 0)
        if kind == "memr" or spec.oprd_mode == OPRD_REG:
            return "%s %s, [%s, %s]" % (name, rd, rb, _reg(isa, imm))
        if spec.oprd_mode == OPRD_DICT:
            return "%s %s, [%s, =%d]" % (name, rd, rb, isa.dict_lookup("mem", imm))
        return "%s %s, [%s, #%d]" % (name, rd, rb, imm * spec.params.get("width", 4))
    if kind == "memrx":
        rd = _reg(isa, f.get("rd", 0))
        rb = _reg(isa, f.get("rb", 0))
        return "%s %s, [%s, <extr>]" % (name, rd, rb)
    if kind == "memsp":
        rd = _reg(isa, f.get("rd", 0))
        return "%s %s, [sp, #%d]" % (name, rd, f.get("imm", 0) * 4)
    if kind in ("b", "bl", "spadj"):
        return "%s %+d" % (name, f.get("value", 0))
    if kind == "swi":
        return "%s #%d" % (name, f.get("value", 0))
    if kind == "ext":
        return "%s 0x%x" % (name, f.get("value", 0))
    if kind in ("ldm", "stm"):
        regs = ", ".join(("pc" if r == 15 else "r%d" % r) for r in spec.params["reglist"])
        return "%s {%s}" % (name, regs)
    if kind == "ret":
        return name
    return "%s %r" % (name, f)


def disassemble_image(fits_image, start=0, count=None):
    """Listing of a translated FITS image (address, halfword, text)."""
    isa = fits_image.isa
    out = []
    end = len(fits_image.halfwords) if count is None else min(
        len(fits_image.halfwords), start + count
    )
    for i in range(start, end):
        half = fits_image.halfwords[i]
        instr = decode_fits(isa, half)
        out.append(
            "%08x:  %04x  %s"
            % (fits_image.addr_of_index(i), half, disassemble_fits(isa, instr))
        )
    return "\n".join(out)
