"""FITS encoder and decoder.

The encoder packs an opcode plus field values into one halfword; the
decoder reverses it using the same :class:`~repro.isa.fits.spec.FitsIsa`
configuration (the programmable decoder).  The FITS functional simulator
executes only what the decoder produces, so a mismatch between the
translator's intent and the decodable encoding fails loudly in tests.
"""

from repro.isa.fits.spec import FitsInstr, FitsEncodingError, SIGNED_WIDE


class FitsDecodeError(Exception):
    """Raised for halfwords that don't decode under a given ISA config."""


def encode_fits(isa, instr):
    """Encode a :class:`FitsInstr` to a 16-bit word."""
    layout = isa.field_layout(instr.spec)
    word = instr.opcode
    used = isa.k_op
    for name, width in layout:
        value = instr.fields.get(name, 0)
        if instr.spec.kind in SIGNED_WIDE and name == "value":
            lo = -(1 << (width - 1))
            hi = (1 << (width - 1)) - 1
            if not lo <= value <= hi:
                raise FitsEncodingError(
                    "%s: signed field %s=%d out of %d-bit range"
                    % (instr.spec.name, name, value, width)
                )
            value &= (1 << width) - 1
        elif not 0 <= value < (1 << width):
            raise FitsEncodingError(
                "%s: field %s=%d exceeds %d bits" % (instr.spec.name, name, value, width)
            )
        word = (word << width) | value
        used += width
    # right-pad unused low bits (Implicit formats, short layouts)
    word <<= 16 - used
    return word


def decode_fits(isa, halfword):
    """Decode one halfword back into a :class:`FitsInstr`."""
    if not 0 <= halfword <= 0xFFFF:
        raise FitsDecodeError("halfword out of range: %r" % (halfword,))
    opcode = halfword >> (16 - isa.k_op)
    spec = isa.opcode_table.get(opcode)
    if spec is None:
        raise FitsDecodeError("opcode %d not in decoder table" % opcode)
    layout = isa.field_layout(spec)
    fields = {}
    pos = 16 - isa.k_op
    for name, width in layout:
        pos -= width
        raw = (halfword >> pos) & ((1 << width) - 1)
        if spec.kind in SIGNED_WIDE and name == "value" and raw >= (1 << (width - 1)):
            raw -= 1 << width
        fields[name] = raw
    return FitsInstr(opcode, spec, fields)
