"""FITS ISA specification: formats, operation specs, decoder configuration.

Formats (paper Figure 2), all 16 bits wide, opcode first::

    Operate3   [ OP | RC | RA | OPRD ]      OPRD: reg / raw imm / dict index
    Operate2   [ OP | RC |   VALUE   ]      rd==rn two-operand, wide operand
    Compare    [ OP | RA |   VALUE   ]      no destination, wide operand
    Memory     [ OP | RD | RB | IMM  ]      displacement raw (scaled) / dict
    MemorySP   [ OP | RD |   IMM     ]      implicit sp base, wide displacement
    Wide       [ OP |     VALUE      ]      branch disp / trap number / movi-at
    Implicit   [ OP ]                       ret, ldm/stm with baked reglists

Operand interpretation is *per opcode* and fixed at synthesis time —
that is what the programmable decoder stores.  The ``ext`` prefix
instruction supplies high bits (immediate extension or register-field
extension) to the instruction that follows it.
"""

#: OPRD / IMM interpretation modes.
OPRD_REG = "reg"
OPRD_RAW = "raw"
OPRD_DICT = "dict"

#: Operation kinds a spec may carry (the decoder's semantic vocabulary).
KINDS = frozenset(
    {
        "dp3",     # rc = ra <op> oprd            (Operate3)
        "dp2",     # rc = rc <op> value           (Operate2)
        "movi",    # rc = value                   (Operate2)
        "mvni",    # rc = ~value                  (Operate2)
        "mov2",    # rc = ra                      (Operate3, oprd unused)
        "cmp2",    # flags = ra <op> value/reg    (Compare)
        "shifti",  # rc = ra shift #oprd          (Operate3)
        "shiftr",  # rc = ra shift reg(oprd)      (Operate3)
        "mul",     # rc = ra * oprd-reg           (Operate3)
        "shift2i", # rc = rc shift #value          (Operate2)
        "shift2r", # rc = rc shift reg(value)      (Operate2)
        "mul2",    # rc = rc * reg(value)          (Operate2)
        "memrx",   # load/store rd, [rb + reg from ext prefix] (short Memory)
        "mem",     # load/store rd, [rb + imm]    (Memory)
        "memr",    # load/store rd, [rb + reg]    (Memory, IMM names a register)
        "memsp",   # load/store rd, [sp + imm]    (MemorySP)
        "spadj",   # sp += signed value           (Wide)
        "ldm",     # pop a baked register list    (Implicit)
        "stm",     # push a baked register list   (Implicit)
        "b",       # conditional/unconditional branch (Wide, signed disp)
        "bl",      # call (Wide, signed disp)
        "ret",     # jump to lr (Implicit)
        "swi",     # trap (Wide)
        "ext",     # prefix: extend next instruction (Wide payload)
    }
)

#: Kinds whose wide VALUE field is a signed quantity.
SIGNED_WIDE = frozenset({"b", "bl", "spadj"})


class FitsEncodingError(Exception):
    """Raised when an operand cannot be encoded under a given spec."""


class OperationSpec:
    """One synthesized opcode: its format, semantics and operand modes.

    Attributes:
        kind: one of :data:`KINDS`.
        params: semantic parameters baked into the decoder entry —
            e.g. ``{"op": DPOp.ADD}``, ``{"load": True, "width": 4,
            "signed": False}``, ``{"cond": Cond.EQ}``,
            ``{"reglist": (4, 5, 14)}``, ``{"shift": ShiftType.LSR}``.
        oprd_mode: interpretation of the operand field
            (:data:`OPRD_REG` / :data:`OPRD_RAW` / :data:`OPRD_DICT`),
            where applicable.
        dict_category: which immediate dictionary a dict-mode operand
            indexes (``"operate"`` or ``"mem"``).
    """

    __slots__ = ("kind", "params", "oprd_mode", "dict_category", "name")

    def __init__(self, kind, params=None, oprd_mode=None, dict_category=None, name=None):
        if kind not in KINDS:
            raise ValueError("unknown kind %r" % kind)
        self.kind = kind
        self.params = dict(params or {})
        self.oprd_mode = oprd_mode
        self.dict_category = dict_category
        self.name = name or kind

    def key(self):
        """Hashable identity used by the synthesizer's opcode table."""
        return (
            self.kind,
            tuple(sorted((k, _freeze(v)) for k, v in self.params.items())),
            self.oprd_mode,
            self.dict_category,
        )

    def __repr__(self):
        return "<OperationSpec %s %r mode=%s>" % (self.name, self.params, self.oprd_mode)


def _freeze(value):
    if isinstance(value, list):
        return tuple(value)
    return value


class FitsInstr:
    """One concrete FITS instruction: an opcode plus field values.

    ``fields`` maps field names (``rc``, ``ra``, ``oprd``, ``rd``,
    ``rb``, ``imm``, ``value``) to small integers as they will appear in
    the encoding.  Semantic resolution (dictionary lookups, register
    renaming) happens through the owning :class:`FitsIsa`.
    """

    __slots__ = ("opcode", "spec", "fields")

    def __init__(self, opcode, spec, fields):
        self.opcode = opcode
        self.spec = spec
        self.fields = dict(fields)

    def __repr__(self):
        body = " ".join("%s=%s" % kv for kv in sorted(self.fields.items()))
        return "<%s %s>" % (self.spec.name, body)

    def __eq__(self, other):
        return (
            isinstance(other, FitsInstr)
            and other.opcode == self.opcode
            and other.fields == self.fields
        )


class FitsIsa:
    """A complete synthesized FITS instruction set (decoder config).

    Attributes:
        k_op: opcode field width in bits.
        k_reg: register field width in bits.
        opcode_table: opcode number → :class:`OperationSpec`.
        regmap: ARM register number → FITS register index (renaming).
        dicts: category → list of 32-bit values (programmable immediate
            storage; a dict-mode operand field indexes into these).
    """

    def __init__(self, k_op, k_reg, opcode_table, regmap, dicts):
        if not 4 <= k_op <= 8:
            raise ValueError("k_op out of range: %d" % k_op)
        if k_reg not in (3, 4):
            raise ValueError("k_reg out of range: %d" % k_reg)
        self.k_op = k_op
        self.k_reg = k_reg
        self.opcode_table = dict(opcode_table)
        if len(self.opcode_table) > (1 << k_op):
            raise ValueError(
                "%d opcodes exceed the %d-bit opcode space"
                % (len(self.opcode_table), k_op)
            )
        self.regmap = dict(regmap)
        self.inv_regmap = {v: k for k, v in self.regmap.items()}
        self.dicts = {cat: list(vals) for cat, vals in dicts.items()}
        self.spec_to_opcode = {spec.key(): num for num, spec in self.opcode_table.items()}
        self.dict_index = {
            cat: {v & 0xFFFFFFFF: i for i, v in enumerate(vals)}
            for cat, vals in self.dicts.items()
        }

    # ------------------------------------------------------------------
    # field geometry

    @property
    def wide_width(self):
        """VALUE width of the Wide format (branch disp, trap, ext payload)."""
        return 16 - self.k_op

    @property
    def operate2_width(self):
        """VALUE width of Operate2/Compare (two-operand immediates)."""
        return 16 - self.k_op - self.k_reg

    @property
    def oprd_width(self):
        """OPRD/IMM width of Operate3/Memory."""
        return 16 - self.k_op - 2 * self.k_reg

    def field_layout(self, spec):
        """Ordered ``(name, width)`` pairs for a spec's format."""
        k = self.k_reg
        kind = spec.kind
        if kind in ("dp3", "mov2", "shifti", "shiftr", "mul"):
            return [("rc", k), ("ra", k), ("oprd", self.oprd_width)]
        if kind in ("dp2", "movi", "mvni", "shift2i", "shift2r", "mul2"):
            return [("rc", k), ("value", self.operate2_width)]
        if kind == "cmp2":
            return [("ra", k), ("value", self.operate2_width)]
        if kind in ("mem", "memr"):
            return [("rd", k), ("rb", k), ("imm", self.oprd_width)]
        if kind == "memrx":
            return [("rd", k), ("rb", k)]
        if kind == "memsp":
            return [("rd", k), ("imm", self.operate2_width)]
        if kind in ("b", "bl", "swi", "ext", "spadj"):
            return [("value", self.wide_width)]
        if kind in ("ldm", "stm", "ret"):
            return []
        raise ValueError("no layout for kind %r" % kind)

    # ------------------------------------------------------------------
    # register renaming

    def fits_reg(self, arm_reg):
        """FITS register index for an ARM register (KeyError if unmapped)."""
        return self.regmap[arm_reg]

    def arm_reg(self, fits_idx):
        return self.inv_regmap[fits_idx]

    def reg_fits_in_field(self, arm_reg):
        return self.regmap[arm_reg] < (1 << self.k_reg)

    # ------------------------------------------------------------------
    # dictionary access

    def dict_lookup(self, category, index):
        return self.dicts[category][index]

    def dict_find(self, category, value, max_index):
        """Index of ``value`` in a dictionary if below ``max_index``."""
        idx = self.dict_index.get(category, {}).get(value & 0xFFFFFFFF)
        if idx is not None and idx < max_index:
            return idx
        return None

    def opcode_for(self, spec):
        """Opcode number assigned to a spec (None if not synthesized)."""
        return self.spec_to_opcode.get(spec.key())

    def decoder_storage_bits(self):
        """Rough size of the programmable decoder state, in bits.

        Counts the opcode table (a generous 64 bits of decoded semantics
        per entry), the register map and the immediate dictionaries —
        the cost side of the synthesis trade-off.
        """
        table = len(self.opcode_table) * 64
        regs = len(self.regmap) * 4
        dicts = sum(len(v) * 32 for v in self.dicts.values())
        return table + regs + dicts

    def describe(self):
        lines = [
            "FITS ISA: k_op=%d k_reg=%d (%d opcodes)" % (self.k_op, self.k_reg, len(self.opcode_table)),
            "  operate3 oprd width: %d" % self.oprd_width,
            "  operate2 value width: %d" % self.operate2_width,
            "  wide value width: %d" % self.wide_width,
        ]
        for cat, vals in self.dicts.items():
            lines.append("  dict[%s]: %d entries" % (cat, len(vals)))
        for num in sorted(self.opcode_table):
            lines.append("  op %2d: %s" % (num, self.opcode_table[num].name))
        return "\n".join(lines)
