"""Instruction-set architecture models.

Three ISAs live here:

* :mod:`repro.isa.arm` — the 32-bit ARM-like baseline ISA (real ARMv4
  encodings for the subset the compiler generates),
* :mod:`repro.isa.thumb` — the 16-bit Thumb-like dual-ISA comparator,
* :mod:`repro.isa.fits` — the parameterized 16-bit FITS format machinery
  whose concrete encoding is synthesized per application by
  :mod:`repro.core`.
"""
