"""Thumb instruction objects and encoders (genuine Thumb-1 layouts)."""

import enum


class TCond(enum.IntEnum):
    """Condition field of Thumb conditional branches (same codes as ARM)."""

    EQ = 0
    NE = 1
    CS = 2
    CC = 3
    MI = 4
    PL = 5
    VS = 6
    VC = 7
    HI = 8
    LS = 9
    GE = 10
    LT = 11
    GT = 12
    LE = 13


class TAluOp(enum.IntEnum):
    """Format-4 two-address ALU opcodes (``rd = rd op rm``)."""

    AND = 0x0
    EOR = 0x1
    LSL = 0x2
    LSR = 0x3
    ASR = 0x4
    ADC = 0x5
    SBC = 0x6
    ROR = 0x7
    TST = 0x8
    NEG = 0x9
    CMP = 0xA
    CMN = 0xB
    ORR = 0xC
    MUL = 0xD
    BIC = 0xE
    MVN = 0xF


def _low(*regs):
    for r in regs:
        if not 0 <= r <= 7:
            raise ValueError("low register required, got r%d" % r)


class ThumbInstr:
    """Base class; all Thumb instructions encode to one halfword
    (``TBranchLink`` is the exception: an hi/lo halfword pair)."""

    __slots__ = ()

    def encode(self):
        raise NotImplementedError

    @property
    def size_halfwords(self):
        return 1


class TShiftImm(ThumbInstr):
    """Format 1: ``lsl/lsr/asr rd, rm, #imm5`` (three-address shift)."""

    __slots__ = ("op", "rd", "rm", "imm5")

    OPS = {"lsl": 0, "lsr": 1, "asr": 2}

    def __init__(self, op, rd, rm, imm5):
        if op not in self.OPS:
            raise ValueError("bad shift op %r" % op)
        _low(rd, rm)
        if not 0 <= imm5 < 32:
            raise ValueError("imm5 out of range: %d" % imm5)
        self.op = op
        self.rd = rd
        self.rm = rm
        self.imm5 = imm5

    def encode(self):
        return (self.OPS[self.op] << 11) | (self.imm5 << 6) | (self.rm << 3) | self.rd


class TAddSub(ThumbInstr):
    """Format 2: ``add/sub rd, rn, rm`` or ``add/sub rd, rn, #imm3``."""

    __slots__ = ("sub", "rd", "rn", "value", "imm")

    def __init__(self, sub, rd, rn, value, imm=False):
        _low(rd, rn)
        if imm:
            if not 0 <= value <= 7:
                raise ValueError("imm3 out of range: %d" % value)
        else:
            _low(value)
        self.sub = bool(sub)
        self.rd = rd
        self.rn = rn
        self.value = value
        self.imm = bool(imm)

    def encode(self):
        word = 0b00011 << 11
        word |= (int(self.imm) << 10) | (int(self.sub) << 9)
        word |= (self.value << 6) | (self.rn << 3) | self.rd
        return word


class TMovCmpAddSubImm(ThumbInstr):
    """Format 3: ``mov/cmp/add/sub rd, #imm8`` (two-address for add/sub)."""

    __slots__ = ("op", "rd", "imm8")

    OPS = {"mov": 0, "cmp": 1, "add": 2, "sub": 3}

    def __init__(self, op, rd, imm8):
        if op not in self.OPS:
            raise ValueError("bad format-3 op %r" % op)
        _low(rd)
        if not 0 <= imm8 <= 255:
            raise ValueError("imm8 out of range: %d" % imm8)
        self.op = op
        self.rd = rd
        self.imm8 = imm8

    def encode(self):
        return (0b001 << 13) | (self.OPS[self.op] << 11) | (self.rd << 8) | self.imm8


class TAlu(ThumbInstr):
    """Format 4: two-address ALU, ``rd = rd op rm`` (or compare/test)."""

    __slots__ = ("op", "rd", "rm")

    def __init__(self, op, rd, rm):
        _low(rd, rm)
        self.op = TAluOp(op)
        self.rd = rd
        self.rm = rm

    def encode(self):
        return (0b010000 << 10) | (self.op << 6) | (self.rm << 3) | self.rd


class THiReg(ThumbInstr):
    """Format 5: ``add/cmp/mov`` involving high registers, and ``bx``."""

    __slots__ = ("op", "rd", "rm")

    OPS = {"add": 0, "cmp": 1, "mov": 2, "bx": 3}

    def __init__(self, op, rd, rm):
        if op not in self.OPS:
            raise ValueError("bad hi-reg op %r" % op)
        if not (0 <= rd <= 15 and 0 <= rm <= 15):
            raise ValueError("register out of range")
        if op != "bx" and rd < 8 and rm < 8:
            raise ValueError("hi-reg form requires at least one high register")
        self.op = op
        self.rd = rd
        self.rm = rm

    def encode(self):
        h1 = self.rd >> 3
        h2 = self.rm >> 3
        return (
            (0b010001 << 10)
            | (self.OPS[self.op] << 8)
            | (h1 << 7)
            | (h2 << 6)
            | ((self.rm & 7) << 3)
            | (self.rd & 7)
        )


class TLoadStoreImm(ThumbInstr):
    """Formats 9/10: ``ldr/str{b,h} rd, [rn, #imm]`` (scaled imm5)."""

    __slots__ = ("load", "width", "rd", "rn", "offset", "signed")

    def __init__(self, load, rd, rn, offset, width=4, signed=False):
        _low(rd, rn)
        if width not in (1, 2, 4):
            raise ValueError("bad width %r" % width)
        if signed:
            raise ValueError("signed loads need the register-offset form")
        if offset % width:
            raise ValueError("offset %d not aligned to width %d" % (offset, width))
        if not 0 <= offset // width < 32:
            raise ValueError("offset out of range: %d" % offset)
        self.load = bool(load)
        self.width = width
        self.rd = rd
        self.rn = rn
        self.offset = offset
        self.signed = False

    def encode(self):
        imm5 = self.offset // self.width
        if self.width == 2:
            return (0b1000 << 12) | (int(self.load) << 11) | (imm5 << 6) | (self.rn << 3) | self.rd
        byte = self.width == 1
        return (
            (0b011 << 13)
            | (int(byte) << 12)
            | (int(self.load) << 11)
            | (imm5 << 6)
            | (self.rn << 3)
            | self.rd
        )


class TLoadStoreReg(ThumbInstr):
    """Formats 7/8: register-offset transfers, incl. sign-extended loads."""

    __slots__ = ("load", "width", "rd", "rn", "rm", "signed")

    def __init__(self, load, rd, rn, rm, width=4, signed=False):
        _low(rd, rn, rm)
        if width not in (1, 2, 4):
            raise ValueError("bad width %r" % width)
        if signed and (not load or width == 4):
            raise ValueError("signed form is load byte/half only")
        self.load = bool(load)
        self.width = width
        self.rd = rd
        self.rn = rn
        self.rm = rm
        self.signed = bool(signed)

    def encode(self):
        base = (0b0101 << 12) | (self.rm << 6) | (self.rn << 3) | self.rd
        if self.signed or self.width == 2:
            # format 8: [H][S]1
            if not self.load:  # strh
                hs = 0b00
            elif self.signed and self.width == 1:  # ldsb
                hs = 0b01
            elif not self.signed and self.width == 2:  # ldrh
                hs = 0b10
            else:  # ldsh
                hs = 0b11
            return base | (hs << 10) | (1 << 9)
        # format 7: [L][B]0
        lb = (int(self.load) << 1) | int(self.width == 1)
        return base | (lb << 10)


class TLoadStoreSpRel(ThumbInstr):
    """Format 11: ``ldr/str rd, [sp, #imm8*4]`` — the spill form."""

    __slots__ = ("load", "rd", "offset")

    def __init__(self, load, rd, offset):
        _low(rd)
        if offset % 4 or not 0 <= offset // 4 < 256:
            raise ValueError("sp-relative offset out of range: %d" % offset)
        self.load = bool(load)
        self.rd = rd
        self.offset = offset

    def encode(self):
        return (0b1001 << 12) | (int(self.load) << 11) | (self.rd << 8) | (self.offset // 4)


class TAdjustSp(ThumbInstr):
    """Format 13: ``add sp, #±imm7*4``."""

    __slots__ = ("delta",)

    def __init__(self, delta):
        if delta % 4 or not -508 <= delta <= 508:
            raise ValueError("sp adjustment out of range: %d" % delta)
        self.delta = delta

    def encode(self):
        mag = abs(self.delta) // 4
        return (0b10110000 << 8) | (int(self.delta < 0) << 7) | mag


class TPushPop(ThumbInstr):
    """Format 14: ``push {rlist[, lr]}`` / ``pop {rlist[, pc]}``."""

    __slots__ = ("pop", "reglist", "extra")

    def __init__(self, pop, reglist, extra=False):
        for r in reglist:
            _low(r)
        self.pop = bool(pop)
        self.reglist = sorted(set(reglist))
        self.extra = bool(extra)  # lr for push, pc for pop

    def encode(self):
        bits = 0
        for r in self.reglist:
            bits |= 1 << r
        return (
            (0b1011 << 12)
            | (int(self.pop) << 11)
            | (0b10 << 9)
            | (int(self.extra) << 8)
            | bits
        )


class TCondBranch(ThumbInstr):
    """Format 16: ``b<cond>`` with a signed 8-bit halfword offset."""

    __slots__ = ("cond", "offset")

    def __init__(self, cond, offset):
        if not -128 <= offset <= 127:
            raise ValueError("conditional branch offset out of range: %d" % offset)
        self.cond = TCond(cond)
        self.offset = offset

    def encode(self):
        return (0b1101 << 12) | (self.cond << 8) | (self.offset & 0xFF)

    def target_index(self, index):
        """Instruction (halfword) index of the target."""
        return index + 2 + self.offset


class TBranch(ThumbInstr):
    """Format 18: ``b`` with a signed 11-bit halfword offset."""

    __slots__ = ("offset",)

    def __init__(self, offset):
        if not -1024 <= offset <= 1023:
            raise ValueError("branch offset out of range: %d" % offset)
        self.offset = offset

    def encode(self):
        return (0b11100 << 11) | (self.offset & 0x7FF)

    def target_index(self, index):
        return index + 2 + self.offset


class TBranchLink(ThumbInstr):
    """Format 19: the two-halfword ``bl`` pair (±4 MB)."""

    __slots__ = ("offset",)

    def __init__(self, offset):
        if not -(1 << 21) <= offset < (1 << 21):
            raise ValueError("bl offset out of range: %d" % offset)
        self.offset = offset  # halfwords, relative to pc+4 of the first half

    @property
    def size_halfwords(self):
        return 2

    def encode(self):
        """Returns the (hi, lo) halfword pair."""
        off = self.offset & 0x3FFFFF
        hi = (0b11110 << 11) | ((off >> 11) & 0x7FF)
        lo = (0b11111 << 11) | (off & 0x7FF)
        return (hi, lo)

    def target_index(self, index):
        return index + 2 + self.offset


class TSwi(ThumbInstr):
    """``swi #imm8``."""

    __slots__ = ("imm8",)

    def __init__(self, imm8):
        if not 0 <= imm8 <= 255:
            raise ValueError("swi number out of range: %d" % imm8)
        self.imm8 = imm8

    def encode(self):
        return (0b11011111 << 8) | self.imm8
