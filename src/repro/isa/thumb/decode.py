"""Thumb decoder: halfword(s) → instruction objects.

``decode_thumb`` takes the halfword at the decode position plus the
following halfword (needed to assemble a ``bl`` pair) and returns the
instruction object; strict like the ARM decoder.
"""

from repro.isa.thumb.model import (
    TCond,
    TAluOp,
    TShiftImm,
    TAddSub,
    TMovCmpAddSubImm,
    TAlu,
    THiReg,
    TLoadStoreImm,
    TLoadStoreReg,
    TLoadStoreSpRel,
    TAdjustSp,
    TPushPop,
    TCondBranch,
    TBranch,
    TBranchLink,
    TSwi,
)


class ThumbDecodeError(Exception):
    """Raised for halfwords outside the supported Thumb subset."""


def _bits(h, hi, lo):
    return (h >> lo) & ((1 << (hi - lo + 1)) - 1)


def decode_thumb(half, next_half=None):
    """Decode one instruction; returns the object (bl consumes two
    halfwords — pass the following halfword)."""
    if not 0 <= half <= 0xFFFF:
        raise ThumbDecodeError("halfword out of range: %r" % (half,))
    top3 = _bits(half, 15, 13)

    if top3 == 0b000:
        op = _bits(half, 12, 11)
        if op != 0b11:
            return TShiftImm(
                {0: "lsl", 1: "lsr", 2: "asr"}[op],
                rd=_bits(half, 2, 0),
                rm=_bits(half, 5, 3),
                imm5=_bits(half, 10, 6),
            )
        return TAddSub(
            sub=bool(half & (1 << 9)),
            rd=_bits(half, 2, 0),
            rn=_bits(half, 5, 3),
            value=_bits(half, 8, 6),
            imm=bool(half & (1 << 10)),
        )

    if top3 == 0b001:
        op = {0: "mov", 1: "cmp", 2: "add", 3: "sub"}[_bits(half, 12, 11)]
        return TMovCmpAddSubImm(op, rd=_bits(half, 10, 8), imm8=_bits(half, 7, 0))

    if top3 == 0b010:
        if _bits(half, 12, 10) == 0b000:
            return TAlu(TAluOp(_bits(half, 9, 6)), rd=_bits(half, 2, 0), rm=_bits(half, 5, 3))
        if _bits(half, 12, 10) == 0b001:
            op = {0: "add", 1: "cmp", 2: "mov", 3: "bx"}[_bits(half, 9, 8)]
            rd = (_bits(half, 7, 7) << 3) | _bits(half, 2, 0)
            rm = (_bits(half, 6, 6) << 3) | _bits(half, 5, 3)
            return THiReg(op, rd, rm)
        if _bits(half, 12, 12) == 1:
            # register-offset transfers (formats 7/8)
            rm, rn, rd = _bits(half, 8, 6), _bits(half, 5, 3), _bits(half, 2, 0)
            if half & (1 << 9):
                hs = _bits(half, 11, 10)
                if hs == 0b00:
                    return TLoadStoreReg(False, rd, rn, rm, width=2)
                if hs == 0b01:
                    return TLoadStoreReg(True, rd, rn, rm, width=1, signed=True)
                if hs == 0b10:
                    return TLoadStoreReg(True, rd, rn, rm, width=2)
                return TLoadStoreReg(True, rd, rn, rm, width=2, signed=True)
            load = bool(half & (1 << 11))
            byte = bool(half & (1 << 10))
            return TLoadStoreReg(load, rd, rn, rm, width=1 if byte else 4)
        raise ThumbDecodeError("pc-relative load unsupported: 0x%04x" % half)

    if top3 == 0b011:
        load = bool(half & (1 << 11))
        byte = bool(half & (1 << 12))
        width = 1 if byte else 4
        return TLoadStoreImm(
            load,
            rd=_bits(half, 2, 0),
            rn=_bits(half, 5, 3),
            offset=_bits(half, 10, 6) * width,
            width=width,
        )

    if top3 == 0b100:
        if not half & (1 << 12):
            return TLoadStoreImm(
                bool(half & (1 << 11)),
                rd=_bits(half, 2, 0),
                rn=_bits(half, 5, 3),
                offset=_bits(half, 10, 6) * 2,
                width=2,
            )
        return TLoadStoreSpRel(
            bool(half & (1 << 11)), rd=_bits(half, 10, 8), offset=_bits(half, 7, 0) * 4
        )

    if top3 == 0b101:
        if _bits(half, 12, 8) == 0b10000:
            mag = _bits(half, 6, 0) * 4
            return TAdjustSp(-mag if half & (1 << 7) else mag)
        if _bits(half, 12, 12) == 1 and _bits(half, 10, 9) == 0b10:
            regs = [r for r in range(8) if half & (1 << r)]
            return TPushPop(bool(half & (1 << 11)), regs, extra=bool(half & (1 << 8)))
        raise ThumbDecodeError("unsupported misc format: 0x%04x" % half)

    if top3 == 0b110:
        cond = _bits(half, 11, 8)
        if cond == 0xF:
            return TSwi(_bits(half, 7, 0))
        if cond == 0xE:
            raise ThumbDecodeError("undefined cond 0xE: 0x%04x" % half)
        off = _bits(half, 7, 0)
        if off >= 128:
            off -= 256
        return TCondBranch(TCond(cond), off)

    # top3 == 0b111
    if _bits(half, 12, 11) == 0b00:
        off = _bits(half, 10, 0)
        if off >= 1024:
            off -= 2048
        return TBranch(off)
    if _bits(half, 12, 11) == 0b10:
        if next_half is None or _bits(next_half, 15, 11) != 0b11111:
            raise ThumbDecodeError("bl hi half without lo half: 0x%04x" % half)
        off = (_bits(half, 10, 0) << 11) | _bits(next_half, 10, 0)
        if off >= (1 << 21):
            off -= 1 << 22
        return TBranchLink(off)
    raise ThumbDecodeError("unsupported format: 0x%04x" % half)
