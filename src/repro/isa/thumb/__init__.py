"""Thumb-like 16-bit ISA (the dual-instruction-set comparator).

Real Thumb-1 encodings for the subset the Thumb back end emits.  The
point of this ISA in the study is its *constraints*: 3-bit register
fields (eight low registers), two-address ALU operations, and 8-bit
immediates — the reasons the paper gives for Thumb's code-size saving
(~33 %) falling short of FITS (~47 %).
"""

from repro.isa.thumb.model import (
    TCond,
    TAluOp,
    ThumbInstr,
    TShiftImm,
    TAddSub,
    TMovCmpAddSubImm,
    TAlu,
    THiReg,
    TLoadStoreImm,
    TLoadStoreReg,
    TLoadStoreSpRel,
    TAdjustSp,
    TPushPop,
    TCondBranch,
    TBranch,
    TBranchLink,
    TSwi,
)
from repro.isa.thumb.decode import decode_thumb, ThumbDecodeError
from repro.isa.thumb.disasm import disassemble_thumb

__all__ = [
    "TCond",
    "TAluOp",
    "ThumbInstr",
    "TShiftImm",
    "TAddSub",
    "TMovCmpAddSubImm",
    "TAlu",
    "THiReg",
    "TLoadStoreImm",
    "TLoadStoreReg",
    "TLoadStoreSpRel",
    "TAdjustSp",
    "TPushPop",
    "TCondBranch",
    "TBranch",
    "TBranchLink",
    "TSwi",
    "decode_thumb",
    "ThumbDecodeError",
    "disassemble_thumb",
]
