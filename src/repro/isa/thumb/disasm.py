"""Minimal Thumb disassembler for diagnostics."""

from repro.isa.thumb.model import (
    TShiftImm,
    TAddSub,
    TMovCmpAddSubImm,
    TAlu,
    THiReg,
    TLoadStoreImm,
    TLoadStoreReg,
    TLoadStoreSpRel,
    TAdjustSp,
    TPushPop,
    TCondBranch,
    TBranch,
    TBranchLink,
    TSwi,
)


def disassemble_thumb(ins):
    if isinstance(ins, TShiftImm):
        return "%s r%d, r%d, #%d" % (ins.op, ins.rd, ins.rm, ins.imm5)
    if isinstance(ins, TAddSub):
        name = "sub" if ins.sub else "add"
        operand = "#%d" % ins.value if ins.imm else "r%d" % ins.value
        return "%s r%d, r%d, %s" % (name, ins.rd, ins.rn, operand)
    if isinstance(ins, TMovCmpAddSubImm):
        return "%s r%d, #%d" % (ins.op, ins.rd, ins.imm8)
    if isinstance(ins, TAlu):
        return "%s r%d, r%d" % (ins.op.name.lower(), ins.rd, ins.rm)
    if isinstance(ins, THiReg):
        if ins.op == "bx":
            return "bx r%d" % ins.rm
        return "%s r%d, r%d" % (ins.op, ins.rd, ins.rm)
    if isinstance(ins, TLoadStoreImm):
        name = _ls_name(ins.load, ins.width, False)
        return "%s r%d, [r%d, #%d]" % (name, ins.rd, ins.rn, ins.offset)
    if isinstance(ins, TLoadStoreReg):
        name = _ls_name(ins.load, ins.width, ins.signed)
        return "%s r%d, [r%d, r%d]" % (name, ins.rd, ins.rn, ins.rm)
    if isinstance(ins, TLoadStoreSpRel):
        return "%s r%d, [sp, #%d]" % ("ldr" if ins.load else "str", ins.rd, ins.offset)
    if isinstance(ins, TAdjustSp):
        return "add sp, #%d" % ins.delta
    if isinstance(ins, TPushPop):
        regs = ", ".join("r%d" % r for r in ins.reglist)
        if ins.extra:
            regs = regs + (", pc" if ins.pop else ", lr") if regs else ("pc" if ins.pop else "lr")
        return "%s {%s}" % ("pop" if ins.pop else "push", regs)
    if isinstance(ins, TCondBranch):
        return "b%s .%+d" % (ins.cond.name.lower(), ins.offset)
    if isinstance(ins, TBranch):
        return "b .%+d" % ins.offset
    if isinstance(ins, TBranchLink):
        return "bl .%+d" % ins.offset
    if isinstance(ins, TSwi):
        return "swi #%d" % ins.imm8
    raise TypeError("cannot disassemble %r" % (ins,))


def _ls_name(load, width, signed):
    if load:
        if signed:
            return "ldsb" if width == 1 else "ldsh"
        return {1: "ldrb", 2: "ldrh", 4: "ldr"}[width]
    return {1: "strb", 2: "strh", 4: "str"}[width]
