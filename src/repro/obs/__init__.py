"""Lightweight, dependency-free observability for the PowerFITS pipeline.

Three primitives — spans (nested wall-clock timing), counters/gauges/
distributions, and pluggable sinks — instrument every layer of the
compile → profile → synthesize → translate → simulate/power flow.  See
:mod:`repro.obs.core` for the API and the ``REPRO_OBS`` environment
switch, and run ``python -m repro.obs.report`` for per-benchmark and
per-stage timing/counter tables over cached run manifests.

Typical use::

    from repro import obs

    obs.enable(obs.MemorySink())
    with obs.span("stage.compile"):
        ...
    obs.counter("regalloc.spills", 3)
    print(obs.snapshot()["spans"])
"""

from repro.obs.core import (
    SCHEMA_VERSION,
    STAGES,
    JsonlSink,
    MemorySink,
    NullSink,
    adopt_trace_context,
    apply_spec,
    configure_from_env,
    trace_context,
    counter,
    disable,
    emit,
    enable,
    export_spec,
    gauge,
    mark,
    observe,
    opcode_sampling,
    reset,
    since,
    snapshot,
    span,
    stage_timings,
    timed,
)
from repro.obs import core
from repro.obs import metrics

__all__ = [
    "metrics",
    "SCHEMA_VERSION",
    "STAGES",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "adopt_trace_context",
    "apply_spec",
    "configure_from_env",
    "core",
    "trace_context",
    "counter",
    "disable",
    "emit",
    "enable",
    "enabled",
    "export_spec",
    "gauge",
    "mark",
    "observe",
    "opcode_sampling",
    "reset",
    "since",
    "snapshot",
    "span",
    "stage_timings",
    "timed",
]


def __getattr__(name):
    # ``obs.enabled`` must always reflect the live flag in core, not a
    # stale import-time copy.
    if name == "enabled":
        return core.enabled
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
