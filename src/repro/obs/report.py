"""Observability report CLI over cached run manifests.

Run::

    python -m repro.obs.report [--scale SCALE] [--cache-dir DIR]
                               [--counters N] [benchmark ...]

Reads the run manifests embedded in ``.bench_cache/*.json`` summaries
(written by :mod:`repro.harness.runner`) and prints, without
recomputing anything:

* per-benchmark wall-clock and per-stage timing rows for the five
  pipeline stages (compile / profile / synthesize / translate /
  simulate),
* an aggregate per-stage table with a slowest-stage ranking,
* the top counters (instructions simulated, cache hits/misses/fills,
  translation 1-to-1 vs 1-to-n, register spills, ...).

With ``--jsonl PATH`` it instead summarizes a span/event stream written
via ``REPRO_OBS=jsonl:<path>``, folding in the rotated ``<path>.1``
generation kept by ``REPRO_OBS_MAX_BYTES`` rotation (add
``--top-spans N`` for a latency table with p50/p95/p99 columns per
span name, or ``--metrics`` for the histogram families carried by
``kind=metrics`` snapshot events — count/sum/p50/p95/p99 per metric,
merged exactly across processes); with ``--dse STORE`` it
renders the per-(benchmark, design point) stage timings embedded in a
design-space exploration result store (``python -m repro.dse sweep``).
"""

import argparse
import glob
import json
import os
import sys

from repro.obs.core import SCHEMA_VERSION, STAGES


def _fmt_seconds(seconds):
    if seconds >= 1.0:
        return "%8.2f s " % seconds
    return "%8.2f ms" % (seconds * 1e3)


def _counter_family(name):
    """Grouping key for one counter: its first dotted segment, or the
    first two for ``cache.*`` (``cache.icache`` vs ``cache.stack`` are
    different subsystems) and ``sim.engine.*`` (the block-compiled
    execution engine's codegen/fallback counters, distinct from the
    per-trace ``sim.*`` volume counters)."""
    parts = name.split(".")
    if parts[0] == "cache" and len(parts) > 2:
        return ".".join(parts[:2])
    if parts[0] == "sim" and len(parts) > 2 and parts[1] == "engine":
        return "sim.engine"
    return parts[0]


def _render_counters(counters, top_counters=24):
    """The counter section: a by-value top-N ranking plus a per-family
    roll-up, so low-volume families (``cache.stack.*``,
    ``trace_store.*``) are never silently dropped by the ranking cut."""
    lines = ["top counters:"]
    ranked = sorted(counters.items(), key=lambda kv: kv[1],
                    reverse=True)[:top_counters]
    for key, value in ranked:
        lines.append("  %-36s %16s" % (key, "{:,}".format(value)))
    shown = {key for key, _value in ranked}
    families = {}
    for key, value in counters.items():
        families.setdefault(_counter_family(key), []).append((key, value))
    lines.append("")
    lines.append("counter families:")
    for family in sorted(families):
        entries = families[family]
        total = sum(value for _key, value in entries)
        hidden = sum(1 for key, _value in entries if key not in shown)
        note = ", %d below top-%d cut" % (hidden, top_counters) if hidden else ""
        lines.append("  %-20s %16s  (%d counters%s)"
                     % (family, "{:,}".format(total), len(entries), note))
    return lines


def _load_manifests(cache_dir, scale, names):
    """(name → manifest) for every cached summary matching the filters."""
    manifests = {}
    for path in sorted(glob.glob(os.path.join(cache_dir, "*.json"))):
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            continue
        manifest = data.get("manifest")
        if not manifest:
            continue
        name = manifest.get("benchmark", data.get("name"))
        if scale and manifest.get("scale") != scale:
            continue
        if names and name not in names:
            continue
        manifests[name] = manifest
    return manifests


def render_manifests(manifests, top_counters=24):
    """Render the per-benchmark / per-stage / counter tables as text."""
    lines = []
    header = "%-14s %6s %11s " % ("benchmark", "scale", "wall")
    header += " ".join("%11s" % s for s in STAGES)
    lines.append(header)
    lines.append("-" * len(header))

    stage_totals = {s: [0, 0.0] for s in STAGES}
    counters = {}
    for name in sorted(manifests):
        m = manifests[name]
        stages = m.get("stages", {})
        row = "%-14s %6s %11s " % (
            name, m.get("scale", "?"), _fmt_seconds(m.get("wall_seconds", 0.0)))
        cells = []
        for stage in STAGES:
            entry = stages.get(stage)
            if entry is None:
                cells.append("%11s" % "-")
            else:
                cells.append("%11s" % _fmt_seconds(entry["seconds"]).strip())
                stage_totals[stage][0] += entry.get("count", 0)
                stage_totals[stage][1] += entry["seconds"]
        lines.append(row + " ".join(cells))
        for key, value in (m.get("counters") or {}).items():
            counters[key] = counters.get(key, 0) + value

    lines.append("")
    lines.append("per-stage totals (slowest first):")
    ranked = sorted(stage_totals.items(), key=lambda kv: kv[1][1], reverse=True)
    total_s = sum(v[1] for _s, v in ranked) or 1.0
    for stage, (count, seconds) in ranked:
        lines.append(
            "  %-11s %12s  %5.1f %%  (%d spans)"
            % (stage, _fmt_seconds(seconds).strip(), 100.0 * seconds / total_s, count)
        )

    if counters:
        lines.append("")
        lines.extend(_render_counters(counters, top_counters))
    return "\n".join(lines)


def render_dse(store_root, top_counters=24):
    """Per-point stage-timing table over a DSE result store.

    Reads the per-point manifests embedded in a
    :class:`repro.dse.store.ResultStore` (written by
    ``python -m repro.dse sweep``) and renders one row per
    (benchmark, design point) alongside the same per-stage totals and
    counter ranking the per-benchmark view prints.  Points that reused
    a worker's memoized compile/profile work show only the stages they
    actually ran (typically ``simulate``).
    """
    from repro.dse.store import ResultStore

    store = ResultStore(store_root)
    rows = {}
    for blob in store.iter_results():
        manifest = blob.get("manifest") or {}
        label = manifest.get("label") or blob["point"]["id"]
        key = "%s %s" % (blob["benchmark"], label)
        rows[key] = manifest

    if not rows:
        return None

    lines = []
    for record in store.failures():
        lines.append("warning: skipping failed point %s %s: %s" % (
            record.get("benchmark"), record.get("point_id"),
            record.get("error")))
    if lines:
        lines.append("")
    width = max(28, max(len(k) for k in rows) + 2)
    header = "%-*s %6s %11s " % (width, "benchmark/point", "scale", "wall")
    header += " ".join("%11s" % s for s in STAGES)
    lines.append(header)
    lines.append("-" * len(header))
    stage_totals = {s: [0, 0.0] for s in STAGES}
    counters = {}
    for key in sorted(rows):
        m = rows[key]
        row = "%-*s %6s %11s " % (
            width, key, m.get("scale", "?"),
            _fmt_seconds(m.get("wall_seconds", 0.0)))
        cells = []
        for stage in STAGES:
            entry = (m.get("stages") or {}).get(stage)
            if entry is None:
                cells.append("%11s" % "-")
            else:
                cells.append("%11s" % _fmt_seconds(entry["seconds"]).strip())
                stage_totals[stage][0] += entry.get("count", 0)
                stage_totals[stage][1] += entry["seconds"]
        lines.append(row + " ".join(cells))
        for ckey, value in (m.get("counters") or {}).items():
            counters[ckey] = counters.get(ckey, 0) + value

    lines.append("")
    lines.append("per-stage totals (slowest first):")
    ranked = sorted(stage_totals.items(), key=lambda kv: kv[1][1], reverse=True)
    total_s = sum(v[1] for _s, v in ranked) or 1.0
    for stage, (count, seconds) in ranked:
        lines.append(
            "  %-11s %12s  %5.1f %%  (%d spans)"
            % (stage, _fmt_seconds(seconds).strip(), 100.0 * seconds / total_s, count)
        )
    if counters:
        lines.append("")
        lines.extend(_render_counters(counters, top_counters))
    return "\n".join(lines)


def _percentile(ordered, q):
    """Linear-interpolated percentile of an ascending-sorted list."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * (q / 100.0)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _jsonl_generations(path):
    """One logical stream's files, oldest first.

    A stream capped by ``REPRO_OBS_MAX_BYTES`` rotates its past into
    ``<path>.1`` (a single kept generation) and keeps writing ``<path>``;
    reports must fold both back together or every summary silently
    loses whatever happened before the rotation point.
    """
    rotated = path + ".1"
    if os.path.exists(rotated):
        return [rotated, path]
    return [path]


def _iter_jsonl_events(path):
    """Parsed events across every generation of a JSONL stream.

    The live file must be readable (its OSError propagates — callers
    turn it into the usual "run with REPRO_OBS=jsonl:" hint); a rotated
    generation that disappears mid-read (a concurrent run rotating
    again) is skipped rather than failing the report.
    """
    for gen in _jsonl_generations(path):
        try:
            fh = open(gen)
        except OSError:
            if gen == path:
                raise
            continue
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError:
                    continue


def span_durations(path):
    """Per-span-name duration samples from a JSONL event stream
    (rotated generation included)."""
    durations = {}
    for event in _iter_jsonl_events(path):
        if event.get("kind") == "span":
            durations.setdefault(event.get("name", "?"), []).append(
                float(event.get("seconds", 0.0)))
    return durations


def render_top_spans(path, limit=10):
    """Top-N span table with p50/p95/p99 duration columns; None if empty.

    Needs per-span samples, so it reads a ``REPRO_OBS=jsonl:<path>``
    stream — cached manifests only keep per-stage aggregates.
    """
    durations = span_durations(path)
    if not durations:
        return None
    rows = sorted(durations.items(), key=lambda kv: sum(kv[1]), reverse=True)
    width = max(28, max(len(name) for name, _d in rows[:limit]) + 2)
    lines = ["top %d spans in %s (by total time):" % (limit, path),
             "%-*s %7s %12s %12s %12s %12s %12s" % (
                 width, "span", "n", "total", "p50", "p95", "p99", "max")]
    lines.append("-" * len(lines[-1]))
    for name, samples in rows[:limit]:
        samples = sorted(samples)
        lines.append("%-*s %7d %12s %12s %12s %12s %12s" % (
            width, name, len(samples),
            _fmt_seconds(sum(samples)).strip(),
            _fmt_seconds(_percentile(samples, 50)).strip(),
            _fmt_seconds(_percentile(samples, 95)).strip(),
            _fmt_seconds(_percentile(samples, 99)).strip(),
            _fmt_seconds(samples[-1]).strip()))
    if len(rows) > limit:
        lines.append("  ... %d more span names" % (len(rows) - limit))
    return "\n".join(lines)


def _fmt_metric_value(name, value):
    """Histogram cell: seconds-style for latency families, generic
    significant digits for everything else (e.g. joules)."""
    if name.endswith("seconds"):
        return _fmt_seconds(value).strip()
    return "%.6g" % value


def render_metrics_section(snapshot):
    """Histogram-family table from a merged metrics snapshot; None when
    the snapshot carries no histograms.

    One row per metric family with count/sum/p50/p95/p99/max — the
    quantiles come from the merged log-bucketed histograms
    (:mod:`repro.obs.metrics`), so they are exact bucket-upper-bound
    estimates across any number of process snapshots.
    """
    from repro.obs import metrics as metrics_mod

    hists = snapshot.get("histograms") or {}
    if not hists:
        return None
    width = max(28, max(len(name) for name in hists) + 2)
    procs = len(snapshot.get("procs") or ())
    lines = ["metric histograms (%d process snapshot%s merged):"
             % (procs, "" if procs == 1 else "s")]
    header = "%-*s %7s %12s %12s %12s %12s %12s" % (
        width, "metric", "n", "sum", "p50", "p95", "p99", "max")
    lines.append(header)
    lines.append("-" * len(header))
    for name in sorted(hists):
        row = metrics_mod.summarize(hists[name])
        lines.append("%-*s %7d %12s %12s %12s %12s %12s" % (
            width, name, row["count"],
            _fmt_metric_value(name, row["sum"]),
            _fmt_metric_value(name, row["p50"]),
            _fmt_metric_value(name, row["p95"]),
            _fmt_metric_value(name, row["p99"]),
            _fmt_metric_value(name, row["max"])))
    return "\n".join(lines)


def render_jsonl(path, top_counters=24):
    """Summarize a JSONL event stream (rotated generation included);
    None when empty/span-free."""
    spans = {}
    manifests = {}
    for event in _iter_jsonl_events(path):
        kind = event.get("kind")
        if kind == "span":
            agg = spans.setdefault(event["name"], [0, 0.0, 0.0])
            agg[0] += 1
            agg[1] += event.get("seconds", 0.0)
            if event.get("seconds", 0.0) > agg[2]:
                agg[2] = event["seconds"]
        elif kind == "manifest":
            manifests[event.get("benchmark", "?")] = event.get("manifest", {})
    if not spans and not manifests:
        return None
    generations = _jsonl_generations(path)
    source = path if len(generations) == 1 else "%s (+%s)" % (
        path, generations[0])
    lines = ["spans in %s (by total time):" % source]
    for name, (count, seconds, max_s) in sorted(
        spans.items(), key=lambda kv: kv[1][1], reverse=True
    ):
        lines.append(
            "  %-28s %12s  n=%-7d max %s"
            % (name, _fmt_seconds(seconds).strip(), count, _fmt_seconds(max_s).strip())
        )
    if manifests:
        lines.append("")
        lines.append(render_manifests(manifests, top_counters=top_counters))
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Per-benchmark and per-stage observability report "
        "(schema v%d) over cached run manifests." % SCHEMA_VERSION,
    )
    parser.add_argument("names", nargs="*", help="benchmark names to include")
    parser.add_argument("--scale", default=None, help="only this scale")
    parser.add_argument("--cache-dir", default=None,
                        help="summary cache dir (default: REPRO_CACHE_DIR "
                        "or <repo>/.bench_cache)")
    parser.add_argument("--jsonl", default=None,
                        help="summarize a REPRO_OBS=jsonl:<path> event "
                        "stream instead of cached manifests")
    parser.add_argument("--dse", default=None, metavar="STORE",
                        help="render per-point stage timings from a DSE "
                        "result store (python -m repro.dse sweep) instead "
                        "of cached benchmark manifests")
    parser.add_argument("--counters", type=int, default=24,
                        help="how many counters to print (default 24)")
    parser.add_argument("--top-spans", type=int, default=None, metavar="N",
                        help="with --jsonl: rank the N hottest span names "
                        "with p50/p95/p99 duration columns")
    parser.add_argument("--metrics", action="store_true",
                        help="with --jsonl: append the metric-histogram "
                        "section (count/sum/p50/p95/p99 per family) folded "
                        "from kind=metrics snapshot events")
    args = parser.parse_args(argv)

    if args.top_spans is not None and not args.jsonl:
        print("error: --top-spans needs --jsonl PATH (per-span duration "
              "samples only exist in REPRO_OBS=jsonl:<path> streams; "
              "cached manifests keep aggregates only)", file=sys.stderr)
        return 2
    if args.metrics and not args.jsonl:
        print("error: --metrics needs --jsonl PATH (metric snapshots are "
              "kind=metrics events in REPRO_OBS=jsonl:<path> streams)",
              file=sys.stderr)
        return 2

    if args.jsonl:
        try:
            if args.top_spans is not None:
                text = render_top_spans(args.jsonl, limit=args.top_spans)
            else:
                text = render_jsonl(args.jsonl, top_counters=args.counters)
            metrics_text = None
            if args.metrics:
                from repro.obs import metrics as metrics_mod

                metrics_text = render_metrics_section(
                    metrics_mod.fold_jsonl(args.jsonl))
        except OSError as exc:
            print("error: cannot read event stream %s (%s) — run with "
                  "REPRO_OBS=jsonl:<path> first" % (args.jsonl, exc),
                  file=sys.stderr)
            return 1
        if metrics_text is not None:
            text = metrics_text if text is None else text + "\n\n" + metrics_text
        if text is None:
            print("error: no span or manifest events in %s (was the run "
                  "started with REPRO_OBS=jsonl:<path>?)" % args.jsonl,
                  file=sys.stderr)
            return 1
        print(text)
        return 0

    if args.dse:
        store_root = os.path.expanduser(args.dse)
        text = render_dse(store_root, top_counters=args.counters)
        if text is None:
            print("error: no DSE results under %s (run "
                  "`python -m repro.dse sweep` first)" % store_root,
                  file=sys.stderr)
            return 1
        print(text)
        return 0

    if args.cache_dir:
        cache_dir = os.path.expanduser(args.cache_dir)
    else:
        from repro.harness.runner import _cache_dir

        cache_dir = _cache_dir()
    manifests = _load_manifests(cache_dir, args.scale, set(args.names))
    if not manifests:
        print("error: no cached run manifests under %s (run a benchmark "
              "first, e.g. python -m repro.harness.report small)" % cache_dir,
              file=sys.stderr)
        return 1
    print(render_manifests(manifests, top_counters=args.counters))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; silence the shutdown flush.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(141)
