"""Superblock profiler for the block-compiled simulation engine.

The block engine (:mod:`repro.sim.functional.engine`) turns executed
control flow into compiled superblocks; this module attributes *where a
simulation's wall-clock actually goes* at that same granularity:

* per-superblock executed units, dispatch wall time, and call counts,
* codegen cost (seconds spent ``exec()``-compiling each block),
* every compile / fallback / throttle decision (cold interpreted
  visits, amortization-gate deferrals, closure-fallback terminators),

without perturbing simulation semantics — profiler-enabled runs are
bit-identical on :class:`~repro.sim.functional.trace.ExecutionResult`
(asserted in ``tests/test_obs_profile.py``).  Overhead is per *block
dispatch* (two ``perf_counter`` calls around a function that executes
tens-to-thousands of instructions), never per instruction.

Enabling:

* ``REPRO_PROFILE=jsonl:<path>`` (or a bare path) — append one JSON
  record per engine run to ``<path>``;
* ``REPRO_PROFILE=memory`` (or ``1``) — keep records in-process (tests);
* programmatically, :func:`enable` / :func:`disable`.

The configuration rides along in :func:`repro.obs.core.export_spec`, so
DSE scheduler workers and parallel harness collects inherit it.

Attribution context: simulators do not know which benchmark they are
running, so the call sites that do (``cached_run``, the harness) wrap
the run in :func:`run_context`; records then carry ``benchmark`` and
``scale`` alongside the ISA and image name.

Analysis CLI::

    python -m repro.obs.profile top   --profile prof.jsonl [-n 20]
    python -m repro.obs.profile top   --profile prof.jsonl --energy
    python -m repro.obs.profile flame --profile prof.jsonl --out out.folded
    python -m repro.obs.profile diff  --profile old.jsonl new.jsonl

``top`` ranks hot superblocks per (benchmark, ISA); ``--stable`` prints
only deterministic columns (no wall time), which is what the CI
determinism gate compares across two runs.  ``--energy`` adds a dynamic
I-cache fetch-energy column: each block's exact fetch-word footprint
recorded off the superblock table (words-per-iteration weighted by
iteration counts — no re-derivation; pre-columnar records fall back to
units times the ISA's bytes-per-instruction), priced per 32-bit fetch
word by the :mod:`repro.power.cache_power` read-access model at
``--icache-bytes`` / ``--tech`` (defaults: the paper's 8 KiB at 350nm)
— deterministic, so it composes with ``--stable``.  ``flame`` emits collapsed-stack lines
(``benchmark;isa;func;block@entry weight``) consumable by
flamegraph.pl / speedscope; ``diff`` aligns two profile files per block
and reports unit/time deltas.

Every :meth:`BlockRecorder.finish` also folds the run's total fetch
energy into the ``profile.energy.fetch_joules`` metrics histogram (and
a ``profile.energy.fetch_words`` counter) when obs is enabled, so live
dashboards and OpenMetrics exposition see per-run energy without
reparsing profile JSONL.

Only the ``block`` engine is profiled: the closure engine has no block
structure to attribute to (runs under it simply produce no records).
"""

import argparse
import contextlib
import contextvars
import json
import os
import sys
import time

#: Bump when the record layout changes.
PROFILE_SCHEMA = 2

PROFILE_ENV = "REPRO_PROFILE"

_active = False
_path = None          # None while active → in-memory records
_records = []         # memory-mode store
_run_ctx = contextvars.ContextVar("repro.obs.profile.ctx", default=None)


def enabled():
    """True when engine runs should record block profiles."""
    return _active


def enable(path=None):
    """Turn profiling on.  ``path=None`` keeps records in memory."""
    global _active, _path
    _active = True
    _path = os.path.expanduser(path) if path else None


def disable():
    global _active, _path
    _active = False
    _path = None


def clear():
    """Drop in-memory records (tests)."""
    del _records[:]


def records():
    """The in-memory records collected so far (memory mode)."""
    return list(_records)


def configure_from_env(env=None):
    """Apply ``REPRO_PROFILE``; returns True when profiling is enabled."""
    env = os.environ if env is None else env
    spec = (env.get(PROFILE_ENV) or "").strip()
    if not spec or spec == "0" or spec.lower() == "off":
        return False
    if spec.startswith("jsonl:"):
        enable(spec[len("jsonl:"):])
    elif spec.lower() in ("1", "on", "memory", "mem"):
        enable(None)
    else:
        enable(spec)  # bare path
    return True


def export_spec():
    """Picklable profiling configuration for worker processes."""
    if not _active:
        return None
    return {"path": _path}


def apply_spec(spec):
    """Recreate the configuration captured by :func:`export_spec`."""
    if spec is None:
        if _active:
            disable()
        return
    enable(spec.get("path"))


@contextlib.contextmanager
def run_context(benchmark=None, scale=None):
    """Attribute engine runs inside the block to ``benchmark``/``scale``."""
    token = _run_ctx.set({"benchmark": benchmark, "scale": scale})
    try:
        yield
    finally:
        _run_ctx.reset(token)


def current_context():
    return _run_ctx.get() or {}


def _emit(record):
    if _path is None:
        _records.append(record)
        return
    parent = os.path.dirname(_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    # one short-lived append per engine run: safe across many workers
    # (single write), and no fd outlives the run that produced it
    with open(_path, "a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")


def recorder():
    """A fresh :class:`BlockRecorder`, or None when profiling is off."""
    if not _active:
        return None
    return BlockRecorder()


# ----------------------------------------------------------------------
# dynamic I-cache fetch energy (the paper's power model, per superblock)

#: bytes fetched per executed instruction — ARM is fixed 32-bit; Thumb
#: and the synthesized FITS encodings are 16-bit
_ISA_FETCH_BYTES = {"arm": 4, "thumb": 2, "fits": 2}

_word_energy_cache = {}


def fetch_word_energy(icache_bytes=8192, tech="350nm", fetch_bits=32):
    """Dynamic energy (J) of one 32-bit fetch-word read from the I-cache.

    One cache read access (decode + tag compare + data-bit drive, from
    :class:`repro.power.cache_power.CachePowerModel`) plus the output
    drive per access — the per-fetch dynamic component, excluding
    time-proportional clock/leakage terms that cannot be attributed to
    a single block.  Memoized per (geometry, tech, width).
    """
    key = (icache_bytes, tech, fetch_bits)
    energy = _word_energy_cache.get(key)
    if energy is None:
        from repro.power import CachePowerModel
        from repro.power.technology import tech_node
        from repro.sim.cache import CacheGeometry

        node = tech_node(tech)
        model = CachePowerModel(CacheGeometry(icache_bytes), node,
                                fetch_bits=fetch_bits)
        energy = model.read_energy + node.e_output_access
        _word_energy_cache[key] = energy
    return energy


def fetch_words(units, isa):
    """Fetch footprint of ``units`` executed instructions, in 32-bit words."""
    return units * _ISA_FETCH_BYTES.get(isa, 4) / 4.0


def _row_fetch_words(row, isa):
    """A row's fetch footprint in 32-bit words: the superblock table's
    exact per-entry total when the record carries one (schema v2),
    else derived from unit counts (pre-columnar records)."""
    words = row.get("fetch_words")
    if words is not None:
        return words
    return fetch_words(row["units"] + row["interp_units"], isa)


def _emit_energy_metrics(isa, rows):
    """Fold one finished run's fetch energy into ``profile.energy.*``.

    Advisory: the metrics registry must never turn a simulation into a
    failure, so any error (including an unknown tech table) is dropped.
    """
    from repro.obs import core as obs_core

    if not obs_core.enabled:
        return
    try:
        from repro.obs import metrics as obs_metrics

        words = sum(_row_fetch_words(row, isa) for row in rows)
        obs_metrics.observe("profile.energy.fetch_joules",
                            words * fetch_word_energy())
        obs_core.counter("profile.energy.fetch_words", int(round(words)))
    except Exception:
        pass


# per-entry stat slots (list-backed for cheap hot-path accumulation)
_CALLS, _UNITS, _SECONDS, _COMPILED, _COMPILE_S, _SCAN_UNITS, _FALLBACKS, \
    _INTERP_VISITS, _INTERP_UNITS, _INTERP_S, _THROTTLED = range(11)


class BlockRecorder:
    """Accumulates per-superblock attribution for one engine run.

    The engine drives four hooks — :meth:`compiled` (codegen),
    :meth:`call` (one dispatch of a compiled block), :meth:`interp`
    (one cold interpreted run, with the throttle flag), and
    :meth:`finish` (emit the run record).
    """

    __slots__ = ("blocks", "_t0")

    def __init__(self):
        self.blocks = {}
        self._t0 = time.perf_counter()

    def _slot(self, entry):
        b = self.blocks.get(entry)
        if b is None:
            b = self.blocks[entry] = [0, 0, 0.0, 0, 0.0, 0, 0, 0, 0, 0.0, 0]
        return b

    def compiled(self, entry, seconds, scan_units, fallbacks):
        b = self._slot(entry)
        b[_COMPILED] = 1
        b[_COMPILE_S] += seconds
        b[_SCAN_UNITS] = scan_units
        b[_FALLBACKS] = fallbacks

    def call(self, entry, units, seconds):
        b = self._slot(entry)
        b[_CALLS] += 1
        b[_UNITS] += units
        b[_SECONDS] += seconds

    def interp(self, entry, units, seconds, throttled):
        b = self._slot(entry)
        b[_INTERP_VISITS] += 1
        b[_INTERP_UNITS] += units
        b[_INTERP_S] += seconds
        if throttled:
            b[_THROTTLED] += 1

    def finish(self, isa, image_name, func_of_index=None, totals=None,
               fetch_words_of_entry=None):
        """Build and emit the run record; returns it.

        ``fetch_words_of_entry`` is the engine's exact per-entry fetch
        footprint off the superblock table (words-per-iteration times
        iteration counts); when given, every row carries it as
        ``fetch_words`` and energy pricing uses it directly.
        """
        wall = time.perf_counter() - self._t0
        ctx = current_context()
        rows = []
        for entry in sorted(self.blocks):
            b = self.blocks[entry]
            func = "?"
            if func_of_index is not None and 0 <= entry < len(func_of_index):
                func = str(func_of_index[entry])
            row = {
                "entry": entry,
                "func": func,
                "calls": b[_CALLS],
                "units": b[_UNITS],
                "seconds": b[_SECONDS],
                "compiled": bool(b[_COMPILED]),
                "compile_seconds": b[_COMPILE_S],
                "scan_units": b[_SCAN_UNITS],
                "fallbacks": b[_FALLBACKS],
                "interp_visits": b[_INTERP_VISITS],
                "interp_units": b[_INTERP_UNITS],
                "interp_seconds": b[_INTERP_S],
                "throttled_visits": b[_THROTTLED],
            }
            if fetch_words_of_entry is not None:
                row["fetch_words"] = int(fetch_words_of_entry.get(entry, 0))
            rows.append(row)
        record = {
            "kind": "block_profile",
            "schema": PROFILE_SCHEMA,
            "benchmark": ctx.get("benchmark"),
            "scale": ctx.get("scale"),
            "isa": isa,
            "image": image_name,
            "engine": "block",
            "pid": os.getpid(),
            "wall_seconds": wall,
            "totals": dict(totals or {}),
            "blocks": rows,
        }
        _emit(record)
        _emit_energy_metrics(isa, rows)
        return record


# ----------------------------------------------------------------------
# analysis: loading, aggregation, CLI


def iter_records(path):
    """Yield block-profile records from a JSONL file, skipping garbage."""
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and record.get("kind") == "block_profile":
                yield record


def load_records(path):
    return list(iter_records(path))


def record_label(record):
    """Attribution label: the benchmark when known, else the image name."""
    return record.get("benchmark") or record.get("image") or "?"


def aggregate(records, benchmark=None, isa=None):
    """Merge records into ``{(label, isa): {entry: row}}``.

    Multiple runs of the same (label, isa) — e.g. the synthesis flow's
    per-budget ARM re-runs — sum their counts; ``func`` and ``compiled``
    come from the last record seen (they are stable per image).
    """
    groups = {}
    for record in records:
        label = record_label(record)
        if benchmark is not None and label != benchmark:
            continue
        if isa is not None and record.get("isa") != isa:
            continue
        group = groups.setdefault((label, record.get("isa", "?")), {})
        for row in record.get("blocks", ()):
            entry = row["entry"]
            agg = group.get(entry)
            if agg is None:
                group[entry] = dict(row)
                continue
            for key in ("calls", "units", "seconds", "compile_seconds",
                        "fallbacks", "interp_visits", "interp_units",
                        "interp_seconds", "throttled_visits"):
                agg[key] += row.get(key, 0)
            if "fetch_words" in row:
                agg["fetch_words"] = (agg.get("fetch_words") or 0) \
                    + row["fetch_words"]
            agg["func"] = row.get("func", agg["func"])
            agg["compiled"] = bool(row.get("compiled")) or agg["compiled"]
    return groups


def _status(row):
    bits = []
    if row.get("compiled"):
        bits.append("compiled")
    if row.get("fallbacks"):
        bits.append("fallback=%d" % row["fallbacks"])
    if row.get("throttled_visits"):
        bits.append("throttled=%d" % row["throttled_visits"])
    if not row.get("compiled"):
        bits.append("interp")
    return ",".join(bits)


_SORT_KEYS = {
    "units": lambda r: (-(r["units"] + r["interp_units"]), r["entry"]),
    "seconds": lambda r: (-(r["seconds"] + r["interp_seconds"]), r["entry"]),
    "calls": lambda r: (-(r["calls"] + r["interp_visits"]), r["entry"]),
}


def render_top(groups, limit=20, sort="units", stable=False,
               energy_per_word=None):
    """Per-(benchmark, ISA) hot-block ranking as text lines.

    ``energy_per_word`` (J per 32-bit fetch word, from
    :func:`fetch_word_energy`) adds a per-block dynamic fetch-energy
    column and a per-group total.
    """
    lines = []
    for label, isa in sorted(groups):
        rows = sorted(groups[(label, isa)].values(), key=_SORT_KEYS[sort])
        total_units = sum(r["units"] + r["interp_units"] for r in rows) or 1
        total_s = sum(r["seconds"] + r["interp_seconds"] for r in rows)
        if lines:
            lines.append("")
        head = "%s/%s: %d blocks, %s units" % (
            label, isa, len(rows), "{:,}".format(total_units))
        if energy_per_word is not None:
            total_words = sum(_row_fetch_words(r, isa) for r in rows)
            head += ", %.3f uJ fetch energy" % (
                total_words * energy_per_word * 1e6)
        if not stable:
            head += ", %.3fs attributed" % total_s
        lines.append(head)
        energy_col = " %10s" % "fetch_uJ" if energy_per_word is not None else ""
        if stable:
            header = "%6s %-22s %10s %14s %8s%s  %s" % (
                "entry", "func", "calls", "units", "units%", energy_col,
                "status")
        else:
            header = "%6s %-22s %10s %14s %8s%s %10s %10s  %s" % (
                "entry", "func", "calls", "units", "units%", energy_col,
                "wall_ms", "codegen_ms", "status")
        lines.append(header)
        lines.append("-" * len(header))
        for row in rows[:limit]:
            units = row["units"] + row["interp_units"]
            calls = row["calls"] + row["interp_visits"]
            cell = ""
            if energy_per_word is not None:
                cell = " %10.4f" % (
                    _row_fetch_words(row, isa) * energy_per_word * 1e6)
            if stable:
                lines.append("%6d %-22s %10s %14s %7.1f%%%s  %s" % (
                    row["entry"], row["func"][:22], "{:,}".format(calls),
                    "{:,}".format(units), 100.0 * units / total_units,
                    cell, _status(row)))
            else:
                lines.append("%6d %-22s %10s %14s %7.1f%%%s %10.2f %10.2f  %s" % (
                    row["entry"], row["func"][:22], "{:,}".format(calls),
                    "{:,}".format(units), 100.0 * units / total_units,
                    cell, (row["seconds"] + row["interp_seconds"]) * 1e3,
                    row["compile_seconds"] * 1e3, _status(row)))
    return lines


def collapsed_stacks(groups, weight="units"):
    """Collapsed-stack (flame-graph) lines, deterministically ordered.

    One frame stack per superblock — ``label;isa;func;block@entry`` —
    weighted by executed units (exact, deterministic) or attributed
    wall time in integer microseconds (``weight="seconds"``).
    """
    out = {}
    for (label, isa), rows in groups.items():
        for row in rows.values():
            if weight == "seconds":
                value = int(round(
                    (row["seconds"] + row["interp_seconds"]) * 1e6))
            else:
                value = row["units"] + row["interp_units"]
            if not value:
                continue
            frame = "%s;%s;%s;block@%d" % (label, isa, row["func"], row["entry"])
            out[frame] = out.get(frame, 0) + value
    return ["%s %d" % (frame, out[frame]) for frame in sorted(out)]


def render_diff(groups_a, groups_b, limit=20, stable=False):
    """Per-block deltas between two aggregated profiles (B minus A)."""
    lines = []
    keys = sorted(set(groups_a) | set(groups_b))
    for key in keys:
        label, isa = key
        a = groups_a.get(key, {})
        b = groups_b.get(key, {})
        entries = sorted(set(a) | set(b))
        rows = []
        for entry in entries:
            ra = a.get(entry)
            rb = b.get(entry)
            units_a = (ra["units"] + ra["interp_units"]) if ra else 0
            units_b = (rb["units"] + rb["interp_units"]) if rb else 0
            s_a = (ra["seconds"] + ra["interp_seconds"]) if ra else 0.0
            s_b = (rb["seconds"] + rb["interp_seconds"]) if rb else 0.0
            func = (rb or ra)["func"]
            note = "" if (ra and rb) else ("only-new" if rb else "only-old")
            rows.append((entry, func, units_a, units_b, s_a, s_b, note))
        rows.sort(key=lambda r: (-abs(r[3] - r[2]), r[0]))
        if lines:
            lines.append("")
        lines.append("%s/%s: %d blocks compared" % (label, isa, len(rows)))
        if stable:
            header = "%6s %-22s %14s %14s %14s  %s" % (
                "entry", "func", "units_old", "units_new", "d_units", "note")
        else:
            header = "%6s %-22s %14s %14s %14s %10s  %s" % (
                "entry", "func", "units_old", "units_new", "d_units",
                "d_wall_ms", "note")
        lines.append(header)
        lines.append("-" * len(header))
        for entry, func, ua, ub, sa, sb, note in rows[:limit]:
            if stable:
                lines.append("%6d %-22s %14s %14s %+14d  %s" % (
                    entry, func[:22], "{:,}".format(ua), "{:,}".format(ub),
                    ub - ua, note))
            else:
                lines.append("%6d %-22s %14s %14s %+14d %+10.2f  %s" % (
                    entry, func[:22], "{:,}".format(ua), "{:,}".format(ub),
                    ub - ua, (sb - sa) * 1e3, note))
    return lines


def _load_groups(path, args):
    try:
        recs = load_records(path)
    except OSError as exc:
        raise SystemExit("error: cannot read profile %s (%s) — run with "
                         "%s=jsonl:<path> first" % (path, exc, PROFILE_ENV))
    if not recs:
        raise SystemExit(
            "error: no block-profile records in %s (profiling requires the "
            "block engine: unset REPRO_SIM_ENGINE or set it to 'block', and "
            "run with %s=jsonl:<path>)" % (path, PROFILE_ENV))
    return aggregate(recs, benchmark=args.benchmark, isa=args.isa)


def _default_profile():
    spec = (os.environ.get(PROFILE_ENV) or "").strip()
    if spec.startswith("jsonl:"):
        return spec[len("jsonl:"):]
    if spec and spec.lower() not in ("0", "off", "1", "on", "memory", "mem"):
        return spec
    return None


def cmd_top(args):
    groups = _load_groups(args.profile, args)
    if not groups:
        print("no blocks matched the filters", file=sys.stderr)
        return 1
    energy = None
    if args.energy:
        try:
            energy = fetch_word_energy(icache_bytes=args.icache_bytes,
                                       tech=args.tech)
        except (KeyError, ValueError) as exc:
            raise SystemExit("error: cannot price fetch energy (%s)" % exc)
    print("\n".join(render_top(groups, limit=args.n, sort=args.sort,
                               stable=args.stable, energy_per_word=energy)))
    return 0


def cmd_flame(args):
    groups = _load_groups(args.profile, args)
    lines = collapsed_stacks(groups, weight=args.weight)
    if not lines:
        print("no nonzero-weight blocks to export", file=sys.stderr)
        return 1
    text = "\n".join(lines) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print("wrote %d collapsed stacks to %s" % (len(lines), args.out))
    else:
        sys.stdout.write(text)
    return 0


def cmd_diff(args):
    old = _load_groups(args.profiles[0], args)
    new = _load_groups(args.profiles[1], args)
    print("\n".join(render_diff(old, new, limit=args.n, stable=args.stable)))
    return 0


def _add_common(p):
    p.add_argument("--benchmark", default=None,
                   help="restrict to one benchmark/image label")
    p.add_argument("--isa", default=None, help="restrict to one ISA")
    p.add_argument("-n", type=int, default=20,
                   help="rows per (benchmark, ISA) group (default 20)")
    p.add_argument("--stable", action="store_true",
                   help="deterministic columns only (no wall time) — for "
                   "CI determinism comparisons")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.profile",
        description="Block-engine profiler analysis: rank hot superblocks, "
        "export flame graphs, diff two runs (schema v%d)." % PROFILE_SCHEMA,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("top", help="rank hot superblocks per (benchmark, ISA)")
    p.add_argument("--profile", default=_default_profile(), required=_default_profile() is None,
                   help="profile JSONL written via %s=jsonl:<path>" % PROFILE_ENV)
    p.add_argument("--sort", default="units", choices=sorted(_SORT_KEYS),
                   help="ranking key (default: units — deterministic)")
    p.add_argument("--energy", action="store_true",
                   help="add a per-block dynamic I-cache fetch-energy "
                   "column (cache_power read model x fetch footprint; "
                   "deterministic, composes with --stable)")
    p.add_argument("--icache-bytes", type=int, default=8192,
                   help="I-cache size pricing --energy (default: 8192, "
                   "the paper's baseline)")
    p.add_argument("--tech", default="350nm",
                   help="tech node pricing --energy (default: 350nm)")
    _add_common(p)
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("flame", help="collapsed-stack (flame-graph) export")
    p.add_argument("--profile", default=_default_profile(), required=_default_profile() is None,
                   help="profile JSONL written via %s=jsonl:<path>" % PROFILE_ENV)
    p.add_argument("--weight", default="units", choices=("units", "seconds"),
                   help="frame weight: executed units (deterministic) or "
                   "attributed wall time in µs")
    p.add_argument("--out", default=None, help="output path (default stdout)")
    p.add_argument("--benchmark", default=None)
    p.add_argument("--isa", default=None)
    p.set_defaults(func=cmd_flame)

    p = sub.add_parser("diff", help="per-block deltas between two profiles")
    p.add_argument("profiles", nargs=2, metavar="PROFILE",
                   help="old and new profile JSONL files")
    _add_common(p)
    p.set_defaults(func=cmd_diff)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


configure_from_env()


if __name__ == "__main__":
    sys.exit(main())
