"""Chrome trace-event export of ``REPRO_OBS=jsonl:`` span streams.

Converts the span events streamed by :class:`repro.obs.core.JsonlSink`
into the Trace Event Format understood by ``chrome://tracing`` and
https://ui.perfetto.dev, so a pipeline run (or a whole parallel DSE
sweep) can be inspected as a flamegraph: one track per (process,
thread), spans nested by their real start/duration, and **flow arrows**
stitching each worker's spans to the coordinator span that spawned them.

Layout and alignment:

* lanes — each span lands on ``(pid, tid)``: the emitting process and
  its compact per-process thread lane, so concurrent worker (or
  threaded) spans never collapse onto one row;
* clocks — every process's ``ts`` is relative to its own private epoch;
  ``meta`` anchor events (``wall0``/``ts0``, emitted once per process
  when a JSONL sink is enabled) let the exporter place all processes on
  one wall-clock axis.  Streams without anchors fall back to raw ``ts``
  (single-process streams need no alignment) and legacy events without
  ``ts`` are laid out sequentially per process;
* hierarchy — span events carry ``trace_id``/``span_id``/``parent_id``
  (see :mod:`repro.obs.core`); a parent link that crosses a lane
  becomes an ``s``/``f`` flow-event pair (submit → worker), and each
  process is labelled ``coordinator``/``worker`` from its position in
  the span graph.

Manifest events become instant ("ph": "i") markers carrying the
benchmark name.  :func:`check_parent_links` is the machine-checkable
side of the same structure: it verifies every ``parent_id`` in a stream
resolves to a recorded span and reports per-process link statistics
(the CI gate for cross-process trace integrity).
"""

import json


def _lane(event):
    pid = event.get("pid", 1)
    return pid, event.get("tid", pid)


def iter_events(path):
    """Yield parsed obs events from a JSONL stream, skipping garbage."""
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict):
                yield event


def _clock_offsets(events):
    """Per-pid additive corrections aligning all ``ts`` on one axis.

    From each process's anchor, ``wall_at(ts) = wall0 + ts - ts0``; the
    export subtracts the earliest anchored wall instant so aligned
    timelines start near zero.  Unanchored pids get offset 0.
    """
    anchors = {}
    for event in events:
        if event.get("kind") == "meta" and "wall0" in event:
            pid = event.get("pid", 1)
            # keep the first anchor per pid (rotation re-emits later ones)
            anchors.setdefault(pid, (event["wall0"], event.get("ts0", 0.0)))
    if not anchors:
        return {}
    base = min(wall0 - ts0 for wall0, ts0 in anchors.values())
    return {pid: (wall0 - ts0) - base for pid, (wall0, ts0) in anchors.items()}


def _span_to_event(event, fallback_clock, offsets):
    """One obs span event -> one trace 'X' event (times in µs)."""
    pid, tid = _lane(event)
    seconds = float(event.get("seconds", 0.0))
    ts = event.get("ts")
    if ts is None:
        # Legacy stream: synthesize a sequential timeline per process.
        ts = fallback_clock.get(pid, 0.0)
        fallback_clock[pid] = ts + seconds
    else:
        ts += offsets.get(pid, 0.0)
    out = {
        "name": event.get("name", "?"),
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "ts": ts * 1e6,
        "dur": seconds * 1e6,
        "cat": "obs",
    }
    args = {}
    if event.get("attrs"):
        args.update(event["attrs"])
    if event.get("error"):
        args["error"] = event["error"]
    if event.get("depth") is not None:
        args["depth"] = event["depth"]
    for key in ("trace_id", "span_id", "parent_id"):
        if event.get(key) is not None:
            args[key] = event[key]
    if args:
        out["args"] = args
    return out


def _flow_events(trace_events, spans_by_id):
    """``s``/``f`` flow pairs for parent links that cross a lane."""
    flows = []
    flow_id = 0
    for child in trace_events:
        args = child.get("args") or {}
        parent_id = args.get("parent_id")
        if parent_id is None:
            continue
        parent = spans_by_id.get(parent_id)
        if parent is None:
            continue
        if (parent["pid"], parent["tid"]) == (child["pid"], child["tid"]):
            continue  # same-lane nesting is already visible
        flow_id += 1
        # anchor the start inside the parent span, never after the child
        start_ts = min(max(child["ts"], parent["ts"]),
                       parent["ts"] + parent["dur"], child["ts"])
        flows.append({
            "name": "span-link", "cat": "obs.flow", "ph": "s",
            "id": flow_id, "pid": parent["pid"], "tid": parent["tid"],
            "ts": start_ts,
        })
        flows.append({
            "name": "span-link", "cat": "obs.flow", "ph": "f", "bp": "e",
            "id": flow_id, "pid": child["pid"], "tid": child["tid"],
            "ts": child["ts"],
        })
    return flows


def _process_labels(trace_events, spans_by_id):
    """``coordinator``/``worker`` metadata rows from the span graph."""
    has_remote_child = set()
    has_remote_parent = set()
    for event in trace_events:
        args = event.get("args") or {}
        parent = spans_by_id.get(args.get("parent_id"))
        if parent is not None and parent["pid"] != event["pid"]:
            has_remote_parent.add(event["pid"])
            has_remote_child.add(parent["pid"])
    labels = []
    pids = {e["pid"] for e in trace_events}
    for pid in sorted(pids):
        if pid in has_remote_child:
            name = "coordinator (pid %d)" % pid
        elif pid in has_remote_parent:
            name = "worker (pid %d)" % pid
        else:
            continue
        labels.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "ts": 0, "args": {"name": name}})
    return labels


def export_trace(path):
    """Read one obs JSONL stream; return a trace-event JSON dict."""
    events = list(iter_events(path))
    offsets = _clock_offsets(events)
    trace_events = []
    spans_by_id = {}
    fallback_clock = {}
    last_ts = {}
    for event in events:
        kind = event.get("kind")
        if kind == "span":
            out = _span_to_event(event, fallback_clock, offsets)
            last_ts[out["pid"]] = max(
                last_ts.get(out["pid"], 0.0), out["ts"] + out["dur"])
            if event.get("span_id") is not None:
                spans_by_id[event["span_id"]] = out
            trace_events.append(out)
        elif kind == "manifest":
            pid, tid = _lane(event)
            trace_events.append({
                "name": "manifest %s" % event.get("benchmark", "?"),
                "ph": "i",
                "s": "p",
                "pid": pid,
                "tid": tid,
                "ts": last_ts.get(pid, 0.0),
                "cat": "obs",
            })
    extras = _flow_events(trace_events, spans_by_id)
    extras += _process_labels(trace_events, spans_by_id)
    # Stable render order: by process, then lane, then start time.
    trace_events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    return {
        "traceEvents": trace_events + extras,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs", "stream": path},
    }


def check_parent_links(path):
    """Verify the span hierarchy of a JSONL stream; returns statistics.

    Raises ValueError when any span's ``parent_id`` does not resolve to
    another span in the stream, or when linked spans disagree on
    ``trace_id``.  Returns a dict with per-process span counts, the
    number of cross-process links, root span ids, and the distinct
    trace ids — what the CI gate asserts over a multi-worker sweep.
    """
    spans = [e for e in iter_events(path) if e.get("kind") == "span"]
    by_id = {e["span_id"]: e for e in spans if e.get("span_id") is not None}
    per_pid = {}
    cross = 0
    roots = []
    unlinked = 0
    for event in spans:
        pid = event.get("pid", 1)
        per_pid[pid] = per_pid.get(pid, 0) + 1
        if event.get("span_id") is None:
            unlinked += 1
            continue
        parent_id = event.get("parent_id")
        if parent_id is None:
            roots.append(event["span_id"])
            continue
        parent = by_id.get(parent_id)
        if parent is None:
            raise ValueError(
                "span %r (%s, pid %s) has unresolvable parent_id %r"
                % (event.get("name"), event["span_id"], pid, parent_id))
        if parent.get("trace_id") != event.get("trace_id"):
            raise ValueError(
                "span %r links across traces: %r -> parent %r"
                % (event.get("name"), event.get("trace_id"),
                   parent.get("trace_id")))
        if parent.get("pid", 1) != pid:
            cross += 1
    return {
        "spans": len(spans),
        "processes": per_pid,
        "cross_process_links": cross,
        "roots": roots,
        "unlinked": unlinked,
        "traces": sorted({e.get("trace_id") for e in spans
                          if e.get("trace_id") is not None}),
    }


def validate_trace(trace):
    """Raise ValueError unless ``trace`` is well-formed trace-event JSON.

    Checks the properties Chrome/Perfetto rely on: a ``traceEvents``
    list, per-event ``name``/``ph``/``pid``/``ts``, non-negative
    durations on complete events, flow pairing on ``s``/``f`` events,
    and JSON serializability.
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be a dict with a traceEvents list")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    flow_phases = {}
    for event in events:
        for field in ("name", "ph", "pid", "ts"):
            if field not in event:
                raise ValueError("trace event missing %r: %r" % (field, event))
        if event["ph"] == "X":
            if event.get("dur", -1) < 0:
                raise ValueError("complete event with negative/missing dur: "
                                 "%r" % (event,))
        if event["ph"] in ("s", "f"):
            if "id" not in event:
                raise ValueError("flow event missing id: %r" % (event,))
            flow_phases.setdefault(event["id"], set()).add(event["ph"])
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            raise ValueError("event ts must be a non-negative number: "
                             "%r" % (event,))
    for flow_id, phases in flow_phases.items():
        if phases != {"s", "f"}:
            raise ValueError("unpaired flow id %r (phases %r)"
                             % (flow_id, sorted(phases)))
    json.dumps(trace)  # must round-trip
    return True
