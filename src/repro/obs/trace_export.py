"""Chrome trace-event export of ``REPRO_OBS=jsonl:`` span streams.

Converts the span events streamed by :class:`repro.obs.core.JsonlSink`
into the Trace Event Format understood by ``chrome://tracing`` and
https://ui.perfetto.dev, so a pipeline run (or a whole parallel DSE
sweep) can be inspected as a flamegraph: one track per process, spans
nested by their real start/duration.

Span events carry ``ts`` (start offset in seconds since the emitting
process's observability epoch) and ``pid``; each becomes one complete
("ph": "X") event with microsecond ``ts``/``dur``.  Events from older
streams that lack ``ts`` are laid out sequentially per process — the
durations and nesting remain faithful, only the gaps are synthetic.
Manifest events become instant ("ph": "i") markers carrying the
benchmark name.
"""

import json


def _span_to_event(event, fallback_clock):
    """One obs span event -> one trace 'X' event (times in µs)."""
    pid = event.get("pid", 1)
    seconds = float(event.get("seconds", 0.0))
    ts = event.get("ts")
    if ts is None:
        # Legacy stream: synthesize a sequential timeline per process.
        ts = fallback_clock.get(pid, 0.0)
        fallback_clock[pid] = ts + seconds
    out = {
        "name": event.get("name", "?"),
        "ph": "X",
        "pid": pid,
        "tid": pid,
        "ts": ts * 1e6,
        "dur": seconds * 1e6,
        "cat": "obs",
    }
    args = {}
    if event.get("attrs"):
        args.update(event["attrs"])
    if event.get("error"):
        args["error"] = event["error"]
    if event.get("depth") is not None:
        args["depth"] = event["depth"]
    if args:
        out["args"] = args
    return out


def iter_events(path):
    """Yield parsed obs events from a JSONL stream, skipping garbage."""
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict):
                yield event


def export_trace(path):
    """Read one obs JSONL stream; return a trace-event JSON dict."""
    trace_events = []
    fallback_clock = {}
    last_ts = {}
    for event in iter_events(path):
        kind = event.get("kind")
        if kind == "span":
            out = _span_to_event(event, fallback_clock)
            last_ts[out["pid"]] = max(
                last_ts.get(out["pid"], 0.0), out["ts"] + out["dur"])
            trace_events.append(out)
        elif kind == "manifest":
            pid = event.get("pid", 1)
            trace_events.append({
                "name": "manifest %s" % event.get("benchmark", "?"),
                "ph": "i",
                "s": "p",
                "pid": pid,
                "tid": pid,
                "ts": last_ts.get(pid, 0.0),
                "cat": "obs",
            })
    # Stable render order: by process, then start time.
    trace_events.sort(key=lambda e: (e["pid"], e["ts"]))
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs", "stream": path},
    }


def validate_trace(trace):
    """Raise ValueError unless ``trace`` is well-formed trace-event JSON.

    Checks the properties Chrome/Perfetto rely on: a ``traceEvents``
    list, per-event ``name``/``ph``/``pid``/``ts``, non-negative
    durations on complete events, and JSON serializability.
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be a dict with a traceEvents list")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for event in events:
        for field in ("name", "ph", "pid", "ts"):
            if field not in event:
                raise ValueError("trace event missing %r: %r" % (field, event))
        if event["ph"] == "X":
            if event.get("dur", -1) < 0:
                raise ValueError("complete event with negative/missing dur: "
                                 "%r" % (event,))
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            raise ValueError("event ts must be a non-negative number: "
                             "%r" % (event,))
    json.dumps(trace)  # must round-trip
    return True
