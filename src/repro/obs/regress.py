"""Metrics trajectory store and cross-commit regression detection.

PowerFITS's claims are quantitative — per-component I-cache power, miss
rate, IPC, code size vs. Thumb — so this module gives every run a
persistent, append-only record of those headline numbers and the tools
to interrogate them over time:

* :class:`TrajectoryStore` — a JSONL database
  (``bench_history/trajectory.jsonl`` by default) where each record is
  keyed by (git commit, benchmark, DesignPoint content-hash id, scale,
  source) and carries the full metric vector plus the per-stage
  wall-clock timings from the run manifest.  Appends go through the
  same same-directory-temp + ``os.replace`` discipline as
  :mod:`repro.dse.store`, so a Ctrl-C mid-record can never tear the
  history.
* :func:`detect` — a robust z-score (median/MAD) regression detector
  over each metric's commit history, with a configurable window and
  threshold.  It distinguishes **determinism breaks** (a simulated
  metric — instruction count, power, miss rate — changed *at all*
  between records) from **performance drift** (wall-clock beyond
  tolerance), because the former is a correctness alarm and the latter
  merely a build-speed one.
* the ``python -m repro.obs.regress record|check|diff|export-trace``
  CLI — ``record`` ingests harness bench-cache summaries and/or a DSE
  result store (the store → trajectory bridge), ``check`` runs the
  paper-golden gates from :mod:`repro.obs.golden`, ``diff`` runs the
  detector, and ``export-trace`` converts a ``REPRO_OBS=jsonl:`` span
  stream into Chrome trace-event JSON (:mod:`repro.obs.trace_export`).
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

#: Bump when the trajectory record layout changes; stale records are
#: skipped with a warning rather than misread.
TRAJECTORY_SCHEMA = 1

#: Metrics that are *timing*, not simulation output: these may move
#: between runs of identical code and are judged by the drift detector,
#: never by the bit-identical determinism check.  Everything else in a
#: record's ``metrics`` dict — and the simulated ``seconds``, which is
#: cycles/frequency — must be bit-identical run over run.
TIMING_METRICS = ("wall_seconds",)


def default_store_path():
    """``<repo-root>/bench_history/trajectory.jsonl`` (or env override)."""
    override = os.environ.get("REPRO_TRAJECTORY")
    if override:
        return os.path.expanduser(override)
    from repro.harness.runner import _repo_root

    return os.path.join(_repo_root(), "bench_history", "trajectory.jsonl")


def current_commit():
    """The current git commit id, or ``"unknown"`` outside a checkout.

    ``REPRO_COMMIT`` overrides, which is what tests and CI gates use to
    fabricate multi-commit histories without touching git.
    """
    override = os.environ.get("REPRO_COMMIT")
    if override:
        return override
    from repro.harness.runner import _repo_root

    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=_repo_root(),
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


class TrajectoryStore:
    """Append-only JSONL store of per-(commit, benchmark, point) records.

    File order is history order.  Records are deduplicated on their
    identity key — appending a record whose (commit, benchmark,
    point_id, scale, source) is already present is a no-op — so an
    unchanged re-record never manufactures fake history.
    """

    def __init__(self, path=None):
        self.path = os.path.expanduser(path) if path else default_store_path()

    @staticmethod
    def key(record):
        return (record.get("commit"), record.get("benchmark"),
                record.get("point_id"), record.get("scale"),
                record.get("source"))

    def records(self):
        """Every valid record, in append (history) order."""
        out = []
        try:
            fh = open(self.path)
        except OSError:
            return out
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(record, dict):
                    continue
                if record.get("schema") != TRAJECTORY_SCHEMA:
                    print("warning: skipping trajectory record with schema "
                          "%r (want %d)" % (record.get("schema"),
                                            TRAJECTORY_SCHEMA),
                          file=sys.stderr)
                    continue
                out.append(record)
        return out

    def append(self, records):
        """Append new records atomically; returns (added, skipped).

        The whole file is rewritten through a same-directory temp file +
        ``os.replace`` — histories are small (one line per run per
        point) and this keeps every reader crash/Ctrl-C safe, exactly
        like the DSE result store's blobs.
        """
        existing_lines = []
        seen = set()
        try:
            with open(self.path) as fh:
                for line in fh:
                    if line.strip():
                        existing_lines.append(line.rstrip("\n"))
                        try:
                            seen.add(self.key(json.loads(line)))
                        except ValueError:
                            pass
        except OSError:
            pass

        added = skipped = 0
        for record in records:
            key = self.key(record)
            if key in seen:
                skipped += 1
                continue
            seen.add(key)
            existing_lines.append(json.dumps(record, sort_keys=True))
            added += 1
        if not added:
            return 0, skipped

        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=parent, prefix=".tmp-", suffix=".jsonl")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write("\n".join(existing_lines) + "\n")
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return added, skipped

    def __repr__(self):
        return "<TrajectoryStore %s>" % self.path


# ----------------------------------------------------------------------
# record construction (harness summaries and the DSE bridge)


def make_record(commit, benchmark, scale, point_id, label, metrics,
                stages=None, wall_seconds=None, source="harness"):
    """One trajectory record; ``metrics`` keys are the canonical names."""
    return {
        "schema": TRAJECTORY_SCHEMA,
        "commit": commit,
        "recorded_at": time.time(),
        "benchmark": benchmark,
        "scale": scale,
        "point_id": point_id,
        "label": label,
        "source": source,
        "metrics": dict(metrics),
        "stages": dict(stages or {}),
        "wall_seconds": wall_seconds,
    }


def records_from_summary(summary, commit):
    """Trajectory records for one harness benchmark summary.

    One record per paper configuration (ARM16/ARM8/FITS16/FITS8), each
    keyed by the configuration's DesignPoint content hash and carrying
    the per-config metric vector plus the benchmark-level code-size and
    mapping metrics (which the DSE path cannot supply).
    """
    from repro.dse.space import DesignPoint
    from repro.harness.runner import CONFIGS

    data = summary.data if hasattr(summary, "data") else summary
    manifest = data.get("manifest") or {}
    stages = {s: row.get("seconds", 0.0)
              for s, row in (manifest.get("stages") or {}).items()}
    records = []
    for label, isa, size in CONFIGS:
        config = data["configs"].get(label)
        if config is None:
            continue
        metrics = dict(config)
        # harness name → canonical (DSE) name
        metrics["icache_energy_j"] = metrics.pop("total_j", None)
        metrics["code_size"] = (data["arm_code_size"] if isa == "arm"
                                else data["fits_code_size"])
        metrics["arm_code_size"] = data["arm_code_size"]
        metrics["thumb_code_size"] = data["thumb_code_size"]
        metrics["fits_code_size"] = data["fits_code_size"]
        metrics["static_mapping"] = data["static_mapping"]
        metrics["dynamic_mapping"] = data["dynamic_mapping"]
        records.append(make_record(
            commit, data["name"], data.get("scale", "?"),
            DesignPoint(isa, size).point_id, label, metrics,
            stages=stages, wall_seconds=manifest.get("wall_seconds"),
            source="harness",
        ))
    return records


def records_from_cache(cache_dir, commit, scale=None, names=None):
    """Records for every valid cached summary under ``cache_dir``."""
    import glob

    records = []
    for path in sorted(glob.glob(os.path.join(cache_dir, "*.json"))):
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            continue
        if "configs" not in data or "name" not in data:
            continue
        if scale and data.get("scale") != scale:
            continue
        if names and data["name"] not in names:
            continue
        records.extend(records_from_summary(data, commit))
    return records


def records_from_dse_store(store, commit, scale=None, names=None):
    """The DSE bridge: one trajectory record per swept result blob."""
    from repro.dse.store import ResultStore

    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    records = []
    for blob in store.iter_results():
        if scale and blob.get("scale") != scale:
            continue
        if names and blob.get("benchmark") not in names:
            continue
        manifest = blob.get("manifest") or {}
        point = blob.get("point") or {}
        records.append(make_record(
            commit, blob["benchmark"], blob.get("scale", "?"),
            point.get("id"), manifest.get("label") or point.get("id"),
            blob.get("metrics") or {},
            stages={s: row.get("seconds", 0.0)
                    for s, row in (manifest.get("stages") or {}).items()},
            wall_seconds=manifest.get("wall_seconds"),
            source="dse",
        ))
    return records


# ----------------------------------------------------------------------
# the regression detector


def median(values):
    s = sorted(values)
    n = len(s)
    if not n:
        raise ValueError("median of empty history")
    mid = n // 2
    if n % 2:
        return s[mid]
    return 0.5 * (s[mid - 1] + s[mid])


def mad(values, center=None):
    """Median absolute deviation (unscaled)."""
    if center is None:
        center = median(values)
    return median([abs(v - center) for v in values])


def robust_z(history, value):
    """Robust z-score of ``value`` against ``history`` (median/MAD).

    Uses the 1.4826 consistency constant so thresholds read like
    ordinary standard deviations on Gaussian noise.  A zero-MAD history
    (bit-identical samples) maps to z = 0 when the value matches the
    median and z = inf when it does not.
    """
    center = median(history)
    spread = 1.4826 * mad(history, center)
    if spread == 0.0:
        return 0.0 if value == center else float("inf")
    return (value - center) / spread


def _series(records):
    """Group records into {(benchmark, point_id, scale, source): [record...]}."""
    series = {}
    for record in records:
        key = (record.get("benchmark"), record.get("point_id"),
               record.get("scale"), record.get("source"))
        series.setdefault(key, []).append(record)
    return series


def _metric_vector(record):
    """Flat {name: value} of every numeric metric in one record."""
    out = {}
    for name, value in (record.get("metrics") or {}).items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[name] = value
    for stage, seconds in (record.get("stages") or {}).items():
        out["stage.%s" % stage] = seconds
    if record.get("wall_seconds") is not None:
        out["wall_seconds"] = record["wall_seconds"]
    return out


def _is_timing(name):
    # "bench." metrics are wall-clock measurements from repro.bench —
    # drift-checked like stage timings, never determinism-checked
    return (name in TIMING_METRICS or name.startswith("stage.")
            or name.startswith("bench."))


def detect(records, window=20, threshold=3.5, min_history=5,
           drift_rel_floor=0.10):
    """Find regressions in the newest record of every metric series.

    For each (benchmark, point, scale, source) series the latest record
    is judged against up to ``window`` predecessors:

    * **determinism**: any non-timing metric whose value differs *at
      all* from the immediately preceding record — simulation output
      must be bit-identical for identical code;
    * **drift**: a timing metric (wall-clock, per-stage seconds) whose
      robust z-score against the window exceeds ``threshold`` *and*
      whose relative excursion from the window median exceeds
      ``drift_rel_floor`` (tiny absolute jitter on a tiny MAD is not a
      regression).  Requires ``min_history`` prior samples.

    Returns a list of finding dicts, newest-series first, each with
    ``kind``, the series key fields, ``metric``, ``value``,
    ``baseline``, ``z`` and ``samples``.
    """
    findings = []
    for key, series in sorted(_series(records).items(),
                              key=lambda kv: str(kv[0])):
        if len(series) < 2:
            continue
        latest = series[-1]
        history = series[-(window + 1):-1]
        latest_metrics = _metric_vector(latest)
        prev_metrics = _metric_vector(history[-1])
        benchmark, point_id, scale, source = key

        def finding(kind, metric, value, baseline, z, samples):
            return {
                "kind": kind, "benchmark": benchmark, "point_id": point_id,
                "scale": scale, "source": source,
                "label": latest.get("label"), "commit": latest.get("commit"),
                "metric": metric, "value": value, "baseline": baseline,
                "z": z, "samples": samples,
            }

        for metric in sorted(latest_metrics):
            value = latest_metrics[metric]
            if _is_timing(metric):
                series_values = [m[metric] for m in
                                 (_metric_vector(r) for r in history)
                                 if metric in m]
                if len(series_values) < min_history:
                    continue
                center = median(series_values)
                z = robust_z(series_values, value)
                rel = abs(value - center) / abs(center) if center else float("inf")
                if abs(z) > threshold and rel > drift_rel_floor:
                    findings.append(finding(
                        "drift", metric, value, center, z,
                        len(series_values)))
            else:
                if metric not in prev_metrics:
                    continue
                prev = prev_metrics[metric]
                if value != prev:
                    values = [m[metric] for m in
                              (_metric_vector(r) for r in history)
                              if metric in m]
                    z = robust_z(values, value) if values else float("inf")
                    findings.append(finding(
                        "determinism", metric, value, prev, z, len(values)))
    return findings


# ----------------------------------------------------------------------
# CLI


def _fmt_value(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return "%.6g" % value
    return str(value)


def cmd_record(args):
    store = TrajectoryStore(args.store)
    commit = args.commit or current_commit()
    names = set(args.names) if args.names else None
    records = []
    if args.from_dse:
        records.extend(records_from_dse_store(
            os.path.expanduser(args.from_dse), commit,
            scale=args.scale, names=names))
    else:
        cache_dir = args.cache_dir
        if not cache_dir:
            from repro.harness.runner import _cache_dir

            cache_dir = _cache_dir()
        records.extend(records_from_cache(
            os.path.expanduser(cache_dir), commit,
            scale=args.scale, names=names))
    if not records:
        print("error: nothing to record (no cached summaries / DSE results "
              "matched — run a benchmark or a sweep first)", file=sys.stderr)
        return 1
    added, skipped = store.append(records)
    print("recorded %d new trajectory record(s) at commit %s "
          "(%d duplicate(s) skipped) -> %s"
          % (added, commit[:12], skipped, store.path))
    return 0


def cmd_check(args):
    from repro.obs import golden

    store = TrajectoryStore(args.store)
    records = store.records()
    if not records:
        print("error: empty trajectory store %s (run "
              "`python -m repro.obs.regress record` first)" % store.path,
              file=sys.stderr)
        return 1
    commit = args.commit or records[-1].get("commit")
    rows = golden.check_golden(records, commit=commit)
    if args.json:
        print(json.dumps({"commit": commit, "gates": rows},
                         indent=2, sort_keys=True))
    else:
        print(golden.render_check(rows, commit))
    evaluated = [r for r in rows if r["status"] != "skip"]
    failed = [r for r in rows if r["status"] == "fail"]
    if not evaluated:
        print("error: no golden gate had inputs at commit %s" % commit[:12],
              file=sys.stderr)
        return 1
    return 1 if failed else 0


def cmd_diff(args):
    store = TrajectoryStore(args.store)
    records = store.records()
    if not records:
        print("error: empty trajectory store %s (run "
              "`python -m repro.obs.regress record` first)" % store.path,
              file=sys.stderr)
        return 1
    findings = detect(records, window=args.window, threshold=args.threshold,
                      min_history=args.min_history)
    if args.json:
        print(json.dumps({"findings": findings}, indent=2, sort_keys=True))
        return 1 if findings else 0
    n_series = len(_series(records))
    if not findings:
        print("diff: 0 regressions across %d series (%d records) in %s"
              % (n_series, len(records), store.path))
        return 0
    print("diff: %d regression(s) across %d series:"
          % (len(findings), n_series))
    for f in findings:
        print("  %-12s %s %s [%s] %s: %s -> %s (z=%s, n=%d)"
              % (f["kind"], f["benchmark"], f["label"] or f["point_id"],
                 f["scale"], f["metric"], _fmt_value(f["baseline"]),
                 _fmt_value(f["value"]), _fmt_value(f["z"]), f["samples"]))
    return 1


def cmd_export_trace(args):
    from repro.obs.trace_export import export_trace

    try:
        trace = export_trace(args.jsonl)
    except OSError as exc:
        print("error: cannot read %s (%s)" % (args.jsonl, exc),
              file=sys.stderr)
        return 1
    if not trace["traceEvents"]:
        print("error: no span events in %s (was the run started with "
              "REPRO_OBS=jsonl:<path>?)" % args.jsonl, file=sys.stderr)
        return 1
    payload = json.dumps(trace, sort_keys=True)
    if args.out:
        parent = os.path.dirname(os.path.abspath(args.out))
        os.makedirs(parent, exist_ok=True)
        with open(args.out, "w") as fh:
            fh.write(payload)
        print("wrote %d trace events -> %s (load in chrome://tracing or "
              "https://ui.perfetto.dev)" % (len(trace["traceEvents"]), args.out))
    else:
        print(payload)
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="Metrics trajectory store, paper-golden gates, and "
        "cross-commit regression detection (schema v%d)." % TRAJECTORY_SCHEMA,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "record", help="append current metrics to the trajectory store")
    p.add_argument("names", nargs="*", help="benchmark names to include")
    p.add_argument("--store", default=None,
                   help="trajectory JSONL path (default: REPRO_TRAJECTORY or "
                   "<repo>/bench_history/trajectory.jsonl)")
    p.add_argument("--cache-dir", default=None,
                   help="harness bench cache to ingest (default: "
                   "REPRO_CACHE_DIR or <repo>/.bench_cache)")
    p.add_argument("--from-dse", default=None, metavar="STORE",
                   help="ingest a DSE result store instead of the bench cache")
    p.add_argument("--scale", default=None, help="only this scale")
    p.add_argument("--commit", default=None,
                   help="commit id to record under (default: git HEAD, or "
                   "REPRO_COMMIT)")
    p.set_defaults(func=cmd_record)

    p = sub.add_parser(
        "check", help="check the latest records against the paper goldens")
    p.add_argument("--store", default=None, help="trajectory JSONL path")
    p.add_argument("--commit", default=None,
                   help="check records of this commit (default: last recorded)")
    p.add_argument("--json", action="store_true", help="JSON output")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "diff", help="robust z-score regression scan over the history")
    p.add_argument("--store", default=None, help="trajectory JSONL path")
    p.add_argument("--window", type=int, default=20,
                   help="history window per series (default 20)")
    p.add_argument("--threshold", type=float, default=3.5,
                   help="|robust z| above this flags drift (default 3.5)")
    p.add_argument("--min-history", type=int, default=5,
                   help="min samples before drift is judged (default 5)")
    p.add_argument("--json", action="store_true", help="JSON output")
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser(
        "export-trace",
        help="convert a REPRO_OBS=jsonl stream to Chrome trace-event JSON")
    p.add_argument("--jsonl", required=True,
                   help="span stream written via REPRO_OBS=jsonl:<path>")
    p.add_argument("--out", default=None,
                   help="output .json path (default: stdout)")
    p.set_defaults(func=cmd_export_trace)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
