"""Unified metrics registry: mergeable histograms + OpenMetrics exposition.

This layers on :mod:`repro.obs.core` (which owns counters and gauges)
and adds the third primitive a live service needs: **log-bucketed
histograms** whose quantiles (p50/p95/p99) are computable from the
buckets alone and whose *merge* across processes is exact — bucket
counts simply add.  Everything is gated on ``core.enabled`` so the
disabled path costs one attribute load + branch, exactly like spans.

Bucketing: values ``v > 0`` land in bucket ``i`` with
``BASE**(i-1) < v <= BASE**i`` where ``BASE = 2**0.25`` (~19% wide
buckets), stored sparsely as ``{i: count}``.  A quantile estimate is
the upper bound of the bucket holding the target rank (clamped to the
observed max), so for any sample ``s`` resolving a quantile the
estimate ``e`` satisfies ``s <= e < s * BASE`` — a guaranteed ≤ 19%
relative overestimate.  Values ``<= 0`` share one ``zero`` bucket.

Cross-process collection piggybacks on the existing plumbing:

* :func:`export_spec` / :func:`apply_spec` ride inside
  ``core.export_spec()`` exactly like the profiler's spec, so DSE
  worker processes inherit the snapshot directory automatically.  A
  child applying a spec *resets* its histogram registry and records a
  counter baseline — forked children inherit the parent's totals, and
  the baseline makes child snapshots pure deltas so merging is exact.
* :func:`flush` writes an atomic per-process snapshot file (keyed on
  pid, carrying a per-process ``proc`` token so pid reuse cannot be
  mistaken for continuity) and/or emits a ``{"kind": "metrics"}`` JSONL
  event on the active sink.  ``repro.dse`` workers flush on task exit;
  heartbeats embed periodic snapshots for live dashboards.
* :func:`merge` folds many snapshots into one coordinator-side view:
  counters add, histograms merge bucket-wise, gauges are last-writer.

Exposition: :func:`render_openmetrics` renders a merged snapshot as
OpenMetrics text (``# TYPE``/``# HELP``, ``_total`` counters,
``_bucket{le=...}``/``_count``/``_sum`` histograms, ``# EOF``), and
:func:`validate_openmetrics` parses it back with format checks — used
by tests, ``scripts/verify.sh`` and the ``validate`` subcommand.

CLI::

    python -m repro.obs.metrics export --jsonl run.jsonl        # OpenMetrics
    python -m repro.obs.metrics export --dir .serve/metrics --json
    python -m repro.obs.metrics validate exposition.txt
"""

import argparse
import json
import math
import os
import re
import sys
import time

from repro.obs import core

SCHEMA_VERSION = 1

#: Bucket growth factor.  2**0.25 keeps quantile overestimates under
#: ~19% while a seconds-scale histogram (1us..100s) stays ~70 buckets.
BASE = 2.0 ** 0.25
_LOG_BASE = math.log(BASE)

#: Help strings for well-known metric families (exposition ``# HELP``).
_DEFAULT_HELP = {
    "serve.request.seconds": "serve connection handling latency per op",
    "serve.point.seconds": "seconds from job start to each point result",
    "serve.job.seconds": "job run time from start to finish",
    "serve.job.wait_seconds": "job queue wait from submit to start",
    "serve.cache.lookup_seconds": "global result cache lookup latency",
    "dse.task.seconds": "scheduler chunk (task) wall time",
    "dse.point.seconds": "single design-point evaluation wall time",
    "trace_store.load_seconds": "persistent trace store read latency",
    "profile.energy.fetch_joules": "dynamic I-cache fetch energy by run",
}
_help = {}


class Histogram:
    """Sparse log-bucketed histogram with exact merge."""

    __slots__ = ("count", "sum", "min", "max", "zero", "buckets")

    def __init__(self):
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self.zero = 0
        self.buckets = {}  # bucket index -> count

    def observe(self, value):
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value > 0.0:
            idx = int(math.ceil(math.log(value) / _LOG_BASE - 1e-9))
            self.buckets[idx] = self.buckets.get(idx, 0) + 1
        else:
            self.zero += 1

    def quantile(self, q):
        """Upper-bound estimate of the ``q``-th percentile (0..100)."""
        if self.count == 0:
            return 0.0
        target = max(1, int(math.ceil(q / 100.0 * self.count)))
        cum = self.zero
        if cum >= target:
            return min(self.min, 0.0)
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            if cum >= target:
                return min(BASE ** idx, self.max)
        return self.max

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def merge(self, other):
        """Fold another histogram (or its dict form) into this one."""
        if isinstance(other, dict):
            other = Histogram.from_dict(other)
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        self.zero += other.zero
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n

    def to_dict(self):
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "zero": self.zero,
            "base": BASE,
            "buckets": {str(i): n for i, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, data):
        base = data.get("base", BASE)
        if abs(base - BASE) > 1e-9:
            raise ValueError("histogram bucket base mismatch: %r" % base)
        h = cls()
        h.count = int(data.get("count", 0))
        h.sum = float(data.get("sum", 0.0))
        h.min = data.get("min")
        h.max = data.get("max")
        h.zero = int(data.get("zero", 0))
        h.buckets = {int(i): int(n) for i, n in (data.get("buckets") or {}).items()}
        return h


def summarize(hist):
    """count/sum/mean/min/max/p50/p95/p99 row from a Histogram or dict."""
    if isinstance(hist, dict):
        hist = Histogram.from_dict(hist)
    return {
        "count": hist.count,
        "sum": hist.sum,
        "mean": hist.mean,
        "min": hist.min if hist.min is not None else 0.0,
        "max": hist.max if hist.max is not None else 0.0,
        "p50": hist.quantile(50),
        "p95": hist.quantile(95),
        "p99": hist.quantile(99),
    }


# ----------------------------------------------------------------------
# registry (module-level, gated on core.enabled)

_hists = {}
_snapshot_dir = None
_counter_base = {}
_is_child = False
_proc_token = None  # (pid, token) — recomputed after fork


def observe(name, value):
    """Fold ``value`` into histogram ``name``; no-op when obs disabled."""
    if not core.enabled:
        return
    h = _hists.get(name)
    if h is None:
        h = _hists[name] = Histogram()
    h.observe(value)


class _Timer:
    __slots__ = ("name", "_t0")

    def __init__(self, name):
        self.name = name
        self._t0 = None

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        observe(self.name, time.perf_counter() - self._t0)
        return False


class _NoopTimer:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP_TIMER = _NoopTimer()


def timer(name):
    """Context manager observing its wall time; no-op singleton when off."""
    if not core.enabled:
        return _NOOP_TIMER
    return _Timer(name)


def describe(name, text):
    """Attach a ``# HELP`` string to a metric family."""
    _help[name] = text


def help_for(name):
    return _help.get(name) or _DEFAULT_HELP.get(name) or ("metric %s" % name)


def histograms():
    """The live histogram registry (name -> Histogram)."""
    return _hists


def proc_token():
    """Unique id for this process incarnation (stable until fork/exec)."""
    global _proc_token
    pid = os.getpid()
    if _proc_token is None or _proc_token[0] != pid:
        _proc_token = (pid, "%d-%s" % (pid, os.urandom(3).hex()))
    return _proc_token[1]


def _numeric_gauges():
    out = {}
    for name, value in core._gauges.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[name] = value
    return out


def local_snapshot():
    """This process's snapshot: counter deltas + gauges + histograms.

    In a worker that adopted a parent spec, counters are deltas against
    the post-fork baseline (so merging never double-counts inherited
    totals) and gauges are omitted (last-writer semantics only make
    sense in the coordinator).
    """
    counters = {}
    base = _counter_base
    for name, value in core._counters.items():
        delta = value - base.get(name, 0)
        if delta:
            counters[name] = delta
    return {
        "schema": SCHEMA_VERSION,
        "proc": proc_token(),
        "pid": os.getpid(),
        "counters": counters,
        "gauges": {} if _is_child else _numeric_gauges(),
        "histograms": {n: h.to_dict() for n, h in sorted(_hists.items())},
    }


def merge(snapshots):
    """Fold snapshots into one view: counters add, histograms merge."""
    counters, gauges, hists, procs = {}, {}, {}, []
    for snap in snapshots:
        if not snap:
            continue
        if snap.get("proc"):
            procs.append(snap["proc"])
        for name, value in (snap.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + value
        gauges.update(snap.get("gauges") or {})
        for name, data in (snap.get("histograms") or {}).items():
            h = hists.get(name)
            if h is None:
                hists[name] = Histogram.from_dict(data)
            else:
                h.merge(data)
    return {
        "schema": SCHEMA_VERSION,
        "procs": procs,
        "counters": counters,
        "gauges": gauges,
        "histograms": {n: h.to_dict() for n, h in sorted(hists.items())},
    }


# ----------------------------------------------------------------------
# cross-process plumbing: snapshot dir, spec ride-along, flush


def set_snapshot_dir(path):
    """Directory where per-process snapshot files are flushed (or None)."""
    global _snapshot_dir
    if path is not None:
        path = os.path.abspath(os.path.expanduser(path))
        os.makedirs(path, exist_ok=True)
    _snapshot_dir = path


def snapshot_dir():
    return _snapshot_dir


def export_spec():
    """Metrics part of ``core.export_spec()`` (None when nothing to say)."""
    if _snapshot_dir is None:
        return None
    return {"dir": _snapshot_dir}


def apply_spec(spec):
    """Adopt a parent's metrics config; always starts a fresh window.

    Called from ``core.apply_spec`` in every worker (with None when the
    parent exported no metrics spec).  Resetting here is what makes
    fork-inherited state safe: histograms clear, and the counter
    baseline pins inherited counter totals so snapshots are deltas.
    """
    global _snapshot_dir, _counter_base, _is_child
    _hists.clear()
    _counter_base = dict(core._counters)
    _is_child = True
    _snapshot_dir = (spec or {}).get("dir")


def flush():
    """Persist this process's snapshot (dir file and/or JSONL event).

    Returns the snapshot written, or None when there was nowhere to
    write it (no snapshot dir and no event sink) or obs is disabled.
    """
    if not core.enabled:
        return None
    snap = local_snapshot()
    wrote = False
    if _snapshot_dir is not None:
        path = os.path.join(_snapshot_dir, "m%d.json" % os.getpid())
        tmp = "%s.%d.tmp" % (path, os.getpid())
        try:
            with open(tmp, "w") as fh:
                json.dump(snap, fh, sort_keys=True)
            os.replace(tmp, path)
            wrote = True
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
    if core.sink() is not None:
        core.emit({"kind": "metrics", "pid": snap["pid"], "snapshot": snap})
        wrote = True
    return snap if wrote else None


def read_snapshot_dir(path):
    """All per-process snapshots flushed under ``path`` (missing dir ok)."""
    snaps = []
    try:
        names = sorted(os.listdir(path))
    except OSError:
        return snaps
    for name in names:
        if not (name.startswith("m") and name.endswith(".json")):
            continue
        try:
            with open(os.path.join(path, name)) as fh:
                snaps.append(json.load(fh))
        except (OSError, ValueError):
            continue  # torn write or concurrent replace; skip
    return snaps


def merged_snapshot():
    """Coordinator view: every flushed worker snapshot + this process.

    A snapshot file this same process incarnation flushed earlier is
    skipped (matched on the proc token) — the live registry already
    contains everything in it.
    """
    snaps = []
    if _snapshot_dir is not None:
        own = proc_token()
        snaps.extend(s for s in read_snapshot_dir(_snapshot_dir)
                     if s.get("proc") != own)
    snaps.append(local_snapshot())
    return merge(snaps)


def fold_jsonl(path):
    """Merge the last ``metrics`` event per process from a JSONL stream."""
    from repro.obs.report import _iter_jsonl_events

    last = {}
    for event in _iter_jsonl_events(path):
        if event.get("kind") != "metrics":
            continue
        snap = event.get("snapshot") or {}
        key = snap.get("proc") or "pid%s" % event.get("pid")
        last[key] = snap
    return merge(last[k] for k in sorted(last))


def _reset_state():
    _hists.clear()
    _counter_base.clear()


core._reset_hooks.append(_reset_state)


# ----------------------------------------------------------------------
# OpenMetrics exposition

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")


def metric_name(name):
    """Mangle a dotted repro metric name into an OpenMetrics name."""
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", str(name))
    if not out or not re.match(r"[a-zA-Z_:]", out[0]):
        out = "_" + out
    return out


def _fmt(value):
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return "+Inf" if value > 0 else ("-Inf" if value < 0 else "NaN")
        return repr(value)
    return str(value)


def render_openmetrics(snapshot):
    """OpenMetrics text exposition of a (merged or local) snapshot."""
    lines = []
    seen = set()

    def family(raw, kind):
        name = metric_name(raw)
        if name in seen:
            return None  # two raw names mangled to one family; keep first
        seen.add(name)
        lines.append("# TYPE %s %s" % (name, kind))
        lines.append("# HELP %s %s" % (name, help_for(raw)))
        return name

    for raw in sorted(snapshot.get("counters") or {}):
        name = family(raw, "counter")
        if name is not None:
            lines.append("%s_total %s" % (name, _fmt(snapshot["counters"][raw])))
    for raw in sorted(snapshot.get("gauges") or {}):
        value = snapshot["gauges"][raw]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        name = family(raw, "gauge")
        if name is not None:
            lines.append("%s %s" % (name, _fmt(value)))
    for raw in sorted(snapshot.get("histograms") or {}):
        hist = Histogram.from_dict(snapshot["histograms"][raw])
        name = family(raw, "histogram")
        if name is None:
            continue
        cum = 0
        if hist.zero:
            cum += hist.zero
            lines.append('%s_bucket{le="0.0"} %d' % (name, cum))
        for idx in sorted(hist.buckets):
            cum += hist.buckets[idx]
            lines.append('%s_bucket{le="%s"} %d' % (name, repr(BASE ** idx), cum))
        lines.append('%s_bucket{le="+Inf"} %d' % (name, hist.count))
        lines.append("%s_count %d" % (name, hist.count))
        lines.append("%s_sum %s" % (name, _fmt(hist.sum)))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^{}]*)\})? (\S+)$")
_SUFFIXES = ("_total", "_bucket", "_count", "_sum")


def validate_openmetrics(text):
    """Parse + check an exposition; returns ``{family: info}`` dicts.

    Checks: terminal ``# EOF``; every sample belongs to a family with a
    prior ``# TYPE``; counters are single non-negative ``_total``
    samples; histogram buckets are cumulative non-decreasing with a
    ``+Inf`` bucket equal to ``_count`` and a ``_sum`` sample.  Raises
    ``ValueError`` on the first violation.
    """
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        raise ValueError("exposition must end with '# EOF'")
    families = {}

    def family_of(sample_name):
        if sample_name in families:
            return sample_name
        for suffix in _SUFFIXES:
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                if base in families:
                    return base
        raise ValueError("sample %r has no preceding # TYPE" % sample_name)

    for lineno, line in enumerate(lines[:-1], 1):
        if not line:
            raise ValueError("blank line %d not allowed" % lineno)
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ValueError("malformed TYPE line %d: %r" % (lineno, line))
            _, _, name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "unknown", "info", "stateset"):
                raise ValueError("unknown metric type %r" % kind)
            if name in families:
                raise ValueError("duplicate TYPE for %r" % name)
            if not _NAME_OK.match(name):
                raise ValueError("invalid metric name %r" % name)
            families[name] = {"type": kind, "help": None, "samples": []}
        elif line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4:
                raise ValueError("malformed HELP line %d: %r" % (lineno, line))
            name = parts[2]
            if name not in families:
                raise ValueError("HELP before TYPE for %r" % name)
            families[name]["help"] = parts[3]
        elif line.startswith("#"):
            raise ValueError("unexpected comment line %d: %r" % (lineno, line))
        else:
            match = _SAMPLE_RE.match(line)
            if not match:
                raise ValueError("malformed sample line %d: %r" % (lineno, line))
            name, labels_raw, value_raw = match.groups()
            try:
                value = float(value_raw)
            except ValueError:
                raise ValueError("non-numeric sample value on line %d" % lineno)
            labels = {}
            if labels_raw:
                for part in labels_raw.split(","):
                    key, _, val = part.partition("=")
                    labels[key.strip()] = val.strip().strip('"')
            families[family_of(name)]["samples"].append((name, labels, value))

    for name, info in families.items():
        samples = info["samples"]
        if info["type"] == "counter":
            if (len(samples) != 1 or samples[0][0] != name + "_total"
                    or samples[0][2] < 0):
                raise ValueError(
                    "counter %s needs one non-negative %s_total sample"
                    % (name, name))
        elif info["type"] == "histogram":
            buckets = [(s[1].get("le"), s[2]) for s in samples
                       if s[0] == name + "_bucket"]
            counts = [s[2] for s in samples if s[0] == name + "_count"]
            sums = [s[2] for s in samples if s[0] == name + "_sum"]
            if not buckets or len(counts) != 1 or len(sums) != 1:
                raise ValueError(
                    "histogram %s needs buckets + _count + _sum" % name)
            if buckets[-1][0] != "+Inf":
                raise ValueError("histogram %s missing terminal +Inf bucket"
                                 % name)
            cum = [b[1] for b in buckets]
            if any(b > a for a, b in zip(cum[1:], cum)):
                raise ValueError("histogram %s buckets not cumulative" % name)
            les = [b[0] for b in buckets[:-1]]
            if les != sorted(les, key=float) or len(set(les)) != len(les):
                raise ValueError("histogram %s le values not increasing" % name)
            if cum[-1] != counts[0]:
                raise ValueError("histogram %s +Inf bucket != _count" % name)
    return families


# ----------------------------------------------------------------------
# CLI


def _load_merged(args):
    sources = 0
    merged = None
    if getattr(args, "jsonl", None):
        merged = fold_jsonl(args.jsonl)
        sources += 1
    if getattr(args, "dir", None):
        snaps = read_snapshot_dir(args.dir)
        folded = merge(snaps)
        merged = folded if merged is None else merge([merged, folded])
        sources += 1
    if not sources:
        raise SystemExit("need --jsonl PATH and/or --dir PATH")
    return merged


def cmd_export(args):
    merged = _load_merged(args)
    if args.json:
        print(json.dumps(merged, indent=2, sort_keys=True))
    else:
        sys.stdout.write(render_openmetrics(merged))
    return 0


def cmd_validate(args):
    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file) as fh:
            text = fh.read()
    try:
        families = validate_openmetrics(text)
    except ValueError as exc:
        print("INVALID: %s" % exc, file=sys.stderr)
        return 1
    counts = {}
    for info in families.values():
        counts[info["type"]] = counts.get(info["type"], 0) + 1
    print("ok: %d families (%s)" % (
        len(families),
        ", ".join("%d %s" % (n, k) for k, n in sorted(counts.items()))))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.metrics",
        description="Merge per-process metric snapshots and render or "
        "validate OpenMetrics text exposition.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("export", help="merge snapshots -> OpenMetrics text")
    p.add_argument("--jsonl", default=None,
                   help="JSONL obs stream (folds kind=metrics events)")
    p.add_argument("--dir", default=None,
                   help="snapshot directory written by metrics.flush()")
    p.add_argument("--json", action="store_true",
                   help="emit the merged snapshot as JSON instead of "
                   "OpenMetrics text")
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("validate", help="check an OpenMetrics exposition")
    p.add_argument("file", help="exposition text file, or - for stdin")
    p.set_defaults(func=cmd_validate)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
