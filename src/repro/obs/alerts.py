"""Declarative SLO / alert rules evaluated against metric snapshots.

Rules live in a YAML (when PyYAML is importable) or JSON file::

    rules:
      - rule: "serve.point.seconds p95 < 120"
      - rule: "serve.cache.hit_ratio >= 0.2"
        name: cache-effective
      - name: point-failure-rate
        ratio: {num: serve.points.failed,
                den: [serve.points.computed, serve.points.failed]}
        op: "<"
        value: 0.05
        on_missing: ok

Each rule is either a compact string — ``<metric> [<stat>] <op>
<threshold>`` where ``stat`` (for histograms) is one of
``count/sum/mean/min/max/p50/p95/p99`` — or explicit
``metric``/``stat``/``op``/``value`` fields, or a ``ratio`` rule whose
value is ``sum(num) / sum(den)`` over counters/gauges (absent names
count as 0; the rule is *missing* only when every name is absent).

Evaluation statuses: ``ok``, ``breach``, ``missing`` (metric absent
from the snapshot; ``on_missing`` may map it to ``ok`` or ``breach``,
default leaves it as missing), ``error`` (mis-specified rule, e.g. a
histogram stat against a counter-only name).

The ``check`` CLI reads a snapshot from one of four sources — a live
serve socket (``--serve``, scrapes the ``metrics`` op), a JSONL obs
stream (``--jsonl``), a flushed snapshot directory (``--dir``), or a
merged-snapshot JSON file (``--snapshot``) — and exits 0 when every
rule is ok, 1 on any breach (missing counts as breach with
``--strict``), 2 on rule/source errors.
"""

import argparse
import json
import math
import os
import sys

from repro.obs import metrics as metrics_mod

_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}
_HIST_STATS = ("count", "sum", "mean", "min", "max", "p50", "p95", "p99")


class RuleError(ValueError):
    """A rule file (or one rule in it) is malformed."""


def _names(spec):
    if spec is None:
        return []
    if isinstance(spec, str):
        return [spec]
    if isinstance(spec, (list, tuple)):
        return [str(n) for n in spec]
    raise RuleError("expected metric name or list, got %r" % (spec,))


def _parse_compact(text):
    parts = str(text).split()
    if len(parts) == 3:
        metric, stat, op, value = parts[0], "value", parts[1], parts[2]
    elif len(parts) == 4:
        metric, stat, op, value = parts
    else:
        raise RuleError(
            "compact rule must be '<metric> [<stat>] <op> <threshold>', "
            "got %r" % text)
    return metric, stat, op, value


def normalize_rule(raw, index):
    """One raw rule entry -> canonical dict (raises RuleError)."""
    if isinstance(raw, str):
        raw = {"rule": raw}
    if not isinstance(raw, dict):
        raise RuleError("rule #%d is not a mapping or string" % index)
    rule = dict(raw)
    if "rule" in rule:
        metric, stat, op, value = _parse_compact(rule.pop("rule"))
        rule.setdefault("metric", metric)
        rule.setdefault("stat", stat)
        rule.setdefault("op", op)
        rule.setdefault("value", value)
    ratio = rule.get("ratio")
    if ratio is not None:
        if not isinstance(ratio, dict) or "num" not in ratio or "den" not in ratio:
            raise RuleError("rule #%d: ratio needs num and den" % index)
        rule["ratio"] = {"num": _names(ratio["num"]),
                         "den": _names(ratio["den"])}
    elif not rule.get("metric"):
        raise RuleError("rule #%d needs 'metric', 'rule' or 'ratio'" % index)
    op = rule.get("op")
    if op not in _OPS:
        raise RuleError("rule #%d: unknown op %r (use %s)"
                        % (index, op, "/".join(_OPS)))
    try:
        rule["value"] = float(rule["value"])
    except (KeyError, TypeError, ValueError):
        raise RuleError("rule #%d: threshold 'value' must be a number" % index)
    stat = rule.setdefault("stat", "value")
    if stat != "value" and stat not in _HIST_STATS:
        raise RuleError("rule #%d: unknown stat %r (use value or %s)"
                        % (index, stat, "/".join(_HIST_STATS)))
    on_missing = rule.setdefault("on_missing", "missing")
    if on_missing not in ("missing", "ok", "breach"):
        raise RuleError("rule #%d: on_missing must be missing/ok/breach"
                        % index)
    if not rule.get("name"):
        if ratio is not None:
            rule["name"] = "ratio(%s/%s)" % ("+".join(rule["ratio"]["num"]),
                                             "+".join(rule["ratio"]["den"]))
        else:
            rule["name"] = "%s %s %s %g" % (
                rule["metric"],
                "" if stat == "value" else stat + " ",
                op, rule["value"])
            rule["name"] = " ".join(rule["name"].split())
    return rule


def parse_rules(data):
    """Normalize a loaded rules document (list or ``{"rules": [...]}``)."""
    if isinstance(data, dict):
        data = data.get("rules")
    if not isinstance(data, list) or not data:
        raise RuleError("rules document must be a non-empty list "
                        "(or {'rules': [...]})")
    return [normalize_rule(raw, i + 1) for i, raw in enumerate(data)]


def load_rules(path):
    """Load + normalize a YAML/JSON rules file."""
    with open(path) as fh:
        text = fh.read()
    data = None
    try:
        data = json.loads(text)
    except ValueError:
        try:
            import yaml
        except ImportError:
            raise RuleError(
                "%s is not JSON and PyYAML is unavailable — rewrite the "
                "rules as JSON" % path)
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise RuleError("%s: %s" % (path, exc))
    return parse_rules(data)


# ----------------------------------------------------------------------
# evaluation


def _scalar(snapshot, name):
    counters = snapshot.get("counters") or {}
    if name in counters:
        return counters[name]
    gauges = snapshot.get("gauges") or {}
    if name in gauges:
        return gauges[name]
    return None


def _resolve(rule, snapshot):
    """-> (value or None-if-missing); raises RuleError on bad rule/kind."""
    ratio = rule.get("ratio")
    if ratio is not None:
        values = [_scalar(snapshot, n) for n in ratio["num"] + ratio["den"]]
        if all(v is None for v in values):
            return None
        num = sum(_scalar(snapshot, n) or 0 for n in ratio["num"])
        den = sum(_scalar(snapshot, n) or 0 for n in ratio["den"])
        if den == 0:
            return 0.0 if num == 0 else math.inf
        return num / den
    metric, stat = rule["metric"], rule["stat"]
    hists = snapshot.get("histograms") or {}
    if metric in hists:
        if stat == "value":
            raise RuleError(
                "%s is a histogram; pick a stat (%s)"
                % (metric, "/".join(_HIST_STATS)))
        row = metrics_mod.summarize(hists[metric])
        return row[stat]
    value = _scalar(snapshot, metric)
    if value is None:
        return None
    if stat != "value":
        raise RuleError("%s is a %s; stat %r only applies to histograms"
                        % (metric, "counter/gauge", stat))
    return value


def evaluate(rules, snapshot):
    """Evaluate rules against a (merged) snapshot -> list of outcomes."""
    outcomes = []
    for rule in rules:
        out = {"name": rule["name"], "op": rule["op"],
               "threshold": rule["value"], "value": None}
        try:
            value = _resolve(rule, snapshot)
        except RuleError as exc:
            out["status"] = "error"
            out["detail"] = str(exc)
            outcomes.append(out)
            continue
        if value is None:
            on_missing = rule["on_missing"]
            out["status"] = on_missing if on_missing != "missing" else "missing"
            if on_missing == "ok":
                out["detail"] = "metric absent (on_missing: ok)"
            elif on_missing == "breach":
                out["detail"] = "metric absent (on_missing: breach)"
            else:
                out["detail"] = "metric absent"
            outcomes.append(out)
            continue
        out["value"] = value
        ok = _OPS[rule["op"]](value, rule["value"])
        out["status"] = "ok" if ok else "breach"
        outcomes.append(out)
    return outcomes


def exit_code(outcomes, strict=False):
    """0 ok, 1 breach (strict: missing too), 2 rule errors."""
    statuses = {o["status"] for o in outcomes}
    if "error" in statuses:
        return 2
    if "breach" in statuses or (strict and "missing" in statuses):
        return 1
    return 0


# ----------------------------------------------------------------------
# CLI


def _load_snapshot(args):
    sources = [bool(args.serve), bool(args.jsonl), bool(args.snapshot),
               bool(args.dir)]
    if sum(sources) != 1:
        raise SystemExit(
            "pick exactly one source: --serve / --jsonl / --snapshot / --dir")
    if args.serve:
        from repro.serve.client import ServeClient

        reply = ServeClient(args.serve).metrics()
        return reply["snapshot"]
    if args.jsonl:
        return metrics_mod.fold_jsonl(args.jsonl)
    if args.dir:
        return metrics_mod.merge(metrics_mod.read_snapshot_dir(args.dir))
    with open(args.snapshot) as fh:
        data = json.load(fh)
    if "snapshot" in data and "histograms" not in data:
        data = data["snapshot"]  # accept a saved serve `metrics` reply
    return data


def _fmt_value(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return "%.6g" % value
    return str(value)


def render_outcomes(outcomes):
    width = max([len(o["name"]) for o in outcomes] + [4])
    lines = []
    for out in outcomes:
        line = "%-7s %-*s value=%s (want %s %s)" % (
            out["status"].upper(), width, out["name"],
            _fmt_value(out["value"]), out["op"], _fmt_value(out["threshold"]))
        if out.get("detail"):
            line += "  [%s]" % out["detail"]
        lines.append(line)
    return "\n".join(lines)


def cmd_check(args):
    try:
        rules = load_rules(args.rules)
    except (OSError, RuleError) as exc:
        print("alerts: bad rules file: %s" % exc, file=sys.stderr)
        return 2
    try:
        snapshot = _load_snapshot(args)
    except (OSError, ValueError, KeyError) as exc:
        print("alerts: cannot load snapshot: %s" % exc, file=sys.stderr)
        return 2
    outcomes = evaluate(rules, snapshot)
    code = exit_code(outcomes, strict=args.strict)
    if args.json:
        print(json.dumps({"outcomes": outcomes, "exit": code},
                         indent=2, sort_keys=True))
    else:
        print(render_outcomes(outcomes))
        counts = {}
        for out in outcomes:
            counts[out["status"]] = counts.get(out["status"], 0) + 1
        print("alerts: " + ", ".join(
            "%d %s" % (n, s) for s, n in sorted(counts.items())))
    return code


def cmd_show(args):
    try:
        rules = load_rules(args.rules)
    except (OSError, RuleError) as exc:
        print("alerts: bad rules file: %s" % exc, file=sys.stderr)
        return 2
    print(json.dumps(rules, indent=2, sort_keys=True))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.alerts",
        description="Evaluate SLO/alert rules against metric snapshots.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="evaluate rules; non-zero exit on breach")
    p.add_argument("--rules", required=True, help="YAML/JSON rules file")
    p.add_argument("--serve", default=None, metavar="ADDR",
                   help="scrape a live serve socket's metrics op")
    p.add_argument("--jsonl", default=None, metavar="PATH",
                   help="fold kind=metrics events from a JSONL obs stream")
    p.add_argument("--snapshot", default=None, metavar="FILE",
                   help="merged-snapshot JSON file (or saved metrics reply)")
    p.add_argument("--dir", default=None, metavar="PATH",
                   help="snapshot directory written by metrics.flush()")
    p.add_argument("--strict", action="store_true",
                   help="missing metrics fail the check too")
    p.add_argument("--json", action="store_true", help="JSON outcomes")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("show", help="parse + print normalized rules")
    p.add_argument("--rules", required=True, help="YAML/JSON rules file")
    p.set_defaults(func=cmd_show)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
