"""Paper-golden gates: expected headline metrics with tolerances.

Each :class:`GoldenTarget` encodes one quantitative claim from the
PowerFITS paper (the source figure is recorded as provenance), the
value the paper reports, and the value this reproduction is calibrated
to (``expect`` ± ``tol``).  The two differ where DESIGN.md /
EXPERIMENTS.md document a modelling divergence — e.g. the paper's ≈50 %
switching saving assumes a constant activity factor per access, while
our real-Hamming-activity bus lands near 42 % — so gates bind the
*reproduction* while the table preserves what the paper claimed.

Targets are evaluated against trajectory records
(:mod:`repro.obs.regress`): for every benchmark that recorded all four
paper configurations (ARM16 / ARM8 / FITS16 / FITS8, matched by
DesignPoint content hash), the per-benchmark value is computed and the
benchmark mean is compared against ``expect``.  Gates whose inputs are
absent — e.g. code-size-vs-Thumb when only DSE records (which carry no
Thumb build) exist — report ``skip``, never ``fail``.

Tolerances are calibrated to hold for single benchmarks at ``small``
scale (the CI smoke gate) *and* for the full 21-benchmark study, i.e.
they bracket the per-benchmark spread documented in EXPERIMENTS.md.
"""

from repro.dse.space import PAPER_LABELS

#: The four paper configurations every gate may reference.
LABELS = ("ARM16", "ARM8", "FITS16", "FITS8")


class GoldenTarget:
    """One gated metric: paper provenance + calibrated expectation."""

    __slots__ = ("key", "figure", "paper", "expect", "tol", "description", "fn")

    def __init__(self, key, figure, paper, expect, tol, description, fn):
        self.key = key
        self.figure = figure      # e.g. "Figure 7" — provenance
        self.paper = paper        # what the paper reports (float or None)
        self.expect = expect      # calibrated reproduction target
        self.tol = tol            # absolute tolerance around expect
        self.description = description
        self.fn = fn              # {label: metrics} -> value or None

    def evaluate(self, bench_configs):
        """Mean per-benchmark value, or None when no benchmark has inputs."""
        values = []
        for metrics_by_label in bench_configs.values():
            try:
                value = self.fn(metrics_by_label)
            except (KeyError, TypeError, ZeroDivisionError):
                value = None
            if value is not None:
                values.append(value)
        if not values:
            return None
        return sum(values) / len(values)


def _saving(m, metric, label):
    base = m["ARM16"][metric]
    if not base:
        return None
    return 1.0 - m[label][metric] / base


def _ratio(m, metric, num_label, den_label="ARM16"):
    base = m[den_label][metric]
    if not base:
        return None
    return m[num_label][metric] / base


def _fits16_extra(m, key):
    value = m["FITS16"].get(key)
    return value if isinstance(value, (int, float)) else None


def _code_vs_thumb(m):
    fits = m["FITS16"].get("fits_code_size")
    thumb = m["FITS16"].get("thumb_code_size")
    if not fits or not thumb:
        return None
    return fits / thumb


#: The golden table.  ``paper=None`` marks a derived signature the
#: paper states qualitatively rather than as one number.
GOLDEN = (
    GoldenTarget(
        "static_mapping", "Figure 3", 0.96, 0.96, 0.08,
        "mean fraction of ARM instructions mapped 1-to-1 to FITS (static)",
        lambda m: _fits16_extra(m, "static_mapping")),
    GoldenTarget(
        "dynamic_mapping", "Figure 4", 0.98, 0.96, 0.08,
        "mean fraction of executed ARM instructions mapped 1-to-1 (dynamic)",
        lambda m: _fits16_extra(m, "dynamic_mapping")),
    GoldenTarget(
        "code_size_fits_vs_arm", "Figure 5", 0.53, 0.57, 0.09,
        "FITS code size as a fraction of ARM",
        lambda m: _ratio(m, "code_size", "FITS16")),
    GoldenTarget(
        "code_size_fits_vs_thumb", "Figure 5", 0.79, 0.85, 0.07,
        "FITS code size as a fraction of Thumb (harness records only)",
        _code_vs_thumb),
    GoldenTarget(
        "internal_fraction_arm16", "Figure 6", 0.50, 0.53, 0.10,
        "internal share of ARM16 I-cache power (internal stays dominant)",
        lambda m: m["ARM16"]["frac_internal"]),
    GoldenTarget(
        "switching_saving_arm8", "Figure 7", 0.0, 0.0, 0.05,
        "ARM8 switching-power saving vs ARM16 (paper: none)",
        lambda m: _saving(m, "switching_w", "ARM8")),
    GoldenTarget(
        "switching_saving_fits16", "Figure 7", 0.494, 0.42, 0.15,
        "FITS16 switching-power saving vs ARM16",
        lambda m: _saving(m, "switching_w", "FITS16")),
    GoldenTarget(
        "switching_saving_fits8", "Figure 7", 0.494, 0.42, 0.15,
        "FITS8 switching-power saving vs ARM16",
        lambda m: _saving(m, "switching_w", "FITS8")),
    GoldenTarget(
        "switching_size_independence", "Figure 7", 0.0, 0.0, 0.02,
        "FITS16 minus FITS8 switching saving (the paper's size-independence "
        "signature)",
        lambda m: (_saving(m, "switching_w", "FITS16")
                   - _saving(m, "switching_w", "FITS8"))),
    GoldenTarget(
        "internal_saving_arm8", "Figure 8", 0.439, 0.36, 0.08,
        "ARM8 internal-power saving vs ARM16",
        lambda m: _saving(m, "internal_w", "ARM8")),
    GoldenTarget(
        "internal_saving_fits8", "Figure 8", 0.439, 0.46, 0.12,
        "FITS8 internal-power saving vs ARM16",
        lambda m: _saving(m, "internal_w", "FITS8")),
    GoldenTarget(
        "leakage_saving_arm8", "Figure 9", 0.50, 0.48, 0.06,
        "ARM8 leakage saving vs ARM16 (half the cache, half the leakage)",
        lambda m: _saving(m, "leakage_w", "ARM8")),
    GoldenTarget(
        "leakage_saving_fits8", "Figure 9", 0.50, 0.46, 0.08,
        "FITS8 leakage saving vs ARM16",
        lambda m: _saving(m, "leakage_w", "FITS8")),
    GoldenTarget(
        "peak_saving_arm8", "Figure 10", 0.31, 0.168, 0.05,
        "ARM8 peak-power saving vs ARM16 (ordering ARM8 < FITS16 < FITS8)",
        lambda m: _saving(m, "peak_w", "ARM8")),
    GoldenTarget(
        "peak_saving_fits16", "Figure 10", 0.46, 0.337, 0.05,
        "FITS16 peak-power saving vs ARM16",
        lambda m: _saving(m, "peak_w", "FITS16")),
    GoldenTarget(
        "peak_saving_fits8", "Figure 10", 0.63, 0.51, 0.05,
        "FITS8 peak-power saving vs ARM16",
        lambda m: _saving(m, "peak_w", "FITS8")),
    GoldenTarget(
        "energy_saving_fits8", "Figure 11", 0.47, 0.36, 0.12,
        "FITS8 total I-cache energy saving vs ARM16",
        lambda m: _saving(m, "icache_energy_j", "FITS8")),
    GoldenTarget(
        "mpm_ratio_fits8", "Figure 13", 1.0, 1.0, 0.18,
        "FITS8 misses-per-million relative to ARM16 (FITS8 ~ ARM16)",
        lambda m: _ratio(m, "mpm", "FITS8")),
    GoldenTarget(
        "ipc_ratio_fits8", "Figure 14", 1.0, 0.97, 0.05,
        "FITS8 IPC relative to ARM16 (IPC satisfactory everywhere)",
        lambda m: _ratio(m, "ipc", "FITS8")),
)


def group_paper_records(records, commit=None):
    """{benchmark: {label: metrics}} from trajectory records.

    Only records whose point id is one of the four paper configurations
    participate; with ``commit`` given, only that commit's records.
    When the same (benchmark, label) was recorded by both the harness
    and the DSE bridge, the harness record wins (it carries the extra
    code-size/mapping fields).
    """
    grouped = {}
    for record in records:
        if commit is not None and record.get("commit") != commit:
            continue
        label = PAPER_LABELS.get(record.get("point_id"))
        if label is None:
            continue
        slot = grouped.setdefault(record["benchmark"], {})
        if label in slot and record.get("source") != "harness":
            continue
        slot[label] = record.get("metrics") or {}
    # a gate needs all four configurations to compare against ARM16
    return {bench: by_label for bench, by_label in grouped.items()
            if set(LABELS) <= set(by_label)}


def check_golden(records, commit=None):
    """Evaluate every golden gate; returns a list of row dicts.

    Each row: ``metric``, ``figure``, ``paper``, ``expect``, ``tol``,
    ``actual``, ``abs_err``, ``rel_err`` and ``status`` in
    {"pass", "fail", "skip"}.
    """
    bench_configs = group_paper_records(records, commit=commit)
    rows = []
    for target in GOLDEN:
        actual = target.evaluate(bench_configs) if bench_configs else None
        if actual is None:
            rows.append({
                "metric": target.key, "figure": target.figure,
                "paper": target.paper, "expect": target.expect,
                "tol": target.tol, "actual": None, "abs_err": None,
                "rel_err": None, "status": "skip",
                "description": target.description,
            })
            continue
        abs_err = actual - target.expect
        rel_err = abs_err / target.expect if target.expect else None
        rows.append({
            "metric": target.key, "figure": target.figure,
            "paper": target.paper, "expect": target.expect,
            "tol": target.tol, "actual": actual, "abs_err": abs_err,
            "rel_err": rel_err, "status":
                "pass" if abs(abs_err) <= target.tol else "fail",
            "description": target.description,
        })
    return rows


def render_check(rows, commit):
    """Text table of a :func:`check_golden` result."""
    lines = ["golden gates at commit %s:" % (commit or "?")[:12]]
    header = "%-28s %-10s %8s %8s %8s %9s %9s  %s" % (
        "metric", "figure", "paper", "expect", "actual", "abs_err",
        "rel_err", "status")
    lines.append(header)
    lines.append("-" * len(header))

    def fmt(value):
        return "-" if value is None else "%8.3f" % value

    for row in rows:
        rel = ("-" if row["rel_err"] is None
               else "%+8.1f%%" % (100.0 * row["rel_err"]))
        lines.append("%-28s %-10s %8s %8s %8s %9s %9s  %s" % (
            row["metric"], row["figure"], fmt(row["paper"]),
            fmt(row["expect"]), fmt(row["actual"]),
            fmt(row["abs_err"]), rel, row["status"].upper()))
    n_pass = sum(1 for r in rows if r["status"] == "pass")
    n_fail = sum(1 for r in rows if r["status"] == "fail")
    n_skip = sum(1 for r in rows if r["status"] == "skip")
    lines.append("")
    lines.append("%d pass, %d fail, %d skip (skip = inputs not recorded)"
                 % (n_pass, n_fail, n_skip))
    return "\n".join(lines)
