"""Observability primitives: spans, counters/gauges/distributions, sinks.

The whole pipeline (compile → profile → synthesize → translate →
simulate/power) is instrumented with these three primitives:

* :func:`span` — nested wall-clock timing, usable as a context manager
  or (via :func:`timed`) a decorator.  Spans aggregate by name (count,
  total seconds, max seconds) and optionally stream one event per exit
  to the configured sink.
* :func:`counter` / :func:`gauge` / :func:`observe` — monotonic counts,
  last-value gauges, and min/max/total distributions.
* sinks — :class:`MemorySink` for tests, :class:`JsonlSink` for runs,
  or ``None`` for aggregate-only collection (the runner's manifests).

Everything is gated on the module-level :data:`enabled` flag so the hot
simulator loops pay a single attribute load + branch when observability
is off; instrumentation sits at stage/function/run granularity, never
per-instruction.

Configuration comes from the environment at import time:

* ``REPRO_OBS=jsonl:<path>`` — enable, stream events to a JSONL file;
* ``REPRO_OBS=memory`` (or ``1``/``on``) — enable, keep events in memory;
* ``REPRO_OBS_OPCODES=1`` — additionally collect per-opcode dynamic
  histograms from the functional simulators (the sampling knob; this is
  the one collection whose cost scales with static code size);
* ``REPRO_OBS_MAX_BYTES=<n>`` — rotate the JSONL stream once it grows
  past ``n`` bytes (the previous generation is kept as ``<path>.1``),
  so unattended sweeps cannot grow span logs unboundedly.

Span hierarchy: when a sink is attached, every span event additionally
carries ``trace_id`` / ``span_id`` / ``parent_id`` (propagated through
:mod:`contextvars`, so nesting follows the dynamic call structure even
across threads) and ``tid`` (a compact per-process thread lane).
:func:`export_spec` captures the *current* trace context alongside the
sink configuration; a worker process applying that spec via
:func:`apply_spec` parents its root spans under the exporting span —
which is how a multi-process DSE sweep exports as one coherent,
parent-linked trace (see :mod:`repro.obs.trace_export`).
"""

import atexit
import contextvars
import functools
import itertools
import json
import os
import sys
import threading
import time

#: Version of the snapshot/manifest layout.  Bump when the shape of
#: ``snapshot()``/``since()`` output changes; cached run manifests carry
#: it and are invalidated on mismatch.
SCHEMA_VERSION = 1

#: The canonical five pipeline stages, in flow order.  Span names
#: ``stage.<name>`` aggregate everything attributed to each stage.
STAGES = ("compile", "profile", "synthesize", "translate", "simulate")

#: Fast global gate.  Read directly (``if core.enabled:``) from hot-ish
#: call sites; mutate only through :func:`enable` / :func:`disable`.
enabled = False

_sink = None
_opcode_sampling = False
_depth = 0
_counters = {}
_gauges = {}
_dists = {}     # name -> [count, total, min, max]
_span_agg = {}  # name -> [count, total_seconds, max_seconds]

#: Process-local time origin for streamed span events.  Span events
#: carry ``ts`` (start offset in seconds since this epoch), which is
#: what lets :mod:`repro.obs.trace_export` reconstruct a timeline
#: without re-running anything.
_EPOCH = time.perf_counter()
_atexit_registered = False

#: Current trace context: ``(trace_id, span_id-of-enclosing-span)``.
#: A contextvar (not a global) so span parentage follows the dynamic
#: call structure per thread/task, and survives into forked children.
_TRACE_CTX = contextvars.ContextVar("repro.obs.trace", default=None)
_span_seq = itertools.count(1)
#: thread ident → small per-process lane number (event ``tid``).
_thread_lanes = {}

#: Callbacks run by :func:`reset` — satellite registries (e.g.
#: :mod:`repro.obs.metrics`) append theirs at import time so one reset
#: clears every aggregate without core importing them (cycle-free).
_reset_hooks = []


def _new_span_id():
    """Unique across processes: the pid is read at call time, so forked
    workers mint ids disjoint from their parent's."""
    return "%x-%x" % (os.getpid(), next(_span_seq))


def _new_trace_id():
    return os.urandom(8).hex()


def _tid():
    ident = threading.get_ident()
    lane = _thread_lanes.get(ident)
    if lane is None:
        lane = len(_thread_lanes) + 1
        _thread_lanes[ident] = lane
    return lane


def trace_context():
    """The current ``(trace_id, span_id)`` pair, or None outside a trace."""
    return _TRACE_CTX.get()


def adopt_trace_context(trace_id, parent_id=None):
    """Join an existing trace: subsequent spans in this context parent
    under ``parent_id`` (a span id minted by another process).  Used by
    :func:`apply_spec` so worker-process spans resolve to the
    coordinator's root span."""
    _TRACE_CTX.set((trace_id, parent_id))


class NullSink:
    """Swallows every event (useful to exercise the streaming path)."""

    def emit(self, event):
        pass

    def close(self):
        pass


class MemorySink:
    """Keeps emitted events in a list — the test sink."""

    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)

    def close(self):
        pass


class JsonlSink:
    """Appends one JSON object per event to a file.

    Usable as a context manager (``with JsonlSink(path) as sink:``), and
    every emit is a single flushed ``write`` so concurrent workers
    appending to one file never interleave partial lines.  The active
    sink is additionally closed via ``atexit`` (see :func:`enable`) so
    trailing events survive a run that exits mid-stream.

    ``max_bytes`` (default: ``REPRO_OBS_MAX_BYTES``, 0 = unbounded) caps
    the stream size: once an emit would cross the cap the current file
    is rotated to ``<path>.1`` (replacing any previous generation) and a
    fresh stream is started — with a warning on the first rotation, so
    a long sweep that outgrows its log is loud about losing history.
    Rotation is per-writer best-effort: concurrent workers appending to
    a shared stream each enforce the cap against the size they observe.
    """

    def __init__(self, path, max_bytes=None):
        self.path = os.path.expanduser(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if max_bytes is None:
            raw = os.environ.get("REPRO_OBS_MAX_BYTES", "").strip()
            max_bytes = int(raw) if raw else 0
        self.max_bytes = max_bytes
        self.rotations = 0
        self._fh = open(self.path, "a")

    def emit(self, event):
        if self._fh.closed:
            return
        line = json.dumps(event, sort_keys=True) + "\n"
        if self.max_bytes:
            try:
                size = self._fh.tell()
            except (OSError, ValueError):
                size = 0
            if size and size + len(line) > self.max_bytes:
                self._rotate()
        self._fh.write(line)
        self._fh.flush()

    def _rotate(self):
        self._fh.close()
        try:
            os.replace(self.path, self.path + ".1")
        except OSError:
            pass  # another writer rotated first; just reopen
        self._fh = open(self.path, "a")
        self.rotations += 1
        if self.rotations == 1:
            print(
                "repro.obs: span stream %s exceeded REPRO_OBS_MAX_BYTES=%d "
                "— rotated to %s.1 (warning once)"
                % (self.path, self.max_bytes, self.path),
                file=sys.stderr,
            )
        # Re-anchor the fresh generation so trace export can still align
        # this process's clock.
        self._fh.write(json.dumps(_meta_event(), sort_keys=True) + "\n")
        self._fh.flush()

    def close(self):
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


def _close_sink_at_exit():
    """``atexit`` hook: flush/close whatever sink is live at shutdown."""
    if _sink is not None:
        try:
            _sink.close()
        except Exception:
            pass


def _meta_event():
    """Per-process clock anchor: the wall-clock instant corresponding to
    a known ``ts`` offset.  ``ts`` is relative to each process's private
    import-time epoch, so without an anchor a multi-process stream's
    timelines cannot be laid out on one axis; with one,
    ``wall_at(ts) = wall0 + (ts - ts0)`` aligns every process."""
    return {
        "kind": "meta",
        "pid": os.getpid(),
        "wall0": time.time(),
        "ts0": time.perf_counter() - _EPOCH,
    }


def enable(sink=None, opcode_sampling=False):
    """Turn collection on.  ``sink=None`` means aggregate-only."""
    global enabled, _sink, _opcode_sampling, _atexit_registered
    _sink = sink
    _opcode_sampling = opcode_sampling
    enabled = True
    if isinstance(sink, JsonlSink):
        sink.emit(_meta_event())
    if not _atexit_registered:
        atexit.register(_close_sink_at_exit)
        _atexit_registered = True


def disable():
    """Turn collection off and close the sink (aggregates are kept)."""
    global enabled, _sink, _opcode_sampling
    if _sink is not None:
        _sink.close()
    _sink = None
    _opcode_sampling = False
    enabled = False


def reset():
    """Clear every aggregate (counters, gauges, distributions, spans)."""
    _counters.clear()
    _gauges.clear()
    _dists.clear()
    _span_agg.clear()
    for hook in list(_reset_hooks):
        hook()


def sink():
    return _sink


def opcode_sampling():
    """True when per-opcode histograms should be collected."""
    return enabled and _opcode_sampling


def configure_from_env(env=None):
    """Apply ``REPRO_OBS`` / ``REPRO_OBS_OPCODES``; returns True if enabled."""
    env = os.environ if env is None else env
    spec = env.get("REPRO_OBS", "").strip()
    if not spec or spec == "0" or spec.lower() == "off":
        return False
    sampling = env.get("REPRO_OBS_OPCODES", "").strip() not in ("", "0")
    if spec.startswith("jsonl:"):
        enable(JsonlSink(spec[len("jsonl:"):]), opcode_sampling=sampling)
    elif spec.lower() in ("1", "on", "memory", "mem"):
        enable(MemorySink(), opcode_sampling=sampling)
    else:
        raise ValueError(
            "unrecognized REPRO_OBS=%r (expected jsonl:<path>, memory, or 0)" % spec
        )
    return True


def export_spec():
    """Picklable description of the current configuration.

    Returns None when disabled; otherwise a dict a worker process can
    hand to :func:`apply_spec` to reproduce the parent's observability
    setup (sink kind, JSONL path, opcode-sampling flag).  This is how
    :func:`repro.dse.scheduler.run_tasks` propagates ``REPRO_OBS`` into
    children, which otherwise start with whatever the *import-time*
    environment said — i.e. disabled whenever the parent enabled
    observability programmatically.
    """
    if not enabled:
        return None
    max_bytes = 0
    if isinstance(_sink, JsonlSink):
        kind, path = "jsonl", _sink.path
        max_bytes = _sink.max_bytes
    elif isinstance(_sink, MemorySink):
        kind, path = "memory", None
    elif _sink is None:
        kind, path = "aggregate", None
    else:
        kind, path = "null", None
    spec = {"kind": kind, "path": path, "opcodes": _opcode_sampling,
            "max_bytes": max_bytes}
    ctx = _TRACE_CTX.get()
    if ctx is not None:
        # the exporting span becomes the worker's root parent — this is
        # the cross-process half of the span hierarchy
        spec["trace"] = {"trace_id": ctx[0], "parent_id": ctx[1]}
    from repro.obs import profile as _profile

    prof_spec = _profile.export_spec()
    if prof_spec is not None:
        spec["profile"] = prof_spec
    from repro.obs import metrics as _metrics

    metrics_spec = _metrics.export_spec()
    if metrics_spec is not None:
        spec["metrics"] = metrics_spec
    return spec


def apply_spec(spec):
    """Recreate the configuration described by :func:`export_spec`.

    ``None`` disables.  A JSONL spec reopens the same file in append
    mode — emits are single flushed writes, so many workers can share
    one stream.  A ``trace`` entry joins the exporter's trace: this
    process's root spans parent under the exporting span (overriding
    any context inherited across ``fork``, so fork and spawn children
    behave identically).
    """
    if spec is None:
        if enabled:
            disable()
        return
    kind = spec.get("kind")
    sampling = bool(spec.get("opcodes"))
    if kind == "jsonl":
        enable(JsonlSink(spec["path"], max_bytes=spec.get("max_bytes", 0)),
               opcode_sampling=sampling)
    elif kind == "memory":
        enable(MemorySink(), opcode_sampling=sampling)
    elif kind == "null":
        enable(NullSink(), opcode_sampling=sampling)
    else:
        enable(sink=None, opcode_sampling=sampling)
    trace = spec.get("trace")
    if trace is not None:
        adopt_trace_context(trace.get("trace_id"), trace.get("parent_id"))
    if spec.get("profile") is not None:
        from repro.obs import profile as _profile

        _profile.apply_spec(spec["profile"])
    from repro.obs import metrics as _metrics

    # Always applied (None included): a worker adopting any spec starts
    # a fresh metrics window so fork-inherited totals never double-count.
    _metrics.apply_spec(spec.get("metrics"))


# ----------------------------------------------------------------------
# spans


class _Span:
    __slots__ = ("name", "attrs", "_t0", "_ids", "_token")

    def __init__(self, name, attrs):
        self.name = name
        self.attrs = attrs
        self._t0 = None
        self._ids = None
        self._token = None

    def __enter__(self):
        global _depth
        _depth += 1
        if _sink is not None:
            # Hierarchy ids only matter when events stream somewhere;
            # aggregate-only collection skips the contextvar traffic.
            ctx = _TRACE_CTX.get()
            if ctx is None:
                trace_id, parent_id = _new_trace_id(), None
            else:
                trace_id, parent_id = ctx
            span_id = _new_span_id()
            self._ids = (trace_id, span_id, parent_id)
            self._token = _TRACE_CTX.set((trace_id, span_id))
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        global _depth
        seconds = time.perf_counter() - self._t0
        _depth -= 1
        agg = _span_agg.get(self.name)
        if agg is None:
            _span_agg[self.name] = [1, seconds, seconds]
        else:
            agg[0] += 1
            agg[1] += seconds
            if seconds > agg[2]:
                agg[2] = seconds
        if self._token is not None:
            try:
                _TRACE_CTX.reset(self._token)
            except ValueError:
                # entered in a different Context (e.g. a worker adopted
                # the spec mid-span); fall back to restoring the parent
                _TRACE_CTX.set((self._ids[0], self._ids[2]))
            self._token = None
        if _sink is not None:
            event = {"kind": "span", "name": self.name,
                     "seconds": seconds, "depth": _depth,
                     "ts": self._t0 - _EPOCH, "pid": os.getpid(),
                     "tid": _tid()}
            if self._ids is not None:
                event["trace_id"] = self._ids[0]
                event["span_id"] = self._ids[1]
                if self._ids[2] is not None:
                    event["parent_id"] = self._ids[2]
            if exc_type is not None:
                event["error"] = exc_type.__name__
            if self.attrs:
                event["attrs"] = self.attrs
            _sink.emit(event)
        return False


class _NoopSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP_SPAN = _NoopSpan()


def span(name, **attrs):
    """Context manager timing one region; no-op singleton when disabled."""
    if not enabled:
        return _NOOP_SPAN
    return _Span(name, attrs or None)


def timed(name):
    """Decorator form of :func:`span`."""
    def wrap(fn):
        @functools.wraps(fn)
        def inner(*args, **kwargs):
            if not enabled:
                return fn(*args, **kwargs)
            with _Span(name, None):
                return fn(*args, **kwargs)
        return inner
    return wrap


# ----------------------------------------------------------------------
# counters / gauges / distributions


def counter(name, value=1):
    """Add ``value`` to the monotonic counter ``name``."""
    if not enabled:
        return
    _counters[name] = _counters.get(name, 0) + value


def gauge(name, value):
    """Record the latest value of ``name``."""
    if not enabled:
        return
    _gauges[name] = value


def observe(name, value):
    """Fold ``value`` into the distribution ``name`` (count/total/min/max)."""
    if not enabled:
        return
    d = _dists.get(name)
    if d is None:
        _dists[name] = [1, value, value, value]
    else:
        d[0] += 1
        d[1] += value
        if value < d[2]:
            d[2] = value
        if value > d[3]:
            d[3] = value


def emit(event):
    """Send one raw event dict to the sink (no-op without a sink)."""
    if _sink is not None:
        _sink.emit(event)


# ----------------------------------------------------------------------
# snapshots and windows


def _span_dict(agg):
    return {"count": agg[0], "seconds": agg[1], "max_seconds": agg[2]}


def _dist_dict(d):
    return {"count": d[0], "total": d[1], "min": d[2], "max": d[3]}


def snapshot():
    """Cumulative aggregates as plain JSON-serializable dicts."""
    return {
        "schema": SCHEMA_VERSION,
        "counters": dict(_counters),
        "gauges": dict(_gauges),
        "distributions": {k: _dist_dict(v) for k, v in _dists.items()},
        "spans": {k: _span_dict(v) for k, v in _span_agg.items()},
    }


def mark():
    """Opaque marker of the current totals, for :func:`since`."""
    return (
        dict(_counters),
        {k: list(v) for k, v in _span_agg.items()},
        {k: list(v) for k, v in _dists.items()},
    )


def since(marker):
    """Delta snapshot (counters, spans, distributions) since ``marker``."""
    counters0, spans0, dists0 = marker
    counters = {}
    for name, value in _counters.items():
        d = value - counters0.get(name, 0)
        if d:
            counters[name] = d
    spans = {}
    for name, agg in _span_agg.items():
        prev = spans0.get(name, (0, 0.0, 0.0))
        if agg[0] != prev[0]:
            spans[name] = {"count": agg[0] - prev[0],
                           "seconds": agg[1] - prev[1]}
    dists = {}
    for name, d in _dists.items():
        prev = dists0.get(name)
        if prev is None:
            dists[name] = _dist_dict(d)
        elif d[0] != prev[0]:
            dists[name] = {"count": d[0] - prev[0], "total": d[1] - prev[1],
                           "min": d[2], "max": d[3]}
    return {
        "schema": SCHEMA_VERSION,
        "counters": counters,
        "gauges": dict(_gauges),
        "distributions": dists,
        "spans": spans,
    }


def stage_timings(spans):
    """Extract ``{stage: {count, seconds}}`` rows from a span-delta dict."""
    out = {}
    for stage in STAGES:
        row = spans.get("stage." + stage)
        if row is not None:
            out[stage] = {"count": row["count"],
                          "seconds": row["seconds"]}
    return out


configure_from_env()
