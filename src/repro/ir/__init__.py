"""Three-address intermediate representation used by the mini compiler.

The IR is deliberately close to what a RISC back end wants to see:

* an unbounded set of 32-bit virtual registers (:class:`VReg`),
* non-SSA form — a virtual register may be re-defined, which keeps loop
  code (induction variables, accumulators) natural to write by hand,
* explicit basic blocks, each terminated by exactly one of
  :class:`Br`, :class:`CBr` or :class:`Ret`,
* byte/half/word loads and stores against global arrays,
* calls following an ARM-like convention (up to four register args).

Workloads (``repro.workloads``) construct IR through
:class:`FunctionBuilder`; the compiler (``repro.compiler``) lowers it to
ARM or Thumb machine code; :mod:`repro.ir.interp` executes it directly so
every workload has a machine-independent golden run.
"""

from repro.ir.ops import Op, Cond, Width
from repro.ir.instructions import (
    VReg,
    Instr,
    Li,
    Mov,
    Bin,
    Load,
    Store,
    GlobalAddr,
    Br,
    CBr,
    Call,
    Ret,
    TERMINATORS,
)
from repro.ir.function import BasicBlock, Function, Global, Module
from repro.ir.builder import FunctionBuilder
from repro.ir.verify import VerifyError, verify_function, verify_module
from repro.ir.interp import IRInterpreter, InterpLimitExceeded

__all__ = [
    "Op",
    "Cond",
    "Width",
    "VReg",
    "Instr",
    "Li",
    "Mov",
    "Bin",
    "Load",
    "Store",
    "GlobalAddr",
    "Br",
    "CBr",
    "Call",
    "Ret",
    "TERMINATORS",
    "BasicBlock",
    "Function",
    "Global",
    "Module",
    "FunctionBuilder",
    "VerifyError",
    "verify_function",
    "verify_module",
    "IRInterpreter",
    "InterpLimitExceeded",
]
