"""Direct interpreter for IR modules.

The interpreter gives every workload a machine-independent golden run:
its results are compared both against the workload's pure-Python
reference model and against the compiled binary executed on the ARM and
FITS simulators.  It is not fast and does not need to be.
"""

import struct

from repro.ir.ops import evaluate_op, evaluate_cond, MASK32
from repro.ir.instructions import (
    VReg,
    Li,
    Mov,
    Bin,
    Load,
    Store,
    GlobalAddr,
    Br,
    CBr,
    Call,
    Ret,
)
from repro.ir.function import Module

#: Base address at which globals are laid out, matching the linker's
#: convention of keeping address zero unmapped to catch null derefs.
GLOBAL_BASE = 0x1000


class InterpLimitExceeded(Exception):
    """Raised when execution exceeds the configured step budget."""


class IRInterpreter:
    """Executes IR functions against a byte-addressed flat memory."""

    def __init__(self, module, max_steps=200_000_000):
        if not isinstance(module, Module):
            raise TypeError("expected a Module, got %r" % (module,))
        self.module = module
        self.max_steps = max_steps
        self.steps = 0
        self.global_addr = {}
        addr = GLOBAL_BASE
        chunks = []
        for glob in module.globals.values():
            pad = (-addr) % glob.align
            chunks.append(b"\x00" * pad)
            addr += pad
            self.global_addr[glob.name] = addr
            chunks.append(glob.initial_bytes())
            addr += glob.size
        self.memory = bytearray(b"\x00" * GLOBAL_BASE + b"".join(chunks))

    # ------------------------------------------------------------------
    # memory helpers (also used by tests to inspect results)

    def addr_of(self, symbol):
        return self.global_addr[symbol]

    def read_word(self, addr):
        return struct.unpack_from("<I", self.memory, addr)[0]

    def write_word(self, addr, value):
        struct.pack_into("<I", self.memory, addr, value & MASK32)

    def read_bytes(self, addr, count):
        return bytes(self.memory[addr : addr + count])

    def _load(self, addr, width, signed):
        if addr < 0 or addr + width > len(self.memory):
            raise IndexError("load of %d bytes at 0x%x out of range" % (width, addr))
        raw = self.memory[addr : addr + width]
        value = int.from_bytes(raw, "little")
        if signed:
            bits = width * 8
            if value & (1 << (bits - 1)):
                value -= 1 << bits
        return value & MASK32

    def _store(self, addr, value, width):
        if addr < 0 or addr + width > len(self.memory):
            raise IndexError("store of %d bytes at 0x%x out of range" % (width, addr))
        self.memory[addr : addr + width] = (value & ((1 << (width * 8)) - 1)).to_bytes(
            width, "little"
        )

    # ------------------------------------------------------------------

    def call(self, name, *args):
        """Call an IR function with integer arguments; returns its value."""
        func = self.module.functions[name]
        if len(args) != func.num_args:
            raise TypeError(
                "@%s takes %d args, got %d" % (name, func.num_args, len(args))
            )
        return self._run(func, [a & MASK32 for a in args])

    def _run(self, func, args):
        # Argument registers are by construction vregs 0..n-1 of the function
        # (FunctionBuilder allocates them before anything else).
        regs = dict(enumerate(args))

        def value_of(operand):
            if isinstance(operand, VReg):
                try:
                    return regs[operand.id]
                except KeyError:
                    raise NameError(
                        "@%s: read of undefined vreg %r" % (func.name, operand)
                    ) from None
            return operand & MASK32

        block = func.blocks[0]
        index = 0
        while True:
            self.steps += 1
            if self.steps > self.max_steps:
                raise InterpLimitExceeded(
                    "exceeded %d interpreter steps in @%s" % (self.max_steps, func.name)
                )
            ins = block.instrs[index]
            index += 1
            if isinstance(ins, Bin):
                regs[ins.dst.id] = evaluate_op(ins.op, value_of(ins.lhs), value_of(ins.rhs))
            elif isinstance(ins, Load):
                addr = (value_of(ins.base) + value_of(ins.offset)) & MASK32
                regs[ins.dst.id] = self._load(addr, int(ins.width), ins.signed)
            elif isinstance(ins, Store):
                addr = (value_of(ins.base) + value_of(ins.offset)) & MASK32
                self._store(addr, value_of(ins.src), int(ins.width))
            elif isinstance(ins, Li):
                regs[ins.dst.id] = ins.imm
            elif isinstance(ins, Mov):
                regs[ins.dst.id] = value_of(ins.src)
            elif isinstance(ins, CBr):
                taken = evaluate_cond(ins.cond, value_of(ins.lhs), value_of(ins.rhs))
                block = func.block_map[ins.if_true if taken else ins.if_false]
                index = 0
            elif isinstance(ins, Br):
                block = func.block_map[ins.target]
                index = 0
            elif isinstance(ins, GlobalAddr):
                regs[ins.dst.id] = self.global_addr[ins.symbol]
            elif isinstance(ins, Call):
                callee = self.module.functions[ins.callee]
                result = self._run(callee, [value_of(a) for a in ins.args])
                if ins.dst is not None:
                    regs[ins.dst.id] = result if result is not None else 0
            elif isinstance(ins, Ret):
                return value_of(ins.value) if ins.value is not None else None
            else:
                raise TypeError("@%s: cannot interpret %r" % (func.name, ins))
