"""Structural verification of IR functions and modules.

The verifier catches the mistakes that are cheap to make with a hand
builder API and expensive to debug downstream: unterminated blocks,
terminators in the middle of a block, branches to missing labels, calls
to functions the module never defines, and references to missing
globals.
"""

from repro.ir.instructions import TERMINATORS, Br, CBr, Call, GlobalAddr, Ret


class VerifyError(Exception):
    """Raised when IR fails structural verification."""


def verify_function(func):
    """Check one function's block structure; raises :class:`VerifyError`."""
    if not func.blocks:
        raise VerifyError("@%s has no blocks" % func.name)
    for blk in func.blocks:
        if not blk.instrs:
            raise VerifyError("@%s: block .%s is empty" % (func.name, blk.label))
        for ins in blk.instrs[:-1]:
            if isinstance(ins, TERMINATORS):
                raise VerifyError(
                    "@%s: terminator %r in the middle of .%s" % (func.name, ins, blk.label)
                )
        term = blk.instrs[-1]
        if not isinstance(term, TERMINATORS):
            raise VerifyError(
                "@%s: block .%s does not end in a terminator (last: %r)"
                % (func.name, blk.label, term)
            )
        for target in blk.successors():
            if target not in func.block_map:
                raise VerifyError(
                    "@%s: .%s branches to unknown label .%s" % (func.name, blk.label, target)
                )
    _check_reachability(func)


def _check_reachability(func):
    seen = set()
    work = [func.blocks[0].label]
    while work:
        label = work.pop()
        if label in seen:
            continue
        seen.add(label)
        work.extend(func.block_map[label].successors())
    dead = [blk.label for blk in func.blocks if blk.label not in seen]
    if dead:
        raise VerifyError("@%s: unreachable blocks: %s" % (func.name, ", ".join(dead)))


def verify_module(module, entry=None):
    """Verify every function plus cross-references (calls, globals).

    When ``entry`` is given, additionally checks that the entry function
    exists and returns (every path must reach a :class:`Ret`).
    """
    for func in module.functions.values():
        verify_function(func)
        for ins in func.instructions():
            if isinstance(ins, Call) and ins.callee not in module.functions:
                raise VerifyError(
                    "@%s calls undefined function @%s" % (func.name, ins.callee)
                )
            if isinstance(ins, GlobalAddr) and ins.symbol not in module.globals:
                raise VerifyError(
                    "@%s references undefined global @%s" % (func.name, ins.symbol)
                )
    if entry is not None:
        if entry not in module.functions:
            raise VerifyError("entry function @%s is not defined" % entry)
        has_ret = any(
            isinstance(ins, Ret) for ins in module.functions[entry].instructions()
        )
        if not has_ret:
            raise VerifyError("entry function @%s never returns" % entry)
