"""Operator, condition and access-width enumerations shared across the IR."""

import enum

MASK32 = 0xFFFFFFFF


class Op(enum.Enum):
    """Binary ALU operators.

    All operate on 32-bit unsigned values with wrap-around semantics.
    ``LSR``/``ASR`` are logical/arithmetic right shifts; shift amounts are
    taken modulo 32 (shifts of 32 or more produce 0, or the sign fill for
    ``ASR``), matching what the back ends generate.
    """

    ADD = "add"
    SUB = "sub"
    RSB = "rsb"  # reverse subtract: dst = rhs - lhs
    AND = "and"
    ORR = "orr"
    EOR = "eor"
    LSL = "lsl"
    LSR = "lsr"
    ASR = "asr"
    MUL = "mul"


class Cond(enum.Enum):
    """Comparison conditions for conditional branches.

    Signed conditions (LT/LE/GT/GE) interpret both operands as two's
    complement; the ``*U`` variants are unsigned.
    """

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    LTU = "ltu"
    LEU = "leu"
    GTU = "gtu"
    GEU = "geu"


#: Condition that holds when the operands are swapped.
SWAPPED_COND = {
    Cond.EQ: Cond.EQ,
    Cond.NE: Cond.NE,
    Cond.LT: Cond.GT,
    Cond.LE: Cond.GE,
    Cond.GT: Cond.LT,
    Cond.GE: Cond.LE,
    Cond.LTU: Cond.GTU,
    Cond.LEU: Cond.GEU,
    Cond.GTU: Cond.LTU,
    Cond.GEU: Cond.LEU,
}

#: Condition that holds exactly when the original does not.
INVERTED_COND = {
    Cond.EQ: Cond.NE,
    Cond.NE: Cond.EQ,
    Cond.LT: Cond.GE,
    Cond.GE: Cond.LT,
    Cond.LE: Cond.GT,
    Cond.GT: Cond.LE,
    Cond.LTU: Cond.GEU,
    Cond.GEU: Cond.LTU,
    Cond.LEU: Cond.GTU,
    Cond.GTU: Cond.LEU,
}


class Width(enum.IntEnum):
    """Memory access width in bytes."""

    BYTE = 1
    HALF = 2
    WORD = 4


def to_signed(value):
    """Interpret a 32-bit unsigned value as two's complement."""
    value &= MASK32
    return value - 0x100000000 if value & 0x80000000 else value


def to_unsigned(value):
    """Wrap an arbitrary Python int to its 32-bit unsigned representation."""
    return value & MASK32


def evaluate_op(op, lhs, rhs):
    """Evaluate ``op`` on two 32-bit unsigned values, returning 32 bits."""
    lhs &= MASK32
    rhs &= MASK32
    if op is Op.ADD:
        return (lhs + rhs) & MASK32
    if op is Op.SUB:
        return (lhs - rhs) & MASK32
    if op is Op.RSB:
        return (rhs - lhs) & MASK32
    if op is Op.AND:
        return lhs & rhs
    if op is Op.ORR:
        return lhs | rhs
    if op is Op.EOR:
        return lhs ^ rhs
    if op is Op.LSL:
        return (lhs << rhs) & MASK32 if rhs < 32 else 0
    if op is Op.LSR:
        return (lhs >> rhs) if rhs < 32 else 0
    if op is Op.ASR:
        s = to_signed(lhs)
        return to_unsigned(s >> rhs) if rhs < 32 else (MASK32 if s < 0 else 0)
    if op is Op.MUL:
        return (lhs * rhs) & MASK32
    raise ValueError("unknown op: %r" % (op,))


def evaluate_cond(cond, lhs, rhs):
    """Evaluate a branch condition on two 32-bit unsigned values."""
    lhs &= MASK32
    rhs &= MASK32
    if cond is Cond.EQ:
        return lhs == rhs
    if cond is Cond.NE:
        return lhs != rhs
    if cond is Cond.LTU:
        return lhs < rhs
    if cond is Cond.LEU:
        return lhs <= rhs
    if cond is Cond.GTU:
        return lhs > rhs
    if cond is Cond.GEU:
        return lhs >= rhs
    sl, sr = to_signed(lhs), to_signed(rhs)
    if cond is Cond.LT:
        return sl < sr
    if cond is Cond.LE:
        return sl <= sr
    if cond is Cond.GT:
        return sl > sr
    if cond is Cond.GE:
        return sl >= sr
    raise ValueError("unknown cond: %r" % (cond,))
