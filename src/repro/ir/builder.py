"""Ergonomic construction of IR functions.

:class:`FunctionBuilder` keeps a current insertion block and offers one
method per instruction plus structured-control-flow helpers
(:meth:`for_range`, :meth:`loop_while`, :meth:`if_then`,
:meth:`if_else`) so workload kernels read close to the C they model.
"""

import contextlib
import itertools

from repro.ir.ops import Op, Cond, Width
from repro.ir.instructions import (
    VReg,
    Li,
    Mov,
    Bin,
    Load,
    Store,
    GlobalAddr,
    Br,
    CBr,
    Call,
    Ret,
)
from repro.ir.function import BasicBlock, Function


class FunctionBuilder:
    """Builds one :class:`~repro.ir.function.Function` inside a module.

    The function is registered with the module at construction time, and
    argument virtual registers are available as :attr:`args` (also by
    name through :meth:`arg`).
    """

    def __init__(self, module, name, arg_names=()):
        self.module = module
        self.func = Function(name, arg_names)
        module.add_function(self.func)
        self._labels = itertools.count()
        self.args = [self.vreg(a) for a in arg_names]
        self._arg_map = dict(zip(arg_names, self.args))
        self._block = self.func.add_block(BasicBlock("entry"))

    # ------------------------------------------------------------------
    # registers, blocks and insertion point

    def vreg(self, name=None):
        """Allocate a fresh virtual register."""
        reg = VReg(self.func.next_vreg, name)
        self.func.next_vreg += 1
        return reg

    def arg(self, name):
        """The virtual register holding the named argument."""
        return self._arg_map[name]

    def new_block(self, hint="bb"):
        """Create (but do not enter) a new block; returns its label."""
        label = "%s%d" % (hint, next(self._labels))
        self.func.add_block(BasicBlock(label))
        return label

    def at(self, label):
        """Move the insertion point to an existing block."""
        self._block = self.func.block(label)
        return label

    @property
    def current_label(self):
        return self._block.label

    def emit(self, instr):
        """Append an instruction to the current block."""
        if self._block.terminator is not None:
            raise ValueError(
                "block .%s already terminated; cannot append %r" % (self._block.label, instr)
            )
        self._block.instrs.append(instr)
        return instr

    def _dst(self, dst, hint=None):
        return dst if dst is not None else self.vreg(hint)

    def _as_value(self, value):
        """Coerce an int to a register via ``li``; pass registers through."""
        if isinstance(value, VReg):
            return value
        return self.li(value)

    # ------------------------------------------------------------------
    # straight-line instructions

    def li(self, imm, dst=None):
        dst = self._dst(dst)
        self.emit(Li(dst, imm))
        return dst

    def mov(self, src, dst=None):
        if isinstance(src, int):
            return self.li(src, dst=dst)
        dst = self._dst(dst)
        self.emit(Mov(dst, src))
        return dst

    def bin(self, op, lhs, rhs, dst=None):
        dst = self._dst(dst)
        self.emit(Bin(op, dst, self._as_value(lhs), rhs))
        return dst

    def add(self, lhs, rhs, dst=None):
        return self.bin(Op.ADD, lhs, rhs, dst)

    def sub(self, lhs, rhs, dst=None):
        return self.bin(Op.SUB, lhs, rhs, dst)

    def rsb(self, lhs, rhs, dst=None):
        return self.bin(Op.RSB, lhs, rhs, dst)

    def and_(self, lhs, rhs, dst=None):
        return self.bin(Op.AND, lhs, rhs, dst)

    def orr(self, lhs, rhs, dst=None):
        return self.bin(Op.ORR, lhs, rhs, dst)

    def eor(self, lhs, rhs, dst=None):
        return self.bin(Op.EOR, lhs, rhs, dst)

    def lsl(self, lhs, rhs, dst=None):
        return self.bin(Op.LSL, lhs, rhs, dst)

    def lsr(self, lhs, rhs, dst=None):
        return self.bin(Op.LSR, lhs, rhs, dst)

    def asr(self, lhs, rhs, dst=None):
        return self.bin(Op.ASR, lhs, rhs, dst)

    def mul(self, lhs, rhs, dst=None):
        return self.bin(Op.MUL, lhs, rhs, dst)

    def udiv(self, lhs, rhs, dst=None):
        """Unsigned divide via the runtime library (``__udiv``)."""
        return self.call("__udiv", [self._as_value(lhs), self._as_value(rhs)], dst=self._dst(dst))

    def sdiv(self, lhs, rhs, dst=None):
        return self.call("__sdiv", [self._as_value(lhs), self._as_value(rhs)], dst=self._dst(dst))

    def urem(self, lhs, rhs, dst=None):
        return self.call("__urem", [self._as_value(lhs), self._as_value(rhs)], dst=self._dst(dst))

    def srem(self, lhs, rhs, dst=None):
        return self.call("__srem", [self._as_value(lhs), self._as_value(rhs)], dst=self._dst(dst))

    def load(self, base, offset=0, width=Width.WORD, signed=False, dst=None):
        dst = self._dst(dst)
        self.emit(Load(dst, base, offset, width, signed))
        return dst

    def store(self, src, base, offset=0, width=Width.WORD):
        self.emit(Store(self._as_value(src), base, offset, width))

    def ga(self, symbol, dst=None):
        dst = self._dst(dst, hint=symbol)
        self.emit(GlobalAddr(dst, symbol))
        return dst

    def call(self, callee, args=(), dst=None):
        """Call ``callee``; pass ``dst`` (or rely on the fresh default) to
        capture the return value, or ``dst=False`` for a void call."""
        if dst is False:
            dst = None
        elif dst is None:
            dst = self.vreg()
        self.emit(Call(dst, callee, [self._as_value(a) for a in args]))
        return dst

    # ------------------------------------------------------------------
    # control flow

    def br(self, target):
        self.emit(Br(target))

    def cbr(self, cond, lhs, rhs, if_true, if_false):
        self.emit(CBr(cond, self._as_value(lhs), rhs, if_true, if_false))

    def ret(self, value=None):
        if isinstance(value, int):
            value = self.li(value)
        self.emit(Ret(value))

    @contextlib.contextmanager
    def for_range(self, start, stop, step=1, hint="i", unsigned=False):
        """Counted loop; yields the induction register.

        Equivalent to ``for (i = start; i < stop; i += step)`` with a
        signed comparison by default.  ``step`` may be negative, in which
        case the condition becomes ``i > stop``.
        """
        head = self.new_block("for_head")
        body = self.new_block("for_body")
        done = self.new_block("for_done")
        i = self.mov(start, dst=self.vreg(hint))
        self.br(head)
        self.at(head)
        if step >= 0:
            cond = Cond.LTU if unsigned else Cond.LT
        else:
            cond = Cond.GTU if unsigned else Cond.GT
        self.cbr(cond, i, stop, body, done)
        self.at(body)
        yield i
        if self._block.terminator is None:
            self.add(i, step, dst=i)
            self.br(head)
        self.at(done)

    @contextlib.contextmanager
    def loop_while(self, cond, lhs, rhs):
        """Top-tested loop; the body must mutate ``lhs``/``rhs`` in place."""
        head = self.new_block("while_head")
        body = self.new_block("while_body")
        done = self.new_block("while_done")
        self.br(head)
        self.at(head)
        self.cbr(cond, lhs, rhs, body, done)
        self.at(body)
        yield
        if self._block.terminator is None:
            self.br(head)
        self.at(done)

    @contextlib.contextmanager
    def if_then(self, cond, lhs, rhs):
        """Execute the body only when the condition holds."""
        then = self.new_block("then")
        join = self.new_block("endif")
        self.cbr(cond, lhs, rhs, then, join)
        self.at(then)
        yield
        if self._block.terminator is None:
            self.br(join)
        self.at(join)

    @contextlib.contextmanager
    def if_else(self, cond, lhs, rhs):
        """Two-armed conditional.

        Yields a context manager for the else arm; code written directly
        inside the outer ``with`` is the then arm::

            with b.if_else(Cond.LT, x, 0) as otherwise:
                ... then code ...
                with otherwise:
                    ... else code ...
        """
        then = self.new_block("then")
        els = self.new_block("else")
        join = self.new_block("endif")
        self.cbr(cond, lhs, rhs, then, els)
        self.at(then)

        builder = self

        @contextlib.contextmanager
        def otherwise():
            if builder._block.terminator is None:
                builder.br(join)
            builder.at(els)
            yield
            if builder._block.terminator is None:
                builder.br(join)

        state = {"used": False}

        @contextlib.contextmanager
        def otherwise_once():
            state["used"] = True
            with otherwise():
                yield

        yield otherwise_once()
        if not state["used"]:
            raise ValueError("if_else else-arm context manager was never entered")
        self.at(join)

    def select(self, cond, lhs, rhs, if_true, if_false, dst=None):
        """Materialize ``cond(lhs, rhs) ? if_true : if_false`` into a register."""
        dst = self._dst(dst)
        with self.if_else(cond, lhs, rhs) as otherwise:
            self.mov(if_true, dst=dst)
            with otherwise:
                self.mov(if_false, dst=dst)
        return dst

    def min_(self, a, b_, signed=True, dst=None):
        cond = Cond.LE if signed else Cond.LEU
        a = self._as_value(a)
        return self.select(cond, a, b_, a, b_, dst=dst)

    def max_(self, a, b_, signed=True, dst=None):
        cond = Cond.GE if signed else Cond.GEU
        a = self._as_value(a)
        return self.select(cond, a, b_, a, b_, dst=dst)

    def abs_(self, a, dst=None):
        a = self._as_value(a)
        neg = self.rsb(a, 0)
        return self.select(Cond.LT, a, 0, neg, a, dst=dst)
