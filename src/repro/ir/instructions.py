"""IR instruction classes.

Instructions are small mutable objects (plain ``__slots__`` classes rather
than frozen dataclasses) because the compiler rewrites operands in place
during lowering.  Every instruction knows which virtual registers it reads
(:meth:`Instr.uses`) and writes (:meth:`Instr.defs`), which is all the
register allocator needs.
"""

from repro.ir.ops import Op, Cond, Width


class VReg:
    """A 32-bit virtual register.

    Identity is by ``id``; the optional ``name`` is only for diagnostics
    and disassembly listings.
    """

    __slots__ = ("id", "name")

    def __init__(self, id, name=None):
        self.id = id
        self.name = name

    def __repr__(self):
        return "%%%s" % (self.name if self.name else self.id)

    def __eq__(self, other):
        return isinstance(other, VReg) and other.id == self.id

    def __hash__(self):
        return hash(("vreg", self.id))


def _operand_str(value):
    if isinstance(value, VReg):
        return repr(value)
    return "#%d" % value


class Instr:
    """Base class for IR instructions."""

    __slots__ = ()

    def uses(self):
        """Virtual registers read by this instruction."""
        return []

    def defs(self):
        """Virtual registers written by this instruction."""
        return []


class Li(Instr):
    """Load a 32-bit immediate constant: ``dst = imm``."""

    __slots__ = ("dst", "imm")

    def __init__(self, dst, imm):
        self.dst = dst
        self.imm = imm & 0xFFFFFFFF

    def defs(self):
        return [self.dst]

    def __repr__(self):
        return "li %r, #0x%x" % (self.dst, self.imm)


class Mov(Instr):
    """Register copy: ``dst = src``."""

    __slots__ = ("dst", "src")

    def __init__(self, dst, src):
        self.dst = dst
        self.src = src

    def uses(self):
        return [self.src]

    def defs(self):
        return [self.dst]

    def __repr__(self):
        return "mov %r, %r" % (self.dst, self.src)


class Bin(Instr):
    """Binary ALU operation: ``dst = lhs <op> rhs``.

    ``rhs`` may be a :class:`VReg` or a Python int immediate; back ends
    are responsible for materializing immediates their encodings cannot
    express.
    """

    __slots__ = ("op", "dst", "lhs", "rhs")

    def __init__(self, op, dst, lhs, rhs):
        if not isinstance(op, Op):
            raise TypeError("op must be an Op, got %r" % (op,))
        self.op = op
        self.dst = dst
        self.lhs = lhs
        self.rhs = rhs

    def uses(self):
        out = [self.lhs]
        if isinstance(self.rhs, VReg):
            out.append(self.rhs)
        return out

    def defs(self):
        return [self.dst]

    def __repr__(self):
        return "%s %r, %r, %s" % (self.op.value, self.dst, self.lhs, _operand_str(self.rhs))


class Load(Instr):
    """Memory load: ``dst = *(base + offset)`` of the given width.

    ``offset`` may be an int or a :class:`VReg`.  Sub-word loads zero- or
    sign-extend according to ``signed``.
    """

    __slots__ = ("dst", "base", "offset", "width", "signed")

    def __init__(self, dst, base, offset, width=Width.WORD, signed=False):
        self.dst = dst
        self.base = base
        self.offset = offset
        self.width = Width(width)
        self.signed = signed

    def uses(self):
        out = [self.base]
        if isinstance(self.offset, VReg):
            out.append(self.offset)
        return out

    def defs(self):
        return [self.dst]

    def __repr__(self):
        suffix = {Width.BYTE: "b", Width.HALF: "h", Width.WORD: ""}[self.width]
        if self.signed and self.width != Width.WORD:
            suffix = "s" + suffix
        return "ld%s %r, [%r + %s]" % (suffix, self.dst, self.base, _operand_str(self.offset))


class Store(Instr):
    """Memory store: ``*(base + offset) = src`` truncated to ``width``."""

    __slots__ = ("src", "base", "offset", "width")

    def __init__(self, src, base, offset, width=Width.WORD):
        self.src = src
        self.base = base
        self.offset = offset
        self.width = Width(width)

    def uses(self):
        out = [self.src, self.base]
        if isinstance(self.offset, VReg):
            out.append(self.offset)
        return out

    def __repr__(self):
        suffix = {Width.BYTE: "b", Width.HALF: "h", Width.WORD: ""}[self.width]
        return "st%s %r, [%r + %s]" % (suffix, self.src, self.base, _operand_str(self.offset))


class GlobalAddr(Instr):
    """Materialize the address of a module global: ``dst = &global``."""

    __slots__ = ("dst", "symbol")

    def __init__(self, dst, symbol):
        self.dst = dst
        self.symbol = symbol

    def defs(self):
        return [self.dst]

    def __repr__(self):
        return "ga %r, @%s" % (self.dst, self.symbol)


class Br(Instr):
    """Unconditional branch to a block label."""

    __slots__ = ("target",)

    def __init__(self, target):
        self.target = target

    def __repr__(self):
        return "br .%s" % self.target


class CBr(Instr):
    """Conditional branch: ``if (lhs cond rhs) goto if_true else if_false``.

    ``rhs`` may be an int immediate.  Both successors are explicit so the
    block structure carries the full CFG.
    """

    __slots__ = ("cond", "lhs", "rhs", "if_true", "if_false")

    def __init__(self, cond, lhs, rhs, if_true, if_false):
        if not isinstance(cond, Cond):
            raise TypeError("cond must be a Cond, got %r" % (cond,))
        self.cond = cond
        self.lhs = lhs
        self.rhs = rhs
        self.if_true = if_true
        self.if_false = if_false

    def uses(self):
        out = [self.lhs]
        if isinstance(self.rhs, VReg):
            out.append(self.rhs)
        return out

    def __repr__(self):
        return "br.%s %r, %s, .%s, .%s" % (
            self.cond.value,
            self.lhs,
            _operand_str(self.rhs),
            self.if_true,
            self.if_false,
        )


class Call(Instr):
    """Direct call: ``dst = callee(args...)`` (``dst`` may be ``None``).

    At most four arguments are supported, mirroring the ARM register
    calling convention the back ends implement.
    """

    MAX_ARGS = 4

    __slots__ = ("dst", "callee", "args")

    def __init__(self, dst, callee, args):
        if len(args) > self.MAX_ARGS:
            raise ValueError(
                "call to %s has %d args; max is %d" % (callee, len(args), self.MAX_ARGS)
            )
        self.dst = dst
        self.callee = callee
        self.args = list(args)

    def uses(self):
        return [a for a in self.args if isinstance(a, VReg)]

    def defs(self):
        return [self.dst] if self.dst is not None else []

    def __repr__(self):
        args = ", ".join(_operand_str(a) for a in self.args)
        if self.dst is not None:
            return "call %r, @%s(%s)" % (self.dst, self.callee, args)
        return "call @%s(%s)" % (self.callee, args)


class Ret(Instr):
    """Return, optionally with a value."""

    __slots__ = ("value",)

    def __init__(self, value=None):
        self.value = value

    def uses(self):
        return [self.value] if isinstance(self.value, VReg) else []

    def __repr__(self):
        if self.value is None:
            return "ret"
        return "ret %s" % _operand_str(self.value)


#: Instruction classes that may terminate a basic block.
TERMINATORS = (Br, CBr, Ret)
