"""Basic blocks, functions, globals and modules."""

from repro.ir.instructions import TERMINATORS, CBr, Br


class BasicBlock:
    """A labelled straight-line sequence ending in one terminator."""

    __slots__ = ("label", "instrs")

    def __init__(self, label):
        self.label = label
        self.instrs = []

    @property
    def terminator(self):
        """The block's terminator, or ``None`` if the block is unfinished."""
        if self.instrs and isinstance(self.instrs[-1], TERMINATORS):
            return self.instrs[-1]
        return None

    def successors(self):
        """Labels of the blocks this one can branch to."""
        term = self.terminator
        if isinstance(term, Br):
            return [term.target]
        if isinstance(term, CBr):
            return [term.if_true, term.if_false]
        return []

    def __repr__(self):
        return "<BasicBlock .%s (%d instrs)>" % (self.label, len(self.instrs))

    def dump(self):
        """Readable listing of the block."""
        lines = [".%s:" % self.label]
        lines.extend("    %r" % ins for ins in self.instrs)
        return "\n".join(lines)


class Function:
    """An IR function: ordered basic blocks, the first being the entry."""

    def __init__(self, name, arg_names):
        self.name = name
        self.arg_names = list(arg_names)
        self.blocks = []  # ordered; blocks[0] is the entry
        self.block_map = {}
        self.next_vreg = 0

    @property
    def num_args(self):
        return len(self.arg_names)

    def add_block(self, block):
        if block.label in self.block_map:
            raise ValueError("duplicate block label %r in %s" % (block.label, self.name))
        self.blocks.append(block)
        self.block_map[block.label] = block
        return block

    def block(self, label):
        return self.block_map[label]

    def instructions(self):
        """Iterate over every instruction in block order."""
        for blk in self.blocks:
            for ins in blk.instrs:
                yield ins

    def dump(self):
        """Readable listing of the whole function."""
        header = "func @%s(%s):" % (self.name, ", ".join(self.arg_names))
        return "\n".join([header] + [blk.dump() for blk in self.blocks])

    def __repr__(self):
        return "<Function @%s (%d blocks)>" % (self.name, len(self.blocks))


class Global:
    """A module-level byte array with optional initial contents.

    ``data`` supplies the initializer; ``size`` may extend it with zero
    fill (BSS-style).  ``align`` is in bytes and defaults to word
    alignment so word loads against globals are always legal.
    """

    def __init__(self, name, data=b"", size=None, align=4):
        self.name = name
        self.data = bytes(data)
        self.size = size if size is not None else len(self.data)
        if self.size < len(self.data):
            raise ValueError("global %s: size %d < initializer %d" % (name, self.size, len(self.data)))
        if align & (align - 1):
            raise ValueError("global %s: alignment must be a power of two" % name)
        self.align = align

    def initial_bytes(self):
        """Initializer padded with zero fill out to ``size`` bytes."""
        return self.data + b"\x00" * (self.size - len(self.data))

    def __repr__(self):
        return "<Global @%s (%d bytes)>" % (self.name, self.size)


class Module:
    """A linkable unit: functions plus globals.

    Workloads populate a module with their kernel functions and data, the
    shared runtime library is merged in with :meth:`merge`, and the
    compiler consumes the result.
    """

    def __init__(self, name):
        self.name = name
        self.functions = {}
        self.globals = {}

    def add_function(self, func):
        if func.name in self.functions:
            raise ValueError("duplicate function @%s" % func.name)
        self.functions[func.name] = func
        return func

    def add_global(self, glob):
        if glob.name in self.globals:
            raise ValueError("duplicate global @%s" % glob.name)
        self.globals[glob.name] = glob
        return glob

    def merge(self, other, allow_duplicates=False):
        """Merge another module's functions and globals into this one.

        With ``allow_duplicates`` set, definitions already present are
        kept and the incoming duplicates are ignored — that is how each
        workload links against the runtime library while overriding
        nothing.
        """
        for func in other.functions.values():
            if func.name in self.functions:
                if not allow_duplicates:
                    raise ValueError("merge conflict on function @%s" % func.name)
                continue
            self.functions[func.name] = func
        for glob in other.globals.values():
            if glob.name in self.globals:
                if not allow_duplicates:
                    raise ValueError("merge conflict on global @%s" % glob.name)
                continue
            self.globals[glob.name] = glob
        return self

    def dump(self):
        parts = ["; module %s" % self.name]
        parts.extend(repr(g) for g in self.globals.values())
        parts.extend(f.dump() for f in self.functions.values())
        return "\n\n".join(parts)

    def __repr__(self):
        return "<Module %s (%d funcs, %d globals)>" % (
            self.name,
            len(self.functions),
            len(self.globals),
        )
