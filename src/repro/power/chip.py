"""Chip-wide power model (the paper's Figure 12).

Anchored to the published StrongARM breakdown [2]: the I-cache is ≈27 %
of chip power, the D-cache ≈16 %, and the rest (issue/execute logic,
clock tree, other) makes up the remainder.  The baseline (ARM16) run
fixes the absolute sizes of the non-I-cache components; other
configurations scale them by their own activity:

* D-cache power scales with data-access rate,
* core (issue/execute) power scales with instruction rate, except for
  the fetch/decode slice which scales with fetch-request rate (two
  16-bit FITS instructions arrive per bus word, halving that activity),
* clock and other static components stay constant while running.

Chip savings then follow from the measured I-cache savings diluted by
the unchanged remainder, exactly the translation the paper performs.
"""

#: StrongARM-like chip power fractions (of total chip power at baseline).
ICACHE_FRACTION = 0.27
DCACHE_FRACTION = 0.16
CORE_FRACTION = 0.37  # IBox + EBox + write buffer + MMU etc.
CLOCK_FRACTION = 0.20
#: Share of core power in the fetch/decode path (scales with fetch rate).
CORE_FETCH_SHARE = 0.40


class ChipPowerReport:
    def __init__(self, icache_w, dcache_w, core_w, clock_w):
        self.icache_w = icache_w
        self.dcache_w = dcache_w
        self.core_w = core_w
        self.clock_w = clock_w

    @property
    def total_w(self):
        return self.icache_w + self.dcache_w + self.core_w + self.clock_w

    def breakdown(self):
        total = self.total_w
        return {
            "icache": self.icache_w / total,
            "dcache": self.dcache_w / total,
            "core": self.core_w / total,
            "clock": self.clock_w / total,
        }

    def __repr__(self):
        return "<ChipPower %.3f W (I$ %.3f, D$ %.3f, core %.3f, clock %.3f)>" % (
            self.total_w,
            self.icache_w,
            self.dcache_w,
            self.core_w,
            self.clock_w,
        )


class ChipPowerModel:
    """Calibrated against one baseline (ARM, 16 KB) run."""

    def __init__(self, baseline_cache_report, baseline_timing):
        icache_w = baseline_cache_report.total_w
        chip_total = icache_w / ICACHE_FRACTION
        self._dcache_base = chip_total * DCACHE_FRACTION
        self._core_base = chip_total * CORE_FRACTION
        self._clock_w = chip_total * CLOCK_FRACTION
        self._dcache_rate_base = baseline_timing.dcache_accesses / baseline_timing.seconds
        self._instr_rate_base = baseline_timing.instructions / baseline_timing.seconds
        self._fetch_rate_base = baseline_timing.icache_requests / baseline_timing.seconds
        self.baseline = self.evaluate(baseline_cache_report, baseline_timing)

    def evaluate(self, cache_report, timing):
        """Chip power for a configuration's measured cache power + timing."""
        dcache_rate = timing.dcache_accesses / timing.seconds
        instr_rate = timing.instructions / timing.seconds
        fetch_rate = timing.icache_requests / timing.seconds
        dcache_w = self._dcache_base * (dcache_rate / self._dcache_rate_base)
        core_w = self._core_base * (
            (1.0 - CORE_FETCH_SHARE) * (instr_rate / self._instr_rate_base)
            + CORE_FETCH_SHARE * (fetch_rate / self._fetch_rate_base)
        )
        return ChipPowerReport(
            icache_w=cache_report.total_w,
            dcache_w=dcache_w,
            core_w=core_w,
            clock_w=self._clock_w,
        )

    def saving(self, cache_report, timing):
        """Fractional chip power saving vs. the baseline configuration."""
        report = self.evaluate(cache_report, timing)
        return 1.0 - report.total_w / self.baseline.total_w
