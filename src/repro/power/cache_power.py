"""Instruction-cache power model (the paper's Figures 6-11 inputs).

Consumes one :class:`~repro.sim.pipeline.timing.TimingReport` (access
counts, real Hamming toggle activity, runtime) plus the cache geometry
and produces component powers.  See :mod:`repro.power` for the
decomposition.
"""

import math

from repro.obs import core as obs
from repro.power.technology import TechnologyParams


class CachePowerReport:
    """Component powers (W) and energies (J) of one cache configuration."""

    def __init__(self, switching_w, internal_w, leakage_w, peak_w, seconds, detail):
        self.switching_w = switching_w
        self.internal_w = internal_w
        self.leakage_w = leakage_w
        self.peak_w = peak_w
        self.seconds = seconds
        self.detail = detail

    @property
    def total_w(self):
        return self.switching_w + self.internal_w + self.leakage_w

    @property
    def dynamic_w(self):
        return self.switching_w + self.internal_w

    def breakdown(self):
        """Fractions (switching, internal, leakage) of total power."""
        total = self.total_w
        if not total:
            return (0.0, 0.0, 0.0)
        return (
            self.switching_w / total,
            self.internal_w / total,
            self.leakage_w / total,
        )

    @property
    def energy_j(self):
        return self.total_w * self.seconds

    @property
    def switching_j(self):
        return self.switching_w * self.seconds

    @property
    def internal_j(self):
        return self.internal_w * self.seconds

    @property
    def leakage_j(self):
        return self.leakage_w * self.seconds

    def __repr__(self):
        s, i, l = self.breakdown()
        return "<CachePower %.3f W (sw %.0f%% / int %.0f%% / leak %.0f%%), peak %.3f W>" % (
            self.total_w,
            100 * s,
            100 * i,
            100 * l,
            self.peak_w,
        )


class CachePowerModel:
    """Analytical power model for one I-cache geometry."""

    def __init__(self, geometry, tech=None, fetch_bits=32):
        self.geometry = geometry
        self.tech = tech or TechnologyParams()
        self.fetch_bits = fetch_bits
        g = geometry
        t = self.tech
        self.data_bits = g.size_bytes * 8
        self.total_bits = int(self.data_bits * (1 + t.overhead_fraction))
        tag_bits = max(1, 32 - int(math.log2(g.block_bytes)) - int(math.log2(g.num_sets)))
        #: energy of one read access (decode, tag compare across ways,
        #: data bits driven out)
        self.read_energy = (
            t.e_read_base
            + t.e_read_per_tag_bit * g.associativity * tag_bits
            + t.e_read_per_data_bit * fetch_bits
        )
        #: energy of one line fill (write the whole block + tag)
        self.fill_energy = t.e_fill_per_bit * (g.block_bytes * 8 + tag_bits)
        #: per-cycle clock/precharge energy of the whole array
        self.cycle_energy = t.e_cycle_per_bit * self.total_bits
        #: static leakage power of the array
        self.leak_power = t.leak_w_per_bit * self.total_bits

    def evaluate(self, timing):
        """Power report for one executed configuration."""
        t = self.tech
        seconds = timing.seconds
        if seconds <= 0:
            raise ValueError("timing report covers no time")

        # switching: output drive per access plus real Hamming toggles
        e_switch = (
            timing.icache_requests * t.e_output_access
            + timing.fetch_toggles * t.e_toggle_bit
        )
        switching_w = e_switch / seconds

        # internal: per-cycle array power + per-access reads + miss fills
        e_internal = (
            timing.cycles * self.cycle_energy
            + timing.icache_requests * self.read_energy
            + timing.icache_misses * self.fill_energy
        )
        internal_w = e_internal / seconds

        leakage_w = self.leak_power

        # peak: the worst single cycle — array clocking plus the maximum
        # number of simultaneous fetch-word accesses the front end can
        # demand (dual-issue ARM reads two words per cycle; two 16-bit
        # FITS instructions share one), each with worst-case toggling
        words_per_cycle = getattr(timing, "max_words_per_cycle", 1)
        fill_cycles = max(1, self.geometry.block_bytes // 4)
        worst_access = max(
            self.read_energy + t.e_output_access + timing.max_fetch_toggles * t.e_toggle_bit,
            self.fill_energy / fill_cycles + self.read_energy,
        )
        peak_w = leakage_w + (self.cycle_energy + words_per_cycle * worst_access) * t.frequency_hz

        if obs.enabled:
            # Publish the exact event counts this evaluation consumed.
            # They must agree with the cache model's own counters
            # (``cache.icache.*``) over any window in which every timing
            # report is evaluated exactly once — the harness manifest
            # cross-checks the two.
            obs.counter("power.evaluations")
            obs.counter("power.icache.requests", timing.icache_requests)
            obs.counter("power.icache.line_accesses",
                        getattr(timing, "icache_line_accesses", 0))
            obs.counter("power.icache.misses", timing.icache_misses)
            obs.counter("power.icache.fill_cycles", timing.icache_misses * fill_cycles)

        detail = {
            "read_energy": self.read_energy,
            "fill_energy": self.fill_energy,
            "cycle_energy": self.cycle_energy,
            "switch_energy": e_switch,
            "internal_energy": e_internal,
            "requests": timing.icache_requests,
            "misses": timing.icache_misses,
            "cycles": timing.cycles,
        }
        return CachePowerReport(switching_w, internal_w, leakage_w, peak_w, seconds, detail)
