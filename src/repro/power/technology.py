"""Technology parameters (0.35 µm / 3.3 V / 200 MHz, SA-1100-like).

The absolute constants are calibrated so that the baseline (ARM, 16 KB
I-cache) reproduces the qualitative power picture the paper anchors to:
dynamic power dominates the cache, internal power is more than half of
total cache power, leakage is a minor but visible share (the paper's
0.35 µm process), and the I-cache is ≈27 % of chip power (StrongARM
measurement [2]).  Everything downstream — every saving the experiments
report — is *measured* relative to this baseline, not asserted.
"""


class TechnologyParams:
    """Process/circuit constants used by the cache power model."""

    def __init__(
        self,
        vdd=3.3,
        frequency_hz=200e6,
        # output driver: effective capacitance per bus bit
        c_output_bit=1.0e-12,          # F  → ~10.9 pJ per toggled bit
        # output drive/precharge cost per access, independent of toggles
        e_output_access=0.8e-09,       # J  per fetch-word request
        # per-access read path (decoder + tag compare + data read)
        e_read_base=3.0e-11,           # J  fixed decode/control cost
        e_read_per_tag_bit=4.0e-13,    # J  per (way × tag bit) compared
        e_read_per_data_bit=1.5e-12,   # J  per data bit driven to output
        # per-miss line fill (array write)
        e_fill_per_bit=8.0e-13,        # J  per block bit written
        # per-cycle array clocking/precharge while the cache is on
        e_cycle_per_bit=7.4e-15,       # J  per storage bit per cycle
        # static leakage
        leak_w_per_bit=6.3e-07,        # W  per storage bit
        # cell overhead: tags + valid/LRU state, as a fraction of data bits
        overhead_fraction=0.12,
    ):
        self.vdd = vdd
        self.frequency_hz = frequency_hz
        self.c_output_bit = c_output_bit
        self.e_output_access = e_output_access
        self.e_read_base = e_read_base
        self.e_read_per_tag_bit = e_read_per_tag_bit
        self.e_read_per_data_bit = e_read_per_data_bit
        self.e_fill_per_bit = e_fill_per_bit
        self.e_cycle_per_bit = e_cycle_per_bit
        self.leak_w_per_bit = leak_w_per_bit
        self.overhead_fraction = overhead_fraction

    @property
    def e_toggle_bit(self):
        """Energy per toggled output bit: C·V² (Equation 1's dynamic term)."""
        return self.c_output_bit * self.vdd * self.vdd

    def __repr__(self):
        return "<TechnologyParams %.1fV %.0fMHz>" % (self.vdd, self.frequency_hz / 1e6)


def _scaled_node(vdd, frequency_hz, cap_scale, leak_scale):
    """Derive a node from the calibrated 0.35 µm baseline.

    Constant-field-style scaling: every capacitive/charge term shrinks
    with feature size and V², frequency rises, and subthreshold leakage
    per bit grows steeply — the qualitative trade the paper's static
    vs. dynamic discussion is about.
    """
    base = TechnologyParams()
    v2 = (vdd * vdd) / (base.vdd * base.vdd)
    e = cap_scale * v2
    return TechnologyParams(
        vdd=vdd,
        frequency_hz=frequency_hz,
        c_output_bit=base.c_output_bit * cap_scale,
        e_output_access=base.e_output_access * e,
        e_read_base=base.e_read_base * e,
        e_read_per_tag_bit=base.e_read_per_tag_bit * e,
        e_read_per_data_bit=base.e_read_per_data_bit * e,
        e_fill_per_bit=base.e_fill_per_bit * e,
        e_cycle_per_bit=base.e_cycle_per_bit * e,
        leak_w_per_bit=base.leak_w_per_bit * leak_scale,
        overhead_fraction=base.overhead_fraction,
    )


#: Named process nodes for the design-space explorer.  ``350nm`` is the
#: paper's calibrated SA-1100-like baseline (``TechnologyParams()``
#: exactly, so sweeps that pin this node reproduce the paper's numbers
#: bit-identically); the smaller nodes are derived by scaling.
TECH_NODES = {
    "350nm": lambda: TechnologyParams(),
    "250nm": lambda: _scaled_node(2.5, 300e6, cap_scale=0.7, leak_scale=4.0),
    "180nm": lambda: _scaled_node(1.8, 400e6, cap_scale=0.5, leak_scale=16.0),
}


def tech_node(name):
    """Instantiate the named technology node; raises KeyError on unknown."""
    try:
        factory = TECH_NODES[name]
    except KeyError:
        raise KeyError(
            "unknown tech node %r (known: %s)" % (name, ", ".join(sorted(TECH_NODES)))
        )
    return factory()
