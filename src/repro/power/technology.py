"""Technology parameters (0.35 µm / 3.3 V / 200 MHz, SA-1100-like).

The absolute constants are calibrated so that the baseline (ARM, 16 KB
I-cache) reproduces the qualitative power picture the paper anchors to:
dynamic power dominates the cache, internal power is more than half of
total cache power, leakage is a minor but visible share (the paper's
0.35 µm process), and the I-cache is ≈27 % of chip power (StrongARM
measurement [2]).  Everything downstream — every saving the experiments
report — is *measured* relative to this baseline, not asserted.
"""


class TechnologyParams:
    """Process/circuit constants used by the cache power model."""

    def __init__(
        self,
        vdd=3.3,
        frequency_hz=200e6,
        # output driver: effective capacitance per bus bit
        c_output_bit=1.0e-12,          # F  → ~10.9 pJ per toggled bit
        # output drive/precharge cost per access, independent of toggles
        e_output_access=0.8e-09,       # J  per fetch-word request
        # per-access read path (decoder + tag compare + data read)
        e_read_base=3.0e-11,           # J  fixed decode/control cost
        e_read_per_tag_bit=4.0e-13,    # J  per (way × tag bit) compared
        e_read_per_data_bit=1.5e-12,   # J  per data bit driven to output
        # per-miss line fill (array write)
        e_fill_per_bit=8.0e-13,        # J  per block bit written
        # per-cycle array clocking/precharge while the cache is on
        e_cycle_per_bit=7.4e-15,       # J  per storage bit per cycle
        # static leakage
        leak_w_per_bit=6.3e-07,        # W  per storage bit
        # cell overhead: tags + valid/LRU state, as a fraction of data bits
        overhead_fraction=0.12,
    ):
        self.vdd = vdd
        self.frequency_hz = frequency_hz
        self.c_output_bit = c_output_bit
        self.e_output_access = e_output_access
        self.e_read_base = e_read_base
        self.e_read_per_tag_bit = e_read_per_tag_bit
        self.e_read_per_data_bit = e_read_per_data_bit
        self.e_fill_per_bit = e_fill_per_bit
        self.e_cycle_per_bit = e_cycle_per_bit
        self.leak_w_per_bit = leak_w_per_bit
        self.overhead_fraction = overhead_fraction

    @property
    def e_toggle_bit(self):
        """Energy per toggled output bit: C·V² (Equation 1's dynamic term)."""
        return self.c_output_bit * self.vdd * self.vdd

    def __repr__(self):
        return "<TechnologyParams %.1fV %.0fMHz>" % (self.vdd, self.frequency_hz / 1e6)
