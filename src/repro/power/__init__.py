"""Power models: cache (switching/internal/leakage/peak) and chip-wide.

The decomposition follows the paper's Section 4 / sim-panalyzer:

* **switching power** — output-driver dynamic power, proportional to the
  bit activity on the instruction bus per cache access (we compute real
  Hamming toggles over the fetched encodings);
* **internal power** — dynamic power of the cache block itself: a
  per-cycle component (clocking/precharge of the whole array, scaling
  with cache size) plus per-access decode/read energy and line-fill
  writes;
* **leakage power** — static, proportional to gate count (cache size),
  independent of activity;
* **peak power** — the worst single-cycle power.

Equation (1): ``P = A·C·V²·f + V·I_leak``.
"""

from repro.power.technology import TechnologyParams
from repro.power.cache_power import CachePowerModel, CachePowerReport
from repro.power.chip import ChipPowerModel, ChipPowerReport

__all__ = [
    "TechnologyParams",
    "CachePowerModel",
    "CachePowerReport",
    "ChipPowerModel",
    "ChipPowerReport",
]
