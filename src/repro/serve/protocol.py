"""Wire protocol: newline-delimited JSON over a local socket.

Every message is one JSON object on one line (``\\n``-terminated,
UTF-8).  A connection carries exactly one request followed by its
response(s): one reply object for unary ops (``submit``, ``status``,
``results``, ``cancel``, ``metrics``, ``shutdown``), or a reply
followed by an event stream for ``watch``.  The ``metrics`` reply
carries the server's merged metric snapshot plus its OpenMetrics text
exposition (see :mod:`repro.obs.metrics`).  Streams are resumable by construction — every
point event carries a per-job ``seq`` and a ``watch`` request may ask
for ``after_seq`` — so a client that lost its connection replays only
what it has not yet seen (see :mod:`repro.serve.client`).

Addresses are ``unix:<path>`` (the default flavor; a bare path means
the same) or ``tcp:<host>:<port>`` for platforms without Unix sockets.
"""

import json
import socket

PROTOCOL = "repro.serve/v1"

#: Hard per-line cap: a submit carrying a large design space is the
#: biggest legitimate message; anything beyond this is a framing bug or
#: abuse, and is rejected rather than buffered without bound.
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Request operations the server understands.
OPS = ("submit", "watch", "status", "results", "cancel", "metrics",
       "shutdown")


class ProtocolError(Exception):
    """Malformed message, oversized line, or protocol violation."""


def encode(msg):
    """One message as a ``\\n``-terminated UTF-8 line."""
    line = json.dumps(msg, sort_keys=True, separators=(",", ":")) + "\n"
    data = line.encode("utf-8")
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError("message of %d bytes exceeds %d-byte line cap"
                            % (len(data), MAX_LINE_BYTES))
    return data


def decode(line):
    """Parse one line into a message dict."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("line of %d bytes exceeds %d-byte cap"
                            % (len(line), MAX_LINE_BYTES))
    try:
        msg = json.loads(line)
    except ValueError as exc:
        raise ProtocolError("undecodable message: %s" % exc)
    if not isinstance(msg, dict):
        raise ProtocolError("message is %s, not an object" % type(msg).__name__)
    return msg


# ----------------------------------------------------------------------
# asyncio (server) side


async def read_message(reader):
    """One message from an asyncio stream, or None at EOF."""
    try:
        line = await reader.readline()
    except (ConnectionError, OSError):
        return None
    if not line:
        return None
    if not line.endswith(b"\n") and len(line) >= MAX_LINE_BYTES:
        raise ProtocolError("unterminated line at %d-byte cap" % len(line))
    return decode(line)


async def write_message(writer, msg):
    """Send one message on an asyncio stream (drains)."""
    writer.write(encode(msg))
    await writer.drain()


# ----------------------------------------------------------------------
# addresses


def parse_address(spec):
    """``unix:<path>`` / bare path / ``tcp:<host>:<port>`` → (kind, target)."""
    if not spec:
        raise ValueError("empty server address")
    if spec.startswith("unix:"):
        return "unix", spec[len("unix:"):]
    if spec.startswith("tcp:"):
        rest = spec[len("tcp:"):]
        host, sep, port = rest.rpartition(":")
        if not sep or not host:
            raise ValueError("bad tcp address %r (want tcp:<host>:<port>)" % spec)
        return "tcp", (host, int(port))
    return "unix", spec


def connect(spec, timeout=None):
    """Blocking client connection to ``spec``; returns a socket."""
    kind, target = parse_address(spec)
    if kind == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(target)
    except BaseException:
        sock.close()
        raise
    return sock


class LineConnection:
    """Blocking line-framed connection used by the synchronous client."""

    def __init__(self, spec, timeout=None):
        self.sock = connect(spec, timeout)
        self._rfile = self.sock.makefile("rb")

    def send(self, msg):
        self.sock.sendall(encode(msg))

    def recv(self):
        """One message, or None at EOF."""
        line = self._rfile.readline(MAX_LINE_BYTES + 1)
        if not line:
            return None
        if not line.endswith(b"\n"):
            raise ProtocolError("truncated or oversized line from server")
        return decode(line)

    def close(self):
        try:
            self._rfile.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
