"""Job model and request/response shapes for the sweep service.

A :class:`Job` is one submitted sweep: a design space × benchmark list
× scale, with a lifecycle of ``queued → running → done|failed|
cancelled``.  The server owns jobs on its event loop; every per-point
outcome is appended to the job's event buffer with a monotonically
increasing ``seq``, which is what makes ``watch`` streams resumable —
a reconnecting client asks for ``after_seq=<last seen>`` and receives
every remaining event exactly once.

This module is deliberately free of sockets and scheduling: it
validates submit requests into ``(DesignSpace, benchmarks, scale)``,
owns the state machine, and builds the event/summary dicts the
protocol layer ships.
"""

import asyncio
import os
import time

from repro.dse.space import DesignSpace, preset as space_preset
from repro.obs import metrics as obs_metrics
from repro.serve.protocol import ProtocolError
from repro.workloads import CODE_SIZE_BENCHMARKS

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED, CANCELLED = (
    "queued", "running", "done", "failed", "cancelled")
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
TERMINAL = (DONE, FAILED, CANCELLED)

SCALES = ("small", "full")


def new_job_id():
    return "j" + os.urandom(4).hex()


def validate_submit(msg):
    """Parse a submit request into ``(space, benchmarks, scale)``.

    Raises :class:`ProtocolError` on anything malformed — unknown
    benchmarks, bad scale, undecodable or empty design space — so the
    server can reject bad submissions without touching job state.
    """
    space_data = msg.get("space")
    if isinstance(space_data, str):
        try:
            space = space_preset(space_data)
        except KeyError as exc:
            raise ProtocolError(str(exc))
    elif isinstance(space_data, dict):
        try:
            space = DesignSpace.from_dict(space_data)
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError("bad design space: %s" % exc)
    else:
        raise ProtocolError("submit needs a space (preset name or dict)")
    if not len(space):
        raise ProtocolError("design space %r is empty" % space.name)

    benchmarks = msg.get("benchmarks")
    if benchmarks == "all":
        benchmarks = list(CODE_SIZE_BENCHMARKS)
    if (not isinstance(benchmarks, list) or not benchmarks
            or not all(isinstance(b, str) for b in benchmarks)):
        raise ProtocolError("submit needs a non-empty benchmark list")
    unknown = [b for b in benchmarks if b not in CODE_SIZE_BENCHMARKS]
    if unknown:
        raise ProtocolError("unknown benchmark(s): %s" % ", ".join(unknown))

    scale = msg.get("scale", "small")
    if scale not in SCALES:
        raise ProtocolError("unknown scale %r (want one of %s)"
                            % (scale, "/".join(SCALES)))
    return space, benchmarks, scale


class Job:
    """One submitted sweep and its streamed outcome."""

    def __init__(self, space, benchmarks, scale):
        self.id = new_job_id()
        self.space = space
        self.benchmarks = list(benchmarks)
        self.scale = scale
        self.status = QUEUED
        self.created = time.time()
        self.started = None
        self.finished = None
        self.total = len(space) * len(self.benchmarks)
        self.events = []        # point events, events[i]["seq"] == i + 1
        self.results = []       # result blobs, same order as events
        self.cache_hits = 0
        self.coalesced = 0
        self.computed = 0
        self.failed_points = 0
        self.error = None       # submit-time / infrastructure error text
        self.task = None        # the server-side runner task
        self.changed = asyncio.Condition()

    # -- state ----------------------------------------------------------

    @property
    def terminal(self):
        return self.status in TERMINAL

    @property
    def emitted(self):
        return len(self.events)

    async def _notify(self):
        async with self.changed:
            self.changed.notify_all()

    async def start(self):
        self.status = RUNNING
        self.started = time.time()
        obs_metrics.observe("serve.job.wait_seconds",
                            self.started - self.created)
        await self._notify()

    async def finish(self, status):
        self.status = status
        self.finished = time.time()
        if self.started is not None:
            obs_metrics.observe("serve.job.seconds",
                                self.finished - self.started)
        await self._notify()

    # -- events ---------------------------------------------------------

    async def emit_point(self, benchmark, point, blob, error=None,
                         cached=False, coalesced=False):
        """Append one per-point event (and wake every watcher)."""
        event = {
            "type": "point",
            "job": self.id,
            "seq": len(self.events) + 1,
            "benchmark": benchmark,
            "point_id": point.point_id,
            "label": point.label,
            "cached": bool(cached),
            "coalesced": bool(coalesced),
            "done": None,       # filled below
            "total": self.total,
        }
        if error is not None:
            event["error"] = str(error)
            self.failed_points += 1
        else:
            event["metrics"] = blob["metrics"]
        if cached:
            self.cache_hits += 1
        elif coalesced:
            self.coalesced += 1
        elif error is None:
            self.computed += 1
        self.events.append(event)
        self.results.append(blob)
        event["done"] = len(self.events)
        await self._notify()
        return event

    def end_event(self):
        """The terminal stream event (sent after every point event)."""
        return {"type": "end", "job": self.id, "status": self.status,
                "summary": self.summary()}

    def summary(self):
        return {
            "id": self.id,
            "status": self.status,
            "space": self.space.name,
            "benchmarks": self.benchmarks,
            "scale": self.scale,
            "total": self.total,
            "emitted": self.emitted,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "computed": self.computed,
            "failed_points": self.failed_points,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
        }

    def __repr__(self):
        return "<Job %s %s %d/%d>" % (self.id, self.status,
                                      self.emitted, self.total)
