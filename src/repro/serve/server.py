"""The asyncio sweep server: job queue, sharded compute, dedupe, streams.

Architecture (one process, one event loop)::

    client ──ndjson──► connection handler ──► Job (queued)
                                               │  job slots (bounded)
                                               ▼
                 ┌──────────── _run_job ───────────────┐
                 │ per (benchmark, point):             │
                 │   global cache hit? ──► emit cached │
                 │   in-flight?         ──► await same │
                 │   else claim key     ──► compute    │
                 └──────────────┬──────────────────────┘
                                ▼ (one batch per job, concurrent)
                 thread: run_tasks(_sweep_worker, …)   ← the warm
                         per-chunk progress → publish    worker pool
                                ▼
                 loop: cache.put + SingleFlight.resolve
                                ▼
                 every waiting job emits the point, exactly once

The heavy lifting reuses :func:`repro.dse.scheduler.run_tasks` (process
isolation, per-point timeout, bounded retries, crash-safe resume via a
per-fingerprint compute :class:`~repro.dse.store.ResultStore`) — the
server adds the long-running job lifecycle, the bounded queue with
backpressure, the global content-addressed cache, and single-flight so
two concurrent jobs never compute the same design point twice.

Up to ``max_running`` compute batches run **concurrently**: each batch
registers its own task group on the persistent warm worker pool
(:mod:`repro.dse.pool`), whose dispatcher interleaves the groups
fair-share — a long sweep no longer head-of-line-blocks a smoke job,
and single-flight keys are shared across the in-flight batches.  Under
``REPRO_DSE_POOL=chunk`` the legacy fork-per-chunk scheduler is used
instead (batches then time-slice the machine through the OS).

Observability: the server root span, per-job ``serve.job`` spans and
per-point ``serve.point`` spans parent-link into the hierarchical trace
(workers inherit the context through ``export_spec`` exactly like CLI
sweeps); ``serve.*`` counters/gauges track queue depth, cache hit
ratio and in-flight points; each finished job additionally emits a
manifest event so ``python -m repro.obs.report --jsonl`` surfaces the
service counters; completed jobs can append to the metrics trajectory.
"""

import asyncio
import json
import os
import signal
import sys
import time
import traceback

from repro import obs
from repro.obs import metrics as obs_metrics
from repro.dse import pool as dse_pool
from repro.dse.scheduler import (
    _chunk_tasks,
    _export_planes,
    _sweep_worker,
    run_tasks,
)
from repro.dse.store import ResultStore
from repro.serve import api
from repro.serve.cache import GlobalResultCache, SingleFlight
from repro.serve.protocol import (
    PROTOCOL,
    ProtocolError,
    parse_address,
    read_message,
    write_message,
)


def _serve_base():
    from repro.sim.functional.store import _repo_root

    return os.path.join(_repo_root(), ".serve")


def default_socket_path():
    return os.path.join(_serve_base(), "serve.sock")


def _default_compute(server, scale, items, publish):
    """Thread-side compute: shard ``items`` over the DSE worker pool.

    ``items`` is a list of ``(benchmark, DesignPoint, cache_key)``
    triples that were neither cached nor in flight.  Results land in
    the per-(scale, fingerprint) compute store via the workers' atomic
    writes; each task's completion publishes its chunk's outcomes back
    to the event loop, so a job streams points as chunks finish rather
    than when the whole batch does.
    """
    store = server.compute_store(scale)
    keymap = {(b, p.point_id): key for b, p, key in items}
    pairs = [(b, p) for b, p, _key in items]
    payloads = _chunk_tasks(pairs, store.root, scale, server.worker_jobs)
    timeout = None
    if server.timeout_per_point is not None:
        timeout = server.timeout_per_point * max(
            len(p["points"]) for p in payloads)

    def flush(task_result):
        benchmark = task_result.payload["benchmark"]
        for pdict in task_result.payload["points"]:
            key = keymap.get((benchmark, pdict["id"]))
            if key is None:
                continue
            blob = store.load(benchmark, pdict["id"])
            if blob is not None:
                publish(key, blob, None)
                continue
            error = task_result.error or "evaluation failed"
            try:
                with open(store.failure_path(benchmark, pdict["id"])) as fh:
                    error = json.load(fh).get("error", error)
            except (OSError, ValueError):
                pass
            publish(key, None, error)

    with obs.span("serve.compute", points=len(items), scale=scale):
        # warm pool mode: decode each relevant trace entry once and hand
        # the planes to the workers over shared memory (no-op in chunk
        # fallback mode, keeping payloads identical to the legacy path)
        plane_bus = _export_planes(payloads, scale)
        try:
            run_tasks(_sweep_worker, payloads, jobs=server.worker_jobs,
                      timeout=timeout, retries=server.retries, label="serve",
                      progress=flush)
        finally:
            if plane_bus is not None:
                plane_bus.close()


class ServeServer:
    """Long-running sweep service on a local (unix or tcp) socket."""

    def __init__(self, address=None, cache_root=None, state_dir=None,
                 worker_jobs=1, max_pending=8, max_running=2,
                 timeout_per_point=None, retries=1,
                 record_trajectory=False, trajectory_path=None,
                 compute_fn=None):
        self.address = address or default_socket_path()
        base = _serve_base()
        self.state_dir = os.path.expanduser(state_dir or
                                            os.path.join(base, "state"))
        self.cache = GlobalResultCache(cache_root or
                                       os.path.join(base, "cache"))
        self.flight = SingleFlight()
        self.worker_jobs = max(1, int(worker_jobs))
        self.max_pending = max(1, int(max_pending))
        self.timeout_per_point = timeout_per_point
        self.retries = retries
        self.record_trajectory = record_trajectory
        self.trajectory_path = trajectory_path
        self._compute_fn = compute_fn or _default_compute
        self.jobs = {}
        self.started_at = time.time()
        self.stats = {k: 0 for k in (
            "jobs_submitted", "jobs_completed", "jobs_failed",
            "jobs_cancelled", "jobs_rejected", "cache_hits", "cache_misses",
            "coalesced", "points_computed", "points_failed",
            "trajectory_records")}
        self._max_running = max(1, int(max_running))
        self._job_slots = None      # created on the loop
        self._shutdown = None
        self._compute_tasks = set()
        self._trace_ctx = None
        self._loop = None

    # -- stores ---------------------------------------------------------

    def compute_store(self, scale):
        """The crash-safe worker store for one (scale, code fingerprint).

        Keyed by the same fingerprints as the global cache, so a server
        restarted across a code change never trusts stale worker blobs.
        """
        tag = "%s-%s%s" % (scale, self.cache.prints["sim_code"][:8],
                           self.cache.prints["result_code"][:8])
        return ResultStore(os.path.join(self.state_dir, "compute", tag))

    # -- bookkeeping ----------------------------------------------------

    def queue_depth(self):
        return sum(1 for j in self.jobs.values() if not j.terminal)

    def _update_gauges(self):
        hits, misses = self.stats["cache_hits"], self.stats["cache_misses"]
        obs.gauge("serve.queue.depth", self.queue_depth())
        obs.gauge("serve.points.inflight", len(self.flight))
        if hits + misses:
            obs.gauge("serve.cache.hit_ratio",
                      round(hits / float(hits + misses), 4))
        pool = dse_pool.pool_stats()
        if pool is not None:
            obs.gauge("serve.pool.workers", len(pool["workers"]))
            obs.gauge("serve.pool.busy",
                      sum(1 for w in pool["workers"] if w["busy"]))

    def _publish(self, key, blob, error):
        """Loop-side landing point for one computed outcome."""
        if blob is not None:
            try:
                self.cache.put(blob["benchmark"], blob["point"]["id"],
                               blob.get("scale", "?"), blob)
            except OSError as exc:
                print("serve: cache write failed (%s)" % exc, file=sys.stderr)
        delivered = self.flight.resolve(key, blob, error)
        if delivered:
            if error is None:
                self.stats["points_computed"] += 1
                obs.counter("serve.points.computed")
            else:
                self.stats["points_failed"] += 1
                obs.counter("serve.points.failed")
        self._update_gauges()

    # -- job execution --------------------------------------------------

    async def _compute(self, scale, items):
        """Run one compute batch in a thread; never leave futures hanging."""
        loop = asyncio.get_running_loop()

        def publish(key, blob, error=None):
            loop.call_soon_threadsafe(self._publish, key, blob, error)

        # no serialization here: up to max_running job batches run at
        # once, interleaved fair-share by the warm pool's dispatcher
        try:
            await asyncio.to_thread(
                self._compute_fn, self, scale, items, publish)
        finally:
            # idempotent: anything the compute path already resolved
            # is a no-op here, anything it dropped becomes a failure
            # instead of a future that hangs every waiting job.
            for _b, _p, key in items:
                self._publish(key, None,
                              "compute batch ended without this point")

    def _spawn_compute(self, scale, items):
        task = asyncio.get_running_loop().create_task(
            self._compute(scale, items))
        self._compute_tasks.add(task)
        task.add_done_callback(self._compute_tasks.discard)
        return task

    async def _run_job(self, job):
        if self._trace_ctx is not None:
            obs.adopt_trace_context(*self._trace_ctx)
        with obs.span("serve.job", job=job.id, space=job.space.name,
                      scale=job.scale, points=job.total):
            await job.start()
            job_t0 = time.perf_counter()
            loop = asyncio.get_running_loop()
            waits, owned = [], []
            for benchmark in job.benchmarks:
                for point in job.space:
                    key = self.cache.key(benchmark, point.point_id, job.scale)
                    blob = self.cache.get(benchmark, point.point_id, job.scale)
                    if blob is not None:
                        self.stats["cache_hits"] += 1
                        obs.counter("serve.cache.hit")
                        with obs.span("serve.point", job=job.id,
                                      point=point.point_id, cached=True):
                            await job.emit_point(benchmark, point, blob,
                                                 cached=True)
                        obs_metrics.observe("serve.point.seconds",
                                            time.perf_counter() - job_t0)
                        continue
                    self.stats["cache_misses"] += 1
                    obs.counter("serve.cache.miss")
                    fut, owner = self.flight.claim(key, loop)
                    if not owner:
                        self.stats["coalesced"] += 1
                        obs.counter("serve.singleflight.coalesced")
                    else:
                        owned.append((benchmark, point, key))
                    waits.append((benchmark, point, fut, owner))
            self._update_gauges()
            if owned:
                self._spawn_compute(job.scale, owned)
            for benchmark, point, fut, owner in waits:
                # shield: cancelling this job must not cancel a future
                # other jobs are waiting on
                blob, error = await asyncio.shield(fut)
                with obs.span("serve.point", job=job.id,
                              point=point.point_id, cached=False):
                    await job.emit_point(
                        benchmark, point, blob, error=error,
                        coalesced=(not owner and error is None))
                obs_metrics.observe("serve.point.seconds",
                                    time.perf_counter() - job_t0)
        await job.finish(api.FAILED if job.failed_points else api.DONE)
        self.stats["jobs_completed" if job.status == api.DONE
                   else "jobs_failed"] += 1
        obs.counter("serve.jobs.completed" if job.status == api.DONE
                    else "serve.jobs.failed")
        self._emit_job_manifest(job)
        if self.record_trajectory and job.computed:
            added = await asyncio.to_thread(self._record_trajectory, job)
            self.stats["trajectory_records"] += added

    async def _job_main(self, job):
        try:
            async with self._job_slots:
                await self._run_job(job)
        except asyncio.CancelledError:
            if not job.terminal:
                await job.finish(api.CANCELLED)
                self.stats["jobs_cancelled"] += 1
                obs.counter("serve.jobs.cancelled")
        except Exception as exc:
            traceback.print_exc(file=sys.stderr)
            job.error = "%s: %s" % (type(exc).__name__, exc)
            if not job.terminal:
                await job.finish(api.FAILED)
                self.stats["jobs_failed"] += 1
        finally:
            self._update_gauges()

    def _emit_job_manifest(self, job):
        """One manifest event per finished job, so a ``REPRO_OBS`` JSONL
        stream renders the service counters in ``repro.obs.report``."""
        wall = ((job.finished or time.time()) - (job.started or job.created))
        obs.emit({
            "kind": "manifest",
            "benchmark": "serve:%s" % job.id,
            "manifest": {
                "schema": obs.SCHEMA_VERSION,
                "benchmark": "serve:%s" % job.id,
                "scale": job.scale,
                "wall_seconds": wall,
                "stages": {},
                "counters": {
                    "serve.cache.hit": job.cache_hits,
                    "serve.singleflight.coalesced": job.coalesced,
                    "serve.points.computed": job.computed,
                    "serve.points.failed": job.failed_points,
                },
            },
        })

    def _record_trajectory(self, job):
        """Thread-side: bridge this job's computed blobs into the
        trajectory store (dedupe makes re-records no-ops)."""
        from repro.obs.regress import (
            TrajectoryStore,
            current_commit,
            records_from_dse_store,
        )

        records = records_from_dse_store(
            self.compute_store(job.scale), current_commit(),
            scale=job.scale, names=job.benchmarks)
        return TrajectoryStore(self.trajectory_path).append(records)

    # -- request handling -----------------------------------------------

    async def _handle_submit(self, msg, writer):
        try:
            space, benchmarks, scale = api.validate_submit(msg)
        except ProtocolError as exc:
            await write_message(writer, {"ok": False, "error": str(exc)})
            return
        if self.queue_depth() >= self.max_pending:
            self.stats["jobs_rejected"] += 1
            obs.counter("serve.jobs.rejected")
            await write_message(writer, {
                "ok": False, "retry": True,
                "error": "queue full (%d jobs pending, max %d); retry later"
                % (self.queue_depth(), self.max_pending)})
            return
        job = api.Job(space, benchmarks, scale)
        self.jobs[job.id] = job
        self.stats["jobs_submitted"] += 1
        obs.counter("serve.jobs.submitted")
        job.task = asyncio.get_running_loop().create_task(self._job_main(job))
        self._update_gauges()
        await write_message(writer, {"ok": True, "job": job.summary()})

    async def _handle_watch(self, msg, writer):
        job = self.jobs.get(msg.get("job"))
        if job is None:
            await write_message(writer, {
                "ok": False, "error": "unknown job %r" % msg.get("job")})
            return
        idx = max(0, int(msg.get("after_seq") or 0))
        await write_message(writer, {"ok": True, "job": job.summary()})
        while True:
            while idx < len(job.events):
                await write_message(writer, job.events[idx])
                idx += 1
            if job.terminal:
                await write_message(writer, job.end_event())
                return
            async with job.changed:
                if idx >= len(job.events) and not job.terminal:
                    await job.changed.wait()

    def _server_summary(self):
        states = {s: 0 for s in api.JOB_STATES}
        for job in self.jobs.values():
            states[job.status] += 1
        hits, misses = self.stats["cache_hits"], self.stats["cache_misses"]
        return {
            "protocol": PROTOCOL,
            "pid": os.getpid(),
            "address": self.address,
            "started_at": self.started_at,
            "uptime": time.time() - self.started_at,
            "jobs": states,
            "queue_depth": self.queue_depth(),
            "max_pending": self.max_pending,
            "inflight_points": len(self.flight),
            "inflight_keys": self.flight.keys(),
            "pool": dse_pool.pool_stats(),
            "metrics": {name: obs_metrics.summarize(hist)
                        for name, hist
                        in sorted(obs_metrics.histograms().items())},
            "cache": {
                "root": self.cache.root,
                "hits": hits,
                "misses": misses,
                "hit_ratio": (hits / float(hits + misses)
                              if hits + misses else None),
                "entries": self.cache.entries(),
            },
            "stats": dict(self.stats),
        }

    async def _handle_status(self, msg, writer):
        reply = {"ok": True, "server": self._server_summary()}
        if msg.get("job"):
            job = self.jobs.get(msg["job"])
            if job is None:
                reply = {"ok": False, "error": "unknown job %r" % msg["job"]}
            else:
                reply["job"] = job.summary()
        await write_message(writer, reply)

    async def _handle_results(self, msg, writer):
        job = self.jobs.get(msg.get("job"))
        if job is None:
            await write_message(writer, {
                "ok": False, "error": "unknown job %r" % msg.get("job")})
            return
        await write_message(writer, {
            "ok": True, "job": job.summary(),
            "results": [blob for blob in job.results if blob is not None]})

    async def _handle_cancel(self, msg, writer):
        job = self.jobs.get(msg.get("job"))
        if job is None:
            await write_message(writer, {
                "ok": False, "error": "unknown job %r" % msg.get("job")})
            return
        if not job.terminal and job.task is not None:
            job.task.cancel()
            # let the cancellation land so the reply carries final state
            await asyncio.sleep(0)
            await asyncio.sleep(0)
        await write_message(writer, {"ok": True, "job": job.summary()})

    async def _handle_shutdown(self, msg, writer):
        await write_message(writer, {"ok": True, "server": self._server_summary()})
        self._shutdown.set()

    async def _handle_metrics(self, msg, writer):
        """One merged snapshot (server process + flushed worker files)
        plus its OpenMetrics text exposition."""
        snapshot = obs_metrics.merged_snapshot()
        await write_message(writer, {
            "ok": True,
            "snapshot": snapshot,
            "text": obs_metrics.render_openmetrics(snapshot)})

    async def _on_connection(self, reader, writer):
        try:
            msg = await read_message(reader)
            if msg is None:
                return
            op = msg.get("op")
            handler = {
                "submit": self._handle_submit,
                "watch": self._handle_watch,
                "status": self._handle_status,
                "results": self._handle_results,
                "cancel": self._handle_cancel,
                "metrics": self._handle_metrics,
                "shutdown": self._handle_shutdown,
            }.get(op)
            if handler is None:
                await write_message(writer, {
                    "ok": False,
                    "error": "unknown op %r (known: submit/watch/status/"
                    "results/cancel/metrics/shutdown)" % op})
                return
            with obs_metrics.timer("serve.request.seconds"):
                await handler(msg, writer)
        except ProtocolError as exc:
            try:
                await write_message(writer, {"ok": False, "error": str(exc)})
            except (ConnectionError, OSError):
                pass
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass  # client went away; watch streams pick up on reconnect
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- lifecycle ------------------------------------------------------

    def _prepare_unix_path(self, path):
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        if os.path.exists(path):
            # a previous server that died without cleanup leaves the
            # socket file behind; only a *live* server is an error
            import socket as socket_mod

            probe = socket_mod.socket(socket_mod.AF_UNIX,
                                      socket_mod.SOCK_STREAM)
            try:
                probe.settimeout(0.5)
                probe.connect(path)
            except OSError:
                os.unlink(path)
            else:
                raise RuntimeError("another server is live on %s" % path)
            finally:
                probe.close()

    async def serve_forever(self, ready=None):
        """Run until a shutdown request or SIGTERM/SIGINT.

        ``ready`` is an optional ``threading.Event`` set once the socket
        is accepting connections (tests and scripts wait on it).
        """
        self._loop = asyncio.get_running_loop()
        self._job_slots = asyncio.Semaphore(self._max_running)
        self._shutdown = asyncio.Event()
        # The metrics op must always have something to report: if the
        # operator didn't configure REPRO_OBS, collect aggregate-only
        # (no event stream).  Worker processes flush their snapshots
        # under the state dir; both settings are restored on exit so an
        # in-process server (tests) leaves global obs state untouched.
        owns_obs = not obs.enabled
        if owns_obs:
            obs.enable(sink=None)
        prev_snapshot_dir = obs_metrics.snapshot_dir()
        metrics_dir = os.path.join(self.state_dir, "metrics")
        obs_metrics.set_snapshot_dir(metrics_dir)
        for stale in obs_metrics.read_snapshot_dir(metrics_dir):
            # a previous server's flushed files would double-count here
            try:
                os.unlink(os.path.join(metrics_dir, "m%d.json" % stale["pid"]))
            except (OSError, KeyError):
                pass
        root_span = obs.span("serve.server", address=self.address)
        root_span.__enter__()
        self._trace_ctx = obs.core.trace_context()

        kind, target = parse_address(self.address)
        if kind == "unix":
            self._prepare_unix_path(target)
            server = await asyncio.start_unix_server(
                self._on_connection, path=target)
        else:
            server = await asyncio.start_server(
                self._on_connection, host=target[0], port=target[1])
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(sig, self._shutdown.set)
            except (NotImplementedError, RuntimeError, ValueError):
                break  # non-main thread / platform without handlers
        if ready is not None:
            ready.set()
        try:
            await self._shutdown.wait()
        finally:
            server.close()
            await server.wait_closed()
            for job in self.jobs.values():
                if job.task is not None and not job.task.done():
                    job.task.cancel()
            await asyncio.gather(
                *(j.task for j in self.jobs.values() if j.task is not None),
                return_exceptions=True)
            if self._compute_tasks:
                await asyncio.gather(*tuple(self._compute_tasks),
                                     return_exceptions=True)
            if kind == "unix":
                try:
                    os.unlink(target)
                except OSError:
                    pass
            self._update_gauges()
            root_span.__exit__(None, None, None)
            obs_metrics.flush()
            obs_metrics.set_snapshot_dir(prev_snapshot_dir)
            if owns_obs:
                obs.disable()
