"""DSE-as-a-service: a sharded sweep server with a global result cache.

``repro.dse`` answers "evaluate this design space" as a one-shot CLI
run; this package turns it into a long-running service where many
overlapping sweeps pay for the union of their design points once:

* :mod:`repro.serve.server` — asyncio job-queue server: submit a sweep,
  get a job id; jobs move ``queued → running → done|failed|cancelled``
  through a bounded queue with backpressure, and their design points
  are sharded across the existing DSE worker pool
  (:func:`repro.dse.scheduler.run_tasks`);
* :mod:`repro.serve.cache` — global content-addressed result cache
  keyed on the sha256[:12] DesignPoint ids + benchmark + scale + code
  fingerprints, with single-flight so two concurrent jobs never
  compute the same point twice;
* :mod:`repro.serve.protocol` / :mod:`repro.serve.api` — newline-
  delimited JSON over a local socket; per-point events carry monotonic
  sequence numbers, making every stream resumable;
* :mod:`repro.serve.client` — blocking client whose ``watch`` stream
  survives disconnects (exponential backoff + jitter, resume from the
  last acked seq, exactly-once delivery);
* ``python -m repro.serve serve|submit|watch|status|frontier`` — the CLI.

Typical use::

    from repro.serve import ServeClient
    from repro.dse.space import preset

    client = ServeClient("unix:/tmp/serve.sock")
    job = client.submit(preset("smoke").to_dict(), ["crc32", "sha"])
    end = client.wait(job["id"])          # reconnects transparently
    frontier_inputs = client.results(job["id"])
"""

from repro.serve.api import JOB_STATES, Job, validate_submit
from repro.serve.cache import GlobalResultCache, SingleFlight, fingerprints
from repro.serve.client import ServeClient, ServeError, wait_until_up
from repro.serve.protocol import PROTOCOL, ProtocolError, parse_address
from repro.serve.server import ServeServer, default_socket_path

__all__ = [
    "GlobalResultCache",
    "JOB_STATES",
    "Job",
    "PROTOCOL",
    "ProtocolError",
    "ServeClient",
    "ServeError",
    "ServeServer",
    "SingleFlight",
    "default_socket_path",
    "fingerprints",
    "parse_address",
    "validate_submit",
    "wait_until_up",
]
