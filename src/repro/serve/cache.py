"""Global content-addressed result cache for the sweep service.

Every completed design-point evaluation is published here under a key
derived from *what was evaluated*, not which job asked for it:

    sha256(benchmark | point_id | scale | sim_code | result_code)

``point_id`` is the existing sha256[:12] content hash of the
:class:`~repro.dse.space.DesignPoint` (so the key inherits every design
axis), ``sim_code`` is the persistent trace store's fingerprint over
the functional-simulator sources, and ``result_code`` hashes the
result-producing layers on top of them (evaluation, timing, stack
kernel, cache/power models).  Two jobs sweeping overlapping spaces
therefore pay for the union of their points exactly once — and a code
change to any layer that could alter a metric silently invalidates the
whole cache rather than serving stale numbers.

Writes are atomic (same-directory temp + ``os.replace``, via the DSE
store's helper) and torn/stale entries read as misses, so many server
processes may share one cache directory.

:class:`SingleFlight` closes the remaining window: within one server,
two *concurrent* jobs wanting the same not-yet-cached key share one
in-flight computation — the first claims the key and computes, later
claimants await the same future.
"""

import hashlib
import importlib
import os

from repro.dse.store import atomic_write_json
from repro.obs import core as obs_core
from repro.obs import metrics as obs_metrics
from repro.sim.functional.store import code_version_hash

#: Bump when the cache entry layout (or key recipe) changes.
CACHE_SCHEMA = "repro.serve.cache/v1"

#: Modules whose source text participates in the result-layer
#: fingerprint: everything between a functional trace and a metrics
#: dict.  The functional simulators themselves are covered by the trace
#: store's :func:`code_version_hash`, which is hashed alongside.
_RESULT_MODULES = (
    "repro.dse.evaluate",
    "repro.dse.space",
    "repro.sim.pipeline.timing",
    "repro.sim.pipeline.meta",
    "repro.sim.cache.model",
    "repro.sim.cache.stack",
    "repro.power.cache_power",
    "repro.power.technology",
)

_result_hash = None


def result_code_hash():
    """Content hash over the result-producing sources (memoized)."""
    global _result_hash
    if _result_hash is None:
        h = hashlib.sha256()
        for name in _RESULT_MODULES:
            h.update(name.encode())
            path = importlib.import_module(name).__file__
            try:
                with open(path, "rb") as fh:
                    h.update(fh.read())
            except OSError:
                h.update(b"<missing>")
        _result_hash = h.hexdigest()[:16]
    return _result_hash


def fingerprints():
    """The code-version fingerprints baked into every cache key."""
    return {"sim_code": code_version_hash(), "result_code": result_code_hash()}


class GlobalResultCache:
    """One directory of content-addressed evaluation results.

    Entries are sharded into 256 two-hex-char subdirectories so a
    long-lived service cache never collects millions of files in one
    directory.
    """

    def __init__(self, root, prints=None):
        self.root = os.path.expanduser(root)
        self.prints = dict(prints) if prints is not None else fingerprints()

    def key(self, benchmark, point_id, scale):
        payload = "|".join([CACHE_SCHEMA, benchmark, point_id, scale,
                            self.prints["sim_code"], self.prints["result_code"]])
        return hashlib.sha256(payload.encode()).hexdigest()[:24]

    def path(self, key):
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, benchmark, point_id, scale):
        """The cached result blob, or None when absent/torn/stale."""
        if not obs_core.enabled:
            return self._get(benchmark, point_id, scale)
        with obs_metrics.timer("serve.cache.lookup_seconds"):
            return self._get(benchmark, point_id, scale)

    def _get(self, benchmark, point_id, scale):
        import json

        key = self.key(benchmark, point_id, scale)
        try:
            with open(self.path(key)) as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            return None
        if entry.get("schema") != CACHE_SCHEMA:
            return None
        if entry.get("fingerprints") != self.prints:
            return None  # key collision can't happen, but belt and braces
        blob = entry.get("result")
        if (not isinstance(blob, dict) or blob.get("benchmark") != benchmark
                or (blob.get("point") or {}).get("id") != point_id):
            return None
        return blob

    def put(self, benchmark, point_id, scale, blob):
        """Publish one result blob (atomic); returns its cache key."""
        key = self.key(benchmark, point_id, scale)
        atomic_write_json(self.path(key), {
            "schema": CACHE_SCHEMA,
            "key": key,
            "benchmark": benchmark,
            "point_id": point_id,
            "scale": scale,
            "fingerprints": self.prints,
            "result": blob,
        })
        return key

    def entries(self):
        """Number of entries on disk (any generation/fingerprint)."""
        count = 0
        try:
            shards = os.listdir(self.root)
        except OSError:
            return 0
        for shard in shards:
            try:
                count += sum(1 for n in os.listdir(os.path.join(self.root, shard))
                             if n.endswith(".json"))
            except OSError:
                continue
        return count

    def __repr__(self):
        return "<GlobalResultCache %s>" % self.root


class SingleFlight:
    """Per-server in-flight registry: one computation per cache key.

    The first claimant of a key becomes its *owner* (it must arrange
    for the computation and eventually :meth:`resolve` the key); every
    later claimant receives the same future.  Futures resolve to a
    ``(blob, error)`` pair — exactly one of the two is set — and are
    popped on resolution, so a failed key can be re-claimed (and
    re-tried) by a later job.

    The registry is shared by every **concurrently running** compute
    batch (the server keeps up to ``max_running`` batches in flight on
    the warm worker pool): a job submitted while another job's batch is
    already computing an overlapping key coalesces onto that batch's
    future instead of scheduling the point twice, and cancelling the
    waiting job never cancels the owner's future (waiters shield it).
    """

    def __init__(self):
        self._futures = {}

    def claim(self, key, loop):
        """Return ``(future, is_owner)`` for ``key``."""
        fut = self._futures.get(key)
        if fut is not None and not fut.done():
            return fut, False
        fut = loop.create_future()
        self._futures[key] = fut
        return fut, True

    def resolve(self, key, blob, error=None):
        """Deliver the outcome for ``key``; True when it reached claimants.

        A second resolve of the same key is a no-op returning False, so
        publishers may be defensive (publish again after a batch) without
        double-counting.
        """
        fut = self._futures.pop(key, None)
        if fut is not None and not fut.done():
            fut.set_result((blob, error))
            return True
        return False

    def keys(self):
        """Cache keys currently being computed (unresolved claims)."""
        return sorted(k for k, f in self._futures.items() if not f.done())

    def __len__(self):
        return sum(1 for f in self._futures.values() if not f.done())
