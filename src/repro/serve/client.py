"""Synchronous client for the sweep service, surviving reconnects.

Unary requests (``submit``/``status``/``results``/``cancel``/
``metrics``/``shutdown``) are one connection each.  :meth:`ServeClient.watch` is
the interesting path: it streams a job's per-point events and, when the
connection dies mid-stream, reconnects with exponential backoff plus
jitter and resumes from the last sequence number it saw — the server
replays only events *after* that seq, and the client additionally drops
any duplicate seq, so every remaining point is delivered exactly once
no matter how many times the stream breaks.

The client is deliberately dependency-free and blocking (plain
``socket``), so scripts and the CLI can use it without touching
asyncio.
"""

import random
import time

from repro.serve import protocol
from repro.serve.protocol import LineConnection, ProtocolError


class ServeError(Exception):
    """The server answered ``ok: false`` (message carries its error)."""

    def __init__(self, error, retry=False):
        super().__init__(error)
        self.retry = retry


def backoff_seconds(attempt, base=0.1, cap=5.0, rng=random.random):
    """Exponential backoff with full jitter: ``U(0, min(cap, base*2^n))``.

    Full jitter desynchronizes a fleet of reconnecting clients — after
    a server blip they return spread over the window instead of in one
    thundering herd.
    """
    return rng() * min(cap, base * (2.0 ** attempt))


class ServeClient:
    """Blocking client bound to one server address."""

    def __init__(self, address, timeout=30.0, max_attempts=8,
                 backoff_base=0.1, backoff_cap=5.0, sleep=time.sleep):
        self.address = address
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._sleep = sleep
        self._conn = None       # live watch connection (for fault injection)

    # -- unary ops ------------------------------------------------------

    def request(self, msg):
        """One request/one reply; raises :class:`ServeError` on refusal."""
        with LineConnection(self.address, self.timeout) as conn:
            conn.send(msg)
            reply = conn.recv()
        if reply is None:
            raise ConnectionError("server closed the connection mid-request")
        if not reply.get("ok"):
            raise ServeError(reply.get("error", "request refused"),
                             retry=bool(reply.get("retry")))
        return reply

    def submit(self, space, benchmarks, scale="small"):
        """Submit one sweep; returns the job summary (status ``queued``)."""
        reply = self.request({"op": "submit", "space": space,
                              "benchmarks": list(benchmarks), "scale": scale})
        return reply["job"]

    def status(self, job_id=None):
        msg = {"op": "status"}
        if job_id:
            msg["job"] = job_id
        return self.request(msg)

    def results(self, job_id):
        """Every completed result blob the job has produced so far."""
        return self.request({"op": "results", "job": job_id})["results"]

    def cancel(self, job_id):
        return self.request({"op": "cancel", "job": job_id})["job"]

    def metrics(self):
        """Merged metric snapshot + OpenMetrics text from the server."""
        return self.request({"op": "metrics"})

    def shutdown(self):
        return self.request({"op": "shutdown"})

    # -- streaming ------------------------------------------------------

    def kill_connection(self):
        """Sever the live watch connection (tests simulate crashes)."""
        if self._conn is not None:
            self._conn.close()

    def watch(self, job_id, after_seq=0):
        """Yield point events then the end event; survives disconnects.

        Resumes from the last acked (yielded) seq on every reconnect.
        Raises :class:`ConnectionError` only after ``max_attempts``
        consecutive failed attempts; any successfully received event
        resets the attempt counter.
        """
        last_seq = after_seq
        attempt = 0
        while True:
            try:
                conn = LineConnection(self.address, self.timeout)
            except OSError as exc:
                attempt += 1
                if attempt >= self.max_attempts:
                    raise ConnectionError(
                        "cannot reach server at %s after %d attempts (%s)"
                        % (self.address, attempt, exc))
                self._sleep(backoff_seconds(
                    attempt, self.backoff_base, self.backoff_cap))
                continue
            self._conn = conn
            try:
                conn.send({"op": "watch", "job": job_id,
                           "after_seq": last_seq})
                reply = conn.recv()
                if reply is None:
                    raise ConnectionError("no reply to watch request")
                if not reply.get("ok"):
                    raise ServeError(reply.get("error", "watch refused"))
                while True:
                    event = conn.recv()
                    if event is None:
                        raise ConnectionError("stream closed mid-job")
                    attempt = 0
                    if event.get("type") == "point":
                        seq = int(event.get("seq") or 0)
                        if seq <= last_seq:
                            continue  # duplicate from an overlapping replay
                        last_seq = seq
                        yield event
                    elif event.get("type") == "end":
                        yield event
                        return
            except (ConnectionError, OSError, ValueError,
                    ProtocolError) as exc:
                attempt += 1
                if attempt >= self.max_attempts:
                    raise ConnectionError(
                        "watch of %s died after %d attempts (%s)"
                        % (job_id, attempt, exc))
                self._sleep(backoff_seconds(
                    attempt, self.backoff_base, self.backoff_cap))
            finally:
                self._conn = None
                conn.close()

    def wait(self, job_id, after_seq=0, on_event=None):
        """Drive :meth:`watch` to completion; returns the end summary."""
        for event in self.watch(job_id, after_seq=after_seq):
            if on_event is not None:
                on_event(event)
            if event.get("type") == "end":
                return event
        raise ConnectionError("watch stream ended without an end event")


def wait_until_up(address, timeout=10.0, interval=0.1):
    """Poll ``status`` until the server answers (scripts' readiness gate)."""
    client = ServeClient(address, timeout=2.0, max_attempts=1)
    deadline = time.time() + timeout
    while True:
        try:
            return client.status()
        except (OSError, ConnectionError, ServeError):
            if time.time() >= deadline:
                raise
            time.sleep(interval)


# re-exported for convenience: scripts often just need the constant
PROTOCOL = protocol.PROTOCOL
