"""Command-line interface: ``python -m repro.serve <command>``.

Examples::

    # start the service (foreground; SIGTERM/SIGINT shut it down)
    python -m repro.serve serve --socket /tmp/serve.sock --jobs 2

    # submit a sweep and stream its per-point results
    python -m repro.serve submit --socket /tmp/serve.sock \
        --preset smoke --benchmarks crc32,sha --scale small --watch

    # a second, overlapping sweep is served from the global cache
    python -m repro.serve submit --socket /tmp/serve.sock \
        --preset smoke --benchmarks crc32,sha --scale small --watch

    # follow a running job (resumes after reconnects), server health
    python -m repro.serve watch jdeadbeef --socket /tmp/serve.sock
    python -m repro.serve status --socket /tmp/serve.sock

    # Pareto frontier over one job's streamed results
    python -m repro.serve frontier --job jdeadbeef --socket /tmp/serve.sock

    # live terminal dashboard / OpenMetrics scrape
    python -m repro.serve dash --socket /tmp/serve.sock
    python -m repro.serve metrics --socket /tmp/serve.sock
"""

import argparse
import asyncio
import json
import sys
import time

from repro.dse import pareto, space as space_mod
from repro.dse.cli import _build_space, _parse_benchmarks
from repro.serve.client import ServeClient, ServeError, wait_until_up
from repro.serve.server import ServeServer, default_socket_path


def _add_socket(parser):
    parser.add_argument("--socket", default=None, metavar="ADDR",
                        help="server address: a unix socket path, "
                        "unix:<path>, or tcp:<host>:<port> "
                        "(default: <repo>/.serve/serve.sock)")


def _client(args):
    return ServeClient(args.socket or default_socket_path())


def _add_space_args(parser):
    parser.add_argument("--preset", default="smoke",
                        choices=list(space_mod.PRESETS),
                        help="named design space (default: smoke)")
    parser.add_argument("--isas", help="grid axis: comma list from arm,thumb,fits")
    parser.add_argument("--sizes", help="grid axis: I-cache sizes in bytes")
    parser.add_argument("--assocs", help="grid axis: associativities")
    parser.add_argument("--blocks", help="grid axis: block sizes in bytes")
    parser.add_argument("--techs", help="grid axis: tech nodes")
    parser.add_argument("--fetch-bits", help="grid axis: fetch widths in bits")
    parser.add_argument("--benchmarks", default="crc32,sha",
                        help="comma list of benchmarks, or 'all'")
    parser.add_argument("--scale", default="small", choices=("small", "full"))


def cmd_serve(args):
    server = ServeServer(
        address=args.socket or default_socket_path(),
        cache_root=args.cache,
        state_dir=args.state,
        worker_jobs=args.jobs,
        max_pending=args.max_pending,
        max_running=args.max_running,
        timeout_per_point=args.timeout,
        retries=args.retries,
        record_trajectory=args.record_trajectory,
        trajectory_path=args.history,
    )
    print("repro.serve: listening on %s (workers=%d, cache=%s)"
          % (server.address, server.worker_jobs, server.cache.root),
          file=sys.stderr)
    asyncio.run(server.serve_forever())
    print("repro.serve: shut down cleanly (%d jobs served)"
          % server.stats["jobs_submitted"], file=sys.stderr)
    return 0


def _fmt_event(event):
    if event.get("type") == "point":
        how = ("cached" if event.get("cached")
               else "coalesced" if event.get("coalesced") else "computed")
        if "error" in event:
            return "point %d/%d %s %s FAILED: %s" % (
                event["done"], event["total"], event["benchmark"],
                event["label"], event["error"])
        return "point %d/%d %s %s %s (energy %.4g J)" % (
            event["done"], event["total"], event["benchmark"],
            event["label"], how, event["metrics"]["icache_energy_j"])
    return "job %s: %s" % (event.get("job"), event.get("status"))


def _stream(client, job_id, after_seq, as_json):
    end = None
    for event in client.watch(job_id, after_seq=after_seq):
        if as_json:
            print(json.dumps(event, sort_keys=True))
        else:
            print(_fmt_event(event))
        sys.stdout.flush()
        if event.get("type") == "end":
            end = event
    if end is None:
        return 1
    summary = end["summary"]
    if not as_json:
        print("job %s %s: %d points (%d cached, %d coalesced, %d computed, "
              "%d failed)" % (summary["id"], summary["status"],
                              summary["emitted"], summary["cache_hits"],
                              summary["coalesced"], summary["computed"],
                              summary["failed_points"]), file=sys.stderr)
    return 0 if summary["status"] == "done" else 1


def cmd_submit(args):
    space = _build_space(args)
    if not len(space):
        raise SystemExit("design space is empty (every combination invalid?)")
    benchmarks = _parse_benchmarks(args.benchmarks)
    client = _client(args)
    try:
        job = client.submit(space.to_dict(), benchmarks, scale=args.scale)
    except ServeError as exc:
        print("submit refused: %s" % exc, file=sys.stderr)
        return 75 if exc.retry else 1   # EX_TEMPFAIL on backpressure
    if args.json and not args.watch:
        print(json.dumps(job, indent=2, sort_keys=True))
    else:
        print("submitted job %s: %d benchmarks x %d points = %d pairs"
              % (job["id"], len(benchmarks), len(space), job["total"]),
              file=sys.stderr)
        if not args.watch:
            print(job["id"])
    if args.watch:
        return _stream(client, job["id"], 0, args.json)
    return 0


def cmd_watch(args):
    return _stream(_client(args), args.job, args.after_seq, args.json)


def cmd_status(args):
    client = _client(args)
    if args.cancel:
        job = client.cancel(args.cancel)
        print(json.dumps(job, indent=2, sort_keys=True))
        return 0
    if args.shutdown:
        reply = client.shutdown()
        if not args.json:
            print("server shutting down (served %d jobs)"
                  % reply["server"]["stats"]["jobs_submitted"])
        else:
            print(json.dumps(reply["server"], indent=2, sort_keys=True))
        return 0
    if args.wait_up:
        reply = wait_until_up(client.address, timeout=args.wait_up)
    else:
        reply = client.status(args.job)
    if args.json:
        print(json.dumps(reply, indent=2, sort_keys=True))
        return 0
    server = reply["server"]
    cache = server["cache"]
    print("server pid %d on %s, up %.1fs" % (
        server["pid"], server["address"], server["uptime"]))
    jobs_text = ", ".join("%s %d" % (s, n)
                          for s, n in server["jobs"].items() if n)
    print("  jobs: " + (jobs_text or "none"))
    print("  queue depth %d/%d, %d points in flight" % (
        server["queue_depth"], server["max_pending"],
        server["inflight_points"]))
    ratio = cache["hit_ratio"]
    print("  cache: %d hits / %d misses (%s), %d entries at %s" % (
        cache["hits"], cache["misses"],
        "%.1f%% hit" % (100 * ratio) if ratio is not None else "no lookups",
        cache["entries"], cache["root"]))
    keys = server.get("inflight_keys") or []
    if keys:
        shown = ", ".join(k[:12] for k in keys[:6])
        more = " (+%d more)" % (len(keys) - 6) if len(keys) > 6 else ""
        print("  inflight keys: %s%s" % (shown, more))
    for line in _metric_lines(server.get("metrics") or {}):
        print("  " + line)
    if reply.get("job"):
        print(json.dumps(reply["job"], indent=2, sort_keys=True))
    return 0


def _fmt_secs(value):
    if value is None:
        return "-"
    if value >= 1.0:
        return "%.2fs" % value
    return "%.1fms" % (value * 1e3)


def _metric_lines(rows):
    """Histogram summary rows -> aligned text lines."""
    lines = []
    for name in sorted(rows):
        row = rows[name]
        if not row.get("count"):
            continue
        lines.append(
            "%-28s n=%-6d p50=%-8s p95=%-8s p99=%-8s max=%s" % (
                name, row["count"], _fmt_secs(row.get("p50")),
                _fmt_secs(row.get("p95")), _fmt_secs(row.get("p99")),
                _fmt_secs(row.get("max"))))
    return lines


def cmd_metrics(args):
    reply = _client(args).metrics()
    if args.json:
        print(json.dumps(reply["snapshot"], indent=2, sort_keys=True))
    else:
        sys.stdout.write(reply["text"])
    return 0


def _dash_frame(server, snapshot, prev, now):
    from repro.obs import metrics as metrics_mod

    cache = server["cache"]
    stats = server["stats"]
    lines = []
    lines.append("repro.serve dash — pid %d on %s, up %.1fs" % (
        server["pid"], server["address"], server["uptime"]))
    jobs_text = ", ".join("%s %d" % (s, n)
                          for s, n in server["jobs"].items() if n) or "none"
    lines.append("jobs: %s | queue %d/%d | %d points in flight" % (
        jobs_text, server["queue_depth"], server["max_pending"],
        server["inflight_points"]))
    ratio = cache["hit_ratio"]
    lines.append("cache: %d hits / %d misses (%s), %d entries" % (
        cache["hits"], cache["misses"],
        "%.1f%% hit" % (100 * ratio) if ratio is not None else "no lookups",
        cache["entries"]))
    served = stats["points_computed"] + stats["cache_hits"] + stats["coalesced"]
    rate = served / server["uptime"] if server["uptime"] > 0 else 0.0
    window = ""
    if prev is not None and now > prev[0]:
        window = ", %.1f pts/s now" % ((served - prev[1]) / (now - prev[0]))
    lines.append("throughput: %d points served (%.1f pts/s lifetime%s)"
                 % (served, rate, window))
    pool = server.get("pool")
    if pool and pool.get("workers"):
        cells = ["w%d %s %d%% (%d tasks)" % (
            w["pid"], "busy" if w["busy"] else "idle",
            int(round(100 * w["utilization"])), w["tasks"])
            for w in pool["workers"]]
        lines.append("workers: %s | %d tasks total" % (
            " | ".join(cells), pool["tasks_done"]))
    keys = server.get("inflight_keys") or []
    if keys:
        shown = ", ".join(k[:12] for k in keys[:4])
        more = " (+%d more)" % (len(keys) - 4) if len(keys) > 4 else ""
        lines.append("computing: %s%s" % (shown, more))
    hists = (snapshot.get("histograms") or {})
    rows = {name: metrics_mod.summarize(data)
            for name, data in hists.items()}
    metric_lines = _metric_lines(rows)
    if metric_lines:
        lines.append("latency:")
        lines.extend("  " + line for line in metric_lines)
    return lines, (now, served)


def cmd_dash(args):
    client = _client(args)
    prev = None
    while True:
        reply = client.status()
        met = client.metrics()
        lines, prev = _dash_frame(reply["server"], met["snapshot"],
                                  prev, time.time())
        if args.once or not sys.stdout.isatty():
            print("\n".join(lines))
        else:
            sys.stdout.write("\x1b[2J\x1b[H" + "\n".join(lines) + "\n")
        sys.stdout.flush()
        if args.once:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def cmd_frontier(args):
    from repro.dse.cli import _frontier_table

    client = _client(args)
    results = client.results(args.job)
    if not results:
        print("job %s has no completed results yet" % args.job,
              file=sys.stderr)
        return 1
    objectives = pareto.parse_objectives(args.objectives)
    report = pareto.frontier_report(results, objectives)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    obj_text = ", ".join("%s:%s" % (d, k) for k, d in objectives)
    print("objectives: %s" % obj_text)
    print()
    agg = report["aggregate"]
    print("aggregate frontier (%d points, folded over %d benchmark(s)):"
          % (len(agg), agg[0]["benchmarks"] if agg else 0))
    print(_frontier_table(
        agg, objectives, lambda row: row["metrics"],
        tag_of=lambda row: space_mod.DesignPoint.from_dict(row["point"]).label))
    for bench, rows in report["per_benchmark"].items():
        print()
        print("%s frontier (%d points):" % (bench, len(rows)))
        print(_frontier_table(
            rows, objectives, lambda row: row["metrics"],
            tag_of=lambda row: space_mod.DesignPoint.from_dict(row["point"]).label))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Sharded design-space sweep service: submit sweeps to a "
        "long-running server that dedupes overlapping work through a global "
        "content-addressed result cache and streams per-point results.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("serve", help="run the sweep server (foreground)")
    _add_socket(p)
    p.add_argument("--cache", default=None,
                   help="global result-cache directory "
                   "(default: <repo>/.serve/cache)")
    p.add_argument("--state", default=None,
                   help="server state directory (compute stores; "
                   "default: <repo>/.serve/state)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes per compute batch (default: 1)")
    p.add_argument("--max-pending", type=int, default=8,
                   help="bounded job queue: reject submits beyond this many "
                   "queued+running jobs (default: 8)")
    p.add_argument("--max-running", type=int, default=2,
                   help="jobs allowed past the queue at once (default: 2)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-point evaluation timeout in seconds")
    p.add_argument("--retries", type=int, default=1,
                   help="retries per failed/timed-out worker task (default: 1)")
    p.add_argument("--record-trajectory", action="store_true",
                   help="append each completed job's computed points to the "
                   "metrics trajectory store")
    p.add_argument("--history", default=None,
                   help="trajectory store path (with --record-trajectory)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("submit", help="submit a sweep job")
    _add_socket(p)
    _add_space_args(p)
    p.add_argument("--watch", action="store_true",
                   help="stay connected and stream the job's results")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output (NDJSON events with --watch)")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("watch", help="stream a job's per-point results")
    _add_socket(p)
    p.add_argument("job", help="job id (from submit)")
    p.add_argument("--after-seq", type=int, default=0,
                   help="resume after this event sequence number")
    p.add_argument("--json", action="store_true", help="NDJSON event output")
    p.set_defaults(func=cmd_watch)

    p = sub.add_parser("status", help="server / job status")
    _add_socket(p)
    p.add_argument("--job", default=None, help="include this job's summary")
    p.add_argument("--cancel", default=None, metavar="JOB",
                   help="cancel a queued/running job")
    p.add_argument("--shutdown", action="store_true",
                   help="ask the server to shut down cleanly")
    p.add_argument("--wait-up", type=float, default=None, metavar="SECS",
                   help="poll until the server answers (readiness gate)")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_status)

    p = sub.add_parser("frontier", help="Pareto frontier over a job's results")
    _add_socket(p)
    p.add_argument("--job", required=True, help="job id")
    p.add_argument("--objectives", default=None,
                   help="comma list of min:<metric>/max:<metric>")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_frontier)

    p = sub.add_parser("metrics", help="scrape the server's metrics op "
                       "(OpenMetrics text, or --json snapshot)")
    _add_socket(p)
    p.add_argument("--json", action="store_true",
                   help="merged snapshot JSON instead of OpenMetrics text")
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser("dash", help="live terminal dashboard (queue, cache, "
                       "throughput, latency percentiles)")
    _add_socket(p)
    p.add_argument("--interval", type=float, default=2.0,
                   help="refresh interval in seconds (default: 2)")
    p.add_argument("--once", action="store_true",
                   help="print one frame and exit (no screen clearing)")
    p.set_defaults(func=cmd_dash)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ServeError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    except (ConnectionError, FileNotFoundError) as exc:
        print("error: cannot reach server (%s) — is `python -m repro.serve "
              "serve` running?" % exc, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
