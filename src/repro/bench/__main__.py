"""CLI for the pipeline micro-benchmarks; see the package docstring."""

import argparse
import sys

from repro.bench import (
    DEFAULT_ASSOCS,
    DEFAULT_SIZES,
    bench_pipeline,
    default_output_path,
    write_blob,
)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Measure simulate-stage wall-clock (single timing run "
        "and multi-geometry sweep) and write BENCH_pipeline.json.",
    )
    parser.add_argument("--benchmark", default="crc32")
    parser.add_argument("--scale", default="small")
    parser.add_argument("--reps", type=int, default=5,
                        help="repetitions per measurement; median reported")
    parser.add_argument("--out", default=None,
                        help="output path (default: <repo>/BENCH_pipeline.json)")
    parser.add_argument("--record-trajectory", action="store_true",
                        help="append the numbers to the trajectory store "
                        "(bench.* metrics, source=bench)")
    parser.add_argument("--store", default=None,
                        help="trajectory store path override")
    args = parser.parse_args(argv)

    blob = bench_pipeline(benchmark=args.benchmark, scale=args.scale,
                          reps=args.reps)
    out = args.out or default_output_path()
    write_blob(blob, out)

    print("bench: %s/%s, %d cache points, %d reps" % (
        blob["benchmark"], blob["scale"], blob["points"], blob["reps"]))
    print("  timing sim (cold):      %8.1f ms" % (1e3 * blob["timing_sim_s"]))
    print("  sweep, per-point LRU:   %8.1f ms" % (1e3 * blob["sweep_baseline_s"]))
    print("  sweep, one-pass stack:  %8.1f ms" % (1e3 * blob["sweep_fast_s"]))
    print("  speedup:                %8.2fx" % blob["speedup"])
    print("wrote %s" % out)

    if args.record_trajectory:
        from repro.obs.regress import TrajectoryStore, current_commit, make_record

        store = TrajectoryStore(args.store)
        record = make_record(
            current_commit(), blob["benchmark"], blob["scale"],
            point_id="bench_pipeline", label="bench-pipeline",
            metrics={
                "bench.timing_sim_s": blob["timing_sim_s"],
                "bench.sweep_baseline_s": blob["sweep_baseline_s"],
                "bench.sweep_fast_s": blob["sweep_fast_s"],
                "bench.speedup": blob["speedup"],
            },
            wall_seconds=blob["timing_sim_s"],
            source="bench",
        )
        added, skipped = store.append([record])
        print("trajectory: %d added, %d skipped (%s)" % (
            added, skipped, store.path))
    return 0


if __name__ == "__main__":
    sys.exit(main())
