"""CLI for the pipeline micro-benchmarks; see the package docstring."""

import argparse
import sys

from repro.bench import (
    DEFAULT_BENCHMARKS,
    DEFAULT_SIM_SCALE,
    bench_pipeline,
    check_blob,
    default_output_path,
    write_blob,
)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Measure simulate-stage wall-clock (cache sweep cost "
        "model and cold functional sim, block vs closure engine) and "
        "write BENCH_pipeline.json.",
    )
    parser.add_argument("--benchmarks", default=",".join(DEFAULT_BENCHMARKS),
                        help="comma-separated benchmark list "
                        "(default: %(default)s)")
    parser.add_argument("--isas", default="arm",
                        help="comma-separated ISAs for the sim sections "
                        "(arm, thumb; default: arm)")
    parser.add_argument("--scale", default="small",
                        help="workload scale for the sweep section")
    parser.add_argument("--sim-scale", default=DEFAULT_SIM_SCALE,
                        help="workload scale for the sim sections "
                        "(default: %(default)s)")
    parser.add_argument("--reps", type=int, default=5,
                        help="repetitions per sweep measurement; median")
    parser.add_argument("--sim-reps", type=int, default=3,
                        help="repetitions per sim measurement; median")
    parser.add_argument("--out", default=None,
                        help="output path (default: <repo>/BENCH_pipeline.json)")
    parser.add_argument("--record-trajectory", action="store_true",
                        help="append the numbers to the trajectory store "
                        "(bench.* metrics, source=bench)")
    parser.add_argument("--store", default=None,
                        help="trajectory store path override")
    parser.add_argument("--check", action="store_true",
                        help="verify the recorded blob instead of measuring: "
                        "exit non-zero when its schema version or simulator "
                        "code hash no longer matches the working tree")
    args = parser.parse_args(argv)

    if args.check:
        path = args.out or default_output_path()
        problems = check_blob(path)
        for problem in problems:
            print("STALE: %s" % problem, file=sys.stderr)
        if problems:
            return 1
        print("%s: schema and simulator code hash match the working tree"
              % path)
        return 0

    benchmarks = tuple(b.strip() for b in args.benchmarks.split(",") if b.strip())
    isas = tuple(i.strip() for i in args.isas.split(",") if i.strip())
    blob = bench_pipeline(benchmarks=benchmarks, scale=args.scale,
                          reps=args.reps, sim_scale=args.sim_scale,
                          sim_reps=args.sim_reps, isas=isas)
    out = args.out or default_output_path()
    write_blob(blob, out)

    for section in blob["sections"]:
        if section["kind"] == "sweep":
            print("sweep: %s/%s, %d cache points, %d reps" % (
                section["benchmark"], section["scale"],
                section["points"], section["reps"]))
            print("  timing sim (cold):      %8.1f ms"
                  % (1e3 * section["timing_sim_s"]))
            print("  sweep, per-point LRU:   %8.1f ms"
                  % (1e3 * section["sweep_baseline_s"]))
            print("  sweep, one-pass stack:  %8.1f ms"
                  % (1e3 * section["sweep_fast_s"]))
            print("  speedup:                %8.2fx" % section["speedup"])
        elif section["kind"] == "sim":
            print("sim: %s/%s/%s, %d instrs, %d reps" % (
                section["benchmark"], section["isa"], section["scale"],
                section["dynamic_instructions"], section["reps"]))
            print("  block engine (cold):    %8.1f ms"
                  % (1e3 * section["block_s"]))
            print("  closure engine (cold):  %8.1f ms"
                  % (1e3 * section["closure_s"]))
            print("  speedup:                %8.2fx" % section["speedup"])
        elif section["kind"] == "pool":
            print("pool: %s/%s, %d points, jobs %s" % (
                section["benchmark"], section["scale"], section["points"],
                "/".join(str(j) for j in section["jobs"])))
            for j in section["jobs"]:
                print("  jobs=%d: fork-per-chunk  %8.1f ms,  warm pool "
                      "%8.1f ms  (%.2fx)"
                      % (j, 1e3 * section["chunk_s"][str(j)],
                         1e3 * section["pool_s"][str(j)],
                         section["speedup"][str(j)]))
            print("  modes bit-identical:    %s" % section["identical"])
        else:
            print("trace: %s, %d instrs, %d sblocks / %d segs / %d runs" % (
                section["benchmark"], section["dynamic_instructions"],
                section["num_superblocks"], section["num_segments"],
                section["num_runs"]))
            print("  emission (columnar):    %8.1f ms"
                  % (1e3 * section["emit_overhead_rle_s"]))
            print("  emission (event):       %8.1f ms  (%.2fx reduction)"
                  % (1e3 * section["emit_overhead_event_s"],
                     section["emit_reduction"]))
            print("  replay sweep (rle):     %8.1f ms  (%d points)"
                  % (1e3 * section["replay_rle_s"], section["replay_points"]))
            print("  replay sweep (event):   %8.1f ms  (%.2fx speedup)"
                  % (1e3 * section["replay_event_s"],
                     section["replay_speedup"]))
            print("  trace store entry:      %8d B" % section["store_bytes"])
    print("wrote %s" % out)

    if args.record_trajectory:
        from repro.obs.regress import TrajectoryStore, current_commit, make_record

        store = TrajectoryStore(args.store)
        commit = current_commit()
        records = []
        for section in blob["sections"]:
            if section["kind"] == "sweep":
                records.append(make_record(
                    commit, section["benchmark"], section["scale"],
                    point_id="bench_pipeline", label="bench-pipeline",
                    metrics={
                        "bench.timing_sim_s": section["timing_sim_s"],
                        "bench.sweep_baseline_s": section["sweep_baseline_s"],
                        "bench.sweep_fast_s": section["sweep_fast_s"],
                        "bench.speedup": section["speedup"],
                    },
                    wall_seconds=section["timing_sim_s"],
                    source="bench",
                ))
            elif section["kind"] == "sim":
                records.append(make_record(
                    commit, section["benchmark"], section["scale"],
                    point_id="bench_sim_%s" % section["isa"],
                    label="bench-sim-%s" % section["isa"],
                    metrics={
                        "bench.sim.block_s": section["block_s"],
                        "bench.sim.closure_s": section["closure_s"],
                        "bench.sim.speedup": section["speedup"],
                    },
                    wall_seconds=section["block_s"],
                    source="bench",
                ))
            elif section["kind"] == "pool":
                jmax = str(max(section["jobs"]))
                records.append(make_record(
                    commit, section["benchmark"], section["scale"],
                    point_id="bench_pool", label="bench-pool",
                    metrics={
                        "bench.pool.chunk_s_j%s" % jmax:
                            section["chunk_s"][jmax],
                        "bench.pool.pool_s_j%s" % jmax:
                            section["pool_s"][jmax],
                        "bench.pool.speedup_j%s" % jmax:
                            section["speedup"][jmax],
                    },
                    wall_seconds=section["pool_s"][jmax],
                    source="bench",
                ))
            else:
                records.append(make_record(
                    commit, section["benchmark"], section["scale"],
                    point_id="bench_trace_%s" % section["isa"],
                    label="bench-trace-%s" % section["isa"],
                    metrics={
                        "bench.trace.emit_overhead_rle_s":
                            section["emit_overhead_rle_s"],
                        "bench.trace.emit_overhead_event_s":
                            section["emit_overhead_event_s"],
                        "bench.trace.emit_reduction":
                            section["emit_reduction"],
                        "bench.trace.replay_rle_s": section["replay_rle_s"],
                        "bench.trace.replay_event_s":
                            section["replay_event_s"],
                        "bench.trace.replay_speedup":
                            section["replay_speedup"],
                        "bench.trace.store_bytes":
                            float(section["store_bytes"]),
                    },
                    wall_seconds=section["replay_rle_s"],
                    source="bench",
                ))
        added, skipped = store.append(records)
        print("trajectory: %d added, %d skipped (%s)" % (
            added, skipped, store.path))
    return 0


if __name__ == "__main__":
    sys.exit(main())
