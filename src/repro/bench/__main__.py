"""CLI for the pipeline micro-benchmarks; see the package docstring."""

import argparse
import sys

from repro.bench import (
    DEFAULT_BENCHMARKS,
    DEFAULT_SIM_SCALE,
    bench_pipeline,
    default_output_path,
    write_blob,
)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Measure simulate-stage wall-clock (cache sweep cost "
        "model and cold functional sim, block vs closure engine) and "
        "write BENCH_pipeline.json.",
    )
    parser.add_argument("--benchmarks", default=",".join(DEFAULT_BENCHMARKS),
                        help="comma-separated benchmark list "
                        "(default: %(default)s)")
    parser.add_argument("--isas", default="arm",
                        help="comma-separated ISAs for the sim sections "
                        "(arm, thumb; default: arm)")
    parser.add_argument("--scale", default="small",
                        help="workload scale for the sweep section")
    parser.add_argument("--sim-scale", default=DEFAULT_SIM_SCALE,
                        help="workload scale for the sim sections "
                        "(default: %(default)s)")
    parser.add_argument("--reps", type=int, default=5,
                        help="repetitions per sweep measurement; median")
    parser.add_argument("--sim-reps", type=int, default=3,
                        help="repetitions per sim measurement; median")
    parser.add_argument("--out", default=None,
                        help="output path (default: <repo>/BENCH_pipeline.json)")
    parser.add_argument("--record-trajectory", action="store_true",
                        help="append the numbers to the trajectory store "
                        "(bench.* metrics, source=bench)")
    parser.add_argument("--store", default=None,
                        help="trajectory store path override")
    args = parser.parse_args(argv)

    benchmarks = tuple(b.strip() for b in args.benchmarks.split(",") if b.strip())
    isas = tuple(i.strip() for i in args.isas.split(",") if i.strip())
    blob = bench_pipeline(benchmarks=benchmarks, scale=args.scale,
                          reps=args.reps, sim_scale=args.sim_scale,
                          sim_reps=args.sim_reps, isas=isas)
    out = args.out or default_output_path()
    write_blob(blob, out)

    for section in blob["sections"]:
        if section["kind"] == "sweep":
            print("sweep: %s/%s, %d cache points, %d reps" % (
                section["benchmark"], section["scale"],
                section["points"], section["reps"]))
            print("  timing sim (cold):      %8.1f ms"
                  % (1e3 * section["timing_sim_s"]))
            print("  sweep, per-point LRU:   %8.1f ms"
                  % (1e3 * section["sweep_baseline_s"]))
            print("  sweep, one-pass stack:  %8.1f ms"
                  % (1e3 * section["sweep_fast_s"]))
            print("  speedup:                %8.2fx" % section["speedup"])
        else:
            print("sim: %s/%s/%s, %d instrs, %d reps" % (
                section["benchmark"], section["isa"], section["scale"],
                section["dynamic_instructions"], section["reps"]))
            print("  block engine (cold):    %8.1f ms"
                  % (1e3 * section["block_s"]))
            print("  closure engine (cold):  %8.1f ms"
                  % (1e3 * section["closure_s"]))
            print("  speedup:                %8.2fx" % section["speedup"])
    print("wrote %s" % out)

    if args.record_trajectory:
        from repro.obs.regress import TrajectoryStore, current_commit, make_record

        store = TrajectoryStore(args.store)
        commit = current_commit()
        records = []
        for section in blob["sections"]:
            if section["kind"] == "sweep":
                records.append(make_record(
                    commit, section["benchmark"], section["scale"],
                    point_id="bench_pipeline", label="bench-pipeline",
                    metrics={
                        "bench.timing_sim_s": section["timing_sim_s"],
                        "bench.sweep_baseline_s": section["sweep_baseline_s"],
                        "bench.sweep_fast_s": section["sweep_fast_s"],
                        "bench.speedup": section["speedup"],
                    },
                    wall_seconds=section["timing_sim_s"],
                    source="bench",
                ))
            else:
                records.append(make_record(
                    commit, section["benchmark"], section["scale"],
                    point_id="bench_sim_%s" % section["isa"],
                    label="bench-sim-%s" % section["isa"],
                    metrics={
                        "bench.sim.block_s": section["block_s"],
                        "bench.sim.closure_s": section["closure_s"],
                        "bench.sim.speedup": section["speedup"],
                    },
                    wall_seconds=section["block_s"],
                    source="bench",
                ))
        added, skipped = store.append(records)
        print("trajectory: %d added, %d skipped (%s)" % (
            added, skipped, store.path))
    return 0


if __name__ == "__main__":
    sys.exit(main())
