"""Pipeline micro-benchmarks (``python -m repro.bench``).

Measures the wall-clock cost of the simulate stage and writes
``BENCH_pipeline.json`` at the repo root.  The blob (schema
``repro.bench/v2``) is a list of *sections*, one measurement unit each:

``sweep`` section (one per benchmark)
    The cache-sweep cost model comparison from PR 4: one cold
    :func:`simulate_timing` call (``timing_sim_s``), a multi-geometry
    sweep evaluated the pre-batching way — one full per-point LRU
    timing simulation per cache point (``sweep_baseline_s``) — and the
    same sweep through
    :func:`~repro.sim.pipeline.simulate_timing_multi` — one shared
    precomputation plus a single stack-distance pass answering every
    geometry at once (``sweep_fast_s``).

``sim`` section (one per benchmark x ISA)
    Cold functional simulation, block-compiled engine vs the classic
    per-instruction closure loop (``block_s`` / ``closure_s`` and
    their ratio ``speedup``).  Every repetition builds a fresh
    simulator, so block codegen cost is *included* — this is the
    cold-trace cost a DSE sweep actually pays on a store miss.

Each measurement is repeated ``reps`` times and the median is reported,
so one scheduler hiccup cannot skew the result.  ``--record-trajectory``
appends the numbers (under the drift-checked ``bench.`` metric prefix)
to the trajectory store for cross-commit tracking.
"""

import json
import os
import statistics
import time

from repro.compiler import compile_arm, compile_thumb
from repro.sim.functional import ArmSimulator, cached_run
from repro.sim.functional.thumb_sim import ThumbSimulator
from repro.sim.pipeline import TimingConfig, simulate_timing, simulate_timing_multi
from repro.workloads import get_workload

BENCH_SCHEMA = "repro.bench/v2"

#: the default sweep: 18 cache points (6 sizes x 3 associativities) on
#: one ISA — comfortably above the >= 8-point floor the acceptance
#: criterion asks for, and the shape a DSE cache sweep actually has.
DEFAULT_SIZES = (1024, 2048, 4096, 8192, 16384, 32768)
DEFAULT_ASSOCS = (1, 2, 4)

#: default multi-benchmark set: two loop-dominated workloads where
#: block compilation shines, plus the paper's canonical crc32.
DEFAULT_BENCHMARKS = ("crc32", "sha", "bitcount")

#: cold-sim sections run at full scale: the block engine's codegen cost
#: must amortize over a realistic dynamic instruction count, exactly as
#: it does on a trace-store miss during a DSE sweep.
DEFAULT_SIM_SCALE = "full"

_SIMULATORS = {"arm": (compile_arm, ArmSimulator),
               "thumb": (compile_thumb, ThumbSimulator)}


def _median_of(fn, reps):
    samples = []
    for _rep in range(reps):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def _cold(result):
    """Drop every per-trace timing memo, as if the trace were fresh."""
    result.__dict__.pop("_timing_precomps", None)


def bench_sweep_section(benchmark, scale="small", reps=5,
                        sizes=DEFAULT_SIZES, assocs=DEFAULT_ASSOCS):
    """One ``sweep`` section: cache-sweep cost, batched vs per-point."""
    wl = get_workload(benchmark)
    image = compile_arm(wl.build_module(scale))
    # warm trace: the persistent store serves repeat functional runs
    result = cached_run("arm", image, ArmSimulator(image).run,
                        benchmark=benchmark, scale=scale)
    if result.exit_code != wl.reference(scale):
        raise AssertionError("%s: checksum mismatch" % benchmark)

    specs = [(size, TimingConfig(icache_assoc=assoc))
             for size in sizes for assoc in assocs]

    def timing_sim():
        _cold(result)
        simulate_timing(result, 16 * 1024)

    def sweep_baseline():
        # the pre-batching cost model: every point pays the full
        # geometry-invariant precomputation and its own LRU simulation
        for size, config in specs:
            _cold(result)
            simulate_timing(result, size, config)

    def sweep_fast():
        _cold(result)
        simulate_timing_multi(result, specs)

    timing_sim_s = _median_of(timing_sim, reps)
    sweep_baseline_s = _median_of(sweep_baseline, reps)
    sweep_fast_s = _median_of(sweep_fast, reps)

    return {
        "kind": "sweep",
        "benchmark": benchmark,
        "scale": scale,
        "isa": "arm",
        "points": len(specs),
        "reps": reps,
        "dynamic_instructions": result.dynamic_instructions,
        "timing_sim_s": timing_sim_s,
        "sweep_baseline_s": sweep_baseline_s,
        "sweep_fast_s": sweep_fast_s,
        "speedup": sweep_baseline_s / sweep_fast_s if sweep_fast_s else 0.0,
    }


def bench_sim_section(benchmark, isa="arm", scale=DEFAULT_SIM_SCALE, reps=3):
    """One ``sim`` section: cold functional sim, block vs closure."""
    compiler, simulator = _SIMULATORS[isa]
    wl = get_workload(benchmark)
    image = compiler(wl.build_module(scale))
    expected = wl.reference(scale)
    checked = simulator(image, engine="block").run()
    if checked.exit_code != expected:
        raise AssertionError("%s/%s: checksum mismatch" % (benchmark, isa))

    block_s = _median_of(
        lambda: simulator(image, engine="block").run(), reps)
    closure_s = _median_of(
        lambda: simulator(image, engine="closure").run(), reps)
    return {
        "kind": "sim",
        "benchmark": benchmark,
        "isa": isa,
        "scale": scale,
        "reps": reps,
        "dynamic_instructions": checked.dynamic_instructions,
        "block_s": block_s,
        "closure_s": closure_s,
        "speedup": closure_s / block_s if block_s else 0.0,
    }


def bench_pipeline(benchmarks=DEFAULT_BENCHMARKS, scale="small", reps=5,
                   sim_scale=DEFAULT_SIM_SCALE, sim_reps=3, isas=("arm",),
                   sizes=DEFAULT_SIZES, assocs=DEFAULT_ASSOCS):
    """Run every section; returns the v2 blob (not yet on disk).

    The sweep section runs once (on the first benchmark — it measures
    the cache-model batching, which is ISA- and benchmark-agnostic);
    sim sections run for every (benchmark, ISA) pair.
    """
    sections = [bench_sweep_section(benchmarks[0], scale=scale, reps=reps,
                                    sizes=sizes, assocs=assocs)]
    for benchmark in benchmarks:
        for isa in isas:
            sections.append(bench_sim_section(
                benchmark, isa=isa, scale=sim_scale, reps=sim_reps))
    return {
        "schema": BENCH_SCHEMA,
        "recorded_at": time.time(),
        "sections": sections,
    }


def default_output_path():
    from repro.harness.runner import _repo_root

    return os.path.join(_repo_root(), "BENCH_pipeline.json")


def write_blob(blob, path):
    tmp = path + ".tmp.%d" % os.getpid()
    with open(tmp, "w") as fh:
        json.dump(blob, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
