"""Pipeline micro-benchmarks (``python -m repro.bench``).

Measures the wall-clock cost of the simulate stage and writes
``BENCH_pipeline.json`` at the repo root.  The blob (schema
``repro.bench/v4``) is a list of *sections*, one measurement unit each:

``sweep`` section (one per benchmark)
    The cache-sweep cost model comparison from PR 4: one cold
    :func:`simulate_timing` call (``timing_sim_s``), a multi-geometry
    sweep evaluated the pre-batching way — one full per-point LRU
    timing simulation per cache point (``sweep_baseline_s``) — and the
    same sweep through
    :func:`~repro.sim.pipeline.simulate_timing_multi` — one shared
    precomputation plus a single stack-distance pass answering every
    geometry at once (``sweep_fast_s``).

``sim`` section (one per benchmark x ISA)
    Cold functional simulation, block-compiled engine vs the classic
    per-instruction closure loop (``block_s`` / ``closure_s`` and
    their ratio ``speedup``).  Every repetition builds a fresh
    simulator, so block codegen cost is *included* — this is the
    cold-trace cost a DSE sweep actually pays on a store miss.

``pool`` section (one, on the first benchmark)
    The DSE scheduler cost comparison from the warm-worker-pool change:
    the same short sweep (18 cache-geometry points on one ISA) timed
    end to end through ``repro.dse.scheduler.sweep`` in both dispatch
    modes at ``jobs`` in {1, 2, 4} — the legacy fork-per-chunk path
    (``REPRO_DSE_POOL=chunk``, every chunk pays fork + trace decode +
    timing precompute) vs the persistent warm pool (``=warm``, workers
    keep functional results, timing memos, and shared-memory trace
    planes across chunks).  ``speedup`` maps each jobs value to
    chunk-time / pool-time; ``identical`` records that the two modes'
    jobs=4 result stores carried bit-identical metrics.  Pool timings
    are best-of-2 so the measured number is the *warm* cost — the cost
    the sweep service pays for every batch after the first.

``trace`` section (one per benchmark)
    The columnar-trace costs.  *Emission*: cold full-scale sims whose
    builders discard ``build_result`` — a no-op builder isolates raw
    execution, so ``emit_overhead_*_s`` is the pure cost of recording
    the trace, columnar (packed/batched) vs the pre-columnar
    event-stream layout, measured as min-of-``reps`` interleaved CPU
    time (wall clock is useless under container contention).
    *Replay*: the warm cache sweep over the stored trace, run-length
    stack-distance replay (``REPRO_TRACE_REPLAY=rle``) vs the
    event-stream reference path (``=event``).  *Store*: the on-disk
    size of the benchmark's small-scale trace-store entry
    (``store_bytes``).

Wall-clock measurements are repeated ``reps`` times and the median is
reported, so one scheduler hiccup cannot skew the result.
``--record-trajectory`` appends the numbers (under the drift-checked
``bench.`` metric prefix) to the trajectory store for cross-commit
tracking, and the blob records the simulator ``code_hash`` so
``--check`` can tell when it went stale.
"""

import gc
import json
import os
import statistics
import tempfile
import time

from repro.compiler import compile_arm, compile_thumb
from repro.sim.functional import ArmSimulator, cached_run
from repro.sim.functional import arm_sim, engine
from repro.sim.functional.store import TraceStore, code_version_hash
from repro.sim.functional.thumb_sim import ThumbSimulator
from repro.sim.functional.trace import (
    EventTraceBuilder,
    NullTraceBuilder,
    TraceBuilder,
)
from repro.sim.pipeline import TimingConfig, simulate_timing, simulate_timing_multi
from repro.workloads import get_workload

BENCH_SCHEMA = "repro.bench/v4"

#: the default sweep: 18 cache points (6 sizes x 3 associativities) on
#: one ISA — comfortably above the >= 8-point floor the acceptance
#: criterion asks for, and the shape a DSE cache sweep actually has.
DEFAULT_SIZES = (1024, 2048, 4096, 8192, 16384, 32768)
DEFAULT_ASSOCS = (1, 2, 4)

#: default multi-benchmark set: two loop-dominated workloads where
#: block compilation shines, plus the paper's canonical crc32.
DEFAULT_BENCHMARKS = ("crc32", "sha", "bitcount")

#: cold-sim sections run at full scale: the block engine's codegen cost
#: must amortize over a realistic dynamic instruction count, exactly as
#: it does on a trace-store miss during a DSE sweep.
DEFAULT_SIM_SCALE = "full"

_SIMULATORS = {"arm": (compile_arm, ArmSimulator),
               "thumb": (compile_thumb, ThumbSimulator)}


def _median_of(fn, reps):
    samples = []
    for _rep in range(reps):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def _cold(result):
    """Drop every per-trace timing memo, as if the trace were fresh."""
    result.__dict__.pop("_timing_precomps", None)


def bench_sweep_section(benchmark, scale="small", reps=5,
                        sizes=DEFAULT_SIZES, assocs=DEFAULT_ASSOCS):
    """One ``sweep`` section: cache-sweep cost, batched vs per-point."""
    wl = get_workload(benchmark)
    image = compile_arm(wl.build_module(scale))
    # warm trace: the persistent store serves repeat functional runs
    result = cached_run("arm", image, ArmSimulator(image).run,
                        benchmark=benchmark, scale=scale)
    if result.exit_code != wl.reference(scale):
        raise AssertionError("%s: checksum mismatch" % benchmark)

    specs = [(size, TimingConfig(icache_assoc=assoc))
             for size in sizes for assoc in assocs]

    def timing_sim():
        _cold(result)
        simulate_timing(result, 16 * 1024)

    def sweep_baseline():
        # the pre-batching cost model: every point pays the full
        # geometry-invariant precomputation and its own LRU simulation
        for size, config in specs:
            _cold(result)
            simulate_timing(result, size, config)

    def sweep_fast():
        _cold(result)
        simulate_timing_multi(result, specs)

    timing_sim_s = _median_of(timing_sim, reps)
    sweep_baseline_s = _median_of(sweep_baseline, reps)
    sweep_fast_s = _median_of(sweep_fast, reps)

    return {
        "kind": "sweep",
        "benchmark": benchmark,
        "scale": scale,
        "isa": "arm",
        "points": len(specs),
        "reps": reps,
        "dynamic_instructions": result.dynamic_instructions,
        "timing_sim_s": timing_sim_s,
        "sweep_baseline_s": sweep_baseline_s,
        "sweep_fast_s": sweep_fast_s,
        "speedup": sweep_baseline_s / sweep_fast_s if sweep_fast_s else 0.0,
    }


def bench_sim_section(benchmark, isa="arm", scale=DEFAULT_SIM_SCALE, reps=3):
    """One ``sim`` section: cold functional sim, block vs closure."""
    compiler, simulator = _SIMULATORS[isa]
    wl = get_workload(benchmark)
    image = compiler(wl.build_module(scale))
    expected = wl.reference(scale)
    checked = simulator(image, engine="block").run()
    if checked.exit_code != expected:
        raise AssertionError("%s/%s: checksum mismatch" % (benchmark, isa))

    block_s = _median_of(
        lambda: simulator(image, engine="block").run(), reps)
    closure_s = _median_of(
        lambda: simulator(image, engine="closure").run(), reps)
    return {
        "kind": "sim",
        "benchmark": benchmark,
        "isa": isa,
        "scale": scale,
        "reps": reps,
        "dynamic_instructions": checked.dynamic_instructions,
        "block_s": block_s,
        "closure_s": closure_s,
        "speedup": closure_s / block_s if block_s else 0.0,
    }


# emission-only builders: identical recording cost, but build_result
# is discarded so the measurement isolates trace *emission* from the
# (lazily paid, layout-dependent) result encoding.


class _EmitOnlyColumnar(TraceBuilder):
    def build_result(self, image, exit_code, memory):
        return None


class _EmitOnlyEvent(EventTraceBuilder):
    def build_result(self, image, exit_code, memory):
        return None


class _EmitOnlyNull(NullTraceBuilder):
    def build_result(self, image, exit_code, memory):
        return None


_EMIT_BUILDERS = (("null", _EmitOnlyNull),
                  ("rle", _EmitOnlyColumnar),
                  ("event", _EmitOnlyEvent))


def _emission_costs(image, reps):
    """Min-of-``reps`` interleaved CPU time of one cold block-engine
    sim per builder, program construction outside the timed region."""
    best = {name: float("inf") for name, _cls in _EMIT_BUILDERS}
    for _rep in range(reps):
        for name, cls in _EMIT_BUILDERS:
            arm_sim.TraceBuilder = cls
            try:
                program = arm_sim.build_program(image)
            finally:
                arm_sim.TraceBuilder = TraceBuilder
            gc.collect()
            gc.disable()
            t0 = time.process_time()
            engine.execute(program, 200_000_000, "block")
            dt = time.process_time() - t0
            gc.enable()
            best[name] = min(best[name], dt)
    return best


def _store_entry_bytes(image, result):
    """On-disk size of one trace-store entry (payload + manifest)."""
    with tempfile.TemporaryDirectory() as tmp:
        store = TraceStore(tmp)
        key = store.save(image, result)
        npz = os.path.getsize(os.path.join(tmp, key + ".npz"))
        manifest = os.path.getsize(os.path.join(tmp, key + ".json"))
    return npz, manifest


def _cpu_min_of(fn, reps):
    best = float("inf")
    for _rep in range(reps):
        gc.collect()
        gc.disable()
        t0 = time.process_time()
        fn()
        best = min(best, time.process_time() - t0)
        gc.enable()
    return best


def bench_trace_section(benchmark, scale="small", sim_scale=DEFAULT_SIM_SCALE,
                        reps=3, sizes=DEFAULT_SIZES, assocs=DEFAULT_ASSOCS):
    """One ``trace`` section: emission overhead, replay time, store size."""
    wl = get_workload(benchmark)

    # emission: cold full-scale sims, columnar vs event-stream builders,
    # with a discard-everything builder as the execution-only floor
    full_image = compile_arm(wl.build_module(sim_scale))
    checked = ArmSimulator(full_image, engine="block").run()
    if checked.exit_code != wl.reference(sim_scale):
        raise AssertionError("%s: checksum mismatch" % benchmark)
    costs = _emission_costs(full_image, reps)
    emit_rle = costs["rle"] - costs["null"]
    emit_event = costs["event"] - costs["null"]

    # replay: the warm sweep over the (store-cached) small-scale trace,
    # run-length stack-distance pass vs the event-stream reference
    image = compile_arm(wl.build_module(scale))
    result = cached_run("arm", image, ArmSimulator(image).run,
                        benchmark=benchmark, scale=scale)
    if result.exit_code != wl.reference(scale):
        raise AssertionError("%s: checksum mismatch" % benchmark)
    specs = [(size, TimingConfig(icache_assoc=assoc))
             for size in sizes for assoc in assocs]

    def sweep(mode):
        def run():
            _cold(result)
            simulate_timing_multi(result, specs)

        saved = os.environ.get("REPRO_TRACE_REPLAY")
        os.environ["REPRO_TRACE_REPLAY"] = mode
        try:
            return _cpu_min_of(run, reps)
        finally:
            if saved is None:
                os.environ.pop("REPRO_TRACE_REPLAY", None)
            else:
                os.environ["REPRO_TRACE_REPLAY"] = saved

    replay_rle_s = sweep("rle")
    replay_event_s = sweep("event")
    npz_bytes, manifest_bytes = _store_entry_bytes(image, result)

    return {
        "kind": "trace",
        "benchmark": benchmark,
        "isa": "arm",
        "scale": scale,
        "sim_scale": sim_scale,
        "reps": reps,
        "dynamic_instructions": checked.dynamic_instructions,
        "num_superblocks": len(result.block_starts),
        "num_segments": len(result.seg_ids),
        "num_runs": result.num_runs,
        "emit_null_s": costs["null"],
        "emit_overhead_rle_s": emit_rle,
        "emit_overhead_event_s": emit_event,
        "emit_reduction": emit_event / emit_rle if emit_rle > 0 else 0.0,
        "replay_points": len(specs),
        "replay_rle_s": replay_rle_s,
        "replay_event_s": replay_event_s,
        "replay_speedup": (replay_event_s / replay_rle_s
                           if replay_rle_s else 0.0),
        "store_npz_bytes": npz_bytes,
        "store_manifest_bytes": manifest_bytes,
        "store_bytes": npz_bytes + manifest_bytes,
    }


def bench_pool_section(benchmark="crc32", scale="small", jobs_list=(1, 2, 4),
                       sizes=DEFAULT_SIZES, assocs=DEFAULT_ASSOCS):
    """One ``pool`` section: sweep dispatch cost, warm pool vs fork."""
    from repro.dse import evaluate as dse_evaluate
    from repro.dse import scheduler
    from repro.dse.space import DesignSpace
    from repro.dse.store import ResultStore
    from repro.sim.functional.store import clear_plane_cache

    wl = get_workload(benchmark)
    image = compile_arm(wl.build_module(scale))
    # prime the persistent trace store: both modes then replay the same
    # stored trace, so the comparison isolates dispatch overhead
    result = cached_run("arm", image, ArmSimulator(image).run,
                        benchmark=benchmark, scale=scale)
    if result.exit_code != wl.reference(scale):
        raise AssertionError("%s: checksum mismatch" % benchmark)

    space = DesignSpace.grid(name="bench-pool", isas=("arm",),
                             sizes=sizes, assocs=assocs)
    jobs_list = tuple(jobs_list)
    jobs_max = max(jobs_list)

    def timed_sweep(mode, jobs, store_dir):
        # drop coordinator-side memo state before every timed run: the
        # fork path inherits it copy-on-write, which would hand chunk
        # workers a pre-decoded trace and erase the very cost the warm
        # pool exists to amortize
        dse_evaluate.clear_cache()
        clear_plane_cache()
        saved = os.environ.get("REPRO_DSE_POOL")
        os.environ["REPRO_DSE_POOL"] = mode
        try:
            t0 = time.perf_counter()
            summary = scheduler.sweep(space, [benchmark], scale=scale,
                                      jobs=jobs, store=store_dir)
            dt = time.perf_counter() - t0
        finally:
            if saved is None:
                os.environ.pop("REPRO_DSE_POOL", None)
            else:
                os.environ["REPRO_DSE_POOL"] = saved
        if summary["failed"] or summary["evaluated"] != len(space):
            raise AssertionError("%s sweep (%s, jobs=%d) incomplete: %s"
                                 % (benchmark, mode, jobs, summary))
        return dt

    chunk_s, pool_s = {}, {}
    with tempfile.TemporaryDirectory() as tmp:
        run_id = 0
        for mode, out in (("chunk", chunk_s), ("warm", pool_s)):
            for jobs in jobs_list:
                # two runs each, keep the best: for the pool that makes
                # the number the *warm* cost (first run pays spawn); for
                # the fork path it evens out scheduler noise the same way
                best = float("inf")
                for _rep in range(2):
                    run_id += 1
                    store_dir = os.path.join(tmp, "run%d" % run_id)
                    best = min(best, timed_sweep(mode, jobs, store_dir))
                    if mode == "chunk" and jobs == jobs_max:
                        chunk_store = store_dir
                    elif mode == "warm" and jobs == jobs_max:
                        pool_store = store_dir
                out[jobs] = best

        # bit-identity between the two modes' jobs-max stores
        a = {(r["benchmark"], r["point"]["id"]): r["metrics"]
             for r in ResultStore(chunk_store).iter_results()}
        b = {(r["benchmark"], r["point"]["id"]): r["metrics"]
             for r in ResultStore(pool_store).iter_results()}
        identical = bool(a) and a == b

    return {
        "kind": "pool",
        "benchmark": benchmark,
        "scale": scale,
        "isa": "arm",
        "points": len(space),
        "jobs": list(jobs_list),
        "chunk_s": {str(j): chunk_s[j] for j in jobs_list},
        "pool_s": {str(j): pool_s[j] for j in jobs_list},
        "speedup": {str(j): (chunk_s[j] / pool_s[j] if pool_s[j] else 0.0)
                    for j in jobs_list},
        "identical": identical,
    }


def bench_pipeline(benchmarks=DEFAULT_BENCHMARKS, scale="small", reps=5,
                   sim_scale=DEFAULT_SIM_SCALE, sim_reps=3, isas=("arm",),
                   sizes=DEFAULT_SIZES, assocs=DEFAULT_ASSOCS):
    """Run every section; returns the v4 blob (not yet on disk).

    The sweep and pool sections run once (on the first benchmark — they
    measure cache-model batching and scheduler dispatch, which are ISA-
    and benchmark-agnostic); sim sections run for every (benchmark,
    ISA) pair and trace sections for every benchmark (trace shape
    drives both emission and replay cost, so crc32's numbers say
    nothing about bitcount's).
    """
    sections = [bench_sweep_section(benchmarks[0], scale=scale, reps=reps,
                                    sizes=sizes, assocs=assocs)]
    for benchmark in benchmarks:
        for isa in isas:
            sections.append(bench_sim_section(
                benchmark, isa=isa, scale=sim_scale, reps=sim_reps))
    for benchmark in benchmarks:
        sections.append(bench_trace_section(
            benchmark, scale=scale, sim_scale=sim_scale, reps=reps,
            sizes=sizes, assocs=assocs))
    sections.append(bench_pool_section(benchmarks[0], scale=scale,
                                       sizes=sizes, assocs=assocs))
    return {
        "schema": BENCH_SCHEMA,
        "recorded_at": time.time(),
        "code_hash": code_version_hash(),
        "sections": sections,
    }


def check_blob(path):
    """Verify a recorded blob matches the working tree.

    Returns a list of human-readable mismatch descriptions — empty when
    the recording is current.  A missing file, a stale ``schema``, or a
    simulator ``code_hash`` that no longer matches the sources all make
    the recording unusable as a comparison baseline.
    """
    problems = []
    try:
        with open(path) as fh:
            blob = json.load(fh)
    except OSError as exc:
        return ["%s: cannot read recorded benchmark blob (%s)" % (path, exc)]
    except ValueError as exc:
        return ["%s: recorded benchmark blob is not valid JSON (%s)"
                % (path, exc)]
    schema = blob.get("schema")
    if schema != BENCH_SCHEMA:
        problems.append(
            "%s: recorded schema %r does not match %r — re-record with "
            "`python -m repro.bench`" % (path, schema, BENCH_SCHEMA))
    recorded = blob.get("code_hash")
    current = code_version_hash()
    if recorded != current:
        problems.append(
            "%s: recorded simulator code hash %s does not match the "
            "working tree (%s) — the simulator changed since the numbers "
            "were taken; re-record with `python -m repro.bench`"
            % (path, recorded, current))
    return problems


def default_output_path():
    from repro.harness.runner import _repo_root

    return os.path.join(_repo_root(), "BENCH_pipeline.json")


def write_blob(blob, path):
    tmp = path + ".tmp.%d" % os.getpid()
    with open(tmp, "w") as fh:
        json.dump(blob, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
