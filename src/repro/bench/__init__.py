"""Pipeline micro-benchmarks (``python -m repro.bench``).

Measures the wall-clock cost of the simulate stage on a smoke preset
and writes ``BENCH_pipeline.json`` at the repo root:

* ``timing_sim_s`` — one cold :func:`simulate_timing` call (geometry-
  invariant precomputation included), the paper-default configuration;
* ``sweep_baseline_s`` — a multi-geometry cache sweep evaluated the
  pre-batching way: one full per-point LRU timing simulation per cache
  point, nothing shared between points;
* ``sweep_fast_s`` — the same sweep through
  :func:`~repro.sim.pipeline.simulate_timing_multi`: one shared
  precomputation plus a single stack-distance pass answering every
  geometry at once.

Each measurement is repeated ``reps`` times and the median is reported,
so one scheduler hiccup cannot skew the result.  ``--record-trajectory``
appends the numbers (under the drift-checked ``bench.`` metric prefix)
to the trajectory store for cross-commit tracking.
"""

import json
import os
import statistics
import time

from repro.compiler import compile_arm
from repro.sim.functional import ArmSimulator, cached_run
from repro.sim.pipeline import TimingConfig, simulate_timing, simulate_timing_multi
from repro.workloads import get_workload

BENCH_SCHEMA = "repro.bench/v1"

#: the default sweep: 18 cache points (6 sizes x 3 associativities) on
#: one ISA — comfortably above the >= 8-point floor the acceptance
#: criterion asks for, and the shape a DSE cache sweep actually has.
DEFAULT_SIZES = (1024, 2048, 4096, 8192, 16384, 32768)
DEFAULT_ASSOCS = (1, 2, 4)


def _median_of(fn, reps):
    samples = []
    for _rep in range(reps):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def _cold(result):
    """Drop every per-trace timing memo, as if the trace were fresh."""
    result.__dict__.pop("_timing_precomps", None)


def bench_pipeline(benchmark="crc32", scale="small", reps=5,
                   sizes=DEFAULT_SIZES, assocs=DEFAULT_ASSOCS):
    """Run the micro-benchmark; returns the result blob (not yet on disk)."""
    wl = get_workload(benchmark)
    image = compile_arm(wl.build_module(scale))
    # warm trace: the persistent store serves repeat functional runs
    result = cached_run("arm", image, ArmSimulator(image).run,
                        benchmark=benchmark, scale=scale)
    if result.exit_code != wl.reference(scale):
        raise AssertionError("%s: checksum mismatch" % benchmark)

    specs = [(size, TimingConfig(icache_assoc=assoc))
             for size in sizes for assoc in assocs]

    def timing_sim():
        _cold(result)
        simulate_timing(result, 16 * 1024)

    def sweep_baseline():
        # the pre-batching cost model: every point pays the full
        # geometry-invariant precomputation and its own LRU simulation
        for size, config in specs:
            _cold(result)
            simulate_timing(result, size, config)

    def sweep_fast():
        _cold(result)
        simulate_timing_multi(result, specs)

    timing_sim_s = _median_of(timing_sim, reps)
    sweep_baseline_s = _median_of(sweep_baseline, reps)
    sweep_fast_s = _median_of(sweep_fast, reps)

    return {
        "schema": BENCH_SCHEMA,
        "benchmark": benchmark,
        "scale": scale,
        "isa": "arm",
        "points": len(specs),
        "reps": reps,
        "dynamic_instructions": result.dynamic_instructions,
        "timing_sim_s": timing_sim_s,
        "sweep_baseline_s": sweep_baseline_s,
        "sweep_fast_s": sweep_fast_s,
        "speedup": sweep_baseline_s / sweep_fast_s if sweep_fast_s else 0.0,
        "recorded_at": time.time(),
    }


def default_output_path():
    from repro.harness.runner import _repo_root

    return os.path.join(_repo_root(), "BENCH_pipeline.json")


def write_blob(blob, path):
    tmp = path + ".tmp.%d" % os.getpid()
    with open(tmp, "w") as fh:
        json.dump(blob, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
