"""Block-level liveness analysis over IR virtual registers."""

from repro.ir.instructions import Call


class LivenessInfo:
    """Result of :func:`analyze`: per-block live-in/out plus positions.

    Positions are global instruction indices over the function's blocks
    in layout order; they are what the register allocator builds live
    intervals from.
    """

    def __init__(self, func):
        self.func = func
        self.block_range = {}  # label -> (first_index, last_index)
        self.live_in = {}
        self.live_out = {}
        self.call_positions = []
        index = 0
        for blk in func.blocks:
            first = index
            for ins in blk.instrs:
                if isinstance(ins, Call):
                    self.call_positions.append(index)
                index += 1
            self.block_range[blk.label] = (first, index - 1)
        self.num_positions = index


def _block_use_def(block):
    use = set()
    defined = set()
    for ins in block.instrs:
        for v in ins.uses():
            if v.id not in defined:
                use.add(v.id)
        for v in ins.defs():
            defined.add(v.id)
    return use, defined


def analyze(func):
    """Compute liveness for ``func``; returns a :class:`LivenessInfo`.

    Raises ``ValueError`` if a non-argument virtual register can be read
    before any definition reaches it (live into the entry block) — the
    most common hand-built-IR bug.
    """
    info = LivenessInfo(func)
    use = {}
    defined = {}
    for blk in func.blocks:
        use[blk.label], defined[blk.label] = _block_use_def(blk)
        info.live_in[blk.label] = set()
        info.live_out[blk.label] = set()

    changed = True
    order = [blk.label for blk in reversed(func.blocks)]
    succs = {blk.label: blk.successors() for blk in func.blocks}
    while changed:
        changed = False
        for label in order:
            out = set()
            for s in succs[label]:
                out |= info.live_in[s]
            new_in = use[label] | (out - defined[label])
            if out != info.live_out[label] or new_in != info.live_in[label]:
                info.live_out[label] = out
                info.live_in[label] = new_in
                changed = True

    arg_ids = set(range(func.num_args))
    undefined = info.live_in[func.blocks[0].label] - arg_ids
    if undefined:
        raise ValueError(
            "@%s: virtual registers used before definition: %s"
            % (func.name, sorted(undefined))
        )
    return info
