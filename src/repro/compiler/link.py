"""Linker: lay out function code and global data, resolve relocations.

Memory map (byte addresses)::

    0x0000_0000 .. CODE_BASE-1   unmapped guard (null derefs fault)
    CODE_BASE ..                 code, one function after another
    (code end, 8-aligned) ..     data (module globals, zero-filled tails)
    ... up to DATA_LIMIT         (global addresses must fit two 8-bit
                                  immediate chunks, i.e. 16 bits)
    STACK_TOP                    initial stack pointer (grows down)

The paper's experiments only need the *instruction* address stream to be
realistic; keeping data addresses below 64 KiB lets every global address
materialize in exactly two instructions, mirroring the fixed-length
literal sequences an embedded linker would emit.
"""

from repro.ir.verify import verify_module
from repro.obs import core as obs
from repro.isa.arm import (
    Branch,
    DataProc,
    DPOp,
    Operand2Imm,
    disassemble,
    encode_rotated_imm,
)
from repro.compiler.arm_backend import compile_function_arm, make_start_stub

CODE_BASE = 0x1000
DATA_LIMIT = 0x10000
MEMORY_SIZE = 0x200000  # 2 MiB
STACK_TOP = MEMORY_SIZE - 16


class LinkError(Exception):
    """Raised when the image cannot be laid out (size limits, symbols)."""


class Image:
    """A linked, executable program image.

    Attributes:
        words: encoded machine words, code only, in address order.
        instrs: the decoded instruction objects (same order as words).
        code_base / data_base: segment start addresses.
        symbols: function name → entry byte address.
        func_of_index: function name owning each instruction index.
        global_addr: global name → byte address.
        data_bytes: initialized data segment contents.
        entry: name of the application entry function.
    """

    def __init__(self, name, words, instrs, symbols, func_of_index, global_addr, data_bytes, data_base, entry):
        self.name = name
        self.words = words
        self.instrs = instrs
        self.code_base = CODE_BASE
        self.symbols = dict(symbols)
        self.func_of_index = func_of_index
        self.global_addr = dict(global_addr)
        self.data_base = data_base
        self.data_bytes = data_bytes
        self.entry = entry
        self.memory_size = MEMORY_SIZE
        self.stack_top = STACK_TOP

    @property
    def code_size(self):
        """Code segment size in bytes (the paper's code-size metric)."""
        return 4 * len(self.words)

    def addr_of_index(self, index):
        return self.code_base + 4 * index

    def index_of_addr(self, addr):
        offset = addr - self.code_base
        if offset % 4 or not 0 <= offset < 4 * len(self.words):
            raise ValueError("0x%x is not a code address" % addr)
        return offset // 4

    def initial_memory(self):
        """Fresh memory image (code + data placed, rest zero)."""
        mem = bytearray(self.memory_size)
        for i, word in enumerate(self.words):
            mem[self.code_base + 4 * i : self.code_base + 4 * i + 4] = word.to_bytes(4, "little")
        mem[self.data_base : self.data_base + len(self.data_bytes)] = self.data_bytes
        return mem

    def disassembly(self):
        lines = []
        current = None
        for i, instr in enumerate(self.instrs):
            fname = self.func_of_index[i]
            if fname != current:
                lines.append("\n<%s>:" % fname)
                current = fname
            pc = self.addr_of_index(i)
            lines.append("%08x:  %08x  %s" % (pc, self.words[i], disassemble(instr, pc)))
        return "\n".join(lines)

    def __repr__(self):
        return "<Image %s: %d instrs, %d data bytes>" % (
            self.name,
            len(self.words),
            len(self.data_bytes),
        )


def link_arm(module, entry="main", callee_saved=None):
    """Compile every function in ``module`` and link an executable image.

    ``callee_saved`` is forwarded to the per-function compiler (the
    FITS-aware register-budget mode).
    """
    with obs.span("stage.compile", isa="arm", module=module.name):
        return _link_arm(module, entry, callee_saved)


def _link_arm(module, entry, callee_saved):
    verify_module(module, entry=entry)
    codes = [make_start_stub(entry)]
    names = ["_start"]
    if entry in module.functions:
        codes.append(compile_function_arm(module.functions[entry], callee_saved))
        names.append(entry)
    for name, func in module.functions.items():
        if name == entry:
            continue
        codes.append(compile_function_arm(func, callee_saved))
        names.append(name)

    func_addr = {}
    addr = CODE_BASE
    for code in codes:
        func_addr[code.name] = addr
        addr += 4 * len(code.instrs)
    code_end = addr

    # data layout
    data_start = (code_end + 7) & ~7
    global_addr = {}
    data = bytearray()
    cursor = data_start
    for glob in module.globals.values():
        pad = (-cursor) % glob.align
        data.extend(b"\x00" * pad)
        cursor += pad
        global_addr[glob.name] = cursor
        payload = glob.initial_bytes()
        data.extend(payload)
        cursor += len(payload)
    if cursor > DATA_LIMIT:
        raise LinkError(
            "image too large: data ends at 0x%x, limit 0x%x (shrink workload data)"
            % (cursor, DATA_LIMIT)
        )

    # relocation
    instrs = []
    func_of_index = []
    for code in codes:
        base = func_addr[code.name]
        for index, kind, payload in code.relocs:
            pc = base + 4 * index
            if kind == "bl":
                if payload not in func_addr:
                    raise LinkError("undefined function @%s" % payload)
                offset = (func_addr[payload] - (pc + 8)) // 4
                code.instrs[index] = Branch(offset, link=True)
            elif kind in ("ga_hi", "ga_lo"):
                rd, symbol = payload
                if symbol not in global_addr:
                    raise LinkError("undefined global @%s" % symbol)
                target = global_addr[symbol]
                if kind == "ga_hi":
                    chunk = target & 0xFF00
                    code.instrs[index] = DataProc(
                        DPOp.MOV, rd, 0, Operand2Imm(*encode_rotated_imm(chunk))
                    )
                else:
                    chunk = target & 0xFF
                    code.instrs[index] = DataProc(
                        DPOp.ORR, rd, rd, Operand2Imm(*encode_rotated_imm(chunk))
                    )
            else:
                raise LinkError("unknown reloc kind %r" % kind)
        instrs.extend(code.instrs)
        func_of_index.extend([code.name] * len(code.instrs))

    words = [ins.encode() for ins in instrs]
    if obs.enabled:
        obs.counter("compile.arm.images")
        obs.counter("compile.arm.instructions", len(instrs))
        obs.counter("compile.arm.data_bytes", len(data))
    return Image(
        name=module.name,
        words=words,
        instrs=instrs,
        symbols=func_addr,
        func_of_index=func_of_index,
        global_addr=global_addr,
        data_bytes=bytes(data),
        data_base=data_start,
        entry=entry,
    )
