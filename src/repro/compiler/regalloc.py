"""Linear-scan register allocation at the IR level.

The allocator assigns each virtual register either a physical register or
a stack slot *before* instruction selection; the back ends then emit
final machine code directly, using two reserved scratch registers for
spill traffic and immediate materialization.

Intervals are the classic Poletto–Sarkar kind (no lifetime holes): a
vreg's interval covers from its first definition to the last position at
which it is live, with loop-carried values extended over whole blocks by
the liveness sets.  Intervals that span a call site must live in a
callee-saved register (or a slot), because calls clobber the
caller-saved set.
"""

import bisect

from repro.compiler.liveness import analyze
from repro.ir.instructions import Bin, Mov, VReg
from repro.obs import core as obs

#: ARM register roles used by both back ends.
CALLER_SAVED = (0, 1, 2, 3)
CALLEE_SAVED = (4, 5, 6, 7, 8, 9, 10, 11)
SCRATCH0 = 12  # ip — assembler scratch, never allocated
SP = 13
SCRATCH1 = 14  # lr — usable as scratch after the prologue saves it


class Interval:
    __slots__ = ("vid", "start", "end", "crosses_call", "reg", "slot", "weight")

    def __init__(self, vid, start, end):
        self.vid = vid
        self.start = start
        self.end = end
        self.crosses_call = False
        self.reg = None
        self.slot = None
        #: estimated dynamic access count (uses weighted by loop depth);
        #: the allocator spills the cheapest interval, not the longest
        self.weight = 0.0

    def __repr__(self):
        loc = "r%d" % self.reg if self.reg is not None else "slot%s" % self.slot
        return "<%%%d [%d,%d]%s %s>" % (
            self.vid,
            self.start,
            self.end,
            "*" if self.crosses_call else "",
            loc,
        )


class Allocation:
    """Mapping from virtual registers to physical registers or slots."""

    def __init__(self, func, intervals, num_slots):
        self.func = func
        self.intervals = {iv.vid: iv for iv in intervals}
        self.num_slots = num_slots
        self.used_callee_saved = sorted(
            {iv.reg for iv in intervals if iv.reg is not None and iv.reg not in CALLER_SAVED}
        )

    def location(self, vreg):
        """``('r', n)`` or ``('s', slot)`` for a vreg (accepts VReg or id)."""
        vid = getattr(vreg, "id", vreg)
        iv = self.intervals[vid]
        if iv.reg is not None:
            return ("r", iv.reg)
        return ("s", iv.slot)

    @property
    def spill_count(self):
        return self.num_slots


def build_intervals(func):
    """Liveness-derived live intervals plus sorted call positions.

    Positions are *doubled*: instruction ``p`` reads its operands at
    ``2p`` and writes its result at ``2p+1``.  This separates the death
    of an operand from the birth of a result in the same instruction —
    they may share a register (read-then-write) — while two values that
    are simultaneously live at an instruction never can.  Function
    arguments are defined at position -1 (before the first read).
    """
    info = analyze(func)
    points = {}
    weights = {}

    # loop depth per instruction: the builder lays loops out contiguously,
    # so an edge targeting an earlier block opens a loop region in layout
    # order — count how many such regions cover each block
    block_index = {blk.label: i for i, blk in enumerate(func.blocks)}
    depth_bump = [0] * (len(func.blocks) + 1)
    for i, blk in enumerate(func.blocks):
        for succ in blk.successors():
            j = block_index[succ]
            if j <= i:
                depth_bump[j] += 1
                depth_bump[i + 1] -= 1
    depth_of_block = []
    acc = 0
    for i in range(len(func.blocks)):
        acc += depth_bump[i]
        depth_of_block.append(acc)
    instr_depth = []
    for i, blk in enumerate(func.blocks):
        instr_depth.extend([min(depth_of_block[i], 5)] * len(blk.instrs))

    def bump_weight(vid, index):
        weights[vid] = weights.get(vid, 0.0) + 10.0 ** instr_depth[index]

    def extend(vid, pos):
        iv = points.get(vid)
        if iv is None:
            points[vid] = [pos, pos]
        else:
            if pos < iv[0]:
                iv[0] = pos
            if pos > iv[1]:
                iv[1] = pos

    for vid in range(func.num_args):
        extend(vid, -1)

    for blk in func.blocks:
        first, last = info.block_range[blk.label]
        for vid in info.live_in[blk.label]:
            extend(vid, 2 * first)
        for vid in info.live_out[blk.label]:
            extend(vid, 2 * last + 1)
        index = first
        for ins in blk.instrs:
            for v in ins.uses():
                extend(v.id, 2 * index)
                bump_weight(v.id, index)
            for v in ins.defs():
                extend(v.id, 2 * index + 1)
                bump_weight(v.id, index)
            index += 1

    # a call at instruction c clobbers caller-saved registers "between"
    # the argument reads (2c) and the result write (2c+1)
    calls = [2 * c for c in info.call_positions]
    intervals = []
    for vid, (start, end) in points.items():
        iv = Interval(vid, start, end)
        iv.weight = weights.get(vid, 0.0)
        i = bisect.bisect_left(calls, start)
        iv.crosses_call = i < len(calls) and calls[i] < end
        intervals.append(iv)
    intervals.sort(key=lambda iv: (iv.start, iv.end))

    # Coalescing hints: when an op's destination is born exactly where its
    # left operand dies, reusing the operand's register makes the result a
    # two-operand (rd == rn) instruction — free for ARM, and exactly the
    # shape the FITS two-operand formats want (paper Section 3.3).
    by_vid = {iv.vid: iv for iv in intervals}
    hints = {}
    pos = 0
    for blk in func.blocks:
        for ins in blk.instrs:
            if isinstance(ins, (Bin, Mov)):
                src = ins.lhs if isinstance(ins, Bin) else ins.src
                if isinstance(src, VReg) and ins.dst.id != src.id:
                    d = by_vid.get(ins.dst.id)
                    s = by_vid.get(src.id)
                    if (
                        d is not None
                        and s is not None
                        and d.start == 2 * pos + 1
                        and s.end == 2 * pos
                    ):
                        hints[ins.dst.id] = src.id
            pos += 1
    return intervals, calls, hints, by_vid


@obs.timed("regalloc.allocate")
def allocate_registers(func, caller_saved=CALLER_SAVED, callee_saved=CALLEE_SAVED):
    """Run linear scan for ``func``; returns an :class:`Allocation`.

    ``caller_saved``/``callee_saved`` parameterize the physical register
    pools: the ARM back end uses r0-r3 / r4-r11, the Thumb back end the
    low-register subset r0-r3 / r4-r5 (r6/r7 are its scratches), which is
    where Thumb's higher register pressure comes from.
    """
    CALLER_SAVED_, CALLEE_SAVED_ = tuple(caller_saved), tuple(callee_saved)
    with obs.span("regalloc.build_intervals", func=func.name):
        intervals, _calls, hints, by_vid = build_intervals(func)
    active = []  # sorted by end
    free = {r: True for r in CALLER_SAVED_ + CALLEE_SAVED_}
    next_slot = [0]

    def take(pools):
        for pool in pools:
            for r in pool:
                if free[r]:
                    free[r] = False
                    return r
        return None

    def spill_slot():
        slot = next_slot[0]
        next_slot[0] += 1
        return slot

    for iv in intervals:
        # expire: with doubled positions, an operand dying at a read slot
        # (2p) ends strictly before a result born at the write slot (2p+1),
        # so strict comparison preserves read-then-write register sharing
        keep = []
        for a in active:
            if a.end < iv.start:
                free[a.reg] = True
            else:
                keep.append(a)
        active[:] = keep

        pools = (CALLEE_SAVED_,) if iv.crosses_call else (CALLER_SAVED_, CALLEE_SAVED_)
        allowed_set = set(pools[0]) | (set(pools[1]) if len(pools) > 1 else set())
        reg = None
        hint_vid = hints.get(iv.vid)
        if hint_vid is not None:
            hinted = by_vid[hint_vid].reg
            if hinted is not None and hinted in allowed_set and free.get(hinted):
                free[hinted] = False
                reg = hinted
        if reg is None:
            reg = take(pools)
        if reg is not None:
            iv.reg = reg
            active.append(iv)
            active.sort(key=lambda x: x.end)
            continue

        allowed = set(pools[0]) | (set(pools[1]) if len(pools) > 1 else set())
        candidates = [a for a in active if a.reg in allowed]
        # spill the cheapest interval (fewest loop-weighted accesses),
        # breaking ties toward the one that lives longest
        victim = min(candidates, key=lambda x: (x.weight, -x.end), default=None)
        if victim is not None and (victim.weight, -victim.end) < (iv.weight, -iv.end):
            iv.reg = victim.reg
            victim.reg = None
            victim.slot = spill_slot()
            active.remove(victim)
            active.append(iv)
            active.sort(key=lambda x: x.end)
        else:
            iv.slot = spill_slot()

    if obs.enabled:
        obs.counter("regalloc.functions")
        obs.counter("regalloc.intervals", len(intervals))
        obs.counter("regalloc.spills", next_slot[0])
        obs.observe("regalloc.spills_per_function", next_slot[0])
    return Allocation(func, intervals, next_slot[0])
