"""The mini compiler: IR → linked machine-code images.

Pipeline::

    Module (repro.ir)
      → liveness + linear-scan register allocation (per function)
      → instruction selection (ARM or Thumb back end)
      → link (lay out code and data, resolve branches and globals)
      → Image (consumed by the simulators, profiler and translator)

The back ends face the same encoding constraints as real tool chains —
rotated immediates on ARM, low-register/two-address forms on Thumb — so
the code-size and field-usage statistics the FITS synthesizer feeds on
are earned, not assumed.
"""

from repro.compiler.regalloc import allocate_registers, Allocation
from repro.compiler.arm_backend import compile_function_arm
from repro.compiler.link import link_arm, Image
from repro.compiler.pipeline import compile_arm, compile_thumb

__all__ = [
    "allocate_registers",
    "Allocation",
    "compile_function_arm",
    "link_arm",
    "Image",
    "compile_arm",
    "compile_thumb",
]
