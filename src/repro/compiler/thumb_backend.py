"""Thumb back end: IR → 16-bit Thumb code, plus its linker.

The selector faces the genuine Thumb-1 restrictions that the paper
blames for Thumb's limited code-size win:

* eight visible registers (and two of those reserved as scratches here,
  as compilers reserve temporaries), so spills come earlier than ARM's;
* two-address ALU operations, forcing copy instructions;
* 8-bit immediates with multi-instruction constant synthesis;
* short unsigned memory displacements.

Branch relaxation: conditional branches reach only ±256 bytes, so
out-of-range conditional branches are rewritten as an inverted-condition
hop over an unconditional branch, iterating until the layout converges.
"""

from repro.ir.ops import Op, Cond as ICond, Width
from repro.ir.instructions import (
    Li,
    Mov,
    Bin,
    Load,
    Store,
    GlobalAddr,
    Br,
    CBr,
    Call,
    Ret,
)
from repro.ir.verify import verify_module
from repro.obs import core as obs
from repro.isa.thumb import (
    TAdjustSp,
    TAlu,
    TAluOp,
    TAddSub,
    TBranch,
    TBranchLink,
    TCond,
    TCondBranch,
    TLoadStoreImm,
    TLoadStoreReg,
    TLoadStoreSpRel,
    TMovCmpAddSubImm,
    TPushPop,
    TShiftImm,
    TSwi,
)
from repro.compiler.regalloc import allocate_registers

#: Thumb register roles: four caller-saved, two callee-saved allocatable,
#: two reserved scratches (like a frame-pointer/temp reservation).
T_CALLER = (0, 1, 2, 3)
T_CALLEE = (4, 5)
T0 = 6
T1 = 7

COND_MAP = {
    ICond.EQ: TCond.EQ,
    ICond.NE: TCond.NE,
    ICond.LT: TCond.LT,
    ICond.LE: TCond.LE,
    ICond.GT: TCond.GT,
    ICond.GE: TCond.GE,
    ICond.LTU: TCond.CC,
    ICond.LEU: TCond.LS,
    ICond.GTU: TCond.HI,
    ICond.GEU: TCond.CS,
}

INVERT = {
    TCond.EQ: TCond.NE,
    TCond.NE: TCond.EQ,
    TCond.LT: TCond.GE,
    TCond.GE: TCond.LT,
    TCond.GT: TCond.LE,
    TCond.LE: TCond.GT,
    TCond.CC: TCond.CS,
    TCond.CS: TCond.CC,
    TCond.HI: TCond.LS,
    TCond.LS: TCond.HI,
}

TWO_ADDRESS = {
    Op.AND: (TAluOp.AND, True),
    Op.ORR: (TAluOp.ORR, True),
    Op.EOR: (TAluOp.EOR, True),
    Op.MUL: (TAluOp.MUL, True),
    Op.LSL: (TAluOp.LSL, False),
    Op.LSR: (TAluOp.LSR, False),
    Op.ASR: (TAluOp.ASR, False),
}


class PendingBranch:
    """Placeholder for an intra-function branch, resolved after layout."""

    __slots__ = ("cond", "label")
    size_halfwords = 1

    def __init__(self, cond, label):
        self.cond = cond  # TCond or None for unconditional
        self.label = label


class PendingBL:
    """Placeholder for a call, resolved at link time."""

    __slots__ = ("symbol",)
    size_halfwords = 2

    def __init__(self, symbol):
        self.symbol = symbol


class PendingGA:
    """Placeholder for one piece of a global-address sequence."""

    __slots__ = ("part", "rd", "symbol")
    size_halfwords = 1

    def __init__(self, part, rd, symbol):
        self.part = part  # "hi" (mov) or "lo" (add)
        self.rd = rd
        self.symbol = symbol


class ThumbFunctionCode:
    def __init__(self, name):
        self.name = name
        self.items = []
        self.labels = {}  # label -> item list position


def thumb_const_pieces(value):
    """Instruction plan for a 32-bit constant under Thumb rules.

    Returns a list of ('mov'|'add'|'lsl'|'neg'|'mvn', imm) steps applied
    to the destination register in order.
    """
    value &= 0xFFFFFFFF
    if value <= 255:
        return [("mov", value)]
    if 0xFFFFFF01 <= value:  # -255 .. -1
        return [("mov", (-value) & 0xFF), ("neg", 0)]
    if (value ^ 0xFFFFFFFF) <= 255:
        return [("mov", value ^ 0xFFFFFFFF), ("mvn", 0)]
    for shift in range(1, 25):
        if value == (value >> shift) << shift and (value >> shift) <= 255:
            return [("mov", value >> shift), ("lsl", shift)]
    # general byte chain, most significant byte first
    out = []
    started = False
    for byte_idx in (3, 2, 1, 0):
        byte = (value >> (8 * byte_idx)) & 0xFF
        if not started:
            if byte == 0:
                continue
            out.append(("mov", byte))
            started = True
        else:
            out.append(("lsl", 8))
            if byte:
                out.append(("add", byte))
    return out


class _ThumbSelector:
    def __init__(self, func, alloc):
        self.func = func
        self.alloc = alloc
        self.code = ThumbFunctionCode(func.name)
        self.epilogue_label = "__epilogue"
        self.saved = [r for r in alloc.used_callee_saved if r in T_CALLEE]
        self.frame_bytes = 4 * alloc.num_slots
        if self.frame_bytes % 8:
            self.frame_bytes += 4
        if self.frame_bytes > 1016:
            raise ValueError("@%s: Thumb frame too large (%d bytes)" % (func.name, self.frame_bytes))

    def emit(self, item):
        self.code.items.append(item)

    def mark(self, label):
        self.code.labels[label] = len(self.code.items)

    # ------------------------------------------------------------------

    def loc(self, v):
        return self.alloc.location(v)

    def slot_off(self, slot):
        return 4 * slot

    def read(self, v, scratch):
        kind, value = self.loc(v)
        if kind == "r":
            return value
        self.emit(TLoadStoreSpRel(True, scratch, self.slot_off(value)))
        return scratch

    def write_back(self, v, reg):
        kind, value = self.loc(v)
        if kind == "s":
            self.emit(TLoadStoreSpRel(False, reg, self.slot_off(value)))

    def dest(self, v):
        kind, value = self.loc(v)
        return value if kind == "r" else T0

    def copy(self, dst, src):
        if dst != src:
            self.emit(TAddSub(False, dst, src, 0, imm=True))

    def load_const(self, rd, value):
        for kind, imm in thumb_const_pieces(value):
            if kind == "mov":
                self.emit(TMovCmpAddSubImm("mov", rd, imm))
            elif kind == "add":
                self.emit(TMovCmpAddSubImm("add", rd, imm))
            elif kind == "lsl":
                self.emit(TShiftImm("lsl", rd, rd, imm))
            elif kind == "neg":
                self.emit(TAlu(TAluOp.NEG, rd, rd))
            else:  # mvn
                self.emit(TAlu(TAluOp.MVN, rd, rd))

    # ------------------------------------------------------------------

    def run(self):
        self.prologue()
        order = [blk.label for blk in self.func.blocks]
        next_of = {order[i]: order[i + 1] if i + 1 < len(order) else None for i in range(len(order))}
        for blk in self.func.blocks:
            self.mark(blk.label)
            for ins in blk.instrs:
                self.select(ins, next_of[blk.label])
        self.mark(self.epilogue_label)
        self.epilogue()
        return self.code

    def prologue(self):
        self.emit(TPushPop(False, self.saved, extra=True))  # push {saved, lr}
        if self.frame_bytes:
            self._adjust_sp(-self.frame_bytes)
        moves = []
        for i in range(self.func.num_args):
            if i not in self.alloc.intervals:
                continue
            moves.append((self.alloc.location(i), ("r", i)))
        self.parallel_moves(moves)

    def epilogue(self):
        if self.frame_bytes:
            self._adjust_sp(self.frame_bytes)
        self.emit(TPushPop(True, self.saved, extra=True))  # pop {saved, pc}

    def _adjust_sp(self, delta):
        while delta:
            step = max(-508, min(508, delta))
            self.emit(TAdjustSp(step))
            delta -= step

    def parallel_moves(self, moves):
        pending = []
        for dst, src in moves:
            if dst == src:
                continue
            if dst[0] == "s":
                if src[0] == "r":
                    self.emit(TLoadStoreSpRel(False, src[1], self.slot_off(dst[1])))
                else:
                    self.emit(TLoadStoreSpRel(True, T0, self.slot_off(src[1])))
                    self.emit(TLoadStoreSpRel(False, T0, self.slot_off(dst[1])))
            else:
                pending.append([dst[1], src])
        while pending:
            src_regs = {src[1] for _d, src in pending if src[0] == "r"}
            ready = [mv for mv in pending if mv[0] not in src_regs]
            if ready:
                for dst, src in ready:
                    if src[0] == "r":
                        self.copy(dst, src[1])
                    else:
                        self.emit(TLoadStoreSpRel(True, dst, self.slot_off(src[1])))
                pending = [mv for mv in pending if mv[0] in src_regs]
            else:
                _dst, src = pending[0]
                self.copy(T0, src[1])
                for mv in pending:
                    if mv[1] == ("r", src[1]):
                        mv[1] = ("r", T0)

    # ------------------------------------------------------------------

    def select(self, ins, next_label):
        if isinstance(ins, Bin):
            self.sel_bin(ins)
        elif isinstance(ins, Load):
            self.sel_load(ins)
        elif isinstance(ins, Store):
            self.sel_store(ins)
        elif isinstance(ins, Li):
            rd = self.dest(ins.dst)
            self.load_const(rd, ins.imm)
            self.write_back(ins.dst, rd)
        elif isinstance(ins, Mov):
            dst, src = self.loc(ins.dst), self.loc(ins.src)
            if dst != src:
                self.parallel_moves([(dst, src)])
        elif isinstance(ins, CBr):
            self.sel_cbr(ins, next_label)
        elif isinstance(ins, Br):
            if ins.target != next_label:
                self.emit(PendingBranch(None, ins.target))
        elif isinstance(ins, Call):
            self.sel_call(ins)
        elif isinstance(ins, Ret):
            self.sel_ret(ins)
        elif isinstance(ins, GlobalAddr):
            rd = self.dest(ins.dst)
            self.emit(PendingGA("hi", rd, ins.symbol))
            self.emit(TShiftImm("lsl", rd, rd, 8))
            self.emit(PendingGA("lo", rd, ins.symbol))
            self.write_back(ins.dst, rd)
        else:
            raise TypeError("cannot select %r" % (ins,))

    def sel_bin(self, ins):
        op = ins.op
        if op in (Op.ADD, Op.SUB, Op.RSB):
            return self.sel_addsub(ins)
        if op in (Op.LSL, Op.LSR, Op.ASR) and isinstance(ins.rhs, int):
            lhs = self.read(ins.lhs, T0)
            rd = self.dest(ins.dst)
            if ins.rhs == 0:
                self.copy(rd, lhs)
            else:
                self.emit(TShiftImm(op.value, rd, lhs, ins.rhs))
            self.write_back(ins.dst, rd)
            return
        # two-address ALU group
        alu_op, commutative = TWO_ADDRESS[op]
        lhs = self.read(ins.lhs, T0)
        if isinstance(ins.rhs, int):
            self.load_const(T1, ins.rhs)
            rhs = T1
        else:
            rhs = self.read(ins.rhs, T1)
        rd = self.dest(ins.dst)
        if rd == rhs and rd != lhs:
            if commutative:
                self.emit(TAlu(alu_op, rd, lhs))
            else:
                self.copy(T1, rhs)
                self.copy(rd, lhs)
                self.emit(TAlu(alu_op, rd, T1))
        else:
            self.copy(rd, lhs)
            self.emit(TAlu(alu_op, rd, rhs))
        self.write_back(ins.dst, rd)

    def sel_addsub(self, ins):
        op = ins.op
        lhs = self.read(ins.lhs, T0)
        rd = self.dest(ins.dst)
        if isinstance(ins.rhs, int):
            value = ins.rhs & 0xFFFFFFFF
            neg = (-value) & 0xFFFFFFFF
            if op is Op.RSB:
                self.load_const(T1, value)
                self.emit(TAddSub(True, rd, T1, lhs))
            elif value <= 7:
                self.emit(TAddSub(op is Op.SUB, rd, lhs, value, imm=True))
            elif neg <= 7:
                self.emit(TAddSub(op is Op.ADD, rd, lhs, neg, imm=True))
            elif value <= 255:
                self.copy(rd, lhs)
                self.emit(TMovCmpAddSubImm("sub" if op is Op.SUB else "add", rd, value))
            elif neg <= 255:
                self.copy(rd, lhs)
                self.emit(TMovCmpAddSubImm("add" if op is Op.SUB else "sub", rd, neg))
            else:
                self.load_const(T1, value)
                self.emit(TAddSub(op is Op.SUB, rd, lhs, T1))
        else:
            rhs = self.read(ins.rhs, T1)
            if op is Op.RSB:
                self.emit(TAddSub(True, rd, rhs, lhs))
            else:
                self.emit(TAddSub(op is Op.SUB, rd, lhs, rhs))
        self.write_back(ins.dst, rd)

    def sel_load(self, ins):
        base = self.read(ins.base, T0)
        rd = self.dest(ins.dst)
        width = int(ins.width)
        off = ins.offset
        if (
            not ins.signed
            and isinstance(off, int)
            and off >= 0
            and off % width == 0
            and off // width < 32
        ):
            self.emit(TLoadStoreImm(True, rd, base, off, width=width))
        else:
            if isinstance(off, int):
                self.load_const(T1, off)
                off_r = T1
            else:
                off_r = self.read(ins.offset, T1)
            self.emit(TLoadStoreReg(True, rd, base, off_r, width=width, signed=ins.signed))
        self.write_back(ins.dst, rd)

    def sel_store(self, ins):
        base = self.read(ins.base, T0)
        width = int(ins.width)
        off = ins.offset
        if isinstance(off, int) and off >= 0 and off % width == 0 and off // width < 32:
            src = self.read(ins.src, T1)
            self.emit(TLoadStoreImm(False, src, base, off, width=width))
            return
        if isinstance(off, int):
            self.load_const(T1, off)
            off_r = T1
        else:
            off_r = self.read(ins.offset, T1)
        if self.loc(ins.src)[0] == "s":
            # both scratches busy: fold the effective address into T1
            self.emit(TAddSub(False, T1, base, off_r))
            src = self.read(ins.src, T0)
            self.emit(TLoadStoreImm(False, src, T1, 0, width=width))
        else:
            src = self.loc(ins.src)[1]
            self.emit(TLoadStoreReg(False, src, base, off_r, width=width))

    def sel_cbr(self, ins, next_label):
        lhs = self.read(ins.lhs, T0)
        if isinstance(ins.rhs, int) and 0 <= ins.rhs <= 255:
            self.emit(TMovCmpAddSubImm("cmp", lhs, ins.rhs))
        else:
            if isinstance(ins.rhs, int):
                self.load_const(T1, ins.rhs)
                rhs = T1
            else:
                rhs = self.read(ins.rhs, T1)
            self.emit(TAlu(TAluOp.CMP, lhs, rhs))
        cond = COND_MAP[ins.cond]
        if ins.if_false == next_label:
            self.emit(PendingBranch(cond, ins.if_true))
        elif ins.if_true == next_label:
            self.emit(PendingBranch(INVERT[cond], ins.if_false))
        else:
            self.emit(PendingBranch(cond, ins.if_true))
            self.emit(PendingBranch(None, ins.if_false))

    def sel_call(self, ins):
        moves = [(("r", i), self.loc(arg)) for i, arg in enumerate(ins.args)]
        self.parallel_moves(moves)
        self.emit(PendingBL(ins.callee))
        if ins.dst is not None:
            kind, value = self.loc(ins.dst)
            if kind == "r":
                self.copy(value, 0)
            else:
                self.emit(TLoadStoreSpRel(False, 0, self.slot_off(value)))

    def sel_ret(self, ins):
        if ins.value is not None:
            kind, value = self.loc(ins.value)
            if kind == "r":
                self.copy(0, value)
            else:
                self.emit(TLoadStoreSpRel(True, 0, self.slot_off(value)))
        self.emit(PendingBranch(None, self.epilogue_label))


def compile_function_thumb(func):
    if func.num_args > 4:
        raise ValueError("@%s: more than 4 args unsupported" % func.name)
    alloc = allocate_registers(func, caller_saved=T_CALLER, callee_saved=T_CALLEE)
    return _ThumbSelector(func, alloc).run()


# ----------------------------------------------------------------------
# layout, relaxation and linking


def _layout(items):
    """Halfword index of each item (prefix sums of instruction sizes)."""
    positions = []
    hw = 0
    for item in items:
        positions.append(hw)
        hw += item.size_halfwords
    return positions, hw


def _resolve_function(code):
    """Relax and resolve intra-function branches; returns final item list
    where PendingBranch is replaced by concrete TBranch/TCondBranch."""
    items = list(code.items)
    labels = dict(code.labels)  # label -> item position

    def label_positions():
        positions, _total = _layout(items)
        # label item positions may equal len(items) (epilogue at end guard)
        hw_of_label = {}
        for label, item_pos in labels.items():
            hw_of_label[label] = (
                positions[item_pos] if item_pos < len(items) else _layout(items)[1]
            )
        return positions, hw_of_label

    for _round in range(40):
        positions, hw_of_label = label_positions()
        changed = False
        for i, item in enumerate(items):
            if not isinstance(item, PendingBranch) or item.cond is None:
                continue
            off = hw_of_label[item.label] - (positions[i] + 2)
            if not -128 <= off <= 127:
                # relax: inverted-condition hop over an unconditional branch
                items[i : i + 1] = [
                    _SkipNext(INVERT[item.cond]),
                    PendingBranch(None, item.label),
                ]
                for label, pos in labels.items():
                    if pos > i:
                        labels[label] = pos + 1
                changed = True
                break
        if not changed:
            break
    else:
        raise ValueError("branch relaxation did not converge in @%s" % code.name)

    positions, hw_of_label = label_positions()
    out = []
    for i, item in enumerate(items):
        if isinstance(item, _SkipNext):
            out.append(TCondBranch(item.cond, 0))  # skip exactly the next instr
        elif isinstance(item, PendingBranch):
            off = hw_of_label[item.label] - (positions[i] + 2)
            if item.cond is None:
                out.append(TBranch(off))
            else:
                out.append(TCondBranch(item.cond, off))
        else:
            out.append(item)
    return out


class _SkipNext:
    """Relaxation artifact: a conditional branch over the next (1-hw) item."""

    __slots__ = ("cond",)
    size_halfwords = 1

    def __init__(self, cond):
        self.cond = cond


class ThumbImage:
    """A linked Thumb executable (16-bit halfword code stream)."""

    CODE_BASE = 0x1000
    DATA_LIMIT = 0x10000
    MEMORY_SIZE = 0x200000
    STACK_TOP = MEMORY_SIZE - 16

    def __init__(self, name, halfwords, instr_at, symbols, global_addr, data_bytes, data_base, entry):
        self.name = name
        self.halfwords = halfwords
        self.instr_at = instr_at  # per halfword slot: instr object or None (bl lo half)
        self.code_base = self.CODE_BASE
        self.symbols = symbols
        self.global_addr = global_addr
        self.data_bytes = data_bytes
        self.data_base = data_base
        self.entry = entry
        self.memory_size = self.MEMORY_SIZE
        self.stack_top = self.STACK_TOP

    @property
    def code_size(self):
        return 2 * len(self.halfwords)

    def addr_of_index(self, index):
        return self.code_base + 2 * index

    def index_of_addr(self, addr):
        offset = addr - self.code_base
        if offset % 2 or not 0 <= offset < 2 * len(self.halfwords):
            raise ValueError("0x%x is not a thumb code address" % addr)
        return offset // 2

    def initial_memory(self):
        mem = bytearray(self.memory_size)
        for i, half in enumerate(self.halfwords):
            mem[self.code_base + 2 * i : self.code_base + 2 * i + 2] = half.to_bytes(2, "little")
        mem[self.data_base : self.data_base + len(self.data_bytes)] = self.data_bytes
        return mem


def link_thumb(module, entry="main"):
    """Compile every function with the Thumb back end and link an image."""
    with obs.span("stage.compile", isa="thumb", module=module.name):
        return _link_thumb(module, entry)


def _link_thumb(module, entry):
    verify_module(module, entry=entry)
    # _start stub: bl entry; swi 0
    start = ThumbFunctionCode("_start")
    start.items = [PendingBL(entry), TSwi(0)]

    codes = [start]
    if entry in module.functions:
        codes.append(compile_function_thumb(module.functions[entry]))
    for name, func in module.functions.items():
        if name != entry:
            codes.append(compile_function_thumb(func))

    resolved = []
    for code in codes:
        if code.name == "_start":
            resolved.append((code.name, list(code.items)))
        else:
            resolved.append((code.name, _resolve_function(code)))

    func_hw = {}
    hw = 0
    for name, items in resolved:
        func_hw[name] = hw
        hw += sum(item.size_halfwords for item in items)
    code_end = ThumbImage.CODE_BASE + 2 * hw

    data_start = (code_end + 7) & ~7
    global_addr = {}
    data = bytearray()
    cursor = data_start
    for glob in module.globals.values():
        pad = (-cursor) % glob.align
        data.extend(b"\x00" * pad)
        cursor += pad
        global_addr[glob.name] = cursor
        payload = glob.initial_bytes()
        data.extend(payload)
        cursor += len(payload)
    if cursor > ThumbImage.DATA_LIMIT:
        raise ValueError("thumb image too large: data ends at 0x%x" % cursor)

    halfwords = []
    instr_at = []
    for name, items in resolved:
        for item in items:
            pos = len(halfwords)
            if isinstance(item, PendingBL):
                if item.symbol not in func_hw:
                    raise ValueError("undefined function @%s" % item.symbol)
                off = func_hw[item.symbol] - (pos + 2)
                bl = TBranchLink(off)
                hi, lo = bl.encode()
                halfwords.extend([hi, lo])
                instr_at.extend([bl, None])
            elif isinstance(item, PendingGA):
                target = global_addr.get(item.symbol)
                if target is None:
                    raise ValueError("undefined global @%s" % item.symbol)
                if item.part == "hi":
                    concrete = TMovCmpAddSubImm("mov", item.rd, (target >> 8) & 0xFF)
                else:
                    concrete = TMovCmpAddSubImm("add", item.rd, target & 0xFF)
                halfwords.append(concrete.encode())
                instr_at.append(concrete)
            else:
                halfwords.append(item.encode())
                instr_at.append(item)

    if obs.enabled:
        obs.counter("compile.thumb.images")
        obs.counter("compile.thumb.halfwords", len(halfwords))
    return ThumbImage(
        name=module.name,
        halfwords=halfwords,
        instr_at=instr_at,
        symbols={n: ThumbImage.CODE_BASE + 2 * p for n, p in func_hw.items()},
        global_addr=global_addr,
        data_bytes=bytes(data),
        data_base=data_start,
        entry=entry,
    )
