"""One-call compile entry points for the two baseline ISAs."""

from repro.compiler.link import link_arm
from repro.obs import core as obs


#: Callee-saved pool of the FITS-aware compilation mode: r0-r6 plus the
#: scratch r12 are the eight registers that appear in register fields at
#: any frequency (sp/lr/pc are reached through dedicated FITS formats;
#: the lr scratch only shows up in spill sequences, which this budget
#: keeps rare), so a 3-bit register index covers the hot file.
FITS_CALLEE_SAVED = (4, 5, 6)


def compile_arm(module, entry="main", fits_tuned=False):
    """Compile and link ``module`` to an ARM :class:`~repro.compiler.link.Image`.

    With ``fits_tuned`` the register allocator is restricted to the FITS
    register budget (the paper's compiler trades register-file size
    against spill frequency during synthesis).
    """
    callee = FITS_CALLEE_SAVED if fits_tuned else None
    with obs.span("compile.arm", module=module.name, fits_tuned=fits_tuned):
        return link_arm(module, entry=entry, callee_saved=callee)


def compile_thumb(module, entry="main"):
    """Compile and link ``module`` to a Thumb image (16-bit baseline)."""
    from repro.compiler.thumb_backend import link_thumb

    with obs.span("compile.thumb", module=module.name):
        return link_thumb(module, entry=entry)
