"""Instruction selection: IR → ARM machine code (one function at a time).

Selection runs after register allocation, so every IR virtual register is
already bound to a physical register or a stack slot.  Two scratch
registers are reserved for spill traffic and immediate materialization:
``ip`` (r12) and ``lr`` (r14, free after the prologue saves it).

The output is a :class:`FunctionCode` whose instruction list still
contains two kinds of link-time placeholders: ``bl`` targets (function
addresses) and global-address ``mov``/``orr`` pairs (data addresses).
Intra-function branches are resolved here.
"""

from repro.ir.ops import Op, Cond as ICond
from repro.ir.instructions import (
    Li,
    Mov,
    Bin,
    Load,
    Store,
    GlobalAddr,
    Br,
    CBr,
    Call,
    Ret,
)
from repro.ir.ops import Width
from repro.isa.arm import (
    Branch,
    Cond,
    DPOp,
    DataProc,
    MemHalf,
    MemMultiple,
    MemWord,
    Multiply,
    Operand2Imm,
    Operand2Reg,
    Operand2RegReg,
    ShiftType,
    Swi,
    encode_rotated_imm,
)
from repro.compiler.regalloc import allocate_registers, SCRATCH0, SCRATCH1, SP

LR = 14
PC = 15

#: IR condition → ARM condition code.
COND_MAP = {
    ICond.EQ: Cond.EQ,
    ICond.NE: Cond.NE,
    ICond.LT: Cond.LT,
    ICond.LE: Cond.LE,
    ICond.GT: Cond.GT,
    ICond.GE: Cond.GE,
    ICond.LTU: Cond.CC,
    ICond.LEU: Cond.LS,
    ICond.GTU: Cond.HI,
    ICond.GEU: Cond.CS,
}

INVERT = {
    Cond.EQ: Cond.NE,
    Cond.NE: Cond.EQ,
    Cond.LT: Cond.GE,
    Cond.GE: Cond.LT,
    Cond.GT: Cond.LE,
    Cond.LE: Cond.GT,
    Cond.CC: Cond.CS,
    Cond.CS: Cond.CC,
    Cond.HI: Cond.LS,
    Cond.LS: Cond.HI,
}

BIN_TO_DP = {
    Op.ADD: DPOp.ADD,
    Op.SUB: DPOp.SUB,
    Op.RSB: DPOp.RSB,
    Op.AND: DPOp.AND,
    Op.ORR: DPOp.ORR,
    Op.EOR: DPOp.EOR,
}

SHIFT_OPS = {Op.LSL: ShiftType.LSL, Op.LSR: ShiftType.LSR, Op.ASR: ShiftType.ASR}


def const_pieces(value):
    """Plan to materialize ``value``: ``('mov'|'mvn', imm)`` then ``('orr', imm)``*.

    Uses a single MOV/MVN when the (complemented) value is a rotated
    immediate, otherwise a MOV of the lowest byte chunk followed by ORRs
    of the remaining byte chunks (at most four instructions).
    """
    value &= 0xFFFFFFFF
    if encode_rotated_imm(value) is not None:
        return [("mov", value)]
    if encode_rotated_imm(value ^ 0xFFFFFFFF) is not None:
        return [("mvn", value ^ 0xFFFFFFFF)]
    chunks = [value & (0xFF << s) for s in (0, 8, 16, 24)]
    chunks = [c for c in chunks if c]
    return [("mov", chunks[0])] + [("orr", c) for c in chunks[1:]]


class FunctionCode:
    """Selected machine code for one function, pre-link."""

    def __init__(self, name):
        self.name = name
        self.instrs = []
        #: (index, kind, payload): kind 'bl' → payload symbol;
        #: 'ga_hi'/'ga_lo' → payload (rd, symbol).
        self.relocs = []
        self.block_offsets = {}

    def __len__(self):
        return len(self.instrs)


class _Selector:
    def __init__(self, func, alloc):
        self.func = func
        self.alloc = alloc
        self.code = FunctionCode(func.name)
        self.branch_fixups = []  # (index, cond, label)
        self.epilogue_label = "__epilogue"
        self.saved = list(alloc.used_callee_saved)
        n_slots = alloc.num_slots
        self.has_calls = any(isinstance(i, Call) for i in func.instructions())
        # Leaf functions with no spills and no callee-saved registers need
        # no frame at all (and then lr stays live, so only one scratch).
        self.frameless = not self.has_calls and n_slots == 0 and not self.saved
        self.s1 = SCRATCH0 if self.frameless else SCRATCH1
        spill_words = n_slots
        if not self.frameless and (spill_words + len(self.saved) + 1) % 2:
            spill_words += 1  # keep sp 8-byte aligned
        self.spill_bytes = 4 * spill_words
        self.slot_offset = {k: 4 * k for k in range(n_slots)}

    # ------------------------------------------------------------------
    # emission helpers

    def emit(self, instr):
        self.code.instrs.append(instr)

    def loc(self, vreg):
        return self.alloc.location(vreg)

    def read(self, vreg, scratch):
        """Physical register holding ``vreg``; loads spills into ``scratch``."""
        kind, value = self.loc(vreg)
        if kind == "r":
            return value
        self.emit(MemWord(load=True, rd=scratch, rn=SP, offset=self.slot_offset[value]))
        return scratch

    def write_back(self, vreg, reg):
        kind, value = self.loc(vreg)
        if kind == "s":
            self.emit(MemWord(load=False, rd=reg, rn=SP, offset=self.slot_offset[value]))

    def dest(self, vreg, avoid=()):
        """Register to compute ``vreg`` into (a scratch when spilled)."""
        kind, value = self.loc(vreg)
        if kind == "r":
            return value
        for s in (SCRATCH0, SCRATCH1):
            if s not in avoid:
                return s
        raise AssertionError("no scratch available for destination")

    def load_const(self, rd, value, cond=Cond.AL):
        for kind, imm in const_pieces(value):
            rot, imm8 = encode_rotated_imm(imm)
            op2 = Operand2Imm(rot, imm8)
            if kind == "mov":
                self.emit(DataProc(DPOp.MOV, rd, 0, op2, cond=cond))
            elif kind == "mvn":
                self.emit(DataProc(DPOp.MVN, rd, 0, op2, cond=cond))
            else:
                self.emit(DataProc(DPOp.ORR, rd, rd, op2, cond=cond))

    def imm_op2(self, value):
        enc = encode_rotated_imm(value & 0xFFFFFFFF)
        return Operand2Imm(*enc) if enc is not None else None

    # ------------------------------------------------------------------
    # top level

    def run(self):
        self.prologue()
        order = [blk.label for blk in self.func.blocks]
        next_of = {order[i]: order[i + 1] if i + 1 < len(order) else None for i in range(len(order))}
        for blk in self.func.blocks:
            self.code.block_offsets[blk.label] = len(self.code.instrs)
            for ins in blk.instrs:
                self.select(ins, next_of[blk.label])
        self.code.block_offsets[self.epilogue_label] = len(self.code.instrs)
        self.epilogue()
        self.fix_branches()
        return self.code

    def prologue(self):
        if not self.frameless:
            self.emit(MemMultiple(False, SP, self.saved + [LR]))
            if self.spill_bytes:
                op2 = self.imm_op2(self.spill_bytes)
                assert op2 is not None, "frame too large: %d" % self.spill_bytes
                self.emit(DataProc(DPOp.SUB, SP, SP, op2))
        # Move incoming arguments (r0..r3) to their allocated homes.
        moves = []
        for i in range(self.func.num_args):
            if i not in self.alloc.intervals:
                continue  # argument never used
            moves.append((self.alloc.location(i), ("r", i)))
        self.parallel_moves(moves)

    def epilogue(self):
        if self.frameless:
            self.emit(DataProc(DPOp.MOV, PC, 0, Operand2Reg(LR)))
            return
        if self.spill_bytes:
            self.emit(DataProc(DPOp.ADD, SP, SP, self.imm_op2(self.spill_bytes)))
        self.emit(MemMultiple(True, SP, self.saved + [PC]))

    def fix_branches(self):
        for index, cond, label in self.branch_fixups:
            target = self.code.block_offsets[label]
            self.code.instrs[index] = Branch(target - (index + 2), cond=cond)

    def branch_to(self, label, cond=Cond.AL):
        self.branch_fixups.append((len(self.code.instrs), cond, label))
        self.emit(Branch(0, cond=cond))  # placeholder

    # ------------------------------------------------------------------
    # parallel moves (entry arguments and call argument staging)

    def parallel_moves(self, moves):
        """Perform moves ``[(dst_loc, src_loc)]`` as if simultaneous.

        Slot destinations go first (they clobber no registers); register
        destinations are scheduled respecting read-before-write, breaking
        cycles through SCRATCH0.
        """
        pending = []
        for dst, src in moves:
            if dst == src:
                continue
            if dst[0] == "s":
                if src[0] == "r":
                    self.emit(MemWord(load=False, rd=src[1], rn=SP, offset=self.slot_offset[dst[1]]))
                else:
                    self.emit(MemWord(load=True, rd=SCRATCH0, rn=SP, offset=self.slot_offset[src[1]]))
                    self.emit(MemWord(load=False, rd=SCRATCH0, rn=SP, offset=self.slot_offset[dst[1]]))
            else:
                pending.append([dst[1], src])

        while pending:
            src_regs = {src[1] for _dst, src in pending if src[0] == "r"}
            ready = [m for m in pending if m[0] not in src_regs]
            if ready:
                for dst, src in ready:
                    if src[0] == "r":
                        self.emit(DataProc(DPOp.MOV, dst, 0, Operand2Reg(src[1])))
                    else:
                        self.emit(MemWord(load=True, rd=dst, rn=SP, offset=self.slot_offset[src[1]]))
                pending = [m for m in pending if m[0] in src_regs]
            else:
                # cycle: free one source register via the scratch
                _dst, src = pending[0]
                self.emit(DataProc(DPOp.MOV, SCRATCH0, 0, Operand2Reg(src[1])))
                for m in pending:
                    if m[1] == ("r", src[1]):
                        m[1] = ("r", SCRATCH0)

    # ------------------------------------------------------------------
    # per-instruction selection

    def select(self, ins, next_label):
        if isinstance(ins, Bin):
            self.sel_bin(ins)
        elif isinstance(ins, Load):
            self.sel_load(ins)
        elif isinstance(ins, Store):
            self.sel_store(ins)
        elif isinstance(ins, Li):
            rd = self.dest(ins.dst)
            self.load_const(rd, ins.imm)
            self.write_back(ins.dst, rd)
        elif isinstance(ins, Mov):
            self.sel_mov(ins)
        elif isinstance(ins, CBr):
            self.sel_cbr(ins, next_label)
        elif isinstance(ins, Br):
            if ins.target != next_label:
                self.branch_to(ins.target)
        elif isinstance(ins, Call):
            self.sel_call(ins)
        elif isinstance(ins, Ret):
            self.sel_ret(ins)
        elif isinstance(ins, GlobalAddr):
            rd = self.dest(ins.dst)
            index = len(self.code.instrs)
            self.emit(DataProc(DPOp.MOV, rd, 0, Operand2Imm(0, 0)))
            self.emit(DataProc(DPOp.ORR, rd, rd, Operand2Imm(0, 0)))
            self.code.relocs.append((index, "ga_hi", (rd, ins.symbol)))
            self.code.relocs.append((index + 1, "ga_lo", (rd, ins.symbol)))
            self.write_back(ins.dst, rd)
        else:
            raise TypeError("cannot select %r" % (ins,))

    def sel_mov(self, ins):
        dst, src = self.loc(ins.dst), self.loc(ins.src)
        if dst == src:
            return
        self.parallel_moves([(dst, src)])

    def sel_bin(self, ins):
        if ins.op in SHIFT_OPS:
            return self.sel_shift(ins)
        if ins.op is Op.MUL:
            return self.sel_mul(ins)
        lhs = self.read(ins.lhs, SCRATCH0)
        dp = BIN_TO_DP[ins.op]
        if isinstance(ins.rhs, int):
            op2, dp = self.arith_imm(dp, ins.rhs)
            if op2 is None:
                self.load_const(self.s1, ins.rhs)
                op2 = Operand2Reg(self.s1)
                dp = BIN_TO_DP[ins.op]
        else:
            op2 = Operand2Reg(self.read(ins.rhs, self.s1))
        rd = self.dest(ins.dst)
        self.emit(DataProc(dp, rd, lhs, op2))
        self.write_back(ins.dst, rd)

    def arith_imm(self, dp, value):
        """Immediate form for ``dp`` with ``value``, using the standard
        negation tricks (ADD↔SUB, AND→BIC, MOV→MVN); returns (op2, dp)."""
        op2 = self.imm_op2(value)
        if op2 is not None:
            return op2, dp
        neg = self.imm_op2(-value & 0xFFFFFFFF)
        if neg is not None:
            if dp is DPOp.ADD:
                return neg, DPOp.SUB
            if dp is DPOp.SUB:
                return neg, DPOp.ADD
        inv = self.imm_op2(value ^ 0xFFFFFFFF)
        if inv is not None and dp is DPOp.AND:
            return inv, DPOp.BIC
        if inv is not None and dp is DPOp.EOR:
            # no direct trick for EOR; fall through to materialization
            pass
        return None, dp

    def sel_shift(self, ins):
        lhs = self.read(ins.lhs, SCRATCH0)
        shift_type = SHIFT_OPS[ins.op]
        if isinstance(ins.rhs, int):
            amount = ins.rhs
            if not 0 <= amount < 32:
                raise ValueError(
                    "@%s: constant shift amount %d out of range" % (self.func.name, amount)
                )
            if amount == 0:
                # LSR/ASR #0 encode shift-by-32 on ARM; a zero shift is a move
                op2 = Operand2Reg(lhs)
            else:
                op2 = Operand2Reg(lhs, shift_type, amount)
        else:
            rs = self.read(ins.rhs, self.s1)
            op2 = Operand2RegReg(lhs, shift_type, rs)
        rd = self.dest(ins.dst)
        self.emit(DataProc(DPOp.MOV, rd, 0, op2))
        self.write_back(ins.dst, rd)

    def sel_mul(self, ins):
        rm = self.read(ins.lhs, SCRATCH0)
        if isinstance(ins.rhs, int):
            self.load_const(self.s1, ins.rhs)
            rs = self.s1
        else:
            rs = self.read(ins.rhs, self.s1)
        rd = self.dest(ins.dst, avoid=(rm,))
        if rd == rm:
            if rd != rs:
                rm, rs = rs, rm
            else:
                # rd == rm == rs: square through a scratch copy
                free = SCRATCH0 if rm != SCRATCH0 else SCRATCH1
                self.emit(DataProc(DPOp.MOV, free, 0, Operand2Reg(rm)))
                rm = free
        self.emit(Multiply(rd=rd, rm=rm, rs=rs))
        self.write_back(ins.dst, rd)

    # ------------------------------------------------------------------
    # memory

    def sel_load(self, ins):
        base = self.read(ins.base, SCRATCH0)
        rd = self.dest(ins.dst)
        if ins.width is Width.WORD or (ins.width is Width.BYTE and not ins.signed):
            byte = ins.width is Width.BYTE
            if isinstance(ins.offset, int):
                if -4095 <= ins.offset <= 4095:
                    self.emit(MemWord(load=True, rd=rd, rn=base, offset=ins.offset, byte=byte))
                else:
                    self.load_const(self.s1, ins.offset)
                    self.emit(
                        MemWord(load=True, rd=rd, rn=base, offset=Operand2Reg(self.s1), byte=byte)
                    )
            else:
                off = self.read(ins.offset, self.s1)
                self.emit(MemWord(load=True, rd=rd, rn=base, offset=Operand2Reg(off), byte=byte))
        else:
            half = ins.width is Width.HALF
            if isinstance(ins.offset, int) and -255 <= ins.offset <= 255:
                self.emit(
                    MemHalf(load=True, rd=rd, rn=base, offset=ins.offset, half=half, signed=ins.signed)
                )
            else:
                ea = self.effective_address(base, ins.offset)
                self.emit(MemHalf(load=True, rd=rd, rn=ea, offset=0, half=half, signed=ins.signed))
        self.write_back(ins.dst, rd)

    def effective_address(self, base_reg, offset):
        """ADD base+offset into a scratch (for forms without reg offsets)."""
        if isinstance(offset, int):
            op2, dp = self.arith_imm(DPOp.ADD, offset)
            if op2 is None:
                self.load_const(self.s1, offset)
                op2, dp = Operand2Reg(self.s1), DPOp.ADD
        else:
            op2, dp = Operand2Reg(self.read(offset, self.s1)), DPOp.ADD
        self.emit(DataProc(dp, self.s1, base_reg, op2))
        return self.s1

    def sel_store(self, ins):
        spilled = sum(
            1
            for v in (ins.src, ins.base, ins.offset)
            if not isinstance(v, int) and self.loc(v)[0] == "s"
        )
        base = self.read(ins.base, SCRATCH0)
        if ins.width is Width.WORD or ins.width is Width.BYTE:
            byte = ins.width is Width.BYTE
            if isinstance(ins.offset, int) and -4095 <= ins.offset <= 4095:
                src = self.read(ins.src, self.s1)
                self.emit(MemWord(load=False, rd=src, rn=base, offset=ins.offset, byte=byte))
            elif spilled >= 2 or isinstance(ins.offset, int):
                ea = self.effective_address(base, ins.offset)
                src = self.read(ins.src, SCRATCH0)
                self.emit(MemWord(load=False, rd=src, rn=ea, offset=0, byte=byte))
            else:
                # at most one of src/base/offset is spilled here, so the
                # scratch assignments below cannot collide
                off = self.read(ins.offset, self.s1)
                src = self.read(ins.src, SCRATCH0)
                self.emit(MemWord(load=False, rd=src, rn=base, offset=Operand2Reg(off), byte=byte))
        else:
            if isinstance(ins.offset, int) and -255 <= ins.offset <= 255:
                src = self.read(ins.src, self.s1)
                self.emit(MemHalf(load=False, rd=src, rn=base, offset=ins.offset))
            else:
                ea = self.effective_address(base, ins.offset)
                src = self.read(ins.src, SCRATCH0)
                self.emit(MemHalf(load=False, rd=src, rn=ea, offset=0))

    # ------------------------------------------------------------------
    # control flow

    def sel_cbr(self, ins, next_label):
        lhs = self.read(ins.lhs, SCRATCH0)
        if isinstance(ins.rhs, int):
            op2 = self.imm_op2(ins.rhs)
            dp = DPOp.CMP
            if op2 is None:
                neg = self.imm_op2(-ins.rhs & 0xFFFFFFFF)
                if neg is not None:
                    op2, dp = neg, DPOp.CMN
                else:
                    self.load_const(self.s1, ins.rhs)
                    op2 = Operand2Reg(self.s1)
        else:
            op2, dp = Operand2Reg(self.read(ins.rhs, self.s1)), DPOp.CMP
        self.emit(DataProc(dp, 0, lhs, op2))
        cond = COND_MAP[ins.cond]
        if ins.if_false == next_label:
            self.branch_to(ins.if_true, cond)
        elif ins.if_true == next_label:
            self.branch_to(ins.if_false, INVERT[cond])
        else:
            self.branch_to(ins.if_true, cond)
            self.branch_to(ins.if_false)

    def sel_call(self, ins):
        moves = []
        for i, arg in enumerate(ins.args):
            moves.append(((("r", i)), self.loc(arg)))
        self.parallel_moves(moves)
        self.code.relocs.append((len(self.code.instrs), "bl", ins.callee))
        self.emit(Branch(0, link=True))  # placeholder
        if ins.dst is not None:
            kind, value = self.loc(ins.dst)
            if kind == "r":
                if value != 0:
                    self.emit(DataProc(DPOp.MOV, value, 0, Operand2Reg(0)))
            else:
                self.emit(MemWord(load=False, rd=0, rn=SP, offset=self.slot_offset[value]))

    def sel_ret(self, ins):
        if ins.value is not None:
            kind, value = self.loc(ins.value)
            if kind == "r":
                if value != 0:
                    self.emit(DataProc(DPOp.MOV, 0, 0, Operand2Reg(value)))
            else:
                self.emit(MemWord(load=True, rd=0, rn=SP, offset=self.slot_offset[value]))
        self.branch_to(self.epilogue_label)


def compile_function_arm(func, callee_saved=None):
    """Allocate registers and select ARM code for one IR function.

    ``callee_saved`` restricts the allocatable callee-saved pool — the
    FITS-aware compilation mode uses (r4, r5) so that every register
    visible in instruction fields fits a 3-bit FITS register index (sp,
    lr and pc are reached through dedicated formats, not fields).
    """
    if func.num_args > 4:
        raise ValueError(
            "@%s: %d args; the register convention supports at most 4"
            % (func.name, func.num_args)
        )
    if callee_saved is None:
        alloc = allocate_registers(func)
    else:
        alloc = allocate_registers(func, callee_saved=callee_saved)
    return _Selector(func, alloc).run()


def make_start_stub(entry):
    """``_start``: call the entry function, then SWI #0 (exit, r0=status)."""
    code = FunctionCode("_start")
    code.relocs.append((0, "bl", entry))
    code.instrs.append(Branch(0, link=True))
    code.instrs.append(Swi(0))
    return code
