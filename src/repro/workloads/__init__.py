"""MiBench-like workloads written in the mini IR.

Each workload models the computational core of the MiBench program of
the same name, links against the shared runtime library
(:mod:`repro.workloads.runtime`) and returns a 32-bit checksum from
``main`` that is validated against a pure-Python reference model.

Workloads build at two scales:

* ``"small"`` — seconds-fast, used by the test suite,
* ``"full"``  — the evaluation scale used by the benchmark harness
  (hundreds of thousands of dynamic instructions; the paper ran MiBench
  to completion, we run the kernels to completion at a reduced input
  size, which preserves the instruction mix and footprint).
"""

from repro.workloads.base import Workload, WorkloadError
from repro.workloads.registry import (
    get_workload,
    all_workloads,
    workload_names,
    POWER_STUDY_BENCHMARKS,
    CODE_SIZE_BENCHMARKS,
)

__all__ = [
    "Workload",
    "WorkloadError",
    "get_workload",
    "all_workloads",
    "workload_names",
    "POWER_STUDY_BENCHMARKS",
    "CODE_SIZE_BENCHMARKS",
]
