"""Deterministic input-data generation shared by workloads.

All inputs are derived from a seeded xorshift32 stream so the IR build,
the Python reference model and every simulator see byte-identical data.
"""

import struct

from repro.workloads.pyref import XorShift32


def seed_from_name(name):
    """Stable 32-bit seed derived from a workload name."""
    h = 2166136261
    for ch in name.encode():
        h = ((h ^ ch) * 16777619) & 0xFFFFFFFF
    return h or 0x9E3779B9


def random_bytes(name, count):
    rng = XorShift32(seed_from_name(name))
    return bytes((rng.next() >> 7) & 0xFF for i in range(count))


def random_words(name, count, lo=0, hi=0xFFFFFFFF):
    rng = XorShift32(seed_from_name(name))
    span = hi - lo + 1
    return [lo + rng.next() % span for _ in range(count)]


def random_halfwords(name, count, lo=0, hi=0xFFFF):
    return random_words(name, count, lo, hi)


def words_bytes(words):
    return struct.pack("<%dI" % len(words), *[w & 0xFFFFFFFF for w in words])


def halfwords_bytes(halfwords):
    return struct.pack("<%dH" % len(halfwords), *[h & 0xFFFF for h in halfwords])


def ascii_text(name, count, words=None):
    """Deterministic space-separated pseudo-text of roughly ``count`` bytes."""
    if words is None:
        words = [
            "the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
            "embedded", "cache", "power", "instruction", "synthesis", "fits",
            "processor", "benchmark", "telecom", "office", "security", "network",
        ]
    rng = XorShift32(seed_from_name(name))
    out = []
    size = 0
    while size < count:
        w = words[rng.next() % len(words)]
        out.append(w)
        size += len(w) + 1
    return (" ".join(out))[:count].encode()
