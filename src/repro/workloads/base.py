"""Workload abstraction: build an IR module, know its golden answer."""

from repro.ir import Module, verify_module
from repro.workloads.runtime import runtime_module


class WorkloadError(Exception):
    """Raised when a workload is asked for an unsupported configuration."""


class Workload:
    """One benchmark: a module builder plus its reference model.

    Args:
        name: benchmark name (MiBench-style, e.g. ``"crc32"``).
        category: MiBench category (``"telecomm"``, ``"security"``, ...).
        build: ``f(builder_module, scale)`` that populates a fresh module
            with the kernel's functions and globals (entry ``main``).
        reference: ``f(scale) -> int`` returning the expected exit
            checksum (32-bit).
        description: one line about what the kernel models.
    """

    SCALES = ("small", "full")

    def __init__(self, name, category, build, reference, description=""):
        self.name = name
        self.category = category
        self._build = build
        self._reference = reference
        self.description = description

    def build_module(self, scale="full"):
        """Fresh verified IR module (kernel + runtime library)."""
        if scale not in self.SCALES:
            raise WorkloadError("unknown scale %r (use one of %s)" % (scale, self.SCALES))
        module = Module(self.name)
        self._build(module, scale)
        module.merge(runtime_module(), allow_duplicates=True)
        verify_module(module, entry="main")
        return module

    def reference(self, scale="full"):
        """Expected 32-bit exit checksum for the given scale."""
        if scale not in self.SCALES:
            raise WorkloadError("unknown scale %r (use one of %s)" % (scale, self.SCALES))
        return self._reference(scale) & 0xFFFFFFFF

    def __repr__(self):
        return "<Workload %s (%s)>" % (self.name, self.category)
