"""Workload registry: the benchmark roster and lookup helpers.

The roster mirrors the paper's 21-benchmark MiBench subset (Section 5):
``basicmath`` and ``gsm.encode`` are omitted as in the paper, ``gsm``
is the decode direction, and ``adpcm`` appears in both directions in the
code-size study.
"""

import importlib

#: Benchmarks shown in the code-size comparison (Figure 5).
CODE_SIZE_BENCHMARKS = [
    "bitcount",
    "qsort",
    "susan",
    "jpeg",
    "lame",
    "mad",
    "tiff2bw",
    "typeset",
    "dijkstra",
    "patricia",
    "ispell",
    "rsynth",
    "stringsearch",
    "blowfish",
    "pgp",
    "rijndael",
    "sha",
    "adpcm_enc",
    "adpcm_dec",
    "crc32",
    "fft",
    "gsm",
]

#: The 21 benchmarks used in the power study (Figures 3-4, 6-14).
POWER_STUDY_BENCHMARKS = [name for name in CODE_SIZE_BENCHMARKS if name != "adpcm_dec"]

_cache = {}


def get_workload(name):
    """Look up a workload by benchmark name; imports its module lazily."""
    if name not in _cache:
        if name not in CODE_SIZE_BENCHMARKS:
            raise KeyError("unknown benchmark %r (see CODE_SIZE_BENCHMARKS)" % name)
        module = importlib.import_module("repro.workloads.mibench.%s" % name)
        _cache[name] = module.WORKLOAD
    return _cache[name]


def workload_names():
    """All benchmark names, in roster order."""
    return list(CODE_SIZE_BENCHMARKS)


def all_workloads():
    """All workloads, importing every kernel module."""
    return [get_workload(name) for name in CODE_SIZE_BENCHMARKS]
