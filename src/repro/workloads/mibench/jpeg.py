"""``jpeg`` (consumer): JPEG-style encode pipeline over an RGB image.

Four phases per MiBench's cjpeg profile: RGB→YCbCr color conversion
(integer ITU weights), 8x8 forward DCT (fixed-point Q13 cosine table,
separable row/column passes with the inner MAC unrolled), quantization
by reciprocal multiplication (as libjpeg's DIVIDE_BY does), and zigzag +
run-length/size-class entropy coding into a byte stream.

The per-block pipeline touches four sizable functions every iteration,
giving the large alternating instruction footprint the paper's cache
study needs.
"""

import math

from repro.ir import Cond, FunctionBuilder, Global, Width
from repro.workloads.base import Workload
from repro.workloads.data import random_bytes
from repro.workloads.pyref import M32, s32, asr32, add32, mul32

DIMS = {"small": (16, 16), "full": (48, 48)}  # multiples of 8

#: Q13 cosine table: C[u][x] = round(8192 * c(u) * cos((2x+1)u*pi/16) / 2)
def _cos_table():
    out = []
    for u in range(8):
        cu = math.sqrt(0.5) if u == 0 else 1.0
        row = []
        for x in range(8):
            row.append(int(round(8192 * 0.5 * cu * math.cos((2 * x + 1) * u * math.pi / 16))))
        out.append(row)
    return out


COS = _cos_table()

QTAB = [
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
]

RECIP = [(1 << 16) // q for q in QTAB]

ZIGZAG = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
]


def _rgb(scale):
    w, h = DIMS[scale]
    return random_bytes("jpeg", w * h * 3)


def _size_class(v):
    v = abs(v)
    n = 0
    while v:
        n += 1
        v >>= 1
    return n


def _build(m, scale):
    w, h = DIMS[scale]
    rgb = _rgb(scale)
    m.add_global(Global("jp_rgb", data=rgb))
    m.add_global(Global("jp_y", size=w * h * 4))
    m.add_global(Global("jp_blk", size=64 * 4))
    m.add_global(Global("jp_tmp", size=64 * 4))
    cos_flat = []
    for row in COS:
        cos_flat.extend(row)
    m.add_global(Global("jp_cos", data=b"".join((c & 0xFFFF).to_bytes(2, "little") for c in cos_flat)))
    m.add_global(Global("jp_recip", data=b"".join(r.to_bytes(4, "little") for r in RECIP)))
    m.add_global(Global("jp_zig", data=bytes(ZIGZAG)))
    out_cap = w * h  # generous
    m.add_global(Global("jp_out", size=out_cap))
    m.add_global(Global("jp_outn", size=4))

    # phase 1: color conversion (Y plane, level-shifted by -128)
    f = FunctionBuilder(m, "jp_color", [])
    rgbp = f.ga("jp_rgb")
    yp = f.ga("jp_y")
    with f.for_range(0, w * h) as i:
        off = f.mul(i, 3)
        r = f.load(rgbp, off, Width.BYTE)
        g = f.load(rgbp, f.add(off, 1), Width.BYTE)
        bch = f.load(rgbp, f.add(off, 2), Width.BYTE)
        y = f.mul(r, 77)
        y = f.add(y, f.mul(g, 151))
        y = f.add(y, f.mul(bch, 28))
        y = f.asr(y, 8)
        f.store(f.sub(y, 128), yp, f.lsl(i, 2))
    f.ret()

    # phase 2a: row DCT pass (jp_blk -> jp_tmp); both the coefficient and
    # sample loops are unrolled with the Q13 constants baked into the
    # instruction stream, the way optimized integer DCTs are written
    f = FunctionBuilder(m, "jp_dct_rows", [])
    blk = f.ga("jp_blk")
    tmp = f.ga("jp_tmp")
    with f.for_range(0, 8) as row:
        base = f.lsl(f.lsl(row, 3), 2)  # row*8 words
        samples = [f.load(blk, f.add(base, 4 * x)) for x in range(8)]
        for u in range(8):
            acc = f.li(0)
            for x in range(8):
                c = COS[u][x]
                if c == 0:
                    continue
                f.add(acc, f.mul(samples[x], c & 0xFFFFFFFF), dst=acc)
            f.store(f.asr(acc, 13), tmp, f.add(base, 4 * u))
    f.ret()

    # phase 2b: column DCT pass (jp_tmp -> jp_blk), same unrolled shape
    f = FunctionBuilder(m, "jp_dct_cols", [])
    blk = f.ga("jp_blk")
    tmp = f.ga("jp_tmp")
    with f.for_range(0, 8) as col:
        coff = f.lsl(col, 2)
        samples = [f.load(tmp, f.add(coff, 32 * x)) for x in range(8)]
        for u in range(8):
            acc = f.li(0)
            for x in range(8):
                c = COS[u][x]
                if c == 0:
                    continue
                f.add(acc, f.mul(samples[x], c & 0xFFFFFFFF), dst=acc)
            f.store(f.asr(acc, 13), blk, f.add(coff, 32 * u))
    f.ret()

    # phase 3: quantize in place (reciprocal multiply, round to zero);
    # unrolled per coefficient with the reciprocals as immediates
    f = FunctionBuilder(m, "jp_quant", [])
    blk = f.ga("jp_blk")
    for i in range(64):
        off = 4 * i
        v = f.load(blk, off)
        neg = f.li(0)
        with f.if_then(Cond.LT, v, 0):
            f.li(1, dst=neg)
            f.rsb(v, 0, dst=v)
        scaled = f.lsr(f.mul(v, RECIP[i]), 16)
        with f.if_then(Cond.NE, neg, 0):
            f.rsb(scaled, 0, dst=scaled)
        f.store(scaled, blk, off)
    f.ret()

    # phase 4: zigzag + run-length/size-class coding into jp_out
    f = FunctionBuilder(m, "jp_entropy", [])
    blk = f.ga("jp_blk")
    zig = f.ga("jp_zig")
    out = f.ga("jp_out")
    outn = f.ga("jp_outn")
    n = f.load(outn)
    run = f.li(0)
    with f.for_range(0, 64) as i:
        zi = f.load(zig, i, Width.BYTE)
        v = f.load(blk, f.lsl(zi, 2))
        with f.if_else(Cond.EQ, v, 0) as otherwise:
            f.add(run, 1, dst=run)
            with otherwise:
                av = f.select(Cond.LT, v, 0, f.rsb(v, 0), v)
                size = f.li(0)
                with f.loop_while(Cond.NE, av, 0):
                    f.add(size, 1, dst=size)
                    f.lsr(av, 1, dst=av)
                code = f.orr(f.lsl(run, 4), f.and_(size, 0xF))
                f.store(code, out, n, Width.BYTE)
                f.add(n, 1, dst=n)
                f.store(v, out, n, Width.BYTE)
                f.add(n, 1, dst=n)
                f.li(0, dst=run)
    with f.if_then(Cond.NE, run, 0):
        f.store(0xF0, out, n, Width.BYTE)
        f.add(n, 1, dst=n)
    f.store(n, outn)
    f.ret()

    b = FunctionBuilder(m, "main", [])
    b.call("jp_color", [], dst=False)
    yp = b.ga("jp_y")
    blk = b.ga("jp_blk")
    bw = w // 8
    bh = h // 8
    with b.for_range(0, bh) as by:
        with b.for_range(0, bw) as bx:
            # gather the 8x8 block
            with b.for_range(0, 8) as r:
                src_row = b.add(b.mul(b.add(b.lsl(by, 3), r), w), b.lsl(bx, 3))
                with b.for_range(0, 8) as c:
                    v = b.load(yp, b.lsl(b.add(src_row, c), 2))
                    b.store(v, blk, b.lsl(b.add(b.lsl(r, 3), c), 2))
            b.call("jp_dct_rows", [], dst=False)
            b.call("jp_dct_cols", [], dst=False)
            b.call("jp_quant", [], dst=False)
            b.call("jp_entropy", [], dst=False)
    out = b.ga("jp_out")
    outn = b.ga("jp_outn")
    n = b.load(outn)
    acc = b.mov(n)
    with b.for_range(0, n) as i:
        v = b.load(out, i, Width.BYTE)
        b.mul(acc, 31, dst=acc)
        b.add(acc, v, dst=acc)
    b.ret(acc)


def _reference(scale):
    w, h = DIMS[scale]
    rgb = _rgb(scale)
    ypl = []
    for i in range(w * h):
        r, g, bch = rgb[3 * i], rgb[3 * i + 1], rgb[3 * i + 2]
        y = (r * 77 + g * 151 + bch * 28) >> 8
        ypl.append(y - 128)
    out = bytearray()
    for by in range(h // 8):
        for bx in range(w // 8):
            blk = [
                ypl[(by * 8 + r) * w + bx * 8 + c]
                for r in range(8)
                for c in range(8)
            ]
            # row pass
            tmp = [0] * 64
            for row in range(8):
                for u in range(8):
                    acc = 0
                    for x in range(8):
                        acc = add32(acc, mul32(blk[row * 8 + x] & M32, COS[u][x] & M32))
                    tmp[row * 8 + u] = asr32(acc, 13)
            # column pass
            for col in range(8):
                for u in range(8):
                    acc = 0
                    for x in range(8):
                        acc = add32(acc, mul32(tmp[x * 8 + col], COS[u][x] & M32))
                    blk[u * 8 + col] = asr32(acc, 13)
            # quantize
            for i in range(64):
                v = s32(blk[i])
                neg = v < 0
                if neg:
                    v = -v
                scaled = (v * RECIP[i]) >> 16
                blk[i] = (-scaled if neg else scaled) & M32
            # entropy
            run = 0
            for i in range(64):
                v = s32(blk[ZIGZAG[i]])
                if v == 0:
                    run += 1
                else:
                    av = -v if v < 0 else v
                    size = av.bit_length()
                    out.append(((run << 4) | (size & 0xF)) & 0xFF)
                    out.append(v & 0xFF)
                    run = 0
            if run:
                out.append(0xF0)
    acc = len(out) & M32
    for v in out:
        acc = (acc * 31 + v) & M32
    return acc


WORKLOAD = Workload(
    name="jpeg",
    category="consumer",
    build=_build,
    reference=_reference,
    description="JPEG-style encode: color convert, 8x8 DCT, quantize, entropy",
)
