"""``ispell`` (office): hash-dictionary spell checking with suggestions.

A nul-separated dictionary blob is hashed into an open-addressing table
at startup (FNV-1a); the text's words are looked up, and misses go
through ispell's near-miss strategy — try every single-character
deletion and every adjacent transposition — counting the corrections
found.  String-compare and hash loops dominate, like the real thing.
"""

from repro.ir import Cond, FunctionBuilder, Global, Width
from repro.workloads.base import Workload
from repro.workloads.data import ascii_text
from repro.workloads.pyref import M32, XorShift32

PARAMS = {"small": (90, 1200), "full": (260, 12000)}  # (dict words, text bytes)
TABLE_SIZE = 1024  # slots (power of two)
MAX_WORD = 24

BASES = [
    "the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
    "embedded", "cache", "power", "instruction", "synthesis", "fits",
    "processor", "benchmark", "telecom", "office", "security", "network",
]


def _dictionary(scale):
    count, _ = PARAMS[scale]
    rng = XorShift32(0x15BE11)
    words = list(BASES)
    while len(words) < count:
        base = BASES[rng.next() % len(BASES)]
        suffix = chr(ord("a") + rng.next() % 26) + chr(ord("a") + rng.next() % 26)
        w = base + suffix
        if w not in words:
            words.append(w)
    return words[:count]


def _text(scale):
    _, nbytes = PARAMS[scale]
    raw = ascii_text("ispell", nbytes).decode()
    words = raw.split()
    rng = XorShift32(0x7E57)
    out = []
    for i, w in enumerate(words):
        if i % 3 == 2 and len(w) > 2:
            # mutate one character to force a near-miss search
            k = rng.next() % len(w)
            w = w[:k] + chr(ord("a") + rng.next() % 26) + w[k + 1 :]
        out.append(w)
    return (" ".join(out)).encode() + b"\x00"


def _fnv(word):
    h = 2166136261
    for ch in word:
        h = ((h ^ ch) * 16777619) & M32
    return h


class _PyDict:
    def __init__(self, words):
        self.table = [None] * TABLE_SIZE
        for w in words:
            slot = _fnv(w.encode()) & (TABLE_SIZE - 1)
            while self.table[slot] is not None:
                slot = (slot + 1) & (TABLE_SIZE - 1)
            self.table[slot] = w.encode()

    def lookup(self, word):
        slot = _fnv(word) & (TABLE_SIZE - 1)
        while self.table[slot] is not None:
            if self.table[slot] == word:
                return True
            slot = (slot + 1) & (TABLE_SIZE - 1)
        return False


def _reference(scale):
    d = _PyDict(_dictionary(scale))
    text = _text(scale)[:-1].decode()
    acc = 0
    for w in text.split():
        wb = w.encode()
        if d.lookup(wb):
            acc = (acc * 3 + 1) & M32
            continue
        suggestions = 0
        for i in range(len(wb)):  # deletions
            if d.lookup(wb[:i] + wb[i + 1 :]):
                suggestions += 1
        for i in range(len(wb) - 1):  # adjacent transpositions
            cand = bytearray(wb)
            cand[i], cand[i + 1] = cand[i + 1], cand[i]
            if d.lookup(bytes(cand)):
                suggestions += 1
        acc = ((acc * 7) ^ suggestions) & M32
    return acc


def _build(m, scale):
    words = _dictionary(scale)
    blob = bytearray()
    offsets = []
    for w in words:
        offsets.append(len(blob))
        blob += w.encode() + b"\x00"
    text = _text(scale)
    m.add_global(Global("is_dict", data=bytes(blob)))
    m.add_global(Global("is_text", data=text))
    m.add_global(Global("is_table", size=TABLE_SIZE * 4))
    m.add_global(Global("is_cand", size=MAX_WORD + 2, align=4))
    m.add_global(
        Global("is_offsets", data=b"".join(o.to_bytes(4, "little") for o in offsets))
    )

    f = FunctionBuilder(m, "is_hash", ["ptr"])
    ptr = f.arg("ptr")
    h = f.li(2166136261)
    ch = f.load(ptr, 0, Width.BYTE)
    with f.loop_while(Cond.NE, ch, 0):
        f.eor(h, ch, dst=h)
        f.mul(h, 16777619, dst=h)
        f.add(ptr, 1, dst=ptr)
        f.load(ptr, 0, Width.BYTE, dst=ch)
    f.ret(h)

    f = FunctionBuilder(m, "is_insert", ["word"])
    word = f.arg("word")
    table = f.ga("is_table")
    slot = f.and_(f.call("is_hash", [word]), TABLE_SIZE - 1)
    entry = f.load(table, f.lsl(slot, 2))
    with f.loop_while(Cond.NE, entry, 0):
        f.add(slot, 1, dst=slot)
        f.and_(slot, TABLE_SIZE - 1, dst=slot)
        f.load(table, f.lsl(slot, 2), dst=entry)
    f.store(f.add(word, 1), table, f.lsl(slot, 2))  # +1 so 0 means empty
    f.ret()

    f = FunctionBuilder(m, "is_lookup", ["word"])
    word = f.arg("word")
    table = f.ga("is_table")
    slot = f.and_(f.call("is_hash", [word]), TABLE_SIZE - 1)
    entry = f.load(table, f.lsl(slot, 2))
    with f.loop_while(Cond.NE, entry, 0):
        stored = f.sub(entry, 1)
        cmp = f.call("strcmp", [stored, word])
        with f.if_then(Cond.EQ, cmp, 0):
            f.ret(1)
        f.add(slot, 1, dst=slot)
        f.and_(slot, TABLE_SIZE - 1, dst=slot)
        f.load(table, f.lsl(slot, 2), dst=entry)
    f.ret(0)

    # near-miss: deletions and adjacent transpositions via is_cand buffer
    f = FunctionBuilder(m, "is_suggest", ["word", "length"])
    word, length = f.args
    cand = f.ga("is_cand")
    found = f.li(0)
    with f.for_range(0, length) as i:  # deletion at i
        out = f.li(0)
        with f.for_range(0, length) as j:
            with f.if_then(Cond.NE, j, i):
                f.store(f.load(word, j, Width.BYTE), cand, out, Width.BYTE)
                f.add(out, 1, dst=out)
        f.store(0, cand, out, Width.BYTE)
        f.add(found, f.call("is_lookup", [cand]), dst=found)
    last = f.sub(length, 1)
    with f.for_range(0, last) as i:  # transposition at i
        with f.for_range(0, length) as j:
            f.store(f.load(word, j, Width.BYTE), cand, j, Width.BYTE)
        a = f.load(cand, i, Width.BYTE)
        bb = f.load(cand, f.add(i, 1), Width.BYTE)
        f.store(bb, cand, i, Width.BYTE)
        f.store(a, cand, f.add(i, 1), Width.BYTE)
        f.store(0, cand, length, Width.BYTE)
        f.add(found, f.call("is_lookup", [cand]), dst=found)
    f.ret(found)

    b = FunctionBuilder(m, "main", [])
    offs = b.ga("is_offsets")
    dict_g = b.ga("is_dict")
    with b.for_range(0, len(words)) as i:
        off = b.load(offs, b.lsl(i, 2))
        b.call("is_insert", [b.add(dict_g, off)], dst=False)

    text_g = b.ga("is_text")
    cand = b.ga("is_cand")
    acc = b.li(0)
    pos = b.li(0)
    outer = b.new_block("outer")
    done = b.new_block("done")
    word_blk = b.new_block("word")
    ch = b.vreg("ch")
    b.br(outer)
    b.at(outer)
    b.load(b.add(text_g, pos), 0, Width.BYTE, dst=ch)
    with b.loop_while(Cond.EQ, ch, 32):
        b.add(pos, 1, dst=pos)
        b.load(b.add(text_g, pos), 0, Width.BYTE, dst=ch)
    b.cbr(Cond.EQ, ch, 0, done, word_blk)
    b.at(word_blk)
    # copy the word into the candidate buffer (nul-terminated)
    wlen = b.li(0)
    with b.loop_while(Cond.NE, ch, 0):
        brk = b.select(Cond.EQ, ch, 32, 1, 0)
        with b.if_then(Cond.NE, brk, 0):
            b.li(0, dst=ch)
        with b.if_then(Cond.EQ, brk, 0):
            with b.if_then(Cond.LT, wlen, MAX_WORD):
                b.store(ch, cand, wlen, Width.BYTE)
                b.add(wlen, 1, dst=wlen)
            b.add(pos, 1, dst=pos)
            b.load(b.add(text_g, pos), 0, Width.BYTE, dst=ch)
    b.store(0, cand, wlen, Width.BYTE)
    hit = b.call("is_lookup", [cand])
    with b.if_else(Cond.NE, hit, 0) as otherwise:
        b.mul(acc, 3, dst=acc)
        b.add(acc, 1, dst=acc)
        with otherwise:
            # the suggest pass mutates is_cand, so it works on a copy in
            # the upper half of the buffer? no: it rebuilds from `word`,
            # so pass the candidate itself via the text pointer instead
            wstart = b.sub(pos, wlen)
            sugg = b.call("is_suggest", [b.add(text_g, wstart), wlen])
            b.mul(acc, 7, dst=acc)
            b.eor(acc, sugg, dst=acc)
    b.br(outer)
    b.at(done)
    b.ret(acc)


WORKLOAD = Workload(
    name="ispell",
    category="office",
    build=_build,
    reference=_reference,
    description="hash-dictionary spell check with deletion/transpose suggestions",
)
