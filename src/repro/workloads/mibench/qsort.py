"""``qsort`` (automotive): quicksort of unsigned words.

Models MiBench qsort: a median-of-three quicksort with an insertion-sort
cutoff for small partitions, recursing on the smaller side.  The
checksum is a polynomial hash of the sorted array, so both ordering and
content are verified.
"""

from repro.ir import Cond, FunctionBuilder, Global
from repro.workloads.base import Workload
from repro.workloads.data import random_words, words_bytes
from repro.workloads.pyref import M32

COUNTS = {"small": 180, "full": 2600}
CUTOFF = 12


def _values(scale):
    return random_words("qsort", COUNTS[scale])


def _build(m, scale):
    values = _values(scale)
    m.add_global(Global("qs_data", data=words_bytes(values)))

    f = FunctionBuilder(m, "qs_insertion", ["base", "lo", "hi"])
    base, lo, hi = f.args
    i = f.add(lo, 1)
    with f.loop_while(Cond.LE, i, hi):
        key = f.load(base, f.lsl(i, 2))
        j = f.sub(i, 1)
        cont = f.li(1)
        with f.loop_while(Cond.NE, cont, 0):
            f.li(0, dst=cont)
            with f.if_then(Cond.GE, j, lo):
                v = f.load(base, f.lsl(j, 2))
                with f.if_then(Cond.GTU, v, key):
                    f.store(v, base, f.lsl(f.add(j, 1), 2))
                    f.sub(j, 1, dst=j)
                    f.li(1, dst=cont)
        f.store(key, base, f.lsl(f.add(j, 1), 2))
        f.add(i, 1, dst=i)
    f.ret()

    f = FunctionBuilder(m, "qs_sort", ["base", "lo", "hi"])
    base, lo, hi = f.args
    span = f.sub(hi, lo)
    with f.if_then(Cond.LT, span, CUTOFF):
        f.call("qs_insertion", [base, lo, hi], dst=False)
        f.ret()
    # median-of-three pivot selection
    mid = f.asr(f.add(lo, hi), 1)
    a = f.load(base, f.lsl(lo, 2))
    bv = f.load(base, f.lsl(mid, 2))
    c = f.load(base, f.lsl(hi, 2))
    # pivot = median(a, bv, c), computed with unsigned compares
    pivot = f.mov(bv)
    with f.if_then(Cond.LTU, bv, a):
        with f.if_then(Cond.LTU, a, c):
            f.mov(a, dst=pivot)
        with f.if_then(Cond.GEU, a, c):
            mx = f.max_(bv, c, signed=False)
            f.mov(mx, dst=pivot)
    with f.if_then(Cond.GEU, bv, a):
        with f.if_then(Cond.GTU, bv, c):
            mx = f.max_(a, c, signed=False)
            f.mov(mx, dst=pivot)
    i = f.mov(lo)
    j = f.mov(hi)
    with f.loop_while(Cond.LE, i, j):
        ai = f.load(base, f.lsl(i, 2))
        with f.loop_while(Cond.LTU, ai, pivot):
            f.add(i, 1, dst=i)
            f.load(base, f.lsl(i, 2), dst=ai)
        aj = f.load(base, f.lsl(j, 2))
        with f.loop_while(Cond.GTU, aj, pivot):
            f.sub(j, 1, dst=j)
            f.load(base, f.lsl(j, 2), dst=aj)
        with f.if_then(Cond.LE, i, j):
            f.store(aj, base, f.lsl(i, 2))
            f.store(ai, base, f.lsl(j, 2))
            f.add(i, 1, dst=i)
            f.sub(j, 1, dst=j)
    with f.if_then(Cond.LT, lo, j):
        f.call("qs_sort", [base, lo, j], dst=False)
    with f.if_then(Cond.LT, i, hi):
        f.call("qs_sort", [base, i, hi], dst=False)
    f.ret()

    b = FunctionBuilder(m, "main", [])
    base = b.ga("qs_data")
    n = len(values)
    b.call("qs_sort", [base, b.li(0), b.li(n - 1)], dst=False)
    acc = b.li(0)
    with b.for_range(0, n) as i:
        v = b.load(base, b.lsl(i, 2))
        b.mul(acc, 31, dst=acc)
        b.add(acc, v, dst=acc)
        b.eor(acc, i, dst=acc)
    b.ret(acc)


def _reference(scale):
    values = sorted(_values(scale))
    acc = 0
    for i, v in enumerate(values):
        acc = (acc * 31 + v) & M32
        acc ^= i
    return acc


WORKLOAD = Workload(
    name="qsort",
    category="automotive",
    build=_build,
    reference=_reference,
    description="median-of-three quicksort with insertion-sort cutoff",
)
