"""``sha`` (security): SHA-1 digest of a buffer.

The full 80-round SHA-1 compression function, written phase by phase as
the reference implementation unrolls it.  Padding is precomputed on the
host (the kernel the paper's benchmark spends its time in is the block
function), and the checksum XORs the five digest words, validated
against :mod:`hashlib`.
"""

import hashlib
import struct

from repro.ir import Cond, FunctionBuilder, Global, Width
from repro.workloads.base import Workload
from repro.workloads.data import random_bytes

SIZES = {"small": 512, "full": 10 * 1024}

H_INIT = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)


def _message(scale):
    return random_bytes("sha", SIZES[scale])


def _padded(scale):
    msg = _message(scale)
    bit_len = 8 * len(msg)
    padded = msg + b"\x80"
    while len(padded) % 64 != 56:
        padded += b"\x00"
    padded += struct.pack(">Q", bit_len)
    return padded


def _build(m, scale):
    padded = _padded(scale)
    m.add_global(Global("sha_msg", data=padded))
    m.add_global(Global("sha_w", size=320))
    m.add_global(Global("sha_h", size=20))

    f = FunctionBuilder(m, "sha_init", [])
    h = f.ga("sha_h")
    for i, value in enumerate(H_INIT):
        f.store(f.li(value), h, 4 * i)
    f.ret()

    def rotl(b, x, n):
        return b.orr(b.lsl(x, n), b.lsr(x, 32 - n))

    f = FunctionBuilder(m, "sha_block", ["ptr"])
    ptr = f.arg("ptr")
    w = f.ga("sha_w")
    # message schedule: 16 big-endian words
    with f.for_range(0, 16) as t:
        off = f.lsl(t, 2)
        b0 = f.load(ptr, off, Width.BYTE)
        b1 = f.load(ptr, f.add(off, 1), Width.BYTE)
        b2 = f.load(ptr, f.add(off, 2), Width.BYTE)
        b3 = f.load(ptr, f.add(off, 3), Width.BYTE)
        word = f.orr(f.lsl(b0, 24), f.lsl(b1, 16))
        word = f.orr(word, f.lsl(b2, 8))
        word = f.orr(word, b3)
        f.store(word, w, off)
    with f.for_range(16, 80) as t:
        off = f.lsl(t, 2)
        x = f.load(w, f.sub(off, 12))
        x = f.eor(x, f.load(w, f.sub(off, 32)))
        x = f.eor(x, f.load(w, f.sub(off, 56)))
        x = f.eor(x, f.load(w, f.sub(off, 64)))
        f.store(rotl(f, x, 1), w, off)

    h = f.ga("sha_h")
    a = f.load(h, 0)
    bb = f.load(h, 4)
    c = f.load(h, 8)
    d = f.load(h, 12)
    e = f.load(h, 16)

    def round_phase(lo, hi, k, func):
        with f.for_range(lo, hi) as t:
            wt = f.load(w, f.lsl(t, 2))
            fv = func(bb, c, d)
            tmp = f.add(rotl(f, a, 5), fv)
            tmp = f.add(tmp, e)
            tmp = f.add(tmp, wt)
            kreg = f.li(k)
            tmp = f.add(tmp, kreg)
            f.mov(d, dst=e)
            f.mov(c, dst=d)
            f.mov(rotl(f, bb, 30), dst=c)
            f.mov(a, dst=bb)
            f.mov(tmp, dst=a)

    def f_ch(x, y, z):
        return f.eor(z, f.and_(x, f.eor(y, z)))

    def f_parity(x, y, z):
        return f.eor(f.eor(x, y), z)

    def f_maj(x, y, z):
        return f.orr(f.and_(x, y), f.and_(z, f.orr(x, y)))

    round_phase(0, 20, 0x5A827999, f_ch)
    round_phase(20, 40, 0x6ED9EBA1, f_parity)
    round_phase(40, 60, 0x8F1BBCDC, f_maj)
    round_phase(60, 80, 0xCA62C1D6, f_parity)

    for i, reg in enumerate((a, bb, c, d, e)):
        old = f.load(h, 4 * i)
        f.store(f.add(old, reg), h, 4 * i)
    f.ret()

    b = FunctionBuilder(m, "main", [])
    b.call("sha_init", [], dst=False)
    msg = b.ga("sha_msg")
    nblocks = len(padded) // 64
    with b.for_range(0, nblocks) as blk:
        b.call("sha_block", [b.add(msg, b.lsl(blk, 6))], dst=False)
    h = b.ga("sha_h")
    acc = b.load(h, 0)
    for i in range(1, 5):
        b.eor(acc, b.load(h, 4 * i), dst=acc)
    b.ret(acc)


def _reference(scale):
    digest = hashlib.sha1(_message(scale)).digest()
    words = struct.unpack(">5I", digest)
    acc = 0
    for wv in words:
        acc ^= wv
    return acc


WORKLOAD = Workload(
    name="sha",
    category="security",
    build=_build,
    reference=_reference,
    description="SHA-1 over a pseudo-random buffer, checked against hashlib",
)
