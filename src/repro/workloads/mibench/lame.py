"""``lame`` (consumer): MP3-encoder-style pipeline.

Per granule: a cosine-modulated analysis filterbank (16 bands x 12
slots, windowed MACs), an MDCT per band, a psychoacoustic-lite masking
threshold from neighboring band energies, and the nonlinear x^(3/4)
quantization (via the integer square root, iterated until the
size-class bit count fits the budget) — the rate loop that dominates
real lame profiles.
"""

import math

from repro.ir import Cond, FunctionBuilder, Global, Width
from repro.workloads.base import Workload
from repro.workloads.pyref import M32, s32, isqrt, XorShift32, sin_table

BANDS = 16
SLOTS = 12
WIN = 16
GRANULE = SLOTS * WIN  # input samples per granule
GRANULES = {"small": 2, "full": 12}
BIT_BUDGET = 600


def _filterbank():
    out = []
    for b in range(BANDS):
        row = []
        for i in range(WIN):
            v = math.cos(math.pi * (b + 0.5) * (i + 0.5) / WIN) * math.cos(
                math.pi * i / (2 * WIN)
            )
            row.append(int(round(v * 16384)))
        out.append(row)
    return out


def _mdct_table():
    out = []
    for k in range(SLOTS):
        row = []
        for n in range(SLOTS):
            v = math.cos(math.pi / SLOTS * (n + 0.5 + SLOTS / 2) * (k + 0.5))
            row.append(int(round(v * 16384)))
        out.append(row)
    return out


FILTER = _filterbank()
MDCT = _mdct_table()


def _pcm(scale):
    n = GRANULES[scale] * GRANULE
    rng = XorShift32(0x1A3E5EED)
    tab = sin_table()
    out = []
    for i in range(n):
        v = (tab[(i * 23) & 1023] >> 2) + ((rng.next() & 0x7FF) - 1024)
        out.append(max(-32768, min(32767, v)))
    return out


def _tables_bytes(table):
    return b"".join((c & 0xFFFF).to_bytes(2, "little") for row in table for c in row)


def _build(m, scale):
    pcm = _pcm(scale)
    granules = GRANULES[scale]
    m.add_global(Global("lm_pcm", data=b"".join((v & 0xFFFF).to_bytes(2, "little") for v in pcm)))
    m.add_global(Global("lm_filter", data=_tables_bytes(FILTER)))
    m.add_global(Global("lm_mdct", data=_tables_bytes(MDCT)))
    m.add_global(Global("lm_sub", size=BANDS * SLOTS * 4))
    m.add_global(Global("lm_spec", size=BANDS * SLOTS * 4))
    m.add_global(Global("lm_energy", size=BANDS * 4))
    m.add_global(Global("lm_thresh", size=BANDS * 4))
    m.add_global(Global("lm_q", size=BANDS * SLOTS * 4))

    # phase 1: analysis filterbank (inner window MAC unrolled)
    f = FunctionBuilder(m, "lm_filterbank", ["pcm_ptr"])
    src = f.arg("pcm_ptr")
    filt = f.ga("lm_filter")
    subp = f.ga("lm_sub")
    with f.for_range(0, SLOTS) as t:
        in_base = f.lsl(f.mul(t, WIN), 1)
        samples = [
            f.load(src, f.add(in_base, 2 * i), Width.HALF, signed=True)
            for i in range(WIN)
        ]
        with f.for_range(0, BANDS) as band:
            crow = f.lsl(f.mul(band, WIN), 1)
            acc = f.li(0)
            for i in range(WIN):
                c = f.load(filt, f.add(crow, 2 * i), Width.HALF, signed=True)
                f.add(acc, f.mul(samples[i], c), dst=acc)
            out_off = f.lsl(f.add(f.mul(band, SLOTS), t), 2)
            f.store(f.asr(acc, 14), subp, out_off)
    f.ret()

    # phase 2: per-band MDCT (inner MAC unrolled)
    f = FunctionBuilder(m, "lm_mdct_pass", [])
    subp = f.ga("lm_sub")
    mdct = f.ga("lm_mdct")
    spec = f.ga("lm_spec")
    with f.for_range(0, BANDS) as band:
        row_base = f.lsl(f.mul(band, SLOTS), 2)
        slots = [f.load(subp, f.add(row_base, 4 * n)) for n in range(SLOTS)]
        with f.for_range(0, SLOTS) as k:
            crow = f.lsl(f.mul(k, SLOTS), 1)
            acc = f.li(0)
            for n in range(SLOTS):
                c = f.load(mdct, f.add(crow, 2 * n), Width.HALF, signed=True)
                f.add(acc, f.mul(slots[n], c), dst=acc)
            f.store(f.asr(acc, 14), spec, f.add(row_base, f.lsl(k, 2)))
    f.ret()

    # phase 3: band energies and masking thresholds
    f = FunctionBuilder(m, "lm_psy", [])
    spec = f.ga("lm_spec")
    energy = f.ga("lm_energy")
    thresh = f.ga("lm_thresh")
    with f.for_range(0, BANDS) as band:
        acc = f.li(0)
        base = f.lsl(f.mul(band, SLOTS), 2)
        with f.for_range(0, SLOTS) as k:
            v = f.load(spec, f.add(base, f.lsl(k, 2)))
            av = f.select(Cond.LT, v, 0, f.rsb(v, 0), v)
            f.add(acc, av, dst=acc)
        f.store(acc, energy, f.lsl(band, 2))
    with f.for_range(0, BANDS) as band:
        self_e = f.asr(f.load(energy, f.lsl(band, 2)), 6)
        t = f.mov(self_e)
        with f.if_then(Cond.GT, band, 0):
            left = f.asr(f.load(energy, f.lsl(f.sub(band, 1), 2)), 3)
            f.max_(t, left, dst=t)
        with f.if_then(Cond.LT, band, BANDS - 1):
            right = f.asr(f.load(energy, f.lsl(f.add(band, 1), 2)), 3)
            f.max_(t, right, dst=t)
        f.store(t, thresh, f.lsl(band, 2))
    f.ret()

    # x^(3/4) ≈ isqrt(x * isqrt(x)) for non-negative x
    f = FunctionBuilder(m, "lm_pow34", ["x"])
    x = f.arg("x")
    root = f.call("isqrt", [x])
    f.ret(f.call("isqrt", [f.mul(x, root)]))

    # phase 4: rate loop — quantize with increasing shift until the
    # size-class bit count fits the budget
    f = FunctionBuilder(m, "lm_quantize", [])
    spec = f.ga("lm_spec")
    thresh = f.ga("lm_thresh")
    q = f.ga("lm_q")
    shift = f.li(0)
    bits = f.li(BIT_BUDGET + 1)
    with f.loop_while(Cond.GT, bits, BIT_BUDGET):
        f.li(0, dst=bits)
        with f.for_range(0, BANDS) as band:
            tv = f.load(thresh, f.lsl(band, 2))
            base = f.lsl(f.mul(band, SLOTS), 2)
            with f.for_range(0, SLOTS) as k:
                off = f.add(base, f.lsl(k, 2))
                v = f.load(spec, off)
                neg = f.li(0)
                with f.if_then(Cond.LT, v, 0):
                    f.li(1, dst=neg)
                    f.rsb(v, 0, dst=v)
                with f.if_then(Cond.LE, v, tv):
                    f.li(0, dst=v)  # masked
                p = f.call("lm_pow34", [v])
                f.lsr(p, shift, dst=p)
                size = f.li(0)
                t = f.mov(p)
                with f.loop_while(Cond.NE, t, 0):
                    f.add(size, 1, dst=size)
                    f.lsr(t, 1, dst=t)
                f.add(bits, f.add(size, 1), dst=bits)
                with f.if_then(Cond.NE, neg, 0):
                    f.rsb(p, 0, dst=p)
                f.store(p, q, off)
        f.add(shift, 1, dst=shift)
    f.ret(f.orr(f.lsl(shift, 16), bits))


    b = FunctionBuilder(m, "main", [])
    pcm_g = b.ga("lm_pcm")
    qg = b.ga("lm_q")
    acc = b.li(0)
    with b.for_range(0, granules) as g:
        ptr = b.add(pcm_g, b.mul(g, 2 * GRANULE))
        b.call("lm_filterbank", [ptr], dst=False)
        b.call("lm_mdct_pass", [], dst=False)
        b.call("lm_psy", [], dst=False)
        rate = b.call("lm_quantize", [])
        b.eor(acc, rate, dst=acc)
        with b.for_range(0, BANDS * SLOTS) as i:
            v = b.load(qg, b.lsl(i, 2))
            b.mul(acc, 31, dst=acc)
            b.add(acc, v, dst=acc)
    b.ret(acc)


def _reference(scale):
    from repro.workloads.pyref import add32, mul32, asr32, lsr32

    pcm = _pcm(scale)
    acc = 0
    for g in range(GRANULES[scale]):
        frame = pcm[g * GRANULE : (g + 1) * GRANULE]
        sub = [[0] * SLOTS for _ in range(BANDS)]
        for t in range(SLOTS):
            window = frame[t * WIN : (t + 1) * WIN]
            for band in range(BANDS):
                s = 0
                for i in range(WIN):
                    s = add32(s, mul32(window[i] & M32, FILTER[band][i] & M32))
                sub[band][t] = asr32(s, 14)
        spec = [[0] * SLOTS for _ in range(BANDS)]
        for band in range(BANDS):
            for k in range(SLOTS):
                s = 0
                for n in range(SLOTS):
                    s = add32(s, mul32(sub[band][n], MDCT[k][n] & M32))
                spec[band][k] = asr32(s, 14)
        energy = []
        for band in range(BANDS):
            e = 0
            for k in range(SLOTS):
                v = s32(spec[band][k])
                e = add32(e, -v if v < 0 else v)
            energy.append(e)
        thresh = []
        for band in range(BANDS):
            t = asr32(energy[band], 6)
            if band > 0:
                t = max(s32(t), s32(asr32(energy[band - 1], 3))) & M32
            if band < BANDS - 1:
                t = max(s32(t), s32(asr32(energy[band + 1], 3))) & M32
            thresh.append(t)
        shift = 0
        bits = BIT_BUDGET + 1
        q = [[0] * SLOTS for _ in range(BANDS)]
        while s32(bits) > BIT_BUDGET:
            bits = 0
            for band in range(BANDS):
                tv = s32(thresh[band])
                for k in range(SLOTS):
                    v = s32(spec[band][k])
                    neg = v < 0
                    if neg:
                        v = -v
                    if v <= tv:
                        v = 0
                    root = isqrt(v)
                    p = isqrt((v * root) & M32)
                    p >>= shift
                    size = p.bit_length()
                    bits += size + 1
                    q[band][k] = (-p if neg else p) & M32
            shift += 1
        rate = ((shift << 16) | bits) & M32
        acc = (acc ^ rate) & M32
        for band in range(BANDS):
            for k in range(SLOTS):
                acc = (acc * 31 + q[band][k]) & M32
    return acc


WORKLOAD = Workload(
    name="lame",
    category="consumer",
    build=_build,
    reference=_reference,
    description="MP3-style encode: filterbank, MDCT, masking, rate loop",
)
