"""``fft`` (telecomm): fixed-point radix-2 FFT with per-stage scaling.

Q15 arithmetic against the shared sine table, decimation-in-time with
bit-reversal, scaling by 1/2 each stage to avoid overflow (the standard
embedded fix_fft structure).  Forward transforms of several synthetic
frames; the checksum folds the spectra.
"""

import math

from repro.ir import Cond, FunctionBuilder, Global, Width
from repro.workloads.base import Workload
from repro.workloads.data import random_words
from repro.workloads.pyref import M32, sin_table, s32

PARAMS = {"small": (64, 2), "full": (256, 8)}  # (N, frames)
LOG2N = {64: 6, 256: 8}


def _frames(scale):
    n, frames = PARAMS[scale]
    raw = random_words("fft", n * frames, lo=0, hi=0xFFFF)
    tab = sin_table()
    out = []
    for fidx in range(frames):
        re = []
        for i in range(n):
            v = (tab[(i * (3 + fidx)) & 1023] >> 2) + ((raw[fidx * n + i] & 0x7FF) - 1024)
            re.append(max(-32768, min(32767, v)))
        out.append(re)
    return out


def _build(m, scale):
    n, frames = PARAMS[scale]
    logn = LOG2N[n]
    data = b""
    for frame in _frames(scale):
        for v in frame:
            data += (v & 0xFFFF).to_bytes(2, "little")
    m.add_global(Global("fft_in", data=data))
    m.add_global(Global("fft_re", size=4 * n))
    m.add_global(Global("fft_im", size=4 * n))

    # bit reverse of a logn-bit index
    f = FunctionBuilder(m, "fft_bitrev", ["x", "bits"])
    x, bits = f.args
    r = f.li(0)
    with f.for_range(0, bits):
        f.lsl(r, 1, dst=r)
        f.orr(r, f.and_(x, 1), dst=r)
        f.lsr(x, 1, dst=x)
    f.ret(r)

    # one in-place FFT over fft_re/fft_im
    f = FunctionBuilder(m, "fft_run", [])
    re = f.ga("fft_re")
    im = f.ga("fft_im")
    # bit-reversal permutation
    with f.for_range(0, n) as i:
        j = f.call("fft_bitrev", [i, f.li(logn)])
        with f.if_then(Cond.LT, i, j):
            io = f.lsl(i, 2)
            jo = f.lsl(j, 2)
            a = f.load(re, io)
            bv = f.load(re, jo)
            f.store(bv, re, io)
            f.store(a, re, jo)
            a = f.load(im, io)
            bv = f.load(im, jo)
            f.store(bv, im, io)
            f.store(a, im, jo)
    # butterflies
    size = f.li(2)
    with f.loop_while(Cond.LE, size, n):
        half = f.lsr(size, 1)
        step = f.udiv(1024, size)  # sine-table stride for this stage
        base = f.li(0)
        with f.loop_while(Cond.LT, base, n):
            k = f.li(0)
            with f.loop_while(Cond.LT, k, half):
                angle = f.mul(k, step)
                wr = f.call("cos_q15", [angle])
                wi = f.rsb(f.call("sin_q15", [angle]), 0)
                i0 = f.add(base, k)
                i1 = f.add(i0, half)
                o0 = f.lsl(i0, 2)
                o1 = f.lsl(i1, 2)
                xr = f.load(re, o1)
                xi = f.load(im, o1)
                # t = w * x >> 15 (Q15 multiply)
                tr = f.sub(f.mul(wr, xr), f.mul(wi, xi))
                tr = f.asr(tr, 15)
                ti = f.add(f.mul(wr, xi), f.mul(wi, xr))
                ti = f.asr(ti, 15)
                ur = f.asr(f.load(re, o0), 1)
                ui = f.asr(f.load(im, o0), 1)
                f.asr(tr, 1, dst=tr)
                f.asr(ti, 1, dst=ti)
                f.store(f.add(ur, tr), re, o0)
                f.store(f.add(ui, ti), im, o0)
                f.store(f.sub(ur, tr), re, o1)
                f.store(f.sub(ui, ti), im, o1)
                f.add(k, 1, dst=k)
            f.add(base, size, dst=base)
        f.lsl(size, 1, dst=size)
    f.ret()

    b = FunctionBuilder(m, "main", [])
    src = b.ga("fft_in")
    re = b.ga("fft_re")
    im = b.ga("fft_im")
    acc = b.li(0)
    for fr in range(frames):
        with b.for_range(0, n) as i:
            v = b.load(src, b.add(b.lsl(i, 1), 2 * n * fr), Width.HALF, signed=True)
            b.store(v, re, b.lsl(i, 2))
            b.store(0, im, b.lsl(i, 2))
        b.call("fft_run", [], dst=False)
        with b.for_range(0, n) as i:
            r = b.load(re, b.lsl(i, 2))
            s = b.load(im, b.lsl(i, 2))
            b.mul(acc, 31, dst=acc)
            b.eor(acc, r, dst=acc)
            b.add(acc, s, dst=acc)
    b.ret(acc)


def _py_fft(re_in, n, logn):
    """Mirror of fft_run with exact 32-bit wrap-around semantics."""
    from repro.workloads.pyref import add32, sub32, mul32, asr32

    tab = sin_table()
    re = list(re_in)
    im = [0] * n
    for i in range(n):
        j = 0
        x = i
        for _ in range(logn):
            j = (j << 1) | (x & 1)
            x >>= 1
        if i < j:
            re[i], re[j] = re[j], re[i]
            im[i], im[j] = im[j], im[i]
    size = 2
    while size <= n:
        half = size >> 1
        step = 1024 // size
        for base in range(0, n, size):
            for k in range(half):
                angle = k * step
                wr = tab[(angle + 256) & 1023] & M32   # cos_q15
                wi = (-tab[angle & 1023]) & M32        # -sin_q15
                i0 = base + k
                i1 = i0 + half
                xr, xi = re[i1], im[i1]
                tr = asr32(sub32(mul32(wr, xr), mul32(wi, xi)), 15)
                ti = asr32(add32(mul32(wr, xi), mul32(wi, xr)), 15)
                ur = asr32(re[i0], 1)
                ui = asr32(im[i0], 1)
                tr = asr32(tr, 1)
                ti = asr32(ti, 1)
                re[i0] = add32(ur, tr)
                im[i0] = add32(ui, ti)
                re[i1] = sub32(ur, tr)
                im[i1] = sub32(ui, ti)
        size <<= 1
    return re, im


def _reference(scale):
    n, frames = PARAMS[scale]
    logn = LOG2N[n]
    acc = 0
    for frame in _frames(scale):
        re, im = _py_fft([v & M32 for v in frame], n, logn)
        for i in range(n):
            acc = ((acc * 31) ^ re[i]) & M32
            acc = (acc + im[i]) & M32
    return acc


WORKLOAD = Workload(
    name="fft",
    category="telecomm",
    build=_build,
    reference=_reference,
    description="fixed-point radix-2 FFT frames with per-stage scaling",
)
