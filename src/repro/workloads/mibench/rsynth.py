"""``rsynth`` (office): rule-based text-to-speech synthesis.

Letters map to phoneme classes through grapheme rules (vowels and
consonant groups); each phoneme drives a source-filter synthesizer —
a pulse train (voiced) or PRNG noise (unvoiced) excitation through two
cascaded second-order formant resonators with per-phoneme Q12
coefficients — and the checksum folds the waveform.  Fixed-point IIR
filtering per output sample, like the real formant synthesizer.
"""

from repro.ir import Cond, FunctionBuilder, Global, Width
from repro.workloads.base import Workload
from repro.workloads.data import ascii_text
from repro.workloads.pyref import M32, s32, add32, sub32, mul32, asr32, XorShift32

SIZES = {"small": 56, "full": 330}  # text bytes
SAMPLES_PER_PHONE = 48
PITCH = 32

#: phoneme table: (voiced, b0, c1_1, c2_1, c1_2, c2_2) in Q12
PHONEMES = [
    (1, 1200, 6800, -3500, 5200, -2800),  # a-like
    (1, 1100, 7200, -3800, 4600, -2500),  # e-like
    (1, 1000, 7600, -4000, 4000, -2200),  # i-like
    (1, 1300, 6400, -3200, 5600, -3000),  # o-like
    (1, 1250, 6000, -3000, 6000, -3200),  # u-like
    (0, 900, 3000, -1500, 2000, -1000),   # s-like noise
    (0, 800, 4000, -2000, 2400, -1200),   # f-like noise
    (1, 700, 6900, -3600, 3000, -1600),   # nasal
    (1, 950, 5800, -2900, 4800, -2600),   # liquid
    (0, 600, 2600, -1300, 3400, -1800),   # stop burst
]


def _letter_map():
    table = [255] * 256  # 255 = silence / skip
    mapping = {
        "a": 0, "e": 1, "i": 2, "o": 3, "u": 4,
        "s": 5, "z": 5, "c": 5, "x": 5,
        "f": 6, "v": 6, "h": 6,
        "m": 7, "n": 7,
        "l": 8, "r": 8, "w": 8, "y": 8,
    }
    for c in range(ord("a"), ord("z") + 1):
        table[c] = mapping.get(chr(c), 9)
    return table


LETTER_MAP = _letter_map()


def _text(scale):
    return ascii_text("rsynth", SIZES[scale]) + b"\x00"


def _reference(scale):
    text = _text(scale)
    rng = XorShift32(0x5EED5EED)
    acc = 0
    y1a = y2a = y1b = y2b = 0
    for ch in text:
        if ch == 0:
            break
        ph = LETTER_MAP[ch]
        if ph == 255:
            continue
        voiced, b0, c11, c21, c12, c22 = PHONEMES[ph]
        for n in range(SAMPLES_PER_PHONE):
            if voiced:
                x = 8000 if n % PITCH == 0 else 0
            else:
                x = ((rng.next() & 0x7FF) - 1024) & M32
            # resonator 1
            t = add32(mul32(b0 & M32, x), mul32(c11 & M32, y1a))
            t = add32(t, mul32(c21 & M32, y2a))
            out1 = asr32(t, 12)
            y2a, y1a = y1a, out1
            # resonator 2
            t = add32(mul32(b0 & M32, out1), mul32(c12 & M32, y1b))
            t = add32(t, mul32(c22 & M32, y2b))
            out2 = asr32(t, 12)
            y2b, y1b = y1b, out2
            if n % 4 == 0:
                acc = ((acc * 17) ^ out2) & M32
    return acc


def _build(m, scale):
    text = _text(scale)
    m.add_global(Global("rs_text", data=text))
    m.add_global(Global("rs_map", data=bytes(LETTER_MAP)))
    rows = []
    for row in PHONEMES:
        for v in row:
            rows.append(v & 0xFFFF)
    m.add_global(Global("rs_phones", data=b"".join(v.to_bytes(2, "little") for v in rows)))
    m.add_global(Global("rs_state", size=4 * 4))  # y1a y2a y1b y2b

    f = FunctionBuilder(m, "rs_phone", ["ph", "acc_in"])
    ph, acc = f.args
    phones = f.ga("rs_phones")
    state = f.ga("rs_state")
    base = f.mul(ph, 12)
    voiced = f.load(phones, base, Width.HALF, signed=True)
    b0 = f.load(phones, f.add(base, 2), Width.HALF, signed=True)
    c11 = f.load(phones, f.add(base, 4), Width.HALF, signed=True)
    c21 = f.load(phones, f.add(base, 6), Width.HALF, signed=True)
    c12 = f.load(phones, f.add(base, 8), Width.HALF, signed=True)
    c22 = f.load(phones, f.add(base, 10), Width.HALF, signed=True)
    y1a = f.load(state, 0)
    y2a = f.load(state, 4)
    y1b = f.load(state, 8)
    y2b = f.load(state, 12)
    with f.for_range(0, SAMPLES_PER_PHONE) as n:
        x = f.vreg("x")
        with f.if_else(Cond.NE, voiced, 0) as otherwise:
            f.li(0, dst=x)
            phase = f.and_(n, PITCH - 1)
            with f.if_then(Cond.EQ, phase, 0):
                f.li(8000, dst=x)
            with otherwise:
                r = f.call("rand_next", [])
                f.sub(f.and_(r, 0x7FF), 1024, dst=x)
        t = f.add(f.mul(b0, x), f.mul(c11, y1a))
        t = f.add(t, f.mul(c21, y2a))
        out1 = f.asr(t, 12)
        f.mov(y1a, dst=y2a)
        f.mov(out1, dst=y1a)
        t = f.add(f.mul(b0, out1), f.mul(c12, y1b))
        t = f.add(t, f.mul(c22, y2b))
        out2 = f.asr(t, 12)
        f.mov(y1b, dst=y2b)
        f.mov(out2, dst=y1b)
        with f.if_then(Cond.EQ, f.and_(n, 3), 0):
            f.mul(acc, 17, dst=acc)
            f.eor(acc, out2, dst=acc)
    f.store(y1a, state, 0)
    f.store(y2a, state, 4)
    f.store(y1b, state, 8)
    f.store(y2b, state, 12)
    f.ret(acc)

    b = FunctionBuilder(m, "main", [])
    b.call("srand", [b.li(0x5EED5EED)], dst=False)
    text_g = b.ga("rs_text")
    map_g = b.ga("rs_map")
    acc = b.li(0)
    pos = b.li(0)
    ch = b.load(text_g, 0, Width.BYTE)
    with b.loop_while(Cond.NE, ch, 0):
        ph = b.load(map_g, ch, Width.BYTE)
        with b.if_then(Cond.NE, ph, 255):
            b.call("rs_phone", [ph, acc], dst=acc)
        b.add(pos, 1, dst=pos)
        b.load(text_g, pos, Width.BYTE, dst=ch)
    b.ret(acc)


WORKLOAD = Workload(
    name="rsynth",
    category="office",
    build=_build,
    reference=_reference,
    description="rule-based formant synthesis with cascaded Q12 resonators",
)
