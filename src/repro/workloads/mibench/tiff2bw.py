"""``tiff2bw`` (consumer): RGB → grayscale → 1-bit dithering + packing.

Models the tiff2bw conversion pipeline: ITU-style luminance weighting
(integer 77/151/28 >> 8), Floyd-Steinberg error diffusion down to one
bit per pixel, and bit packing of the output plane.
"""

from repro.ir import Cond, FunctionBuilder, Global, Width
from repro.workloads.base import Workload
from repro.workloads.data import random_bytes
from repro.workloads.pyref import M32, s32

DIMS = {"small": (24, 20), "full": (80, 64)}


def _rgb(scale):
    w, h = DIMS[scale]
    return random_bytes("tiff2bw", w * h * 3)


def _build(m, scale):
    w, h = DIMS[scale]
    rgb = _rgb(scale)
    m.add_global(Global("tb_rgb", data=rgb))
    m.add_global(Global("tb_gray", size=w * h * 4))   # word errors, signed
    m.add_global(Global("tb_bits", size=(w * h + 7) // 8))

    f = FunctionBuilder(m, "tb_to_gray", [])
    rgb_g = f.ga("tb_rgb")
    gray = f.ga("tb_gray")
    with f.for_range(0, w * h) as i:
        off = f.mul(i, 3)
        r = f.load(rgb_g, off, Width.BYTE)
        g = f.load(rgb_g, f.add(off, 1), Width.BYTE)
        bch = f.load(rgb_g, f.add(off, 2), Width.BYTE)
        lum = f.mul(r, 77)
        lum = f.add(lum, f.mul(g, 151))
        lum = f.add(lum, f.mul(bch, 28))
        f.store(f.lsr(lum, 8), gray, f.lsl(i, 2))
    f.ret()

    f = FunctionBuilder(m, "tb_dither", [])
    gray = f.ga("tb_gray")
    bits = f.ga("tb_bits")
    with f.for_range(0, h) as y:
        row = f.mul(y, w)
        with f.for_range(0, w) as x:
            idx = f.add(row, x)
            old = f.load(gray, f.lsl(idx, 2))
            bit = f.select(Cond.GE, old, 128, 1, 0)
            newv = f.select(Cond.NE, bit, 0, 255, 0)
            err = f.sub(old, newv)
            # distribute 7/16, 3/16, 5/16, 1/16 (Floyd-Steinberg)
            def spread(cond_ok, off_idx, num):
                with f.if_then(Cond.NE, cond_ok, 0):
                    o = f.lsl(off_idx, 2)
                    v = f.load(gray, o)
                    part = f.asr(f.mul(err, num), 4)
                    f.store(f.add(v, part), gray, o)

            right_ok = f.select(Cond.LT, x, w - 1, 1, 0)
            below_ok = f.select(Cond.LT, y, h - 1, 1, 0)
            left_ok = f.select(Cond.GT, x, 0, 1, 0)
            bl_ok = f.and_(below_ok, left_ok)
            br_ok = f.and_(below_ok, right_ok)
            spread(right_ok, f.add(idx, 1), 7)
            spread(bl_ok, f.add(idx, w - 1), 3)
            spread(below_ok, f.add(idx, w), 5)
            spread(br_ok, f.add(idx, w + 1), 1)
            byte_off = f.lsr(idx, 3)
            shift = f.and_(idx, 7)
            old_b = f.load(bits, byte_off, Width.BYTE)
            f.store(f.orr(old_b, f.lsl(bit, shift)), bits, byte_off, Width.BYTE)
    f.ret()

    b = FunctionBuilder(m, "main", [])
    b.call("tb_to_gray", [], dst=False)
    b.call("tb_dither", [], dst=False)
    bits = b.ga("tb_bits")
    acc = b.li(0)
    nbytes = (w * h + 7) // 8
    with b.for_range(0, nbytes) as i:
        v = b.load(bits, i, Width.BYTE)
        b.mul(acc, 31, dst=acc)
        b.add(acc, v, dst=acc)
        b.eor(acc, i, dst=acc)
    b.ret(acc)


def _reference(scale):
    w, h = DIMS[scale]
    rgb = _rgb(scale)
    gray = []
    for i in range(w * h):
        r, g, bch = rgb[3 * i], rgb[3 * i + 1], rgb[3 * i + 2]
        gray.append(((r * 77 + g * 151 + bch * 28) >> 8) & M32)
    bits = bytearray((w * h + 7) // 8)
    for y in range(h):
        for x in range(w):
            idx = y * w + x
            old = gray[idx]
            bit = 1 if s32(old) >= 128 else 0
            newv = 255 if bit else 0
            err = (old - newv) & M32
            def spread(ok, off, num):
                if ok:
                    part = s32((err * num) & M32) >> 4
                    gray[off] = (gray[off] + part) & M32
            spread(x < w - 1, idx + 1, 7)
            spread(y < h - 1 and x > 0, idx + w - 1, 3)
            spread(y < h - 1, idx + w, 5)
            spread(y < h - 1 and x < w - 1, idx + w + 1, 1)
            bits[idx >> 3] |= bit << (idx & 7)
    acc = 0
    for i, v in enumerate(bits):
        acc = ((acc * 31 + v) ^ i) & M32
    return acc


WORKLOAD = Workload(
    name="tiff2bw",
    category="consumer",
    build=_build,
    reference=_reference,
    description="RGB→gray→Floyd-Steinberg 1-bit dithering + bit packing",
)
