"""``mad`` (consumer): MP3-decoder-style pipeline.

The decode mirror of ``lame``: a bit reader pulls scalefactors and
quantized spectral codes per band, requantization applies the x^(4/3)
power law through a table built at startup (integer-sqrt based, as
fixed-point decoders precompute it), an inverse MDCT reconstructs
subband slots, and a windowed synthesis FIR with overlap-add produces
PCM.
"""

import math

from repro.ir import Cond, FunctionBuilder, Global, Width
from repro.workloads.base import Workload
from repro.workloads.data import random_bytes
from repro.workloads.pyref import M32, s32, isqrt, add32, mul32, asr32

BANDS = 16
SLOTS = 12
TAPS = 16
FRAMES = {"small": 3, "full": 22}
#: bits per frame: per band 4-bit scalefactor + SLOTS 5-bit codes
FRAME_BITS = BANDS * (4 + SLOTS * 5)


def _imdct_table():
    out = []
    for n in range(SLOTS):
        row = []
        for k in range(SLOTS):
            v = math.cos(math.pi / SLOTS * (n + 0.5 + SLOTS / 2) * (k + 0.5))
            row.append(int(round(v * 16384)))
        out.append(row)
    return out


def _window():
    return [int(round(16384 * math.sin(math.pi * (i + 0.5) / TAPS))) for i in range(TAPS)]


IMDCT = _imdct_table()
WINDOW = _window()


def _stream(scale):
    nbytes = (FRAMES[scale] * FRAME_BITS + 7) // 8
    return random_bytes("mad", nbytes)


def _pow43_table():
    # fixed-point x^(4/3) approximation: x * cbrt(x) with cbrt via two
    # integer square roots (documented approximation, exact mirror)
    out = []
    for i in range(32):
        approx = isqrt(i * isqrt(i * 256))  # ~ i^(1/2) * i^(... ) deterministic
        out.append((i * 16 + approx * 3) & M32)
    return out


POW43 = _pow43_table()


def _build(m, scale):
    frames = FRAMES[scale]
    data = _stream(scale)
    m.add_global(Global("md_in", data=data))
    m.add_global(Global("md_bitpos", size=4))
    m.add_global(Global("md_pow43", size=32 * 4))
    m.add_global(
        Global("md_imdct", data=b"".join((c & 0xFFFF).to_bytes(2, "little") for row in IMDCT for c in row))
    )
    m.add_global(
        Global("md_window", data=b"".join((c & 0xFFFF).to_bytes(2, "little") for c in WINDOW))
    )
    m.add_global(Global("md_spec", size=BANDS * SLOTS * 4))
    m.add_global(Global("md_sub", size=BANDS * SLOTS * 4))
    m.add_global(Global("md_overlap", size=TAPS * 4))

    f = FunctionBuilder(m, "md_get_bits", ["n"])
    n = f.arg("n")
    src = f.ga("md_in")
    posp = f.ga("md_bitpos")
    pos = f.load(posp)
    v = f.li(0)
    with f.for_range(0, n):
        byte = f.load(src, f.lsr(pos, 3), Width.BYTE)
        sh = f.rsb(f.and_(pos, 7), 7)
        f.orr(f.lsl(v, 1), f.and_(f.lsr(byte, sh), 1), dst=v)
        f.add(pos, 1, dst=pos)
    f.store(pos, posp)
    f.ret(v)

    # startup: build the pow43 table with the same isqrt recipe
    f = FunctionBuilder(m, "md_build_pow43", [])
    tab = f.ga("md_pow43")
    with f.for_range(0, 32) as i:
        inner = f.call("isqrt", [f.mul(i, 256)])
        approx = f.call("isqrt", [f.mul(i, inner)])
        v = f.add(f.mul(i, 16), f.mul(approx, 3))
        f.store(v, tab, f.lsl(i, 2))
    f.ret()

    # per frame: read scalefactors + codes, requantize into md_spec
    f = FunctionBuilder(m, "md_requant", [])
    spec = f.ga("md_spec")
    tab = f.ga("md_pow43")
    with f.for_range(0, BANDS) as band:
        sf = f.call("md_get_bits", [f.li(4)])
        base = f.lsl(f.mul(band, SLOTS), 2)
        with f.for_range(0, SLOTS) as k:
            code = f.call("md_get_bits", [f.li(5)])
            mag = f.and_(code, 0xF)
            sign = f.lsr(code, 4)
            v = f.load(tab, f.lsl(mag, 2))
            v = f.lsl(v, f.lsr(sf, 1))
            with f.if_then(Cond.NE, sign, 0):
                f.rsb(v, 0, dst=v)
            f.store(v, spec, f.add(base, f.lsl(k, 2)))
    f.ret()

    # inverse MDCT per band (inner MAC unrolled)
    f = FunctionBuilder(m, "md_imdct_pass", [])
    spec = f.ga("md_spec")
    sub = f.ga("md_sub")
    tabg = f.ga("md_imdct")
    with f.for_range(0, BANDS) as band:
        base = f.lsl(f.mul(band, SLOTS), 2)
        coefs = [f.load(spec, f.add(base, 4 * k)) for k in range(SLOTS)]
        with f.for_range(0, SLOTS) as n:
            crow = f.lsl(f.mul(n, SLOTS), 1)
            acc = f.li(0)
            for k in range(SLOTS):
                c = f.load(tabg, f.add(crow, 2 * k), Width.HALF, signed=True)
                f.add(acc, f.mul(coefs[k], c), dst=acc)
            f.store(f.asr(acc, 14), sub, f.add(base, f.lsl(n, 2)))
    f.ret()

    # synthesis: sum bands per slot, windowed FIR with overlap-add
    f = FunctionBuilder(m, "md_synth", ["acc_in"])
    acc = f.arg("acc_in")
    sub = f.ga("md_sub")
    window = f.ga("md_window")
    overlap = f.ga("md_overlap")
    with f.for_range(0, SLOTS) as slot:
        mixed = f.li(0)
        with f.for_range(0, BANDS) as band:
            off = f.lsl(f.add(f.mul(band, SLOTS), slot), 2)
            f.add(mixed, f.load(sub, off), dst=mixed)
        # shift the overlap line and deposit the new sample (unrolled FIR)
        for t in range(TAPS - 1, 0, -1):
            f.store(f.load(overlap, 4 * (t - 1)), overlap, 4 * t)
        f.store(mixed, overlap, 0)
        out = f.li(0)
        for t in range(TAPS):
            w = f.load(window, 2 * t, Width.HALF, signed=True)
            s = f.load(overlap, 4 * t)
            f.add(out, f.asr(f.mul(s, w), 14), dst=out)
        f.mul(acc, 17, dst=acc)
        f.eor(acc, out, dst=acc)
    f.ret(acc)

    b = FunctionBuilder(m, "main", [])
    b.call("md_build_pow43", [], dst=False)
    acc = b.li(0)
    with b.for_range(0, frames):
        b.call("md_requant", [], dst=False)
        b.call("md_imdct_pass", [], dst=False)
        b.call("md_synth", [acc], dst=acc)
    b.ret(acc)


class _PyBits:
    def __init__(self, data):
        self.data = data
        self.pos = 0

    def get(self, n):
        v = 0
        for _ in range(n):
            v = (v << 1) | ((self.data[self.pos >> 3] >> (7 - (self.pos & 7))) & 1)
            self.pos += 1
        return v


def _reference(scale):
    data = _stream(scale)
    rd = _PyBits(data)
    overlap = [0] * TAPS
    acc = 0
    for _fr in range(FRAMES[scale]):
        spec = [[0] * SLOTS for _ in range(BANDS)]
        for band in range(BANDS):
            sf = rd.get(4)
            for k in range(SLOTS):
                code = rd.get(5)
                mag = code & 0xF
                sign = code >> 4
                v = (POW43[mag] << (sf >> 1)) & M32
                if sign:
                    v = (-v) & M32
                spec[band][k] = v
        sub = [[0] * SLOTS for _ in range(BANDS)]
        for band in range(BANDS):
            for n in range(SLOTS):
                s = 0
                for k in range(SLOTS):
                    s = add32(s, mul32(spec[band][k], IMDCT[n][k] & M32))
                sub[band][n] = asr32(s, 14)
        for slot in range(SLOTS):
            mixed = 0
            for band in range(BANDS):
                mixed = add32(mixed, sub[band][slot])
            overlap = [mixed] + overlap[:-1]
            out = 0
            for t in range(TAPS):
                out = add32(out, asr32(mul32(overlap[t], WINDOW[t] & M32), 14))
            acc = ((acc * 17) ^ out) & M32
    return acc


WORKLOAD = Workload(
    name="mad",
    category="consumer",
    build=_build,
    reference=_reference,
    description="MP3-style decode: requantize, IMDCT, windowed synthesis",
)
