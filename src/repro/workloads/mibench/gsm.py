"""``gsm`` (telecomm): GSM 06.10-style full-rate decoder.

The decode direction (the paper dropped gsm.encode): 33-byte frames are
bit-unpacked into 8 LARc codes and 4 subframes of RPE/LTP parameters;
LARc → reflection coefficients through the genuine GSM piecewise-linear
inverse transform; RPE pulses are APCM-dequantized and grid-upsampled;
long-term prediction adds the scaled history; and an order-8 lattice
synthesis filter (stages unrolled, saturating Q15 arithmetic) produces
160 PCM samples per frame.
"""

from repro.ir import Cond, FunctionBuilder, Global, Width
from repro.workloads.base import Workload
from repro.workloads.data import random_bytes
from repro.workloads.pyref import M32, s32

FRAMES = {"small": 3, "full": 26}
FRAME_BYTES = 33
QLB = [3277, 11469, 21299, 32767]  # LTP gain dequantizer (Q15)


def _stream(scale):
    return random_bytes("gsm", FRAMES[scale] * FRAME_BYTES)


# ----------------------------------------------------------------------
# reference model


def _sat16(x):
    return max(-32768, min(32767, x))


def _lar_to_r(larc):
    lar = (larc - 32) << 10  # Q15-ish log-area ratio
    temp = abs(lar)
    if temp < 11059:
        temp <<= 1
    elif temp < 20070:
        temp += 11059
    else:
        temp = (temp >> 2) + 26112
    temp = min(temp, 32767)
    return -temp if lar < 0 else temp


class _BitReader:
    def __init__(self, data):
        self.data = data
        self.pos = 0

    def get(self, n):
        v = 0
        for _ in range(n):
            byte = self.data[self.pos >> 3]
            bit = (byte >> (7 - (self.pos & 7))) & 1
            v = (v << 1) | bit
            self.pos += 1
        return v


def _reference(scale):
    data = _stream(scale)
    rd = _BitReader(data)
    v = [0] * 9
    history = [0] * 160
    acc = 0
    for _frame in range(FRAMES[scale]):
        r = [_lar_to_r(rd.get(6)) for _ in range(8)]
        excitation = []
        for _sub in range(4):
            lag = 40 + rd.get(7) % 81
            gain = rd.get(2)
            xmaxc = rd.get(6)
            exp = xmaxc >> 3
            mant = (xmaxc & 7) + 8
            pulses = [rd.get(3) for _ in range(13)]
            grid = gain & 3
            e = [0] * 40
            for j, p in enumerate(pulses):
                amp = ((2 * p - 7) * mant) << exp >> 2
                pos = 3 * j + (grid % 3)
                if pos < 40:
                    e[pos] = _sat16(amp)
            b = QLB[gain]
            base = len(excitation)
            for k in range(40):
                hidx = (base + k - lag) % 160
                est = (b * history[hidx]) >> 15
                e[k] = _sat16(e[k] + est)
            excitation.extend(e)
        # update history with this frame's excitation
        history = list(excitation)
        # short-term synthesis lattice over the frame
        for k in range(160):
            sri = excitation[k]
            for i in range(7, -1, -1):
                sri = _sat16(sri - ((r[i] * v[i]) >> 15))
                v[i + 1] = _sat16(v[i] + ((r[i] * sri) >> 15))
            v[0] = sri
            acc = ((acc * 17) ^ (sri & M32)) & M32
    return acc


# ----------------------------------------------------------------------
# IR build


def _build(m, scale):
    frames = FRAMES[scale]
    data = _stream(scale)
    m.add_global(Global("gsm_in", data=data))
    m.add_global(Global("gsm_bitpos", size=4))
    m.add_global(Global("gsm_r", size=8 * 4))
    m.add_global(Global("gsm_v", size=9 * 4))
    m.add_global(Global("gsm_exc", size=160 * 4))
    m.add_global(Global("gsm_hist", size=160 * 4))
    m.add_global(Global("gsm_qlb", data=b"".join(q.to_bytes(4, "little") for q in QLB)))

    f = FunctionBuilder(m, "gsm_sat16", ["x"])
    x = f.arg("x")
    with f.if_then(Cond.GT, x, 32767):
        f.ret(32767)
    with f.if_then(Cond.LT, x, -32768):
        f.ret((-32768) & M32)
    f.ret(x)

    f = FunctionBuilder(m, "gsm_get_bits", ["n"])
    n = f.arg("n")
    src = f.ga("gsm_in")
    posp = f.ga("gsm_bitpos")
    pos = f.load(posp)
    v = f.li(0)
    with f.for_range(0, n):
        byte = f.load(src, f.lsr(pos, 3), Width.BYTE)
        sh = f.rsb(f.and_(pos, 7), 7)
        bit = f.and_(f.lsr(byte, sh), 1)
        f.orr(f.lsl(v, 1), bit, dst=v)
        f.add(pos, 1, dst=pos)
    f.store(pos, posp)
    f.ret(v)

    f = FunctionBuilder(m, "gsm_lar_decode", [])
    rp = f.ga("gsm_r")
    for i in range(8):  # unrolled per coefficient
        larc = f.call("gsm_get_bits", [f.li(6)])
        lar = f.lsl(f.sub(larc, 32), 10)
        temp = f.vreg()
        with f.if_else(Cond.LT, lar, 0) as otherwise:
            f.rsb(lar, 0, dst=temp)
            with otherwise:
                f.mov(lar, dst=temp)
        with f.if_else(Cond.LT, temp, 11059) as otherwise:
            f.lsl(temp, 1, dst=temp)
            with otherwise:
                with f.if_else(Cond.LT, temp, 20070) as otherwise2:
                    f.add(temp, 11059, dst=temp)
                    with otherwise2:
                        f.add(f.asr(temp, 2), 26112, dst=temp)
        with f.if_then(Cond.GT, temp, 32767):
            f.li(32767, dst=temp)
        with f.if_then(Cond.LT, lar, 0):
            f.rsb(temp, 0, dst=temp)
        f.store(temp, rp, 4 * i)
    f.ret()

    f = FunctionBuilder(m, "gsm_subframe", ["sub"])
    sub = f.arg("sub")
    exc = f.ga("gsm_exc")
    hist = f.ga("gsm_hist")
    qlb = f.ga("gsm_qlb")
    lag_raw = f.call("gsm_get_bits", [f.li(7)])
    lag = f.add(f.urem(lag_raw, 81), 40)
    gain = f.call("gsm_get_bits", [f.li(2)])
    xmaxc = f.call("gsm_get_bits", [f.li(6)])
    exp = f.lsr(xmaxc, 3)
    mant = f.add(f.and_(xmaxc, 7), 8)
    base = f.mul(sub, 40)
    # clear this subframe's excitation
    with f.for_range(0, 40) as k:
        f.store(0, exc, f.lsl(f.add(base, k), 2))
    grid = f.and_(gain, 3)
    gpos = f.urem(grid, 3)
    for j in range(13):  # unrolled pulse placement
        p = f.call("gsm_get_bits", [f.li(3)])
        amp = f.mul(f.sub(f.lsl(p, 1), 7), mant)
        amp = f.asr(f.lsl(amp, exp), 2)
        amp = f.call("gsm_sat16", [amp])
        pos = f.add(gpos, 3 * j)
        with f.if_then(Cond.LT, pos, 40):
            f.store(amp, exc, f.lsl(f.add(base, pos), 2))
    b_q = f.load(qlb, f.lsl(gain, 2))
    with f.for_range(0, 40) as k:
        absk = f.add(base, k)
        hidx = f.sub(absk, lag)
        with f.if_then(Cond.LT, hidx, 0):
            f.add(hidx, 160, dst=hidx)
        with f.if_then(Cond.LT, hidx, 0):
            f.add(hidx, 160, dst=hidx)
        prev = f.load(hist, f.lsl(hidx, 2))
        est = f.asr(f.mul(b_q, prev), 15)
        cur = f.load(exc, f.lsl(absk, 2))
        f.store(f.call("gsm_sat16", [f.add(cur, est)]), exc, f.lsl(absk, 2))
    f.ret()

    f = FunctionBuilder(m, "gsm_synthesis", ["acc_in"])
    acc = f.arg("acc_in")
    exc = f.ga("gsm_exc")
    rp = f.ga("gsm_r")
    vp = f.ga("gsm_v")
    rs = [f.load(rp, 4 * i) for i in range(8)]
    with f.for_range(0, 160) as k:
        sri = f.load(exc, f.lsl(k, 2))
        for i in range(7, -1, -1):  # unrolled lattice stages
            vi = f.load(vp, 4 * i)
            sri = f.call("gsm_sat16", [f.sub(sri, f.asr(f.mul(rs[i], vi), 15))])
            nv = f.call("gsm_sat16", [f.add(vi, f.asr(f.mul(rs[i], sri), 15))])
            f.store(nv, vp, 4 * (i + 1))
        f.store(sri, vp, 0)
        f.mul(acc, 17, dst=acc)
        f.eor(acc, sri, dst=acc)
    f.ret(acc)

    b = FunctionBuilder(m, "main", [])
    exc = b.ga("gsm_exc")
    hist = b.ga("gsm_hist")
    acc = b.li(0)
    with b.for_range(0, frames):
        b.call("gsm_lar_decode", [], dst=False)
        with b.for_range(0, 4) as sub:
            b.call("gsm_subframe", [sub], dst=False)
        # history <- excitation (this frame)
        b.call("memcpy", [hist, exc, b.li(640)], dst=False)
        b.call("gsm_synthesis", [acc], dst=acc)
    b.ret(acc)


WORKLOAD = Workload(
    name="gsm",
    category="telecomm",
    build=_build,
    reference=_reference,
    description="GSM 06.10-style decode: bit unpack, LAR, RPE/LTP, lattice",
)
