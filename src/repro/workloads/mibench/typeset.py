"""``typeset`` (consumer): line breaking, hyphenation and justification.

Models the typeset benchmark's core: proportional character widths, a
greedy line filler, hyphenation at vowel-consonant boundaries when a
word overflows the measure, full justification (distributing leftover
width across inter-word gaps), and page breaking.  The checksum folds
every line's used width, per-gap stretch and remainder, so any layout
divergence is caught.
"""

from repro.ir import Cond, FunctionBuilder, Global, Width
from repro.workloads.base import Workload
from repro.workloads.data import ascii_text
from repro.workloads.pyref import M32

SIZES = {"small": 1500, "full": 15000}
LINE_W = 600
SPACE_W = 5
HYPH_W = 4
LINES_PER_PAGE = 30
PAGE_MARK = 0x50A6E

VOWELS = b"aeiou"


def _widths():
    w = [0] * 256
    for c in range(32, 127):
        w[c] = ((c * 7) % 9) + 4
    return w


def _classes():
    cls = [0] * 256  # 0 other, 1 vowel, 2 consonant
    for c in range(ord("a"), ord("z") + 1):
        cls[c] = 1 if c in VOWELS else 2
    return cls


WIDTHS = _widths()
CLASSES = _classes()


def _text(scale):
    return ascii_text("typeset", SIZES[scale]) + b"\x00"


def _build(m, scale):
    text = _text(scale)
    m.add_global(Global("ts_text", data=text))
    m.add_global(Global("ts_widths", data=bytes(WIDTHS)))
    m.add_global(Global("ts_classes", data=bytes(CLASSES)))

    # measure a word's width: sum of character widths over [ptr, ptr+len)
    f = FunctionBuilder(m, "ts_measure", ["ptr", "length"])
    ptr, length = f.args
    widths = f.ga("ts_widths")
    total = f.li(0)
    with f.for_range(0, length) as i:
        ch = f.load(ptr, i, Width.BYTE)
        f.add(total, f.load(widths, ch, Width.BYTE), dst=total)
    f.ret(total)

    # find a hyphenation break: largest prefix ending at a vowel followed
    # by a consonant whose width (plus the pending gap and hyphen) fits.
    # Returns the prefix length, or 0.
    f = FunctionBuilder(m, "ts_hyphen", ["ptr", "length", "avail"])
    ptr, length, avail = f.args
    widths = f.ga("ts_widths")
    classes = f.ga("ts_classes")
    best = f.li(0)
    pw = f.li(0)
    limit = f.sub(length, 2)
    with f.for_range(0, limit) as i:
        ch = f.load(ptr, i, Width.BYTE)
        f.add(pw, f.load(widths, ch, Width.BYTE), dst=pw)
        nxt = f.load(ptr, f.add(i, 1), Width.BYTE)
        ccls = f.load(classes, ch, Width.BYTE)
        ncls = f.load(classes, nxt, Width.BYTE)
        with f.if_then(Cond.EQ, ccls, 1):
            with f.if_then(Cond.EQ, ncls, 2):
                fits = f.add(pw, HYPH_W)
                with f.if_then(Cond.LEU, fits, avail):
                    with f.if_then(Cond.GE, i, 1):
                        f.add(i, 1, dst=best)
    f.ret(best)

    b = FunctionBuilder(m, "main", [])
    text_g = b.ga("ts_text")
    widths_g = b.ga("ts_widths")
    acc = b.li(0)
    pos = b.li(0)
    line_used = b.li(0)
    gaps = b.li(0)
    line_no = b.li(0)

    # justify-and-break helper emitted inline via a function
    f = FunctionBuilder(m, "ts_break", ["used", "gaps", "acc", "line_no"])
    used, gp, a, ln = f.args
    extra = f.rsb(used, LINE_W)
    per = f.li(0)
    rem = f.mov(extra)
    with f.if_then(Cond.GT, gp, 0):
        f.call("__udiv", [extra, gp], dst=per)
        f.call("__urem", [extra, gp], dst=rem)
    f.mul(a, 31, dst=a)
    f.add(a, used, dst=a)
    f.eor(a, f.lsl(per, 8), dst=a)
    f.add(a, rem, dst=a)
    nl = f.add(ln, 1)
    q = f.call("__urem", [nl, LINES_PER_PAGE])
    with f.if_then(Cond.EQ, q, 0):
        f.eor(a, PAGE_MARK, dst=a)
    f.store(nl, f.ga("ts_lineno"))
    f.ret(a)

    m.add_global(Global("ts_lineno", size=4))

    outer = b.new_block("words")
    done = b.new_block("done")
    word_blk = b.new_block("word")
    scan_head = b.new_block("scan_head")
    scan_chk = b.new_block("scan_chk")
    scan_body = b.new_block("scan_body")
    scan_done = b.new_block("scan_done")
    ch = b.vreg("ch")
    start = b.vreg("start")
    b.br(outer)

    b.at(outer)
    # skip spaces
    b.load(b.add(text_g, pos), 0, Width.BYTE, dst=ch)
    with b.loop_while(Cond.EQ, ch, 32):
        b.add(pos, 1, dst=pos)
        b.load(b.add(text_g, pos), 0, Width.BYTE, dst=ch)
    b.cbr(Cond.EQ, ch, 0, done, word_blk)

    b.at(word_blk)
    b.mov(pos, dst=start)
    b.br(scan_head)
    b.at(scan_head)
    b.cbr(Cond.EQ, ch, 0, scan_done, scan_chk)
    b.at(scan_chk)
    b.cbr(Cond.EQ, ch, 32, scan_done, scan_body)
    b.at(scan_body)
    b.add(pos, 1, dst=pos)
    b.load(b.add(text_g, pos), 0, Width.BYTE, dst=ch)
    b.br(scan_head)

    b.at(scan_done)
    wlen = b.sub(pos, start)
    wptr = b.add(text_g, start)
    wwidth = b.call("ts_measure", [wptr, wlen])
    lineno_g = b.ga("ts_lineno")
    with b.if_else(Cond.EQ, line_used, 0) as otherwise:
        b.min_(wwidth, b.li(LINE_W), signed=False, dst=line_used)
        b.li(0, dst=gaps)
        with otherwise:
            fit = b.add(line_used, SPACE_W + 0)
            b.add(fit, wwidth, dst=fit)
            with b.if_else(Cond.LEU, fit, LINE_W) as otherwise2:
                b.mov(fit, dst=line_used)
                b.add(gaps, 1, dst=gaps)
                with otherwise2:
                    avail = b.sub(LINE_W, b.add(line_used, SPACE_W))
                    with b.if_then(Cond.LT, avail, 0):
                        b.li(0, dst=avail)
                    split = b.call("ts_hyphen", [wptr, wlen, avail])
                    with b.if_else(Cond.GE, split, 2) as otherwise3:
                        pre_w = b.call("ts_measure", [wptr, split])
                        b.add(line_used, b.add(pre_w, SPACE_W + HYPH_W), dst=line_used)
                        b.add(gaps, 1, dst=gaps)
                        b.call("ts_break", [line_used, gaps, acc, line_no], dst=acc)
                        b.load(lineno_g, 0, dst=line_no)
                        rest_w = b.sub(wwidth, pre_w)
                        b.min_(rest_w, b.li(LINE_W), signed=False, dst=line_used)
                        b.li(0, dst=gaps)
                        with otherwise3:
                            b.call("ts_break", [line_used, gaps, acc, line_no], dst=acc)
                            b.load(lineno_g, 0, dst=line_no)
                            b.min_(wwidth, b.li(LINE_W), signed=False, dst=line_used)
                            b.li(0, dst=gaps)
    b.br(outer)
    b.at(done)
    with b.if_then(Cond.GTU, line_used, 0):
        b.call("ts_break", [line_used, gaps, acc, line_no], dst=acc)
        b.load(b.ga("ts_lineno"), 0, dst=line_no)
    b.eor(acc, line_no, dst=acc)
    b.ret(acc)


def _reference(scale):
    text = _text(scale)
    acc = 0
    line_used = 0
    gaps = 0
    line_no = 0

    def brk(used, gp, a, ln):
        extra = LINE_W - used
        per = extra // gp if gp else 0
        rem = extra % gp if gp else extra
        a = (a * 31 + used) & M32
        a ^= (per << 8) & M32
        a = (a + rem) & M32
        ln += 1
        if ln % LINES_PER_PAGE == 0:
            a ^= PAGE_MARK
        return a & M32, ln

    pos = 0
    while True:
        while pos < len(text) and text[pos] == 32:
            pos += 1
        if text[pos] == 0:
            break
        start = pos
        while text[pos] not in (0, 32):
            pos += 1
        word = text[start:pos]
        wwidth = sum(WIDTHS[c] for c in word)
        if line_used == 0:
            line_used = min(wwidth, LINE_W)
            gaps = 0
        elif line_used + SPACE_W + wwidth <= LINE_W:
            line_used += SPACE_W + wwidth
            gaps += 1
        else:
            avail = max(0, LINE_W - (line_used + SPACE_W))
            best = 0
            pw = 0
            for i in range(max(0, len(word) - 2)):
                pw += WIDTHS[word[i]]
                if (
                    CLASSES[word[i]] == 1
                    and CLASSES[word[i + 1]] == 2
                    and pw + HYPH_W <= avail
                    and i >= 1
                ):
                    best = i + 1
            if best >= 2:
                pre_w = sum(WIDTHS[c] for c in word[:best])
                line_used += pre_w + SPACE_W + HYPH_W
                gaps += 1
                acc, line_no = brk(line_used, gaps, acc, line_no)
                line_used = min(wwidth - pre_w, LINE_W)
                gaps = 0
            else:
                acc, line_no = brk(line_used, gaps, acc, line_no)
                line_used = min(wwidth, LINE_W)
                gaps = 0
    if line_used > 0:
        acc, line_no = brk(line_used, gaps, acc, line_no)
    return (acc ^ line_no) & M32


WORKLOAD = Workload(
    name="typeset",
    category="consumer",
    build=_build,
    reference=_reference,
    description="greedy line filling, hyphenation, justification, paging",
)
