"""``stringsearch`` (office): Boyer-Moore-Horspool over a text corpus.

Mirrors MiBench stringsearch: builds a 256-entry skip table per pattern
and scans the text for every pattern; the checksum folds the match
positions and counts.
"""

from repro.ir import Cond, FunctionBuilder, Global, Width
from repro.workloads.base import Workload
from repro.workloads.data import ascii_text
from repro.workloads.pyref import M32

SIZES = {"small": (1200, 4), "full": (12000, 10)}  # (text bytes, patterns)

PATTERNS = [
    "cache", "power", "instruction", "the quick", "synthesis",
    "embedded fox", "benchmark", "lazy dog", "telecom", "processor",
]


def _text(scale):
    return ascii_text("stringsearch", SIZES[scale][0])


def _patterns(scale):
    return [p.encode() for p in PATTERNS[: SIZES[scale][1]]]


def _build(m, scale):
    text = _text(scale)
    patterns = _patterns(scale)
    m.add_global(Global("ss_text", data=text))
    blob = bytearray()
    offsets = []
    for p in patterns:
        offsets.append(len(blob))
        blob += p + b"\x00"
    m.add_global(Global("ss_patterns", data=bytes(blob)))
    m.add_global(Global("ss_skip", size=256 * 4))

    f = FunctionBuilder(m, "ss_build_skip", ["pat", "plen"])
    pat, plen = f.args
    skip = f.ga("ss_skip")
    with f.for_range(0, 256) as i:
        f.store(plen, skip, f.lsl(i, 2))
    last = f.sub(plen, 1)
    with f.for_range(0, last) as i:
        ch = f.load(pat, i, Width.BYTE)
        dist = f.sub(last, i)
        f.store(dist, skip, f.lsl(ch, 2))
    f.ret()

    f = FunctionBuilder(m, "ss_search", ["text", "tlen", "pat"])
    text_r, tlen, pat = f.args
    plen = f.call("strlen", [pat])
    f.call("ss_build_skip", [pat, plen], dst=False)
    skip = f.ga("ss_skip")
    acc = f.li(0)
    pos = f.li(0)
    limit = f.sub(tlen, plen)
    with f.loop_while(Cond.LEU, pos, limit):
        j = f.sub(plen, 1)
        matched = f.li(1)
        with f.loop_while(Cond.GE, j, 0):
            tc = f.load(text_r, f.add(pos, j), Width.BYTE)
            pc = f.load(pat, j, Width.BYTE)
            with f.if_then(Cond.NE, tc, pc):
                f.li(0, dst=matched)
                f.li(-1, dst=j)
            with f.if_then(Cond.GE, j, 0):
                f.sub(j, 1, dst=j)
        with f.if_then(Cond.NE, matched, 0):
            f.add(acc, pos, dst=acc)
            f.mul(acc, 3, dst=acc)
            f.add(acc, 1, dst=acc)
        lastch = f.load(text_r, f.add(pos, f.sub(plen, 1)), Width.BYTE)
        f.add(pos, f.load(skip, f.lsl(lastch, 2)), dst=pos)
    f.ret(acc)

    b = FunctionBuilder(m, "main", [])
    text_g = b.ga("ss_text")
    pats = b.ga("ss_patterns")
    total = b.li(0)
    for off in offsets:
        r = b.call("ss_search", [text_g, b.li(len(text)), b.add(pats, off)])
        b.eor(total, r, dst=total)
        b.mul(total, 7, dst=total)
        b.add(total, 13, dst=total)
    b.ret(total)


def _reference(scale):
    text = _text(scale)
    total = 0
    for p in _patterns(scale):
        plen = len(p)
        skip = [plen] * 256
        for i in range(plen - 1):
            skip[p[i]] = plen - 1 - i
        acc = 0
        pos = 0
        while pos <= len(text) - plen:
            if text[pos : pos + plen] == p:
                acc = ((acc + pos) * 3 + 1) & M32
            pos += skip[text[pos + plen - 1]]
        total = ((total ^ acc) * 7 + 13) & M32
    return total


WORKLOAD = Workload(
    name="stringsearch",
    category="office",
    build=_build,
    reference=_reference,
    description="Boyer-Moore-Horspool multi-pattern text search",
)
