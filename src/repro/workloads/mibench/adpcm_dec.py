"""``adpcm_dec`` (telecomm): IMA ADPCM decoder back to PCM."""

from repro.ir import FunctionBuilder, Global, Width
from repro.workloads.base import Workload
from repro.workloads.mibench import adpcm_common as common
from repro.workloads.pyref import M32


def _coded(scale):
    codes, _last = common.py_encode(common.pcm_samples(scale))
    return codes


def _build(m, scale):
    codes = _coded(scale)
    n = len(common.pcm_samples(scale))
    common.add_tables(m)
    m.add_global(Global("codes_in", data=codes))
    m.add_global(Global("pcm_out", size=2 * n))
    common.build_clamp_helpers(m)
    common.build_decoder_func(m)

    b = FunctionBuilder(m, "main", [])
    cin = b.ga("codes_in")
    out = b.ga("pcm_out")
    last = b.call("adpcm_decode_all", [cin, b.li(n), out])
    acc = b.mov(last)
    with b.for_range(0, n) as i:
        s = b.load(out, b.lsl(i, 1), Width.HALF, signed=True)
        b.mul(acc, 17, dst=acc)
        b.eor(acc, s, dst=acc)
    b.ret(acc)


def _reference(scale):
    codes = _coded(scale)
    n = len(common.pcm_samples(scale))
    samples, last = common.py_decode(codes, n)
    acc = last & M32
    for s in samples:
        acc = ((acc * 17) ^ (s & M32)) & M32
    return acc


WORKLOAD = Workload(
    name="adpcm_dec",
    category="telecomm",
    build=_build,
    reference=_reference,
    description="IMA ADPCM decode back to 16-bit PCM",
)
