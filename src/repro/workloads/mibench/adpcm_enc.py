"""``adpcm_enc`` (telecomm): IMA ADPCM encoder over synthetic voice PCM."""

from repro.ir import FunctionBuilder, Global, Width
from repro.workloads.base import Workload
from repro.workloads.mibench import adpcm_common as common
from repro.workloads.pyref import M32


def _build(m, scale):
    samples = common.pcm_samples(scale)
    n = len(samples)
    common.add_tables(m)
    m.add_global(Global("pcm_in", data=common.pcm_bytes(scale)))
    m.add_global(Global("codes_out", size=(n + 1) // 2))
    common.build_clamp_helpers(m)
    common.build_encoder_func(m)

    b = FunctionBuilder(m, "main", [])
    pcm = b.ga("pcm_in")
    out = b.ga("codes_out")
    last = b.call("adpcm_encode_all", [pcm, b.li(n), out])
    acc = b.mov(last)
    nbytes = (n + 1) // 2
    with b.for_range(0, nbytes) as i:
        byte = b.load(out, i, Width.BYTE)
        b.mul(acc, 31, dst=acc)
        b.add(acc, byte, dst=acc)
    b.ret(acc)


def _reference(scale):
    samples = common.pcm_samples(scale)
    codes, last = common.py_encode(samples)
    acc = last & M32
    for byte in codes:
        acc = (acc * 31 + byte) & M32
    return acc


WORKLOAD = Workload(
    name="adpcm_enc",
    category="telecomm",
    build=_build,
    reference=_reference,
    description="IMA ADPCM encode of a synthetic voice signal",
)
