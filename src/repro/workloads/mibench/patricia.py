"""``patricia`` (network): Patricia trie of 32-bit route keys.

Mirrors MiBench patricia: inserts IPv4-like addresses into a Patricia
trie (array-backed nodes: bit index, left/right child, stored key) and
then performs a lookup storm; the checksum folds hit/miss results.
Pointer chasing with data-dependent branches.
"""

from repro.ir import Cond, FunctionBuilder, Global, Width
from repro.workloads.base import Workload
from repro.workloads.data import random_words
from repro.workloads.pyref import M32

PARAMS = {"small": (60, 240), "full": (360, 3000)}  # (inserts, lookups)

# node layout: [bit, left, right, key] words; index 0 is the header node
NODE_WORDS = 4


def _keys(scale):
    inserts, lookups = PARAMS[scale]
    ins = random_words("patricia-ins", inserts)
    # lookups: half from the inserted population, half random
    hits = random_words("patricia-sel", lookups)
    rnd = random_words("patricia-miss", lookups)
    look = [
        ins[hits[i] % len(ins)] if i % 2 == 0 else rnd[i]
        for i in range(lookups)
    ]
    return ins, look


def _build(m, scale):
    inserts, lookups = PARAMS[scale]
    ins, look = _keys(scale)
    m.add_global(Global("pat_ins", data=b"".join(k.to_bytes(4, "little") for k in ins)))
    m.add_global(Global("pat_look", data=b"".join(k.to_bytes(4, "little") for k in look)))
    arena_nodes = inserts + 2
    m.add_global(Global("pat_arena", size=arena_nodes * NODE_WORDS * 4))
    m.add_global(Global("pat_count", size=4))

    # bit(key, i): bit 31-i of key (MSB-first, like address prefixes)
    f = FunctionBuilder(m, "pat_bit", ["key", "i"])
    key, i = f.args
    sh = f.rsb(i, 31)
    f.ret(f.and_(f.lsr(key, sh), 1))

    f = FunctionBuilder(m, "pat_node_addr", ["idx"])
    arena = f.ga("pat_arena")
    f.ret(f.add(arena, f.lsl(f.arg("idx"), 4)))

    # search to the closest leaf; returns node index
    f = FunctionBuilder(m, "pat_descend", ["key"])
    key = f.arg("key")
    idx = f.li(0)
    prev_bit = f.li(-1)
    node = f.call("pat_node_addr", [idx])
    bit = f.load(node, 0)
    with f.loop_while(Cond.GT, bit, prev_bit):
        f.mov(bit, dst=prev_bit)
        side = f.call("pat_bit", [key, bit])
        with f.if_else(Cond.NE, side, 0) as otherwise:
            f.load(node, 8, dst=idx)
            with otherwise:
                f.load(node, 4, dst=idx)
        f.call("pat_node_addr", [idx], dst=node)
        f.load(node, 0, dst=bit)
    f.ret(idx)

    f = FunctionBuilder(m, "pat_insert", ["key"])
    key = f.arg("key")
    countp = f.ga("pat_count")
    count = f.load(countp)
    with f.if_then(Cond.EQ, count, 0):
        # header: bit 0 pointing at itself until real nodes exist
        node = f.call("pat_node_addr", [f.li(0)])
        f.store(0, node, 0)
        f.store(0, node, 4)
        f.store(0, node, 8)
        f.store(key, node, 12)
        f.store(1, countp)
        f.ret(0)
    near_idx = f.call("pat_descend", [key])
    near = f.call("pat_node_addr", [near_idx])
    found = f.load(near, 12)
    with f.if_then(Cond.EQ, found, key):
        f.ret(1)  # duplicate
    # first differing bit
    diff = f.eor(found, key)
    dbit = f.call("clz32", [diff])
    new_idx = f.mov(count)
    f.store(f.add(count, 1), countp)
    newn = f.call("pat_node_addr", [new_idx])
    f.store(dbit, newn, 0)
    f.store(key, newn, 12)
    # re-descend from the root, stopping where bit ordering breaks
    idx = f.li(0)
    prev_bit = f.li(-1)
    node = f.call("pat_node_addr", [idx])
    bit = f.load(node, 0)
    parent = f.li(0)
    went_right = f.li(0)
    stop = f.li(0)
    with f.loop_while(Cond.EQ, stop, 0):
        cont = f.li(1)
        with f.if_then(Cond.LE, bit, prev_bit):
            f.li(0, dst=cont)
        with f.if_then(Cond.GE, bit, dbit):
            f.li(0, dst=cont)
        with f.if_else(Cond.NE, cont, 0) as otherwise:
            f.mov(bit, dst=prev_bit)
            f.mov(idx, dst=parent)
            side = f.call("pat_bit", [key, bit])
            f.mov(side, dst=went_right)
            with f.if_else(Cond.NE, side, 0) as otherwise2:
                f.load(node, 8, dst=idx)
                with otherwise2:
                    f.load(node, 4, dst=idx)
            f.call("pat_node_addr", [idx], dst=node)
            f.load(node, 0, dst=bit)
            with otherwise:
                f.li(1, dst=stop)
    # wire the new node between parent and idx
    side = f.call("pat_bit", [key, dbit])
    with f.if_else(Cond.NE, side, 0) as otherwise:
        f.store(idx, newn, 4)
        f.store(new_idx, newn, 8)
        with otherwise:
            f.store(new_idx, newn, 4)
            f.store(idx, newn, 8)
    parent_node = f.call("pat_node_addr", [parent])
    with f.if_else(Cond.NE, went_right, 0) as otherwise:
        f.store(new_idx, parent_node, 8)
        with otherwise:
            f.store(new_idx, parent_node, 4)
    f.ret(2)

    f = FunctionBuilder(m, "pat_lookup", ["key"])
    key = f.arg("key")
    countp = f.ga("pat_count")
    with f.if_then(Cond.EQ, f.load(countp), 0):
        f.ret(0)
    idx = f.call("pat_descend", [key])
    node = f.call("pat_node_addr", [idx])
    stored = f.load(node, 12)
    f.ret(f.select(Cond.EQ, stored, key, 1, 0))

    b = FunctionBuilder(m, "main", [])
    insp = b.ga("pat_ins")
    acc = b.li(0)
    with b.for_range(0, inserts) as i:
        key = b.load(insp, b.lsl(i, 2))
        r = b.call("pat_insert", [key])
        b.add(acc, r, dst=acc)
    lookp = b.ga("pat_look")
    with b.for_range(0, lookups) as i:
        key = b.load(lookp, b.lsl(i, 2))
        hit = b.call("pat_lookup", [key])
        b.mul(acc, 3, dst=acc)
        b.add(acc, hit, dst=acc)
    b.ret(acc)


class _PyPatricia:
    """Reference mirror with the same descend/insert rules."""

    def __init__(self):
        self.nodes = []  # [bit, left, right, key]

    @staticmethod
    def _bit(key, i):
        return (key >> (31 - i)) & 1

    def descend(self, key):
        idx = 0
        prev = -1
        bit = self.nodes[0][0]
        while bit > prev:
            prev = bit
            idx = self.nodes[idx][2] if self._bit(key, bit) else self.nodes[idx][1]
            bit = self.nodes[idx][0]
        return idx

    def insert(self, key):
        if not self.nodes:
            self.nodes.append([0, 0, 0, key])
            return 0
        near = self.nodes[self.descend(key)]
        if near[3] == key:
            return 1
        diff = near[3] ^ key
        dbit = 32 - diff.bit_length()  # first differing bit, MSB-first
        new_idx = len(self.nodes)
        self.nodes.append([dbit, 0, 0, key])
        idx = 0
        prev = -1
        bit = self.nodes[0][0]
        parent = 0
        went_right = 0
        while bit > prev and bit < dbit:
            prev = bit
            parent = idx
            went_right = self._bit(key, bit)
            idx = self.nodes[idx][2] if went_right else self.nodes[idx][1]
            bit = self.nodes[idx][0]
        if self._bit(key, dbit):
            self.nodes[new_idx][1] = idx
            self.nodes[new_idx][2] = new_idx
        else:
            self.nodes[new_idx][1] = new_idx
            self.nodes[new_idx][2] = idx
        if went_right:
            self.nodes[parent][2] = new_idx
        else:
            self.nodes[parent][1] = new_idx
        return 2

    def lookup(self, key):
        if not self.nodes:
            return 0
        return 1 if self.nodes[self.descend(key)][3] == key else 0


def _reference(scale):
    ins, look = _keys(scale)
    trie = _PyPatricia()
    acc = 0
    for key in ins:
        acc = (acc + trie.insert(key)) & M32
    for key in look:
        acc = (acc * 3 + trie.lookup(key)) & M32
    return acc


WORKLOAD = Workload(
    name="patricia",
    category="network",
    build=_build,
    reference=_reference,
    description="Patricia trie inserts + lookup storm over 32-bit keys",
)
