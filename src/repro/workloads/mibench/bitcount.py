"""``bitcount`` (automotive): five bit-counting algorithms over a PRNG stream.

Mirrors MiBench bitcount's structure: the same values are counted by an
iterated-shift counter, Kernighan's clear-lowest-bit counter, 8-bit and
4-bit table lookups, and a SWAR (parallel reduction) counter; the
checksum accumulates all five results so a bug in any one diverges.
"""

from repro.ir import Cond, FunctionBuilder, Global, Width
from repro.workloads.base import Workload
from repro.workloads.pyref import XorShift32, M32

ITERS = {"small": 120, "full": 6000}


def _build(m, scale):
    iters = ITERS[scale]
    m.add_global(Global("bc_table8", size=256, align=4))
    m.add_global(Global("bc_table4", data=bytes([bin(i).count("1") for i in range(16)])))

    f = FunctionBuilder(m, "bc_build_table8", [])
    tab = f.ga("bc_table8")
    with f.for_range(0, 256) as i:
        n = f.li(0)
        x = f.mov(i)
        with f.loop_while(Cond.NE, x, 0):
            f.add(n, f.and_(x, 1), dst=n)
            f.lsr(x, 1, dst=x)
        f.store(n, tab, i, Width.BYTE)
    f.ret()

    f = FunctionBuilder(m, "bc_iter", ["x"])
    x = f.arg("x")
    n = f.li(0)
    with f.loop_while(Cond.NE, x, 0):
        f.add(n, f.and_(x, 1), dst=n)
        f.lsr(x, 1, dst=x)
    f.ret(n)

    f = FunctionBuilder(m, "bc_kernighan", ["x"])
    x = f.arg("x")
    n = f.li(0)
    with f.loop_while(Cond.NE, x, 0):
        f.and_(x, f.sub(x, 1), dst=x)
        f.add(n, 1, dst=n)
    f.ret(n)

    f = FunctionBuilder(m, "bc_table_lookup", ["x"])
    x = f.arg("x")
    tab = f.ga("bc_table8")
    n = f.li(0)
    with f.for_range(0, 4):
        f.add(n, f.load(tab, f.and_(x, 0xFF), Width.BYTE), dst=n)
        f.lsr(x, 8, dst=x)
    f.ret(n)

    f = FunctionBuilder(m, "bc_nibble", ["x"])
    x = f.arg("x")
    tab = f.ga("bc_table4")
    n = f.li(0)
    with f.for_range(0, 8):
        f.add(n, f.load(tab, f.and_(x, 0xF), Width.BYTE), dst=n)
        f.lsr(x, 4, dst=x)
    f.ret(n)

    f = FunctionBuilder(m, "bc_swar", ["x"])
    x = f.arg("x")
    x = f.sub(x, f.and_(f.lsr(x, 1), 0x55555555))
    lo = f.and_(x, 0x33333333)
    hi = f.and_(f.lsr(x, 2), 0x33333333)
    x = f.add(lo, hi)
    x = f.and_(f.add(x, f.lsr(x, 4)), 0x0F0F0F0F)
    x = f.mul(x, 0x01010101)
    f.ret(f.lsr(x, 24))

    b = FunctionBuilder(m, "main", [])
    b.call("bc_build_table8", [], dst=False)
    b.call("srand", [b.li(0x1234ABCD)], dst=False)
    acc = b.li(0)
    with b.for_range(0, iters):
        x = b.call("rand_next", [])
        for counter in ("bc_iter", "bc_kernighan", "bc_table_lookup", "bc_nibble", "bc_swar"):
            b.add(acc, b.call(counter, [x]), dst=acc)
        b.mul(acc, 17, dst=acc)
        b.add(acc, 1, dst=acc)
    b.ret(acc)


def _reference(scale):
    rng = XorShift32(0x1234ABCD)
    acc = 0
    for _ in range(ITERS[scale]):
        x = rng.next()
        bits = bin(x).count("1")
        acc = (acc + 5 * bits) & M32
        acc = (acc * 17 + 1) & M32
    return acc


WORKLOAD = Workload(
    name="bitcount",
    category="automotive",
    build=_build,
    reference=_reference,
    description="five bit-count algorithms over a deterministic PRNG stream",
)
