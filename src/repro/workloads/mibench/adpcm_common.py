"""Shared pieces of the IMA ADPCM codec (``adpcm_enc`` / ``adpcm_dec``).

The classic Intel/DVI ADPCM from MiBench: 89-entry step-size table,
4-bit codes, index adaptation table.  The PCM input is a deterministic
synthetic voice-like signal (sum of two sine components plus noise from
the shared PRNG), generated identically for the IR build and the Python
reference.
"""

import struct

from repro.ir import Cond, FunctionBuilder, Global, Width
from repro.workloads.pyref import XorShift32, sin_table, u32, s32

STEP_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
    6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
]

INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]

SAMPLE_COUNTS = {"small": 600, "full": 14000}


def pcm_samples(scale):
    """Synthetic 16-bit PCM, identical for IR data and reference."""
    n = SAMPLE_COUNTS[scale]
    rng = XorShift32(0xADB0C0DE)
    table = sin_table()
    out = []
    for i in range(n):
        s = (table[(i * 37) & 1023] >> 2) + (table[(i * 11 + 200) & 1023] >> 3)
        s += (rng.next() & 0x3FF) - 512
        s = max(-32768, min(32767, s))
        out.append(s)
    return out


def pcm_bytes(scale):
    samples = pcm_samples(scale)
    return struct.pack("<%dh" % len(samples), *samples)


def add_tables(m):
    m.add_global(Global("adpcm_step", data=struct.pack("<89i", *STEP_TABLE)))
    m.add_global(
        Global("adpcm_index", data=struct.pack("<16b", *INDEX_TABLE))
    )


def build_clamp_helpers(m):
    f = FunctionBuilder(m, "adpcm_clamp16", ["x"])
    x = f.arg("x")
    with f.if_then(Cond.GT, x, 32767):
        f.ret(32767)
    with f.if_then(Cond.LT, x, -32768):
        f.ret(u32(-32768))
    f.ret(x)

    f = FunctionBuilder(m, "adpcm_clamp_index", ["i"])
    i = f.arg("i")
    with f.if_then(Cond.LT, i, 0):
        f.ret(0)
    with f.if_then(Cond.GT, i, 88):
        f.ret(88)
    f.ret(i)


def build_decoder_func(m):
    """adpcm_decode_all(codes, n, out) — shared by both directions
    (the encoder's reference decoder is how MiBench validates)."""
    f = FunctionBuilder(m, "adpcm_decode_all", ["codes", "n", "out"])
    codes, n, out = f.args
    step_t = f.ga("adpcm_step")
    index_t = f.ga("adpcm_index")
    valpred = f.li(0)
    index = f.li(0)
    with f.for_range(0, n) as i:
        byte = f.load(codes, f.lsr(i, 1), Width.BYTE)
        nib = f.vreg("nib")
        half = f.and_(i, 1)
        with f.if_else(Cond.NE, half, 0) as otherwise:
            f.lsr(byte, 4, dst=nib)
            with otherwise:
                f.and_(byte, 0xF, dst=nib)
        step = f.load(step_t, f.lsl(index, 2))
        delta = f.and_(nib, 7)
        # vpdiff = (delta * step) / 4 + step / 8, via shifts as in the
        # reference implementation
        vpdiff = f.asr(step, 3)
        with f.if_then(Cond.NE, f.and_(delta, 4), 0):
            f.add(vpdiff, step, dst=vpdiff)
        with f.if_then(Cond.NE, f.and_(delta, 2), 0):
            f.add(vpdiff, f.asr(step, 1), dst=vpdiff)
        with f.if_then(Cond.NE, f.and_(delta, 1), 0):
            f.add(vpdiff, f.asr(step, 2), dst=vpdiff)
        with f.if_else(Cond.NE, f.and_(nib, 8), 0) as otherwise:
            f.sub(valpred, vpdiff, dst=valpred)
            with otherwise:
                f.add(valpred, vpdiff, dst=valpred)
        f.call("adpcm_clamp16", [valpred], dst=valpred)
        adj = f.load(index_t, nib, Width.BYTE, signed=True)
        f.add(index, adj, dst=index)
        f.call("adpcm_clamp_index", [index], dst=index)
        f.store(valpred, out, f.lsl(i, 1), Width.HALF)
    f.ret(valpred)


def py_decode(codes, n):
    """Reference decoder; returns (samples, last_valpred)."""
    valpred = 0
    index = 0
    out = []
    for i in range(n):
        byte = codes[i >> 1]
        nib = (byte >> 4) if i & 1 else (byte & 0xF)
        step = STEP_TABLE[index]
        delta = nib & 7
        vpdiff = step >> 3
        if delta & 4:
            vpdiff += step
        if delta & 2:
            vpdiff += step >> 1
        if delta & 1:
            vpdiff += step >> 2
        if nib & 8:
            valpred -= vpdiff
        else:
            valpred += vpdiff
        valpred = max(-32768, min(32767, valpred))
        index = max(0, min(88, index + INDEX_TABLE[nib]))
        out.append(valpred)
    return out, valpred


def py_encode(samples):
    """Reference encoder; returns (codes bytes, last_valpred)."""
    valpred = 0
    index = 0
    codes = bytearray((len(samples) + 1) // 2)
    for i, sample in enumerate(samples):
        step = STEP_TABLE[index]
        diff = sample - valpred
        sign = 8 if diff < 0 else 0
        if diff < 0:
            diff = -diff
        delta = 0
        vpdiff = step >> 3
        if diff >= step:
            delta = 4
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            delta |= 2
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            delta |= 1
            vpdiff += step
        if sign:
            valpred -= vpdiff
        else:
            valpred += vpdiff
        valpred = max(-32768, min(32767, valpred))
        nib = delta | sign
        index = max(0, min(88, index + INDEX_TABLE[nib]))
        if i & 1:
            codes[i >> 1] |= nib << 4
        else:
            codes[i >> 1] = nib
    return bytes(codes), valpred


def build_encoder_func(m):
    f = FunctionBuilder(m, "adpcm_encode_all", ["pcm", "n", "out"])
    pcm, n, out = f.args
    step_t = f.ga("adpcm_step")
    index_t = f.ga("adpcm_index")
    valpred = f.li(0)
    index = f.li(0)
    with f.for_range(0, n) as i:
        sample = f.load(pcm, f.lsl(i, 1), Width.HALF, signed=True)
        step = f.load(step_t, f.lsl(index, 2))
        diff = f.sub(sample, valpred)
        sign = f.li(0)
        with f.if_then(Cond.LT, diff, 0):
            f.li(8, dst=sign)
            f.rsb(diff, 0, dst=diff)
        delta = f.li(0)
        vpdiff = f.asr(step, 3)
        with f.if_then(Cond.GE, diff, step):
            f.li(4, dst=delta)
            f.sub(diff, step, dst=diff)
            f.add(vpdiff, step, dst=vpdiff)
        f.asr(step, 1, dst=step)
        with f.if_then(Cond.GE, diff, step):
            f.orr(delta, 2, dst=delta)
            f.sub(diff, step, dst=diff)
            f.add(vpdiff, step, dst=vpdiff)
        f.asr(step, 1, dst=step)
        with f.if_then(Cond.GE, diff, step):
            f.orr(delta, 1, dst=delta)
            f.add(vpdiff, step, dst=vpdiff)
        with f.if_else(Cond.NE, sign, 0) as otherwise:
            f.sub(valpred, vpdiff, dst=valpred)
            with otherwise:
                f.add(valpred, vpdiff, dst=valpred)
        f.call("adpcm_clamp16", [valpred], dst=valpred)
        nib = f.orr(delta, sign)
        adj = f.load(index_t, nib, Width.BYTE, signed=True)
        f.add(index, adj, dst=index)
        f.call("adpcm_clamp_index", [index], dst=index)
        boff = f.lsr(i, 1)
        with f.if_else(Cond.NE, f.and_(i, 1), 0) as otherwise:
            old = f.load(out, boff, Width.BYTE)
            f.store(f.orr(old, f.lsl(nib, 4)), out, boff, Width.BYTE)
            with otherwise:
                f.store(nib, out, boff, Width.BYTE)
    f.ret(valpred)
