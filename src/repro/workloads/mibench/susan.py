"""``susan`` (automotive): SUSAN image smoothing + corner detection.

The two MiBench susan modes that dominate its profile: a 3x3 integer
smoothing pass, then the USAN corner pass — for every interior pixel,
sum the brightness-similarity lookup table over the 37-pixel circular
mask and report a corner response where the USAN area is below the
geometric threshold.  The similarity LUT (exp of the squared brightness
difference) is precomputed host-side exactly as susan precomputes it at
startup.
"""

import math

from repro.ir import Cond, FunctionBuilder, Global, Width
from repro.workloads.base import Workload
from repro.workloads.data import random_bytes
from repro.workloads.pyref import M32

DIMS = {"small": (24, 24), "full": (44, 44)}
BT = 20  # brightness threshold

#: 37-pixel circular mask offsets (the classic SUSAN mask)
MASK = [
    (-3, -1), (-3, 0), (-3, 1),
    (-2, -2), (-2, -1), (-2, 0), (-2, 1), (-2, 2),
    (-1, -3), (-1, -2), (-1, -1), (-1, 0), (-1, 1), (-1, 2), (-1, 3),
    (0, -3), (0, -2), (0, -1), (0, 0), (0, 1), (0, 2), (0, 3),
    (1, -3), (1, -2), (1, -1), (1, 0), (1, 1), (1, 2), (1, 3),
    (2, -2), (2, -1), (2, 0), (2, 1), (2, 2),
    (3, -1), (3, 0), (3, 1),
]
G_THRESH = (37 * 100 * 3) // 4  # geometric threshold in LUT units


def _lut():
    # susan: 100 * exp(-((d/t)^6)) rounded, for |d| in 0..255
    out = []
    for d in range(256):
        out.append(int(round(100.0 * math.exp(-((d / BT) ** 6)))))
    return out


def _image(scale):
    w, h = DIMS[scale]
    return random_bytes("susan", w * h)


def _build(m, scale):
    w, h = DIMS[scale]
    img = _image(scale)
    m.add_global(Global("su_img", data=img))
    m.add_global(Global("su_smooth", size=w * h))
    m.add_global(Global("su_lut", data=bytes(_lut())))

    f = FunctionBuilder(m, "su_smooth_pass", [])
    src = f.ga("su_img")
    dst = f.ga("su_smooth")
    # 3x3 box smoothing on the interior; borders copied
    with f.for_range(0, h) as y:
        row = f.mul(y, w)
        with f.for_range(0, w) as x:
            idx = f.add(row, x)
            interior = f.li(1)
            with f.if_then(Cond.EQ, y, 0):
                f.li(0, dst=interior)
            with f.if_then(Cond.EQ, y, h - 1):
                f.li(0, dst=interior)
            with f.if_then(Cond.EQ, x, 0):
                f.li(0, dst=interior)
            with f.if_then(Cond.EQ, x, w - 1):
                f.li(0, dst=interior)
            with f.if_else(Cond.NE, interior, 0) as otherwise:
                total = f.li(0)
                for dy in (-1, 0, 1):
                    for dx in (-1, 0, 1):
                        p = f.load(src, f.add(idx, dy * w + dx), Width.BYTE)
                        f.add(total, p, dst=total)
                # divide by 9 via the multiply-shift idiom (exact here)
                f.store(f.lsr(f.mul(total, 7282), 16), dst, idx, Width.BYTE)
                with otherwise:
                    f.store(f.load(src, idx, Width.BYTE), dst, idx, Width.BYTE)
    f.ret()

    f = FunctionBuilder(m, "su_corners", [])
    img_r = f.ga("su_smooth")
    lut = f.ga("su_lut")
    acc = f.li(0)
    with f.for_range(3, h - 3) as y:
        row = f.mul(y, w)
        with f.for_range(3, w - 3) as x:
            idx = f.add(row, x)
            center = f.load(img_r, idx, Width.BYTE)
            n = f.li(0)
            for dy, dx in MASK:
                p = f.load(img_r, f.add(idx, dy * w + dx), Width.BYTE)
                d = f.sub(p, center)
                d = f.call("abs_i32", [d])
                f.add(n, f.load(lut, d, Width.BYTE), dst=n)
            with f.if_then(Cond.LT, n, G_THRESH):
                resp = f.rsb(n, G_THRESH)
                f.mul(acc, 3, dst=acc)
                f.add(acc, resp, dst=acc)
                f.eor(acc, idx, dst=acc)
    f.ret(acc)

    f = FunctionBuilder(m, "abs_i32", ["x"])
    x = f.arg("x")
    with f.if_then(Cond.LT, x, 0):
        f.ret(f.rsb(x, 0))
    f.ret(x)

    b = FunctionBuilder(m, "main", [])
    b.call("su_smooth_pass", [], dst=False)
    b.ret(b.call("su_corners", []))


def _reference(scale):
    w, h = DIMS[scale]
    img = list(_image(scale))
    lut = _lut()
    smooth = list(img)
    for y in range(1, h - 1):
        for x in range(1, w - 1):
            total = 0
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    total += img[(y + dy) * w + (x + dx)]
            smooth[y * w + x] = (total * 7282) >> 16
    acc = 0
    for y in range(3, h - 3):
        for x in range(3, w - 3):
            idx = y * w + x
            center = smooth[idx]
            n = 0
            for dy, dx in MASK:
                n += lut[abs(smooth[idx + dy * w + dx] - center)]
            if n < G_THRESH:
                acc = (acc * 3 + (G_THRESH - n)) & M32
                acc ^= idx
    return acc


WORKLOAD = Workload(
    name="susan",
    category="automotive",
    build=_build,
    reference=_reference,
    description="SUSAN smoothing + USAN corner response over a noise image",
)
