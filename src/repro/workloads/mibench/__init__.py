"""The MiBench-like kernel collection (one module per benchmark)."""
