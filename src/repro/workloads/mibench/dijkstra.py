"""``dijkstra`` (network): shortest paths on a dense random graph.

Mirrors MiBench's naive O(V^2) Dijkstra (adjacency matrix, linear
minimum scan, no heap) run from several source nodes; the checksum folds
all finite distances.
"""

from repro.ir import Cond, FunctionBuilder, Global, Width
from repro.workloads.base import Workload
from repro.workloads.data import random_halfwords, halfwords_bytes
from repro.workloads.pyref import M32

PARAMS = {"small": (20, 2), "full": (72, 5)}  # (nodes, sources)
INF = 0x3FFFFFFF
NO_EDGE = 0  # matrix weight 0 means "no edge" (except the diagonal)


def _matrix(scale):
    nodes, _ = PARAMS[scale]
    raw = random_halfwords("dijkstra", nodes * nodes, lo=0, hi=19)
    # weight 0..19; values >= 15 become "no edge" so the graph is sparse-ish
    weights = [0 if w >= 15 else w + 1 for w in raw]
    for i in range(nodes):
        weights[i * nodes + i] = 0
    return weights


def _build(m, scale):
    nodes, sources = PARAMS[scale]
    weights = _matrix(scale)
    m.add_global(Global("dj_adj", data=halfwords_bytes(weights)))
    m.add_global(Global("dj_dist", size=4 * nodes))
    m.add_global(Global("dj_visited", size=nodes, align=4))

    f = FunctionBuilder(m, "dj_run", ["src"])
    src = f.arg("src")
    dist = f.ga("dj_dist")
    visited = f.ga("dj_visited")
    adj = f.ga("dj_adj")
    with f.for_range(0, nodes) as i:
        f.store(f.li(INF), dist, f.lsl(i, 2))
        f.store(f.li(0), visited, i, Width.BYTE)
    f.store(f.li(0), dist, f.lsl(src, 2))

    with f.for_range(0, nodes):
        best = f.li(INF)
        best_idx = f.li(-1)
        with f.for_range(0, nodes) as j:
            seen = f.load(visited, j, Width.BYTE)
            with f.if_then(Cond.EQ, seen, 0):
                dj = f.load(dist, f.lsl(j, 2))
                with f.if_then(Cond.LTU, dj, best):
                    f.mov(dj, dst=best)
                    f.mov(j, dst=best_idx)
        with f.if_then(Cond.GE, best_idx, 0):
            f.store(f.li(1), visited, best_idx, Width.BYTE)
            row = f.mul(best_idx, nodes)
            with f.for_range(0, nodes) as k:
                woff = f.lsl(f.add(row, k), 1)
                wt = f.load(adj, woff, Width.HALF)
                with f.if_then(Cond.NE, wt, NO_EDGE):
                    cand = f.add(best, wt)
                    dk = f.load(dist, f.lsl(k, 2))
                    with f.if_then(Cond.LTU, cand, dk):
                        f.store(cand, dist, f.lsl(k, 2))
    f.ret()

    b = FunctionBuilder(m, "main", [])
    dist = b.ga("dj_dist")
    acc = b.li(0)
    with b.for_range(0, sources) as s:
        b.call("dj_run", [s], dst=False)
        with b.for_range(0, nodes) as i:
            d = b.load(dist, b.lsl(i, 2))
            with b.if_then(Cond.NE, d, INF):
                b.add(acc, d, dst=acc)
                b.mul(acc, 3, dst=acc)
    b.ret(acc)


def _reference(scale):
    nodes, sources = PARAMS[scale]
    weights = _matrix(scale)
    acc = 0
    for src in range(sources):
        dist = [INF] * nodes
        dist[src] = 0
        visited = [False] * nodes
        for _ in range(nodes):
            best, best_idx = INF, -1
            for j in range(nodes):
                if not visited[j] and dist[j] < best:
                    best, best_idx = dist[j], j
            if best_idx < 0:
                continue
            visited[best_idx] = True
            for k in range(nodes):
                w = weights[best_idx * nodes + k]
                if w != NO_EDGE and best + w < dist[k]:
                    dist[k] = best + w
        for d in dist:
            if d != INF:
                acc = ((acc + d) * 3) & M32
    return acc


WORKLOAD = Workload(
    name="dijkstra",
    category="network",
    build=_build,
    reference=_reference,
    description="dense-matrix Dijkstra from several sources (no heap)",
)
