"""``rijndael`` (security): AES-128 ECB encryption.

Complete AES: S-box substitution, ShiftRows, MixColumns (xtime over
GF(2^8)), AddRoundKey, and the full key expansion.  Each of the ten
rounds is emitted as its own unrolled function — the way performance
AES implementations are written — which also gives this benchmark the
large instruction footprint the paper's cache study needs.

The Python mirror is validated against the FIPS-197 example vector in
the test suite.
"""

from repro.ir import Cond, FunctionBuilder, Global, Width
from repro.workloads.base import Workload
from repro.workloads.data import random_bytes
from repro.workloads.pyref import M32

SIZES = {"small": 256, "full": 4096}  # plaintext bytes (multiple of 16)
KEY = bytes(range(16))  # 000102...0f

# ----------------------------------------------------------------------
# host-side AES tables and reference implementation


def _make_sbox():
    # multiplicative inverse in GF(2^8) + affine transform (FIPS-197)
    def gmul(a, b):
        r = 0
        for _ in range(8):
            if b & 1:
                r ^= a
            hi = a & 0x80
            a = (a << 1) & 0xFF
            if hi:
                a ^= 0x1B
            b >>= 1
        return r

    inv = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if gmul(x, y) == 1:
                inv[x] = y
                break
    sbox = []
    for x in range(256):
        b = inv[x]
        res = 0
        for i in range(8):
            bit = (
                ((b >> i) & 1)
                ^ ((b >> ((i + 4) % 8)) & 1)
                ^ ((b >> ((i + 5) % 8)) & 1)
                ^ ((b >> ((i + 6) % 8)) & 1)
                ^ ((b >> ((i + 7) % 8)) & 1)
                ^ ((0x63 >> i) & 1)
            )
            res |= bit << i
        sbox.append(res)
    return sbox


SBOX = _make_sbox()
RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(a):
    a <<= 1
    return (a ^ 0x1B) & 0xFF if a & 0x100 else a


def _expand_key(key):
    w = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
    for i in range(4, 44):
        temp = list(w[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [SBOX[b] for b in temp]
            temp[0] ^= RCON[i // 4 - 1]
        w.append([w[i - 4][k] ^ temp[k] for k in range(4)])
    return [b for word in w for b in word]  # 176 bytes


def _encrypt_block(block, round_keys):
    state = [block[i] ^ round_keys[i] for i in range(16)]
    for rnd in range(1, 11):
        state = [SBOX[b] for b in state]
        # ShiftRows on column-major state: state[r + 4c]
        shifted = list(state)
        for r in range(1, 4):
            for c in range(4):
                shifted[r + 4 * c] = state[r + 4 * ((c + r) % 4)]
        state = shifted
        if rnd != 10:
            mixed = []
            for c in range(4):
                col = state[4 * c : 4 * c + 4]
                mixed.extend(
                    [
                        _xtime(col[0]) ^ _xtime(col[1]) ^ col[1] ^ col[2] ^ col[3],
                        col[0] ^ _xtime(col[1]) ^ _xtime(col[2]) ^ col[2] ^ col[3],
                        col[0] ^ col[1] ^ _xtime(col[2]) ^ _xtime(col[3]) ^ col[3],
                        _xtime(col[0]) ^ col[0] ^ col[1] ^ col[2] ^ _xtime(col[3]),
                    ]
                )
            state = mixed
        rk = round_keys[16 * rnd : 16 * rnd + 16]
        state = [state[i] ^ rk[i] for i in range(16)]
    return state


def encrypt_bytes(data, key=KEY):
    rks = _expand_key(key)
    out = bytearray()
    for off in range(0, len(data), 16):
        out.extend(_encrypt_block(data[off : off + 16], rks))
    return bytes(out)


def _plain(scale):
    return random_bytes("rijndael", SIZES[scale])


# ----------------------------------------------------------------------
# IR build


def _build(m, scale):
    plain = _plain(scale)
    m.add_global(Global("aes_sbox", data=bytes(SBOX)))
    m.add_global(Global("aes_rcon", data=bytes(RCON)))
    m.add_global(Global("aes_key", data=KEY))
    m.add_global(Global("aes_rk", size=176))
    m.add_global(Global("aes_state", size=16, align=4))
    m.add_global(Global("aes_tmp", size=16, align=4))
    m.add_global(Global("aes_data", data=plain))

    f = FunctionBuilder(m, "aes_xtime", ["a"])
    a = f.arg("a")
    r = f.lsl(a, 1)
    with f.if_then(Cond.NE, f.and_(r, 0x100), 0):
        f.eor(r, 0x1B, dst=r)
    f.ret(f.and_(r, 0xFF))

    f = FunctionBuilder(m, "aes_expand_key", [])
    key = f.ga("aes_key")
    rk = f.ga("aes_rk")
    sbox = f.ga("aes_sbox")
    rcon = f.ga("aes_rcon")
    with f.for_range(0, 16) as i:
        f.store(f.load(key, i, Width.BYTE), rk, i, Width.BYTE)
    with f.for_range(4, 44) as i:
        woff = f.lsl(i, 2)
        prev = f.sub(woff, 4)
        t0 = f.load(rk, prev, Width.BYTE)
        t1 = f.load(rk, f.add(prev, 1), Width.BYTE)
        t2 = f.load(rk, f.add(prev, 2), Width.BYTE)
        t3 = f.load(rk, f.add(prev, 3), Width.BYTE)
        rem = f.and_(i, 3)
        with f.if_then(Cond.EQ, rem, 0):
            # rotate, substitute, rcon
            n0 = f.load(sbox, t1, Width.BYTE)
            n1 = f.load(sbox, t2, Width.BYTE)
            n2 = f.load(sbox, t3, Width.BYTE)
            n3 = f.load(sbox, t0, Width.BYTE)
            ridx = f.sub(f.lsr(i, 2), 1)
            f.eor(n0, f.load(rcon, ridx, Width.BYTE), dst=n0)
            f.mov(n0, dst=t0)
            f.mov(n1, dst=t1)
            f.mov(n2, dst=t2)
            f.mov(n3, dst=t3)
        back = f.sub(woff, 16)
        f.store(f.eor(t0, f.load(rk, back, Width.BYTE)), rk, woff, Width.BYTE)
        f.store(f.eor(t1, f.load(rk, f.add(back, 1), Width.BYTE)), rk, f.add(woff, 1), Width.BYTE)
        f.store(f.eor(t2, f.load(rk, f.add(back, 2), Width.BYTE)), rk, f.add(woff, 2), Width.BYTE)
        f.store(f.eor(t3, f.load(rk, f.add(back, 3), Width.BYTE)), rk, f.add(woff, 3), Width.BYTE)
    f.ret()

    # per-round functions, fully unrolled over the 16 state bytes
    shift_map = list(range(16))
    for r in range(1, 4):
        for c in range(4):
            shift_map[r + 4 * c] = r + 4 * ((c + r) % 4)

    def build_round(rnd):
        f = FunctionBuilder(m, "aes_round_%d" % rnd, [])
        state = f.ga("aes_state")
        tmp = f.ga("aes_tmp")
        sbox = f.ga("aes_sbox")
        rk = f.ga("aes_rk")
        # SubBytes + ShiftRows into tmp (unrolled)
        for i in range(16):
            src = shift_map[i]
            byte = f.load(state, src, Width.BYTE)
            f.store(f.load(sbox, byte, Width.BYTE), tmp, i, Width.BYTE)
        if rnd != 10:
            # MixColumns + AddRoundKey back into state (unrolled)
            for c in range(4):
                col = [f.load(tmp, 4 * c + r, Width.BYTE) for r in range(4)]
                x = [f.call("aes_xtime", [col[r]]) for r in range(4)]
                outs = [
                    f.eor(f.eor(x[0], x[1]), f.eor(col[1], f.eor(col[2], col[3]))),
                    f.eor(f.eor(col[0], x[1]), f.eor(x[2], f.eor(col[2], col[3]))),
                    f.eor(f.eor(col[0], col[1]), f.eor(x[2], f.eor(x[3], col[3]))),
                    f.eor(f.eor(x[0], col[0]), f.eor(col[1], f.eor(col[2], x[3]))),
                ]
                for r in range(4):
                    key_b = f.load(rk, 16 * rnd + 4 * c + r, Width.BYTE)
                    f.store(f.eor(outs[r], key_b), state, 4 * c + r, Width.BYTE)
        else:
            for i in range(16):
                key_b = f.load(rk, 16 * rnd + i, Width.BYTE)
                f.store(f.eor(f.load(tmp, i, Width.BYTE), key_b), state, i, Width.BYTE)
        f.ret()

    for rnd in range(1, 11):
        build_round(rnd)

    f = FunctionBuilder(m, "aes_encrypt_block", ["src", "dst"])
    src, dst = f.args
    state = f.ga("aes_state")
    rk = f.ga("aes_rk")
    with f.for_range(0, 16) as i:
        byte = f.load(src, i, Width.BYTE)
        f.store(f.eor(byte, f.load(rk, i, Width.BYTE)), state, i, Width.BYTE)
    for rnd in range(1, 11):
        f.call("aes_round_%d" % rnd, [], dst=False)
    with f.for_range(0, 16) as i:
        f.store(f.load(state, i, Width.BYTE), dst, i, Width.BYTE)
    f.ret()

    b = FunctionBuilder(m, "main", [])
    b.call("aes_expand_key", [], dst=False)
    data = b.ga("aes_data")
    acc = b.li(0)
    n_blocks = len(plain) // 16
    with b.for_range(0, n_blocks) as blk:
        off = b.lsl(blk, 4)
        ptr = b.add(data, off)
        b.call("aes_encrypt_block", [ptr, ptr], dst=False)
        with b.for_range(0, 4) as w:
            v = b.load(ptr, b.lsl(w, 2))
            b.mul(acc, 31, dst=acc)
            b.eor(acc, v, dst=acc)
    b.ret(acc)


def _reference(scale):
    cipher = encrypt_bytes(_plain(scale))
    acc = 0
    for off in range(0, len(cipher), 4):
        w = int.from_bytes(cipher[off : off + 4], "little")
        acc = ((acc * 31) ^ w) & M32
    return acc


WORKLOAD = Workload(
    name="rijndael",
    category="security",
    build=_build,
    reference=_reference,
    description="AES-128 ECB with per-round unrolled functions",
)
