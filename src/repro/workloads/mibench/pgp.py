"""``pgp`` (security): IDEA block encryption (PGP's symmetric cipher).

The full IDEA: multiplication modulo 2^16+1 (with the 0 ≡ 2^16
convention), addition mod 2^16, XOR; 52 subkeys derived in-kernel by the
25-bit key rotation schedule; 8.5 rounds unrolled.
"""

import struct

from repro.ir import Cond, FunctionBuilder, Global, Width
from repro.workloads.base import Workload
from repro.workloads.data import random_bytes
from repro.workloads.pyref import M32

SIZES = {"small": 384, "full": 6400}  # plaintext bytes (multiple of 8)
KEY = bytes.fromhex("00112233445566778899aabbccddeeff")
ROUNDS = 8


def _plain(scale):
    return random_bytes("pgp", SIZES[scale])


# ----------------------------------------------------------------------
# reference implementation


def _mul(a, b):
    if a == 0:
        return (0x10001 - b) & 0xFFFF
    if b == 0:
        return (0x10001 - a) & 0xFFFF
    p = a * b
    lo = p & 0xFFFF
    hi = p >> 16
    r = lo - hi
    if lo < hi:
        r += 1
    return r & 0xFFFF


def _subkeys(key):
    words = [int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(4)]
    subs = []
    while len(subs) < 52:
        for j in range(8):
            if len(subs) == 52:
                break
            w = words[j >> 1]
            subs.append((w >> 16) & 0xFFFF if j % 2 == 0 else w & 0xFFFF)
        # rotate the 128-bit key left by 25
        k = (words[0] << 96) | (words[1] << 64) | (words[2] << 32) | words[3]
        k = ((k << 25) | (k >> 103)) & ((1 << 128) - 1)
        words = [(k >> (96 - 32 * i)) & M32 for i in range(4)]
    return subs


def _encrypt_block(x, subs):
    x1, x2, x3, x4 = x
    for r in range(ROUNDS):
        k = subs[6 * r : 6 * r + 6]
        x1 = _mul(x1, k[0])
        x2 = (x2 + k[1]) & 0xFFFF
        x3 = (x3 + k[2]) & 0xFFFF
        x4 = _mul(x4, k[3])
        t0 = _mul(x1 ^ x3, k[4])
        t1 = _mul((t0 + (x2 ^ x4)) & 0xFFFF, k[5])
        t0 = (t0 + t1) & 0xFFFF
        x1 ^= t1
        x4 ^= t0
        x2, x3 = x3 ^ t1, x2 ^ t0
    k = subs[48:52]
    return (
        _mul(x1, k[0]),
        (x3 + k[1]) & 0xFFFF,
        (x2 + k[2]) & 0xFFFF,
        _mul(x4, k[3]),
    )


# ----------------------------------------------------------------------
# IR build


def _build(m, scale):
    plain = _plain(scale)
    m.add_global(Global("idea_key", data=KEY))
    m.add_global(Global("idea_subs", size=52 * 2, align=4))
    m.add_global(Global("idea_data", data=plain))

    f = FunctionBuilder(m, "idea_mul", ["a", "b"])
    a, bb = f.args
    with f.if_then(Cond.EQ, a, 0):
        r = f.rsb(bb, 0x10001)
        f.ret(f.and_(r, 0xFFFF))
    with f.if_then(Cond.EQ, bb, 0):
        r = f.rsb(a, 0x10001)
        f.ret(f.and_(r, 0xFFFF))
    p = f.mul(a, bb)
    lo = f.and_(p, 0xFFFF)
    hi = f.lsr(p, 16)
    r = f.sub(lo, hi)
    with f.if_then(Cond.LTU, lo, hi):
        f.add(r, 1, dst=r)
    f.ret(f.and_(r, 0xFFFF))

    f = FunctionBuilder(m, "idea_expand", [])
    key = f.ga("idea_key")
    subs = f.ga("idea_subs")
    # load the 128-bit key as four big-endian words
    kw = []
    for i in range(4):
        b0 = f.load(key, 4 * i, Width.BYTE)
        b1 = f.load(key, 4 * i + 1, Width.BYTE)
        b2 = f.load(key, 4 * i + 2, Width.BYTE)
        b3 = f.load(key, 4 * i + 3, Width.BYTE)
        w = f.orr(f.lsl(b0, 24), f.lsl(b1, 16))
        w = f.orr(w, f.lsl(b2, 8))
        kw.append(f.orr(w, b3))
    produced = 0
    while produced < 52:
        take = min(8, 52 - produced)
        for j in range(take):
            w = kw[j >> 1]
            half = f.lsr(w, 16) if j % 2 == 0 else f.and_(w, 0xFFFF)
            if j % 2 == 0:
                half = f.and_(half, 0xFFFF)
            f.store(half, subs, 2 * (produced + j), Width.HALF)
        produced += take
        if produced < 52:
            # rotate (k0,k1,k2,k3) left by 25 bits
            nk = []
            for i in range(4):
                hi = f.lsl(kw[i], 25)
                lo = f.lsr(kw[(i + 1) % 4], 7)
                nk.append(f.orr(hi, lo))
            kw = nk
    f.ret()

    f = FunctionBuilder(m, "idea_encrypt_block", ["ptr"])
    ptr = f.arg("ptr")
    subs = f.ga("idea_subs")
    xs = []
    for i in range(4):
        xs.append(f.load(ptr, 2 * i, Width.HALF))
    x1, x2, x3, x4 = xs
    for r in range(ROUNDS):
        koff = 12 * r
        x1 = f.call("idea_mul", [x1, f.load(subs, koff, Width.HALF)])
        x2 = f.and_(f.add(x2, f.load(subs, koff + 2, Width.HALF)), 0xFFFF)
        x3 = f.and_(f.add(x3, f.load(subs, koff + 4, Width.HALF)), 0xFFFF)
        x4 = f.call("idea_mul", [x4, f.load(subs, koff + 6, Width.HALF)])
        t0 = f.call("idea_mul", [f.eor(x1, x3), f.load(subs, koff + 8, Width.HALF)])
        t1sum = f.and_(f.add(t0, f.eor(x2, x4)), 0xFFFF)
        t1 = f.call("idea_mul", [t1sum, f.load(subs, koff + 10, Width.HALF)])
        t0 = f.and_(f.add(t0, t1), 0xFFFF)
        x1 = f.eor(x1, t1)
        x4 = f.eor(x4, t0)
        new_x2 = f.eor(x3, t1)
        new_x3 = f.eor(x2, t0)
        x2, x3 = new_x2, new_x3
    y1 = f.call("idea_mul", [x1, f.load(subs, 96, Width.HALF)])
    y2 = f.and_(f.add(x3, f.load(subs, 98, Width.HALF)), 0xFFFF)
    y3 = f.and_(f.add(x2, f.load(subs, 100, Width.HALF)), 0xFFFF)
    y4 = f.call("idea_mul", [x4, f.load(subs, 102, Width.HALF)])
    f.store(y1, ptr, 0, Width.HALF)
    f.store(y2, ptr, 2, Width.HALF)
    f.store(y3, ptr, 4, Width.HALF)
    f.store(y4, ptr, 6, Width.HALF)
    f.ret()

    b = FunctionBuilder(m, "main", [])
    b.call("idea_expand", [], dst=False)
    data = b.ga("idea_data")
    acc = b.li(0)
    n_blocks = len(plain) // 8
    with b.for_range(0, n_blocks) as blk:
        ptr = b.add(data, b.lsl(blk, 3))
        b.call("idea_encrypt_block", [ptr], dst=False)
        w0 = b.load(ptr, 0)
        w1 = b.load(ptr, 4)
        b.mul(acc, 31, dst=acc)
        b.eor(acc, w0, dst=acc)
        b.add(acc, w1, dst=acc)
    b.ret(acc)


def _reference(scale):
    plain = _plain(scale)
    subs = _subkeys(KEY)
    out = bytearray(plain)
    acc = 0
    for off in range(0, len(plain), 8):
        x = struct.unpack_from("<4H", plain, off)
        y = _encrypt_block(x, subs)
        struct.pack_into("<4H", out, off, *y)
        w0 = int.from_bytes(out[off : off + 4], "little")
        w1 = int.from_bytes(out[off + 4 : off + 8], "little")
        acc = ((acc * 31) ^ w0) & M32
        acc = (acc + w1) & M32
    return acc


WORKLOAD = Workload(
    name="pgp",
    category="security",
    build=_build,
    reference=_reference,
    description="IDEA (PGP's cipher): 8.5 unrolled rounds, in-kernel key schedule",
)
