"""``crc32`` (telecomm): table-driven CRC-32 over a data buffer.

Models MiBench's crc32 utility: builds the 256-entry reflected CRC table
(polynomial 0xEDB88320) at startup, then folds the input stream byte by
byte.  The checksum returned from ``main`` is the standard CRC-32 of the
input, validated against :func:`binascii.crc32`.
"""

import binascii

from repro.ir import Cond, FunctionBuilder, Global, Width
from repro.workloads.base import Workload
from repro.workloads.data import random_bytes

SIZES = {"small": 768, "full": 24 * 1024}
POLY = 0xEDB88320


def _input(scale):
    return random_bytes("crc32", SIZES[scale])


def _build(m, scale):
    data = _input(scale)
    m.add_global(Global("crc_input", data=data))
    m.add_global(Global("crc_table", size=1024))

    f = FunctionBuilder(m, "crc_build_table", [])
    tab = f.ga("crc_table")
    poly = f.li(POLY)
    with f.for_range(0, 256) as i:
        c = f.mov(i)
        with f.for_range(0, 8):
            low = f.and_(c, 1)
            f.lsr(c, 1, dst=c)
            with f.if_then(Cond.NE, low, 0):
                f.eor(c, poly, dst=c)
        f.store(c, tab, f.lsl(i, 2))
    f.ret()

    f = FunctionBuilder(m, "crc_stream", ["ptr", "len"])
    ptr, length = f.args
    tab = f.ga("crc_table")
    crc = f.li(0xFFFFFFFF)
    with f.for_range(0, length) as i:
        byte = f.load(ptr, i, Width.BYTE)
        idx = f.and_(f.eor(crc, byte), 0xFF)
        entry = f.load(tab, f.lsl(idx, 2))
        shifted = f.lsr(crc, 8)
        f.eor(shifted, entry, dst=crc)
    f.ret(f.eor(crc, 0xFFFFFFFF))

    b = FunctionBuilder(m, "main", [])
    b.call("crc_build_table", [], dst=False)
    ptr = b.ga("crc_input")
    b.ret(b.call("crc_stream", [ptr, b.li(len(data))]))


def _reference(scale):
    return binascii.crc32(_input(scale)) & 0xFFFFFFFF


WORKLOAD = Workload(
    name="crc32",
    category="telecomm",
    build=_build,
    reference=_reference,
    description="table-driven CRC-32 of a pseudo-random stream",
)
