"""``blowfish`` (security): Blowfish ECB encryption.

The full 16-round Feistel network with four 256-entry S-boxes and an
18-entry P-array; the key schedule runs the cipher over its own state
exactly as ``BF_set_key`` does.  The initial P/S constants come from the
shared deterministic PRNG instead of the digits of pi (the structure and
access pattern, which is what the study measures, are identical).
Rounds are unrolled, as real Blowfish implementations are.
"""

import struct

from repro.ir import Cond, FunctionBuilder, Global, Width
from repro.workloads.base import Workload
from repro.workloads.data import random_bytes
from repro.workloads.pyref import XorShift32, add32, M32

SIZES = {"small": 384, "full": 6144}  # plaintext bytes (multiple of 8)
KEY = b"PowerFITS-blowfish-key"
ROUNDS = 16


def _init_tables():
    rng = XorShift32(0xB10F1585)
    p = [rng.next() << 1 & M32 ^ rng.next() for _ in range(ROUNDS + 2)]
    s = [[(rng.next() * 2654435761) & M32 for _ in range(256)] for _ in range(4)]
    return p, s


def _plain(scale):
    return random_bytes("blowfish", SIZES[scale])


class _PyBlowfish:
    def __init__(self, key):
        self.p, self.s = _init_tables()
        klen = len(key)
        for i in range(ROUNDS + 2):
            data = 0
            for k in range(4):
                data = ((data << 8) | key[(i * 4 + k) % klen]) & M32
            self.p[i] ^= data
        left = right = 0
        for i in range(0, ROUNDS + 2, 2):
            left, right = self.encrypt_block(left, right)
            self.p[i], self.p[i + 1] = left, right
        for box in range(4):
            for i in range(0, 256, 2):
                left, right = self.encrypt_block(left, right)
                self.s[box][i], self.s[box][i + 1] = left, right

    def f(self, x):
        h = add32(self.s[0][(x >> 24) & 0xFF], self.s[1][(x >> 16) & 0xFF])
        return add32(h ^ self.s[2][(x >> 8) & 0xFF], self.s[3][x & 0xFF])

    def encrypt_block(self, left, right):
        for i in range(ROUNDS):
            left ^= self.p[i]
            right ^= self.f(left)
            left, right = right, left
        left, right = right, left
        right ^= self.p[ROUNDS]
        left ^= self.p[ROUNDS + 1]
        return left, right


def _build(m, scale):
    plain = _plain(scale)
    p_init, s_init = _init_tables()
    m.add_global(Global("bf_p", data=struct.pack("<18I", *p_init)))
    m.add_global(
        Global("bf_s", data=b"".join(struct.pack("<256I", *box) for box in s_init))
    )
    m.add_global(Global("bf_key", data=KEY))
    m.add_global(Global("bf_data", data=plain))
    m.add_global(Global("bf_lr", size=8))

    # F function: S-box mix
    f = FunctionBuilder(m, "bf_f", ["x"])
    x = f.arg("x")
    s = f.ga("bf_s")
    a = f.lsr(x, 24)
    bb = f.and_(f.lsr(x, 16), 0xFF)
    c = f.and_(f.lsr(x, 8), 0xFF)
    d = f.and_(x, 0xFF)
    va = f.load(s, f.lsl(a, 2))
    vb = f.load(s, f.add(f.lsl(bb, 2), 1024))
    vc = f.load(s, f.add(f.lsl(c, 2), 2048))
    vd = f.load(s, f.add(f.lsl(d, 2), 3072))
    h = f.add(va, vb)
    h = f.eor(h, vc)
    f.ret(f.add(h, vd))

    # encrypt the (left, right) pair held in bf_lr — rounds unrolled
    f = FunctionBuilder(m, "bf_encrypt", [])
    lr = f.ga("bf_lr")
    p = f.ga("bf_p")
    left = f.load(lr, 0)
    right = f.load(lr, 4)
    for i in range(ROUNDS):
        left = f.eor(left, f.load(p, 4 * i))
        right = f.eor(right, f.call("bf_f", [left]))
        left, right = right, left
    left, right = right, left
    right = f.eor(right, f.load(p, 4 * ROUNDS))
    left = f.eor(left, f.load(p, 4 * (ROUNDS + 1)))
    f.store(left, lr, 0)
    f.store(right, lr, 4)
    f.ret()

    f = FunctionBuilder(m, "bf_set_key", ["key", "klen"])
    key, klen = f.args
    p = f.ga("bf_p")
    lr = f.ga("bf_lr")
    with f.for_range(0, ROUNDS + 2) as i:
        data = f.li(0)
        base = f.lsl(i, 2)
        with f.for_range(0, 4) as k:
            idx = f.urem(f.add(base, k), klen)
            byte = f.load(key, idx, Width.BYTE)
            f.orr(f.lsl(data, 8), byte, dst=data)
        off = f.lsl(i, 2)
        f.store(f.eor(f.load(p, off), data), p, off)
    f.store(0, lr, 0)
    f.store(0, lr, 4)
    with f.for_range(0, (ROUNDS + 2) // 2) as i:
        f.call("bf_encrypt", [], dst=False)
        off = f.lsl(i, 3)
        f.store(f.load(lr, 0), p, off)
        f.store(f.load(lr, 4), p, f.add(off, 4))
    sbox = f.ga("bf_s")
    with f.for_range(0, 4 * 128) as i:
        f.call("bf_encrypt", [], dst=False)
        off = f.lsl(i, 3)
        f.store(f.load(lr, 0), sbox, off)
        f.store(f.load(lr, 4), sbox, f.add(off, 4))
    f.ret()

    b = FunctionBuilder(m, "main", [])
    b.call("bf_set_key", [b.ga("bf_key"), b.li(len(KEY))], dst=False)
    data = b.ga("bf_data")
    lr = b.ga("bf_lr")
    n_blocks = len(plain) // 8
    acc = b.li(0)
    with b.for_range(0, n_blocks) as blk:
        off = b.lsl(blk, 3)
        b.store(b.load(data, off), lr, 0)
        b.store(b.load(data, b.add(off, 4)), lr, 4)
        b.call("bf_encrypt", [], dst=False)
        left = b.load(lr, 0)
        right = b.load(lr, 4)
        b.store(left, data, off)
        b.store(right, data, b.add(off, 4))
        b.mul(acc, 31, dst=acc)
        b.eor(acc, left, dst=acc)
        b.add(acc, right, dst=acc)
    b.ret(acc)


def _reference(scale):
    plain = _plain(scale)
    bf = _PyBlowfish(KEY)
    acc = 0
    for off in range(0, len(plain), 8):
        left = int.from_bytes(plain[off : off + 4], "little")
        right = int.from_bytes(plain[off + 4 : off + 8], "little")
        left, right = bf.encrypt_block(left, right)
        acc = ((acc * 31) ^ left) & M32
        acc = (acc + right) & M32
    return acc


WORKLOAD = Workload(
    name="blowfish",
    category="security",
    build=_build,
    reference=_reference,
    description="Blowfish key schedule + ECB encryption, rounds unrolled",
)
