"""Pure-Python mirrors of the runtime library, for reference models.

Workload reference implementations import these so their checksums match
the IR/ARM execution bit for bit (32-bit wrap-around, truncating signed
division, the exact Q15 sine table, the exact xorshift32 stream).
"""

import struct

from repro.workloads import runtime as _rt

M32 = 0xFFFFFFFF


def u32(x):
    return x & M32


def s32(x):
    x &= M32
    return x - 0x100000000 if x & 0x80000000 else x


def add32(a, b):
    return (a + b) & M32


def sub32(a, b):
    return (a - b) & M32


def mul32(a, b):
    return (a * b) & M32


def lsl32(a, n):
    return (a << n) & M32 if n < 32 else 0


def lsr32(a, n):
    return (a & M32) >> n if n < 32 else 0


def asr32(a, n):
    v = s32(a)
    return u32(v >> n) if n < 32 else (M32 if v < 0 else 0)


def udiv(n, d):
    n &= M32
    d &= M32
    return 0 if d == 0 else n // d


def urem(n, d):
    n &= M32
    d &= M32
    return n if d == 0 else n % d


def sdiv(n, d):
    """Truncating signed division, matching the runtime's __sdiv."""
    sn, sd = s32(n), s32(d)
    if sd == 0:
        return 0
    q = abs(sn) // abs(sd)
    if (sn < 0) != (sd < 0):
        q = -q
    return u32(q)


def srem(n, d):
    sn, sd = s32(n), s32(d)
    if sd == 0:
        return u32(sn)
    r = abs(sn) % abs(sd)
    if sn < 0:
        r = -r
    return u32(r)


def isqrt(x):
    x &= M32
    res = 0
    bit = 1 << 30
    while bit > x:
        bit >>= 2
    while bit:
        if x >= res + bit:
            x -= res + bit
            res = (res >> 1) + bit
        else:
            res >>= 1
        bit >>= 2
    return res


_SIN_TABLE = None


def sin_table():
    global _SIN_TABLE
    if _SIN_TABLE is None:
        raw = _rt.sin_table_bytes()
        _SIN_TABLE = list(struct.unpack("<%dh" % _rt.SIN_TABLE_SIZE, raw))
    return _SIN_TABLE


def sin_q15(idx):
    return u32(sin_table()[idx & (_rt.SIN_TABLE_SIZE - 1)])


def cos_q15(idx):
    return sin_q15(idx + _rt.SIN_TABLE_SIZE // 4)


class XorShift32:
    """Mirror of the runtime xorshift32 PRNG (rand_next/srand)."""

    DEFAULT_SEED = 0x2545F491

    def __init__(self, seed=None):
        if not seed:
            seed = self.DEFAULT_SEED
        self.state = u32(seed)

    def next(self):
        s = self.state
        s ^= lsl32(s, 13)
        s ^= lsr32(s, 17)
        s ^= lsl32(s, 5)
        self.state = s
        return s & 0x7FFFFFFF


def clz32(x):
    x &= M32
    if x == 0:
        return 32
    n = 0
    while not x & 0x80000000:
        x = (x << 1) & M32
        n += 1
    return n
