"""The shared runtime library ("libmini"), written in IR.

Real MiBench binaries link substantial libc/compiler-runtime code
(software division on ARM, memcpy, string ops, math helpers); that code
is part of the I-cache footprint the paper measures, so we provide the
same kind of library and link it into every workload:

* ``__udiv``/``__urem``/``__sdiv``/``__srem`` — shift-subtract division
  (ARM has no divide instruction),
* ``memcpy``/``memset`` — word-at-a-time with byte fallback,
* ``strlen``/``strcmp``,
* ``isqrt`` — integer square root,
* ``sin_q15``/``cos_q15`` — Q15 table sine/cosine,
* ``rand_next``/``srand`` — xorshift32 PRNG,
* ``clz32`` — count leading zeros.

Python mirrors of these functions live in :mod:`repro.workloads.pyref`
so workload reference models can reproduce checksums bit-exactly.
"""

import math
import struct

from repro.ir import Cond, FunctionBuilder, Global, Module, Width

SIN_TABLE_SIZE = 1024


def sin_table_bytes():
    """Q15 sine table, one full period, little-endian int16."""
    out = bytearray()
    for i in range(SIN_TABLE_SIZE):
        value = int(round(32767 * math.sin(2 * math.pi * i / SIN_TABLE_SIZE)))
        out += struct.pack("<h", value)
    return bytes(out)


def runtime_module():
    """Build a fresh module containing the runtime library."""
    m = Module("runtime")
    m.add_global(Global("__divmod_rem", size=4))
    m.add_global(Global("__rand_state", data=(0x2545F491).to_bytes(4, "little")))
    m.add_global(Global("__sin_table", data=sin_table_bytes(), align=4))
    _build_udivmod(m)
    _build_div_wrappers(m)
    _build_memcpy(m)
    _build_memset(m)
    _build_strlen(m)
    _build_strcmp(m)
    _build_isqrt(m)
    _build_trig(m)
    _build_rand(m)
    _build_clz(m)
    return m


def _build_udivmod(m):
    b = FunctionBuilder(m, "__udivmod", ["n", "d"])
    n, d = b.args
    rem = b.ga("__divmod_rem")
    with b.if_then(Cond.EQ, d, 0):
        b.store(n, rem)  # division by zero: quotient 0, remainder n
        b.ret(0)
    with b.if_then(Cond.GTU, d, n):
        b.store(n, rem)
        b.ret(0)
    with b.if_then(Cond.GEU, d, 0x80000000):
        # d <= n and d has the top bit: the quotient is exactly 1
        r = b.sub(n, d)
        b.store(r, rem)
        b.ret(1)
    q = b.li(0)
    r = b.li(0)
    with b.for_range(31, -1, step=-1) as i:
        bit = b.lsr(n, i)
        bit = b.and_(bit, 1)
        b.lsl(r, 1, dst=r)
        b.orr(r, bit, dst=r)
        with b.if_then(Cond.GEU, r, d):
            b.sub(r, d, dst=r)
            one = b.lsl(b.li(1), i)
            b.orr(q, one, dst=q)
    b.store(r, rem)
    b.ret(q)


def _build_div_wrappers(m):
    b = FunctionBuilder(m, "__udiv", ["n", "d"])
    b.ret(b.call("__udivmod", [b.arg("n"), b.arg("d")]))

    b = FunctionBuilder(m, "__urem", ["n", "d"])
    b.call("__udivmod", [b.arg("n"), b.arg("d")], dst=False)
    rem = b.ga("__divmod_rem")
    b.ret(b.load(rem))

    b = FunctionBuilder(m, "__sdiv", ["n", "d"])
    n, d = b.args
    sign = b.eor(n, d)
    an = b.abs_(n)
    ad = b.abs_(d)
    q = b.call("__udivmod", [an, ad])
    with b.if_then(Cond.LT, sign, 0):
        b.rsb(q, 0, dst=q)
    b.ret(q)

    b = FunctionBuilder(m, "__srem", ["n", "d"])
    n, d = b.args
    an = b.abs_(n)
    ad = b.abs_(d)
    b.call("__udivmod", [an, ad], dst=False)
    r = b.load(b.ga("__divmod_rem"))
    with b.if_then(Cond.LT, n, 0):
        b.rsb(r, 0, dst=r)
    b.ret(r)


def _build_memcpy(m):
    b = FunctionBuilder(m, "memcpy", ["dst", "src", "n"])
    dst, src, n = b.args
    t = b.orr(b.orr(dst, src), n)
    t = b.and_(t, 3)
    with b.if_then(Cond.EQ, t, 0):
        with b.for_range(0, n, step=4, unsigned=True) as i:
            b.store(b.load(src, i), dst, i)
        b.ret(dst)
    with b.for_range(0, n, unsigned=True) as i:
        b.store(b.load(src, i, Width.BYTE), dst, i, Width.BYTE)
    b.ret(dst)


def _build_memset(m):
    b = FunctionBuilder(m, "memset", ["dst", "c", "n"])
    dst, c, n = b.args
    byte = b.and_(c, 0xFF)
    t = b.orr(dst, n)
    t = b.and_(t, 3)
    with b.if_then(Cond.EQ, t, 0):
        word = b.mul(byte, 0x01010101)
        with b.for_range(0, n, step=4, unsigned=True) as i:
            b.store(word, dst, i)
        b.ret(dst)
    with b.for_range(0, n, unsigned=True) as i:
        b.store(byte, dst, i, Width.BYTE)
    b.ret(dst)


def _build_strlen(m):
    b = FunctionBuilder(m, "strlen", ["s"])
    s = b.arg("s")
    length = b.li(0)
    ch = b.load(s, 0, Width.BYTE)
    with b.loop_while(Cond.NE, ch, 0):
        b.add(length, 1, dst=length)
        b.load(s, length, Width.BYTE, dst=ch)
    b.ret(length)


def _build_strcmp(m):
    b = FunctionBuilder(m, "strcmp", ["a", "b"])
    pa, pb = b.args
    loop = b.new_block("loop")
    b.br(loop)
    b.at(loop)
    ca = b.load(pa, 0, Width.BYTE)
    cb = b.load(pb, 0, Width.BYTE)
    with b.if_then(Cond.NE, ca, cb):
        b.ret(b.sub(ca, cb))
    with b.if_then(Cond.EQ, ca, 0):
        b.ret(0)
    b.add(pa, 1, dst=pa)
    b.add(pb, 1, dst=pb)
    b.br(loop)


def _build_isqrt(m):
    b = FunctionBuilder(m, "isqrt", ["x"])
    x = b.arg("x")
    res = b.li(0)
    bit = b.li(1 << 30)
    with b.loop_while(Cond.GTU, bit, x):
        b.lsr(bit, 2, dst=bit)
    with b.loop_while(Cond.NE, bit, 0):
        t = b.add(res, bit)
        with b.if_else(Cond.GEU, x, t) as otherwise:
            b.sub(x, t, dst=x)
            b.lsr(res, 1, dst=res)
            b.add(res, bit, dst=res)
            with otherwise:
                b.lsr(res, 1, dst=res)
        b.lsr(bit, 2, dst=bit)
    b.ret(res)


def _build_trig(m):
    b = FunctionBuilder(m, "sin_q15", ["idx"])
    idx = b.arg("idx")
    masked = b.and_(idx, SIN_TABLE_SIZE - 1)
    off = b.lsl(masked, 1)
    table = b.ga("__sin_table")
    b.ret(b.load(table, off, Width.HALF, signed=True))

    b = FunctionBuilder(m, "cos_q15", ["idx"])
    b.ret(b.call("sin_q15", [b.add(b.arg("idx"), SIN_TABLE_SIZE // 4)]))


def _build_rand(m):
    b = FunctionBuilder(m, "srand", ["seed"])
    state = b.ga("__rand_state")
    seed = b.arg("seed")
    with b.if_then(Cond.EQ, seed, 0):
        b.li(0x2545F491, dst=seed)  # xorshift state must be nonzero
    b.store(seed, state)
    b.ret(seed)

    b = FunctionBuilder(m, "rand_next", [])
    state = b.ga("__rand_state")
    s = b.load(state)
    s = b.eor(s, b.lsl(s, 13))
    s = b.eor(s, b.lsr(s, 17))
    s = b.eor(s, b.lsl(s, 5))
    b.store(s, state)
    b.ret(b.and_(s, 0x7FFFFFFF))


def _build_clz(m):
    b = FunctionBuilder(m, "clz32", ["x"])
    x = b.arg("x")
    with b.if_then(Cond.EQ, x, 0):
        b.ret(32)
    n = b.li(0)
    top = b.and_(x, 0x80000000)
    with b.loop_while(Cond.EQ, top, 0):
        b.lsl(x, 1, dst=x)
        b.add(n, 1, dst=n)
        b.and_(x, 0x80000000, dst=top)
    b.ret(n)
