"""Immediate-dictionary synthesis (paper Section 3.3).

FITS stores the most frequently used immediates that do not fit their
instruction's raw field in programmable storage, replacing the field
with an index.  Dictionaries are per category (operate immediates and
memory displacements) and ordered by utilization, so an opcode whose
index field is only ``w`` bits wide can still reach the hottest ``2^w``
entries.
"""


def raw_operate_ok(value, width):
    """Does a 32-bit operate immediate fit a raw zero-extended field?"""
    return 0 <= value < (1 << width)


def raw_mem_ok(offset, width_bytes, field_width):
    """Does a displacement fit the raw scaled unsigned field?"""
    if offset < 0 or offset % width_bytes:
        return False
    return (offset // width_bytes) < (1 << field_width)


def build_dictionaries(profile, isa_geom, budgets, dyn_weight):
    """Choose dictionary contents for each immediate category.

    Args:
        profile: :class:`~repro.core.profiler.ArmProfile`.
        isa_geom: object with ``oprd_width`` and ``operate2_width``
            (candidate geometry; dictionaries only admit values that the
            widest raw field could not hold).
        budgets: category → max entries.
        dyn_weight: weight of one dynamic occurrence relative to one
            static occurrence when ranking.

    Returns:
        category → ordered list of values (hottest first).
    """
    dicts = {}

    # operate immediates: admitted when the *narrow* (three-operand) raw
    # field cannot hold them — dictionary slots then serve shift amounts
    # and small constants for narrow forms as well as large constants for
    # the wide forms, ranked by utilization
    weights = {}
    for value, count in profile.imm_static["operate"].items():
        if raw_operate_ok(value, isa_geom.oprd_width):
            continue
        weights[value] = weights.get(value, 0.0) + count
    for value, count in profile.imm_dynamic["operate"].items():
        if value in weights:
            weights[value] += dyn_weight * count
    ranked = sorted(weights, key=lambda v: weights[v], reverse=True)
    dicts["operate"] = ranked[: budgets.get("operate", 0)]

    # memory displacements: helped if the word-scaled raw field misses
    # them (negative, unaligned, or too large)
    weights = {}
    for value, count in profile.imm_static["mem"].items():
        if raw_mem_ok(value, 4, isa_geom.oprd_width) and value % 4 == 0:
            continue
        weights[value] = weights.get(value, 0.0) + count
    for value, count in profile.imm_dynamic["mem"].items():
        if value in weights:
            weights[value] += dyn_weight * count
    ranked = sorted(weights, key=lambda v: weights[v], reverse=True)
    dicts["mem"] = ranked[: budgets.get("mem", 0)]

    return dicts
