"""Classify ARM instructions into FITS operation signatures.

A *signature* names an operation the synthesized decoder could implement
as one opcode: the semantic class plus everything baked into the decoder
entry (ALU op, condition, access width, shift type, register list), but
*not* the per-instance operands (registers, immediate values).  The
synthesizer allocates opcodes to signatures; the translator then maps
each ARM instruction through its signature's available encodings.
"""

from repro.isa.arm.model import (
    Branch,
    Cond,
    DPOp,
    DataProc,
    MemHalf,
    MemMultiple,
    MemWord,
    Multiply,
    Operand2Imm,
    Operand2Reg,
    Operand2RegReg,
    ShiftType,
    Swi,
    COMPARE_OPS,
)

SP = 13
LR = 14
PC = 15


class Use:
    """One ARM instruction's classification.

    Attributes:
        sig: the signature tuple (see module docstring).
        regs: role → ARM register number (roles: rc, ra, oprd / rd, rb).
        imm: immediate value (32-bit) or None.
        imm_category: "operate" or "mem" when ``imm`` is set.
        two_op: for dp3-imm uses, whether rd == rn (two-operand shape).
        sp_base: for memory uses, whether the base register is sp.
        target_arm_index: for branches, the static index of the target.
    """

    __slots__ = ("sig", "regs", "imm", "imm_category", "two_op", "sp_base", "target_arm_index")

    def __init__(self, sig, regs=None, imm=None, imm_category=None, two_op=False, sp_base=False):
        self.sig = sig
        self.regs = dict(regs or {})
        self.imm = imm
        self.imm_category = imm_category
        self.two_op = two_op
        self.sp_base = sp_base
        self.target_arm_index = None

    def __repr__(self):
        return "<Use %r regs=%r imm=%r>" % (self.sig, self.regs, self.imm)


class UnsupportedInstruction(Exception):
    """An ARM instruction outside what the translator can map."""


def classify(instr, index=None, image=None):
    """Classify one decoded ARM instruction into a :class:`Use`.

    ``index``/``image`` resolve branch targets to static indices.
    """
    if isinstance(instr, DataProc):
        return _classify_dataproc(instr)
    if isinstance(instr, Multiply):
        if instr.accumulate:
            raise UnsupportedInstruction("MLA has no 16-bit mapping: %r" % instr)
        return Use(("mul",), regs={"rc": instr.rd, "ra": instr.rm, "oprd": instr.rs})
    if isinstance(instr, MemWord):
        return _classify_mem(
            instr, width=1 if instr.byte else 4, signed=False, load=instr.load
        )
    if isinstance(instr, MemHalf):
        width = 2 if instr.half else 1
        return _classify_mem(instr, width=width, signed=instr.signed, load=instr.load)
    if isinstance(instr, MemMultiple):
        if instr.rn != SP:
            raise UnsupportedInstruction("block transfer off a non-sp base: %r" % instr)
        kind = "ldm" if instr.load else "stm"
        return Use((kind, tuple(instr.reglist)))
    if isinstance(instr, Branch):
        if instr.link:
            if instr.cond is not Cond.AL:
                raise UnsupportedInstruction("conditional BL unsupported: %r" % instr)
            use = Use(("bl",))
        else:
            use = Use(("b", instr.cond))
        if index is not None and image is not None:
            target = instr.target(image.addr_of_index(index))
            use.target_arm_index = image.index_of_addr(target)
        return use
    if isinstance(instr, Swi):
        return Use(("swi",), imm=instr.imm24)
    raise UnsupportedInstruction("cannot classify %r" % (instr,))


def _classify_dataproc(instr):
    op = instr.op
    op2 = instr.operand2

    if op in COMPARE_OPS:
        if isinstance(op2, Operand2Imm):
            return Use(("cmp2", op, "imm"), regs={"ra": instr.rn}, imm=op2.value,
                       imm_category="operate")
        if isinstance(op2, Operand2Reg) and op2.shift_imm == 0:
            return Use(("cmp2", op, "reg"), regs={"ra": instr.rn, "oprd": op2.rm})
        raise UnsupportedInstruction("shifted compare: %r" % instr)

    if op is DPOp.MOV:
        if instr.rd == PC:
            if isinstance(op2, Operand2Reg) and op2.rm == LR and op2.shift_imm == 0:
                return Use(("ret",))
            raise UnsupportedInstruction("computed pc write: %r" % instr)
        if isinstance(op2, Operand2Imm):
            return Use(("movi",), regs={"rc": instr.rd}, imm=op2.value, imm_category="operate")
        if isinstance(op2, Operand2Reg):
            if op2.shift_imm == 0 and op2.shift_type in (ShiftType.LSL,):
                return Use(("mov2",), regs={"rc": instr.rd, "ra": op2.rm})
            if op2.shift_imm == 0:
                raise UnsupportedInstruction("shift-by-32 form: %r" % instr)
            return Use(
                ("shifti", op2.shift_type),
                regs={"rc": instr.rd, "ra": op2.rm},
                imm=op2.shift_imm,
                imm_category="operate",
            )
        if isinstance(op2, Operand2RegReg):
            return Use(
                ("shiftr", op2.shift_type),
                regs={"rc": instr.rd, "ra": op2.rm, "oprd": op2.rs},
            )

    if op is DPOp.MVN:
        if isinstance(op2, Operand2Imm):
            return Use(("mvni",), regs={"rc": instr.rd}, imm=op2.value, imm_category="operate")
        raise UnsupportedInstruction("register MVN: %r" % instr)

    # plain three-address data processing
    if isinstance(op2, Operand2Imm):
        if instr.rd == SP and instr.rn == SP and op in (DPOp.ADD, DPOp.SUB):
            return Use(("spadj", op is DPOp.SUB), imm=op2.value, imm_category="operate")
        return Use(
            ("dp3", op, "imm"),
            regs={"rc": instr.rd, "ra": instr.rn},
            imm=op2.value,
            imm_category="operate",
            two_op=(instr.rd == instr.rn),
        )
    if isinstance(op2, Operand2Reg):
        if op2.shift_imm != 0:
            raise UnsupportedInstruction("shifted dp operand: %r" % instr)
        return Use(
            ("dp3", op, "reg"),
            regs={"rc": instr.rd, "ra": instr.rn, "oprd": op2.rm},
        )
    raise UnsupportedInstruction("register-shift dp operand: %r" % instr)


def _classify_mem(instr, width, signed, load):
    if isinstance(getattr(instr, "offset", 0), Operand2Reg):
        off = instr.offset
        return Use(
            ("memr", load, width, signed, off.shift_imm),
            regs={"rd": instr.rd, "rb": instr.rn, "oprd": off.rm},
            sp_base=(instr.rn == SP),
        )
    return Use(
        ("mem", load, width, signed),
        regs={"rd": instr.rd, "rb": instr.rn},
        imm=instr.offset,
        imm_category="mem",
        two_op=False,
        sp_base=(instr.rn == SP),
    )
