"""The paper's contribution: FITS instruction-set synthesis.

Flow (paper Figure 1): **profile** an ARM execution
(:class:`~repro.core.profiler.ArmProfile`), **synthesize** a 16-bit
instruction set matched to it (:func:`~repro.core.synthesizer.synthesize`),
**compile/translate** the ARM binary into the synthesized encoding
(:func:`~repro.core.translator.translate`), **configure** the
programmable decoder (the resulting :class:`~repro.isa.fits.FitsIsa`
*is* the decoder configuration) and **execute** on the FITS functional
simulator.
"""

from repro.core.profiler import ArmProfile
from repro.core.synthesizer import synthesize, SynthesisConfig, SynthesisResult
from repro.core.translator import translate, FitsImage, TranslationError

__all__ = [
    "ArmProfile",
    "synthesize",
    "SynthesisConfig",
    "SynthesisResult",
    "translate",
    "FitsImage",
    "TranslationError",
]
