"""The full FITS system flow (paper Figure 1).

``fits_flow`` runs profile → synthesize → compile/translate → configure
→ execute for one application, iterating over compiler register budgets
(the paper's feedback loop: "if all of the requirements are met, a
cost-effective solution has been produced; otherwise we go back to the
synthesize stage").  A tighter register budget keeps every hot register
inside the 3-bit field range but costs spill instructions; the flow
translates under each budget and keeps the cheapest total
(static + dynamic fetched halfwords).
"""

from repro.compiler.link import link_arm
from repro.obs import core as obs
from repro.sim.functional import ArmSimulator, cached_run
from repro.sim.functional.fits_sim import FitsSimulator
from repro.core.profiler import ArmProfile
from repro.core.synthesizer import synthesize

#: Register budgets explored by the flow, tightest first; ``None`` means
#: the full ARM callee-saved pool (no restriction: register-hungry
#: applications then lean on the k_reg=4 two-address geometries instead
#: of spilling).
DEFAULT_BUDGETS = ((4, 5), (4, 5, 6), (4, 5, 6, 7), None)


class FitsFlowResult:
    """Everything the experiments need from one application's FITS flow."""

    def __init__(self, budget, arm_image, arm_result, profile, synthesis, fits_result):
        self.budget = budget
        self.arm_image = arm_image          # the FITS-tuned ARM compile
        self.arm_result = arm_result
        self.profile = profile
        self.synthesis = synthesis
        self.fits_image = synthesis.image
        self.fits_result = fits_result

    @property
    def isa(self):
        return self.synthesis.isa

    @property
    def static_mapping(self):
        return self.fits_image.static_mapping_rate()

    @property
    def dynamic_mapping(self):
        return self.fits_image.dynamic_mapping_rate(self.arm_result.exec_counts())

    def __repr__(self):
        return "<FitsFlowResult budget=%r k=(%d,%d) static=%.3f dynamic=%.3f>" % (
            self.budget,
            self.isa.k_op,
            self.isa.k_reg,
            self.static_mapping,
            self.dynamic_mapping,
        )


def _fits_cost(synthesis, exec_counts):
    """Total fetched halfwords: static footprint + dynamic stream."""
    image = synthesis.image
    dynamic = 0
    for idx, n in enumerate(image.unit_size):
        dynamic += int(exec_counts[idx]) * n
    return len(image.halfwords) + dynamic


def fits_flow(module, entry="main", budgets=DEFAULT_BUDGETS, config=None,
              max_instructions=200_000_000):
    """Run the full FITS flow for an IR module; returns the best result.

    The FITS binary is executed to completion on the FITS simulator so
    the caller gets a validated trace, not just a translation.
    """
    attempts = []
    for budget in budgets:
        with obs.span("flow.attempt", module=module.name,
                      budget=list(budget) if budget else None):
            arm_image = link_arm(module, entry=entry, callee_saved=budget)
            arm_result = cached_run(
                "arm", arm_image,
                ArmSimulator(arm_image, max_instructions=max_instructions).run)
            profile = ArmProfile.from_execution(arm_image, arm_result)
            synthesis = synthesize(profile, config)
            cost = _fits_cost(synthesis, arm_result.exec_counts())
            mapping = synthesis.image.dynamic_mapping_rate(arm_result.exec_counts())
        obs.counter("flow.attempts")
        attempts.append((cost, mapping, budget, arm_image, arm_result, profile, synthesis))
    # minimize fetched halfwords, but within a 10 % cost band prefer the
    # attempt with the best dynamic mapping (the paper's headline metric)
    min_cost = min(a[0] for a in attempts)
    eligible = [a for a in attempts if a[0] <= 1.10 * min_cost]
    _cost, _mapping, budget, arm_image, arm_result, profile, synthesis = max(
        eligible, key=lambda a: a[1]
    )
    if obs.enabled:
        obs.counter("flow.runs")
        obs.gauge("flow.selected_budget", list(budget) if budget else None)
        obs.observe("flow.dynamic_mapping", _mapping)
    fits_result = cached_run(
        "fits", synthesis.image,
        FitsSimulator(synthesis.image, max_instructions=2 * max_instructions).run)
    if fits_result.exit_code != arm_result.exit_code:
        raise AssertionError(
            "FITS execution diverged from ARM (exit %r vs %r)"
            % (fits_result.exit_code, arm_result.exit_code)
        )
    return FitsFlowResult(budget, arm_image, arm_result, profile, synthesis, fits_result)
